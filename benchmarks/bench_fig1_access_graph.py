"""Figures 1 and 2 — the access graph of the motivating example with
its matrix and integer weights.

Paper: the graph over {a, b, c, S1, S2, S3} has 7 edges (the
rank-deficient access is not represented); integer weights are the
access-matrix ranks, so the two depth-3 square writes carry the
maximum weight 3.
"""

import pytest

from repro.alignment import build_access_graph
from repro.ir import motivating_example

from _harness import print_table


def build():
    return build_access_graph(motivating_example(), m=2)


def test_fig1_access_graph(benchmark):
    ag = benchmark(build)
    labels = sorted({e.payload.ref.label for e in ag.graph.edges()})
    rows = []
    for lab in labels:
        edges = ag.edges_of_access(lab)
        dirs = ", ".join(f"{e.src.split(':')[1]}->{e.dst.split(':')[1]}" for e in edges)
        rows.append([lab, edges[0].weight, dirs])
    print_table(
        "Figures 1-2 — access graph edges (m=2)",
        ["access", "weight", "direction(s)"],
        rows,
    )
    assert labels == ["F1", "F2", "F3", "F4", "F5", "F6", "F7"]
    assert [r.label for r in ag.excluded] == ["F8"]
    weights = {lab: ag.edges_of_access(lab)[0].weight for lab in labels}
    assert weights["F5"] == weights["F7"] == 3
    assert all(weights[l] == 2 for l in ("F1", "F2", "F3", "F4", "F6"))


def test_fig2_weight_distribution(benchmark):
    def weight_hist():
        ag = build()
        hist = {}
        for e in ag.graph.edges():
            hist[e.weight] = hist.get(e.weight, 0) + 1
        return hist

    hist = benchmark(weight_hist)
    # square accesses contribute two directed edges each
    assert hist[3] == 4  # F5, F7 in both directions
    assert hist[2] == 7  # F2, F3 (x2 each) + F1 + F4 + F6
