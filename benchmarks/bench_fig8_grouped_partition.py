"""Figure 8 (a, b, c) — communication-time ratios of the standard
distribution schemes over the grouped partition for a ``U(k)``
communication.

Paper: three graphs (one per stride k); for each, the ratio of the
time under CYCLIC(B) (dotted), full BLOCK (dashed) and CYCLIC (solid)
over the grouped-partition time.  The grouped partition is always at
least as good as BLOCK and CYCLIC(B); plain CYCLIC performs well
"because it amounts to the grouped partition with k = 1".

We sweep the CYCLIC block size B = 1..8 for k in {3, 4, 8} on a 4x4
mesh with a 48x48 virtual grid, and assert the orderings.
"""

import pytest

from repro.decomp import U
from repro.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    Distribution2D,
    GroupedDistribution,
)
from repro.machine import ParagonModel, affine_pattern

from _harness import print_table, series

N = 48
P, Q = 4, 4
SIZE = 4
BLOCK_SIZES = list(range(1, 9))
# strides not equal to P: with k == P the grouped partition makes the
# whole U(k) communication local (see bench_fig7_two_phase), which
# degenerates every ratio to infinity
KS = (2, 3, 6)


def time_u_comm(machine, row_dist, k):
    """Time of the U(k) pattern with rows distributed by ``row_dist``
    (columns BLOCK — the U communication only moves the row index)."""
    dist = Distribution2D(row_dist, BlockDistribution(N, Q))
    msgs = affine_pattern(dist, U(k), size=SIZE)
    return machine.time_phase(msgs).time


def compute_figure(k):
    machine = ParagonModel(P, Q)
    grouped = time_u_comm(machine, GroupedDistribution(N, P, k=k), k)
    block = time_u_comm(machine, BlockDistribution(N, P), k)
    cyclic = time_u_comm(machine, CyclicDistribution(N, P), k)
    cyclic_b = [
        time_u_comm(machine, BlockCyclicDistribution(N, P, block=b), k)
        for b in BLOCK_SIZES
    ]
    return {
        "grouped": grouped,
        "block_ratio": block / grouped,
        "cyclic_ratio": cyclic / grouped,
        "cyclic_b_ratios": [t / grouped for t in cyclic_b],
    }


@pytest.mark.parametrize("k", KS)
def test_fig8_grouped_partition(benchmark, k):
    data = benchmark(compute_figure, k)
    print(f"\nFigure 8 — U({k}) on {N}x{N} virtual, {P}x{Q} mesh "
          f"(ratios over grouped partition)")
    series("CYCLIC(B), B=1..8 (dotted)", BLOCK_SIZES, data["cyclic_b_ratios"])
    series("BLOCK (dashed)", ["-"], [data["block_ratio"]])
    series("CYCLIC (solid)", ["-"], [data["cyclic_ratio"]])
    # shape claims of Section 5.3
    assert data["block_ratio"] >= 1.0, "grouped never loses to BLOCK"
    assert all(r >= 0.99 for r in data["cyclic_b_ratios"]), (
        "grouped never loses to CYCLIC(B)"
    )
    # CYCLIC is competitive when the stride is coprime to P (it then
    # behaves like a grouped partition of its own); when gcd(k, P) > 1
    # the residue structure collides with the round-robin and the
    # grouped partition wins big (the tall ratios of the paper's plots)
    import math

    if math.gcd(k, P) == 1:
        assert data["cyclic_ratio"] < 2.0
    else:
        assert data["cyclic_ratio"] >= 1.0


def test_fig8_block_suffers_most_at_large_k(benchmark):
    def worst_block_ratio():
        out = {}
        for k in KS:
            d = compute_figure(k)
            out[k] = d["block_ratio"]
        return out

    ratios = benchmark(worst_block_ratio)
    print_table(
        "Figure 8 — BLOCK/grouped ratio by stride k",
        ["k"] + [str(k) for k in KS],
        [["ratio"] + [ratios[k] for k in KS]],
    )
    assert max(ratios.values()) > 1.2, "BLOCK pays visibly somewhere"


def test_fig8_matched_stride_is_free(benchmark):
    """k == P: every residue class coincides with one physical block
    and the U(k) communication is entirely processor-local under the
    grouped partition — the strongest possible ratio of the figure."""
    machine = ParagonModel(P, Q)
    t = benchmark(
        lambda: time_u_comm(machine, GroupedDistribution(N, P, k=P), P)
    )
    assert t == 0.0
    block = time_u_comm(machine, BlockDistribution(N, P), P)
    assert block > 0.0
