"""Schedule legality — vectorized witness enumeration vs per-element Python.

Not a paper artefact: the compile-side twin of ``bench_runtime_exec.py``.
``BENCH_profile.json`` identified ``schedule_is_legal``'s bounded
dependence enumeration as the dominant compile-time cost (over half the
campaign compile stage); the polyhedral-domain refactor replaced it with
dense domain point matrices, matmul subscripts/times and ``np.unique``
label intersections.  This gate measures

* :func:`repro.ir.schedule_violations` (vectorized) vs
  :func:`repro.ir.schedule_violations_python` (the kept per-element
  baseline) on the reference legality workload — the motivating example
  at ``N = M = 5`` under an outer-sequential schedule, the regime
  campaign compilation lives in — with a >= 5x floor, and

* asserts **bit-identity** (message strings and order) on the paper's
  seed nests, a triangular kernel, and 50 generated workloads (25
  rectangular + 25 triangular) under trivial, outer-sequential and
  inferred schedules.

Bit-identity always gates; the speedup floor is enforced only under
``REPRO_PERF_STRICT=1`` (``run_all.py --timed``), same policy as
``bench_perf_core.py``.  Results go to ``BENCH_legality.json``.
"""

import os
import time
import warnings

import pytest

from repro.campaign import generate_triangular_workloads, generate_workloads
from repro.ir import (
    infer_schedules,
    motivating_example,
    outer_sequential_schedules,
    parse_nest,
    platonoff_example,
    schedule_is_legal,
    schedule_violations,
    schedule_violations_python,
    trivial_schedules,
)

from _harness import print_table, record_bench

PARAMS = {"N": 5, "M": 5}
REPEATS = 2
SPEEDUP_TARGET = 5.0
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"

TRI_LU_SRC = """array A(2)
for k = 1..N:
  for i = k..N:
    for j = k..N:
      S: A[i, j] = f(A[i, j], A[i, k], A[k, j])
"""


def check_speedup_floor(measured: float, target: float, what: str) -> None:
    if measured >= target:
        return
    msg = f"{what} speedup {measured:.1f}x below the {target}x floor"
    if STRICT:
        pytest.fail(msg)
    warnings.warn(msg + " (non-strict mode: recorded, not failed)")


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def reference():
    """The reference legality workload: a legal schedule, so both paths
    scan every witness candidate (the worst case and the common one —
    campaign compilation mostly checks schedules that *are* legal)."""
    nest = motivating_example()
    sched = outer_sequential_schedules(nest, 1)
    assert schedule_is_legal(sched, PARAMS)
    return sched


@pytest.fixture(scope="module")
def measurements(reference):
    t_py = best_of(lambda: schedule_violations_python(reference, PARAMS, 10))
    t_vec = best_of(lambda: schedule_violations(reference, PARAMS, 10))
    events = sum(
        s.domain_size(PARAMS) for s in reference.nest.statements
    )
    return {
        "params": dict(PARAMS),
        "schedule": "outer:1",
        "domain_points": events,
        "legality_python_s": t_py,
        "legality_vectorized_s": t_vec,
        "legality_speedup": t_py / t_vec,
    }


def test_legality_speedup(measurements):
    r = measurements
    print_table(
        "Schedule legality — per-element python vs vectorized",
        ["what", "domain pts", "python (s)", "vectorized (s)", "speedup"],
        [
            [
                "schedule_violations", r["domain_points"],
                r["legality_python_s"], r["legality_vectorized_s"],
                r["legality_speedup"],
            ],
        ],
    )
    check_speedup_floor(
        r["legality_speedup"], SPEEDUP_TARGET, "legality checker"
    )


def _assert_identical(sched, params, limit=50):
    got = schedule_violations(sched, params, limit)
    want = schedule_violations_python(sched, params, limit)
    assert got == want, (got[:2], want[:2])
    return len(got)


def test_seed_corpus_bit_identical():
    """Seed nests + the LU triangle, under several schedules."""
    cases = [
        (motivating_example(), {"N": 3, "M": 3}),
        (platonoff_example(), {"n": 3}),
        (parse_nest(TRI_LU_SRC, name="lu"), {"N": 4}),
    ]
    for nest, params in cases:
        for sched in (
            trivial_schedules(nest),
            outer_sequential_schedules(nest, 1),
            infer_schedules(nest, params),
        ):
            _assert_identical(sched, params)


def test_generated_corpus_bit_identical():
    """50 generated workloads (25 rectangular + 25 triangular): the two
    paths agree exactly under inferred and trivial schedules."""
    workloads = generate_workloads(seed=21, count=25)
    workloads += generate_triangular_workloads(seed=21, count=25)
    assert len(workloads) == 50
    checked = 0
    for wl in workloads:
        nest = wl.resolve()
        params = dict(wl.params)
        _assert_identical(infer_schedules(nest, params), params)
        _assert_identical(trivial_schedules(nest), params)
        checked += 1
    assert checked == 50


def test_record_legality(measurements):
    path = record_bench(
        "legality",
        {
            "workload": "motivating_example outer:1",
            "targets": {"legality_speedup": SPEEDUP_TARGET},
            "bit_identity_corpus": {
                "seed_nests": 3,
                "generated_rect": 25,
                "generated_triangular": 25,
            },
            "reference": measurements,
        },
    )
    assert path.endswith("BENCH_legality.json")
