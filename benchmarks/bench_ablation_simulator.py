"""Ablation A2 — analytic link-contention bound vs the event-driven
wormhole simulator.

The analytic model is a bottleneck *bound*; the event simulator
reserves whole routes and measures a makespan.  This ablation checks
they agree where it matters:

* the simulated makespan never beats the bandwidth component of the
  analytic bound (soundness);
* across random message patterns the two rank the patterns mostly the
  same way (Kendall concordance of the induced orderings).
"""

import random

import pytest

from repro.machine import CostParams, EventSimulator, Mesh2D, Message, phase_time

from _harness import print_table

PARAMS = CostParams(alpha=10.0, beta=1.0, gamma=0.5)


def random_pattern(rng: random.Random, mesh: Mesh2D, nmsg: int):
    nodes = list(mesh.nodes())
    out = []
    for _ in range(nmsg):
        src, dst = rng.sample(nodes, 2)
        out.append(Message(src=src, dst=dst, size=rng.randint(1, 16)))
    return out


def collect(seed=7, trials=40):
    rng = random.Random(seed)
    mesh = Mesh2D(4, 4)
    sim = EventSimulator(mesh, PARAMS)
    pairs = []
    for _ in range(trials):
        msgs = random_pattern(rng, mesh, rng.randint(4, 24))
        analytic = phase_time(mesh, msgs, PARAMS)
        simulated = sim.run(msgs)
        pairs.append((analytic.time, simulated, analytic.max_link_load))
    return pairs


def _kendall(xs, ys):
    n = len(xs)
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = (xs[i] - xs[j]) * (ys[i] - ys[j])
            if a > 0:
                concordant += 1
            elif a < 0:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 1.0


def test_a2_soundness(benchmark):
    pairs = benchmark(collect)
    for analytic, simulated, max_load in pairs:
        assert simulated >= max_load * PARAMS.beta - 1e-9, (
            "the simulator cannot beat the bottleneck link"
        )


def test_a2_rank_agreement(benchmark):
    pairs = benchmark(collect)
    tau = _kendall([p[0] for p in pairs], [p[1] for p in pairs])
    ratio_hi = max(s / a for a, s, _ in pairs if a > 0)
    ratio_lo = min(s / a for a, s, _ in pairs if a > 0)
    print_table(
        "A2 — analytic bound vs wormhole simulator (40 random patterns)",
        ["kendall tau", "sim/analytic min", "sim/analytic max"],
        [[tau, ratio_lo, ratio_hi]],
    )
    assert tau > 0.5, "the two models must largely agree on orderings"
