"""Section 7.2 — comparison with Platonoff's strategy on Example 5.

Paper: Platonoff preserves the broadcast and needs a partial broadcast
per element per time step; the two-step heuristic (zero out first,
optimize residuals second) maps the nest with **no** communication.
"""

import pytest

from repro.alignment import two_step_heuristic
from repro.baselines import platonoff_mapping
from repro.ir import outer_sequential_schedules, platonoff_example
from repro.machine import ParagonModel
from repro.runtime import Folding, MappedProgram, execute

from _harness import print_table


def compare(n: int):
    nest = platonoff_example()
    schedules = outer_sequential_schedules(nest, outer=1)
    machine = ParagonModel(3, 3)
    folding = Folding(mesh=machine.mesh, extent=max(4, n + 1))
    params = {"n": n}

    ours = two_step_heuristic(nest, m=2, schedules=schedules)
    rep_ours = execute(
        MappedProgram(mapping=ours, folding=folding, params=params), machine
    )
    theirs = platonoff_mapping(nest, m=2, schedules=schedules)
    rep_theirs = execute(
        MappedProgram(mapping=theirs, folding=folding, params=params), machine
    )
    return rep_ours, rep_theirs


def test_sec72_comparison(benchmark):
    rep_ours, rep_theirs = benchmark(compare, 4)
    print_table(
        "Section 7.2 — Example 5, n=4 (two-step heuristic vs broadcast-first)",
        ["strategy", "messages", "volume", "time"],
        [
            ["two-step (ours)", rep_ours.total_messages, rep_ours.total_volume, rep_ours.total_time],
            ["broadcast-first", rep_theirs.total_messages, rep_theirs.total_volume, rep_theirs.total_time],
        ],
    )
    assert rep_ours.total_messages == 0
    assert rep_ours.total_time == 0.0
    assert rep_theirs.total_messages > 0
    assert rep_theirs.total_time > 0.0


def test_sec72_gap_grows_with_n(benchmark):
    def sweep():
        return [(n, compare(n)[1].total_volume) for n in (2, 3, 4)]

    volumes = benchmark(sweep)
    print_table(
        "Section 7.2 — broadcast-first residual volume vs n",
        ["n", "volume"],
        [[n, v] for n, v in volumes],
    )
    vols = [v for _, v in volumes]
    assert vols[0] < vols[1] < vols[2], "the baseline's cost grows with n"
