"""Observability overhead gates + the traced per-stage breakdown.

Not a paper artefact — the subsystem gate for :mod:`repro.obs`:

* **disabled tracing is near-free**: a ``span()`` call with tracing off
  is one module-flag read returning a shared no-op (micro-gate below),
  and a full campaign run with tracing disabled (the default) stays
  within ``OVERHEAD_TOLERANCE`` of the throughput recorded in
  ``BENCH_campaign.json``'s ``grid_2d`` section (strict-failed under
  ``REPRO_PERF_STRICT=1``, warned otherwise — same policy as the other
  perf gates);
* **traced runs account for their time**: per-stage totals (compile +
  price + executor overhead) must sum to the summed task wall time
  exactly (they do by construction — overhead is the residual) and the
  instrumented stages must *dominate* it (the spans are not missing the
  work);
* the traced run's per-stage totals land in ``BENCH_trace.json``
  (section ``grid_2d``) — the per-PR answer to "which stage owns the
  throughput trend?" next to ``BENCH_campaign.json``'s totals.
"""

import os
import time
import timeit
import warnings

import pytest

from repro.campaign import CampaignConfig, default_spec, run_campaign
from repro.obs import load_trace, span, stage_totals, tracing

SEED = 0
NESTS = 8
JOBS = 2
#: same grid shape as bench_campaign_throughput.py's grid_2d section,
#: so the overhead comparison is apples-to-apples
MESHES = ((4, 4), (2, 2))

#: allowed throughput loss of a tracing-disabled run vs the recorded
#: grid_2d tasks/s (5%)
OVERHEAD_TOLERANCE = 0.05
#: ceiling on one disabled span() call (seconds) — generous so CI noise
#: never trips it; the real number is tens of nanoseconds
DISABLED_SPAN_CEILING = 2e-6
#: traced stage seconds (compile + price) must cover at least this
#: fraction of summed task wall time
STAGE_COVERAGE_FLOOR = 0.5

STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"


def _grid():
    spec = default_spec(seed=SEED, nests=NESTS, meshes=MESHES)
    return spec, spec.expand()


def test_disabled_span_is_nearly_free():
    """The no-op fast path: flag read + shared singleton, no clock."""
    assert not tracing.is_enabled()
    n = 100_000
    per_call = timeit.timeit(lambda: span("x"), number=n) / n
    assert per_call < DISABLED_SPAN_CEILING, (
        f"disabled span() costs {per_call * 1e9:.0f}ns/call "
        f"(ceiling {DISABLED_SPAN_CEILING * 1e9:.0f}ns)"
    )


def test_trace_overhead_and_stage_breakdown(tmp_path):
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}

    # --- tracing disabled (the default): measure clean throughput -----
    # best of three runs: the recorded grid_2d number is a median of
    # three, so the best-vs-median comparison has headroom against
    # pool-scheduling noise while a real slowdown still trips the gate
    assert not tracing.is_enabled()
    plain_wall = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        outcome = run_campaign(
            tasks, str(tmp_path / "plain.jsonl"),
            CampaignConfig(jobs=JOBS), meta=meta,
        )
        plain_wall = min(plain_wall, time.perf_counter() - t0)
        assert outcome.ok == len(tasks) and outcome.errors == 0
    plain_tps = len(tasks) / plain_wall

    from _harness import previous_stat, record_bench

    recorded_tps = previous_stat("campaign", "grid_2d", "tasks_per_second")
    if recorded_tps > 0:
        floor = recorded_tps * (1.0 - OVERHEAD_TOLERANCE)
        if plain_tps < floor:
            msg = (
                f"tracing-disabled campaign ran {plain_tps:.1f} tasks/s, "
                f"more than {OVERHEAD_TOLERANCE:.0%} below the recorded "
                f"grid_2d throughput ({recorded_tps:.1f}/s)"
            )
            if STRICT:
                pytest.fail(msg)
            warnings.warn(msg + " (non-strict mode: recorded, not failed)")

    # --- traced run: stage totals must account for the task time ------
    trace_path = str(tmp_path / "trace.jsonl")
    t0 = time.perf_counter()
    traced_outcome = run_campaign(
        tasks, str(tmp_path / "traced.jsonl"),
        CampaignConfig(jobs=JOBS, trace=trace_path), meta=meta,
    )
    traced_wall = time.perf_counter() - t0
    assert traced_outcome.ok == len(tasks)
    assert not tracing.is_enabled()  # flag restored after the run

    trace = load_trace(trace_path)
    assert len(trace["tasks"]) == len(tasks)
    totals = stage_totals(trace["tasks"])
    staged = totals["compile_seconds"] + totals["price_seconds"]
    # exact accounting: overhead is defined as the residual
    assert staged + totals["overhead_seconds"] == pytest.approx(
        totals["task_seconds"], abs=1e-6
    )
    # the instrumented stages dominate task wall time (spans are not
    # silently missing the work)
    assert staged >= STAGE_COVERAGE_FLOOR * totals["task_seconds"], (
        f"compile+price spans cover only "
        f"{staged / totals['task_seconds']:.0%} of task time"
    )
    # stage time never exceeds what the tasks measured
    assert staged <= totals["task_seconds"] + 1e-6

    record_bench(
        "trace",
        {
            "seed": SEED,
            "generated_nests": NESTS,
            "tasks": len(tasks),
            "jobs": JOBS,
            "untraced_wall_seconds": round(plain_wall, 3),
            "untraced_tasks_per_second": round(plain_tps, 2),
            "recorded_grid2d_tasks_per_second": recorded_tps,
            "overhead_tolerance": OVERHEAD_TOLERANCE,
            "traced_wall_seconds": round(traced_wall, 3),
            "traced_tasks_per_second": round(len(tasks) / traced_wall, 2),
            "stage_totals": {
                k: (round(v, 4) if isinstance(v, float) else v)
                for k, v in totals.items()
            },
            "stage_share": {
                "compile": round(
                    totals["compile_seconds"] / totals["task_seconds"], 3
                ),
                "price": round(
                    totals["price_seconds"] / totals["task_seconds"], 3
                ),
                "executor_overhead": round(
                    totals["overhead_seconds"] / totals["task_seconds"], 3
                ),
            },
        },
        section="grid_2d",
    )
