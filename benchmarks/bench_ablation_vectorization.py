"""Ablation A4 — message vectorization (Section 4.5).

The paper: "replace a set of small-size communications by a single
large message so as to reduce overhead due to startup and latency".
We build a nest with a sequential outer loop whose read source is
time-invariant (``ker M_S ⊆ ker(M_a F_a)``), execute it with and
without vectorization and measure the message-count and time savings.
"""

import pytest

from repro.alignment import two_step_heuristic
from repro.ir import NestBuilder, outer_sequential_schedules
from repro.machine import ParagonModel
from repro.runtime import Folding, MappedProgram, execute

from _harness import print_table

STEPS = 6


def build_program():
    b = NestBuilder("vect-bench")
    b.array("x", 2)
    # a per-step transpose: the write and the transposed read of the
    # same array cannot both be local, and the read's source does not
    # depend on t — the exact Section 4.5 situation
    b.statement(
        "S",
        [("t", 0, STEPS - 1), ("i", 0, 7), ("j", 0, 7)],
        writes=[("x", [[0, 1, 0], [0, 0, 1]], None, "W")],
        reads=[("x", [[0, 0, 1], [0, 1, 0]], None, "R")],
    )
    nest = b.build()
    schedules = outer_sequential_schedules(nest, outer=1)
    result = two_step_heuristic(nest, m=2, schedules=schedules)
    machine = ParagonModel(2, 2)
    program = MappedProgram(
        mapping=result,
        folding=Folding(mesh=machine.mesh, extent=8),
        params={},
    )
    return program, machine, result


def test_a4_vectorization_savings(benchmark):
    def run():
        program, machine, result = build_program()
        rep = execute(program, machine)
        # the read must be recognized as vectorizable
        read_opt = result.residual_by_label("R")
        return rep, read_opt

    rep, read_opt = benchmark(run)
    assert read_opt.vectorizable
    s = rep.stats("R")
    print_table(
        "A4 — message vectorization on the R access "
        f"({STEPS} time steps)",
        ["element msgs", "vectorized msgs", "ratio"],
        [[
            s.messages_before_vectorization,
            s.messages_after_vectorization,
            s.messages_before_vectorization
            / max(1, s.messages_after_vectorization),
        ]],
    )
    # all time steps coalesce: at least a STEPS-fold reduction in
    # message count per destination pair
    assert (
        s.messages_before_vectorization
        >= STEPS * s.messages_after_vectorization
    )
