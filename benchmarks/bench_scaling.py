"""Compile-time scaling of the heuristic itself.

Not a paper artefact — a library health benchmark: how the two-step
heuristic's running time grows with the number of statements and
accesses (the access graph, Edmonds and the exact linear algebra are
all polynomial; this keeps them honest under pytest-benchmark).
"""

import random

import pytest

from repro.alignment import two_step_heuristic
from repro.ir import NestBuilder
from repro.linalg import IntMat, rank


def chain_nest(n_stmts: int):
    """A pipeline of statements x0 -> x1 -> ... with full-rank square
    accesses: every communication can be made local, so the heuristic
    exercises the whole graph machinery."""
    rng = random.Random(n_stmts)
    b = NestBuilder(f"chain{n_stmts}")
    for i in range(n_stmts + 1):
        b.array(f"x{i}", 2)
    mats = [
        IntMat([[1, 1], [0, 1]]),
        IntMat([[1, 0], [1, 1]]),
        IntMat([[0, 1], [1, 0]]),
        IntMat([[1, -1], [1, 0]]),
    ]
    for i in range(n_stmts):
        f_r = mats[rng.randrange(len(mats))]
        f_w = mats[rng.randrange(len(mats))]
        b.statement(
            f"S{i}",
            [("i", 0, "N"), ("j", 0, "N")],
            writes=[(f"x{i + 1}", f_w.tolist(), None, f"W{i}")],
            reads=[(f"x{i}", f_r.tolist(), None, f"R{i}")],
        )
    return b.build()


@pytest.mark.parametrize("n_stmts", [4, 8, 16])
def test_scaling_chain(benchmark, n_stmts):
    nest = chain_nest(n_stmts)
    result = benchmark(lambda: two_step_heuristic(nest, m=2))
    # a chain is always fully localizable
    assert len(result.alignment.local_labels) == 2 * n_stmts


def test_scaling_branching_only(benchmark):
    from repro.alignment import build_access_graph, maximum_branching

    nest = chain_nest(24)
    ag = build_access_graph(nest, 2)

    chosen = benchmark(lambda: maximum_branching(ag.graph))
    assert len(chosen) >= 24
