"""End-to-end triangular-domain campaign gate.

Not a paper artefact — the polyhedral-domain twin of the campaign shape
gates: a seeded *triangular* corpus (the LU/Cholesky/back-substitution
kernels plus generated triangular/trapezoidal nests) swept against
``paragon`` on a ``4x4`` mesh (m = 2) **and** ``t3d`` on a ``2x2x2``
cube (m = 3) must complete with **all tasks ok and zero error/timeout
records**, resume must be a no-op on a completed run, and the measured
throughput + per-group Feautrier residual ratios land in
``BENCH_campaign.json`` under the ``grid_triangular`` section,
alongside the rectangular 2-D/3-D entries.
"""

import time

from repro.campaign import (
    CampaignConfig,
    RunStore,
    default_spec,
    run_campaign,
    summarize_results,
)

SEED = 0
NESTS = 4
JOBS = 2
MESHES = ((4, 4), (2, 2, 2))
MACHINES = ("paragon", "t3d")
MS = (2, 3)


def _previous(key: str) -> float:
    """A ``grid_triangular`` stat currently on disk (for the deltas)."""
    from _harness import previous_stat

    return previous_stat("campaign", "grid_triangular", key)


def _grid():
    spec = default_spec(
        seed=SEED,
        nests=NESTS,
        machines=MACHINES,
        meshes=MESHES,
        ms=MS,
        shapes=("tri",),
    )
    return spec, spec.expand()


def test_triangular_campaign_gate(tmp_path, benchmark):
    """Shape gate + throughput measurement on the triangular grid."""
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    out = str(tmp_path / "tri.jsonl")
    # mixed-rank grid: every workload prices on both compatible cells
    assert len(tasks) == 2 * (NESTS + 4)  # generated + 4 corpus kernels

    t0 = time.perf_counter()
    outcome = run_campaign(tasks, out, CampaignConfig(jobs=JOBS), meta=meta)
    wall = time.perf_counter() - t0

    benchmark(
        lambda: run_campaign(
            tasks, out, CampaignConfig(jobs=JOBS), meta=meta
        )
    )

    # --- the gate: every task completes, zero errors/timeouts ---------
    assert outcome.ran == len(tasks)
    assert outcome.ok == len(tasks)
    assert outcome.errors == 0
    assert outcome.timeouts == 0

    # resume on a completed checkpoint is a no-op
    again = run_campaign(tasks, out, resume=True, meta=meta)
    assert again.ran == 0 and again.prior == len(tasks)

    _, results = RunStore(out).load()
    rows = summarize_results(results.values())
    assert all(row["errors"] == 0 and row["timeouts"] == 0 for row in rows)
    assert {row["machine"] for row in rows} == set(MACHINES)
    assert {row["mesh"] for row in rows} == {"4x4", "2x2x2"}
    # the two-step heuristic should never *lose* to greedy step 1
    assert all(
        row["residuals"] <= row["baseline_residuals"] for row in rows
    )
    from _harness import mean_residual_ratio, record_bench

    # residual-ratio trend lines are present per group (quality drift)
    ratios = [
        row["residual_ratio"] for row in rows
        if row["residual_ratio"] is not None
    ]
    assert ratios and all(r <= 1.0 for r in ratios)
    mean_ratio = mean_residual_ratio(rows)

    tasks_per_second = len(tasks) / wall
    prev_tps = _previous("tasks_per_second")
    prev_ratio = _previous("mean_residual_ratio")

    record_bench(
        "campaign",
        {
            "seed": SEED,
            "generated_nests": NESTS,
            "shapes": ["tri"],
            "machines": list(MACHINES),
            "meshes": ["x".join(str(d) for d in mm) for mm in MESHES],
            "m": list(MS),
            "tasks": len(tasks),
            "jobs": JOBS,
            "wall_seconds": round(wall, 3),
            "tasks_per_second": round(tasks_per_second, 2),
            "unique_compiles": outcome.compile_cache_misses,
            "compile_cache": {
                "hits": outcome.compile_cache_hits,
                "misses": outcome.compile_cache_misses,
            },
            "tasks_per_second_prev": prev_tps,
            "tasks_per_second_delta": round(tasks_per_second - prev_tps, 2),
            "mean_residual_ratio": round(mean_ratio, 4),
            "mean_residual_ratio_prev": prev_ratio,
            "mean_residual_ratio_delta": round(mean_ratio - prev_ratio, 4),
            "summary_rows": rows,
        },
        section="grid_triangular",
    )
