"""Table 2 — decomposing versus not decomposing a general affine
communication on the Paragon model.

Paper: data-flow matrix ``T = L . U`` on a Paragon mesh, standard
CYCLIC distribution; rows "Not decomposed | L | U | LU" — decomposing
is much faster, and U costs more than L "because of the larger grid
dimension" (the mesh is not square).

We use the Figure 7 matrix ``T = [[1,3],[2,7]] = L(2) . U(3)`` on a
non-square mesh so the L/U asymmetry shows, price the direct pattern
(element-wise, not vectorizable) and each coalesced phase, and check
the orderings.
"""

import pytest

from repro.decomp import L, U
from repro.distribution import CyclicDistribution, Distribution2D
from repro.linalg import IntMat
from repro.machine import ParagonModel, affine_pattern, decomposed_phases

from _harness import print_table

T = IntMat([[1, 3], [2, 7]])
N = 48
P, Q = 8, 3  # taller than wide: the U factor moves the row index,
# which lives on the larger mesh dimension — the paper's asymmetry
SIZE = 8


def compute_times():
    machine = ParagonModel(P, Q)
    dist = Distribution2D(CyclicDistribution(N, P), CyclicDistribution(N, Q))
    factors = [L(2), U(3)]
    direct = machine.time_general(dist, T, size=SIZE)
    phases = decomposed_phases(dist, factors, size=SIZE)
    # decomposed_phases applies right-to-left: phases[0] is U, [1] is L
    u_time = machine.time_phase(phases[0]).time
    l_time = machine.time_phase(phases[1]).time
    return {"direct": direct, "L": l_time, "U": u_time, "LU": l_time + u_time}


def test_table2_decomposition(benchmark):
    times = benchmark(compute_times)
    base = times["LU"]
    print_table(
        f"Table 2 — T={T.tolist()} on a {P}x{Q} mesh (CYCLIC), "
        "execution ratios vs decomposed LU",
        ["not decomposed", "L", "U", "LU"],
        [[times["direct"] / base, times["L"] / base, times["U"] / base, 1.0]],
    )
    assert times["LU"] < times["direct"], "decomposition must win"
    assert times["L"] <= times["U"], (
        "the factor acting on the larger mesh dimension costs more"
    )
    assert times["direct"] / times["LU"] > 1.3, "a clear gap, as measured"


def test_table2_ordering_robust_to_machine_constants(benchmark):
    """The decomposition win is not an artefact of one parameter
    choice: it holds across a grid of start-up / bandwidth constants.
    (Real message-passing machines have alpha >> beta — the Paragon's
    per-message latency was ~100us against ~5ns per byte — so the sweep
    stays in the startup-dominated regime.)"""
    from repro.machine import CostParams

    def sweep():
        out = []
        dist = Distribution2D(
            CyclicDistribution(N, P), CyclicDistribution(N, Q)
        )
        for alpha in (20.0, 80.0, 320.0):
            for beta in (0.5, 1.0, 2.0):
                machine = ParagonModel(P, Q, params=CostParams(alpha=alpha, beta=beta))
                direct = machine.time_general(dist, T, size=SIZE)
                split = machine.time_decomposed(dist, [L(2), U(3)], size=SIZE)
                out.append((alpha, beta, direct, split))
        return out

    rows = benchmark(sweep)
    for alpha, beta, direct, split in rows:
        assert split < direct, f"ordering broke at alpha={alpha}, beta={beta}"
