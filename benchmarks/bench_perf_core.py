"""Perf core — vectorized RouteCache simulators vs the per-element
Python baselines.

Not a paper artefact: this is the performance benchmark the vectorized
mesh-simulation core is held to.  It measures old-vs-new throughput of

* the analytic contention model (``phase_time`` vs
  ``phase_time_python``) — target >= 5x on a 32x32 mesh with 10k
  messages;
* the event-driven wormhole simulator (``EventSimulator.run`` vs
  ``.run_python``) — target >= 3x on the same workload;

and asserts the two implementations are **bit-identical**, both on the
random large workloads and on the paper's seed scenarios (the affine
patterns of Figure 7 and the L/U decomposition phases of Table 2).
Results go to ``BENCH_perf_core.json`` via ``record_bench``.

Bit-identity always gates.  The wall-clock speedup floors are enforced
only when ``REPRO_PERF_STRICT=1`` (``run_all.py --timed`` sets it) so a
loaded CI runner cannot flake the pipeline on scheduler noise; in the
default fast mode a shortfall is reported as a warning and recorded in
the JSON artifact instead.
"""

import os
import random
import time
import warnings

import pytest

from repro.distribution import BlockDistribution, CyclicDistribution, Distribution2D
from repro.linalg import IntMat, cache_stats
from repro.machine import (
    CostParams,
    EventSimulator,
    Mesh2D,
    Message,
    RouteCache,
    affine_pattern,
    decomposed_phases,
    phase_time,
    phase_time_python,
)

from _harness import print_table, record_bench

PARAMS = CostParams(alpha=20.0, beta=1.0, gamma=0.5)
REPEATS = 3

#: (mesh side, message count) workloads; the last row carries the
#: acceptance thresholds of the vectorization work.
WORKLOADS = [(8, 1_000), (16, 4_000), (32, 10_000)]
ANALYTIC_TARGET = 5.0
EVENTSIM_TARGET = 3.0
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"


def check_speedup_floor(measured: float, target: float, what: str) -> None:
    """Fail in strict mode, warn otherwise (CI noise tolerance)."""
    if measured >= target:
        return
    msg = f"{what} speedup {measured:.1f}x below the {target}x floor"
    if STRICT:
        pytest.fail(msg)
    warnings.warn(msg + " (non-strict mode: recorded, not failed)")


def random_pattern(mesh: Mesh2D, nmsg: int, seed: int):
    rng = random.Random(seed)
    nodes = list(mesh.nodes())
    out = []
    for _ in range(nmsg):
        src, dst = rng.sample(nodes, 2)
        out.append(Message(src=src, dst=dst, size=rng.randint(1, 16)))
    return out


def best_of(fn, repeats: int = REPEATS) -> float:
    """Smallest wall time of ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_workloads():
    rows = []
    for side, nmsg in WORKLOADS:
        mesh = Mesh2D(side, side)
        msgs = random_pattern(mesh, nmsg, seed=side)
        cache = RouteCache(mesh)
        sim = EventSimulator(mesh, PARAMS, cache=cache)

        fast_report = phase_time(mesh, msgs, PARAMS, cache=cache)  # warm
        slow_report = phase_time_python(mesh, msgs, PARAMS)
        assert fast_report == slow_report, "vectorized analytic model diverged"
        t_fast = best_of(lambda: phase_time(mesh, msgs, PARAMS, cache=cache))
        t_slow = best_of(lambda: phase_time_python(mesh, msgs, PARAMS))

        fast_make = sim.run(msgs)  # warm
        slow_make = sim.run_python(msgs)
        assert fast_make == slow_make, "vectorized event simulator diverged"
        t_fast_ev = best_of(lambda: sim.run(msgs))
        t_slow_ev = best_of(lambda: sim.run_python(msgs))

        rows.append(
            {
                "mesh": f"{side}x{side}",
                "messages": nmsg,
                "analytic_python_s": t_slow,
                "analytic_vectorized_s": t_fast,
                "analytic_speedup": t_slow / t_fast,
                "eventsim_python_s": t_slow_ev,
                "eventsim_vectorized_s": t_fast_ev,
                "eventsim_speedup": t_slow_ev / t_fast_ev,
                "route_cache": cache.stats(),
            }
        )
    return rows


@pytest.fixture(scope="module")
def workload_rows():
    return measure_workloads()


def test_analytic_model_speedup(workload_rows):
    print_table(
        "Perf core — analytic contention model (old vs vectorized)",
        ["mesh", "msgs", "python (s)", "vectorized (s)", "speedup"],
        [
            [
                r["mesh"],
                r["messages"],
                r["analytic_python_s"],
                r["analytic_vectorized_s"],
                r["analytic_speedup"],
            ]
            for r in workload_rows
        ],
    )
    top = workload_rows[-1]
    assert top["mesh"] == "32x32" and top["messages"] >= 10_000
    check_speedup_floor(
        top["analytic_speedup"], ANALYTIC_TARGET, "analytic contention model"
    )


def test_event_simulator_speedup(workload_rows):
    print_table(
        "Perf core — event-driven simulator (old vs vectorized)",
        ["mesh", "msgs", "python (s)", "vectorized (s)", "speedup"],
        [
            [
                r["mesh"],
                r["messages"],
                r["eventsim_python_s"],
                r["eventsim_vectorized_s"],
                r["eventsim_speedup"],
            ]
            for r in workload_rows
        ],
    )
    top = workload_rows[-1]
    check_speedup_floor(
        top["eventsim_speedup"], EVENTSIM_TARGET, "event-driven simulator"
    )


def seed_scenario_phases():
    """The paper's seed scenarios: Figure 7's general affine pattern and
    the decomposed L/U phases of Table 2, on the 3x4 example mesh."""
    mesh = Mesh2D(3, 4)
    dist = Distribution2D(
        CyclicDistribution(12, 3), BlockDistribution(12, 4)
    )
    t_mat = IntMat([[1, 1], [0, 1]])
    lower = IntMat([[1, 0], [1, 1]])
    upper = IntMat([[1, 1], [0, 1]])
    general = affine_pattern(dist, t_mat, merge=False)
    merged = affine_pattern(dist, t_mat, merge=True)
    phases = decomposed_phases(dist, [upper, lower])
    return mesh, [general, merged] + phases


def test_seed_scenarios_bit_identical():
    """Old and new simulators agree exactly on the paper's scenarios."""
    mesh, phases = seed_scenario_phases()
    sim = EventSimulator(mesh, PARAMS)
    for msgs in phases:
        assert phase_time(mesh, msgs, PARAMS) == phase_time_python(
            mesh, msgs, PARAMS
        )
        assert sim.run(msgs) == sim.run_python(msgs)


def test_record_perf_core(workload_rows):
    """Persist the measurements (plus cache hit rates) for perf tracking."""
    # exercise the linalg cache so its hit rates are meaningful
    a = IntMat([[1, 1], [0, 1]])
    from repro.linalg import right_hermite, smith_normal_form

    for _ in range(3):
        right_hermite(a)
        smith_normal_form(a)
    path = record_bench(
        "perf_core",
        {
            "params": {"alpha": PARAMS.alpha, "beta": PARAMS.beta, "gamma": PARAMS.gamma},
            "workloads": workload_rows,
            "targets": {
                "analytic_speedup": ANALYTIC_TARGET,
                "eventsim_speedup": EVENTSIM_TARGET,
            },
            "linalg_cache": cache_stats(),
        },
    )
    assert path.endswith("BENCH_perf_core.json")
