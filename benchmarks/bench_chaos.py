"""Chaos gate: a deterministically faulted campaign must finish, type
every fault, and converge back to the clean results on resume.

Not a paper artefact — the robustness gate for the fault-tolerant
execution layer (:mod:`repro.campaign.executors`).  The harness injects
all three fault modes into a multi-cell grid under the ``resilient``
backend:

* ``kill`` — the worker is SIGKILLed mid-task (the OOM-killer /
  segfault scenario);
* ``hang`` — the task blocks SIGALRM and sleeps forever (a hung native
  call no in-process timeout can interrupt);
* ``fail`` — transient in-process failures, both pinned to a task and
  probability-drawn with a runtime-chosen seed.

The gate asserts that

1. the faulted campaign **completes without hanging** (bounded wall
   clock, every task gets a record);
2. every injected fault surfaces as a **typed** record — the fault set
   is predicted in advance with :func:`repro.campaign.faults.would_fault`
   (selection is a pure function of ``(seed, mode, task_id, attempt)``)
   and checked record-by-record: ``kill`` -> ``status="crashed"``/
   ``error_kind="crash"``, ``hang`` -> ``timeout``/``timeout``,
   ``fail`` -> ``error``/``fault``;
3. a fault-free ``retry_failures`` resume re-runs exactly the failed
   tasks and the store converges **bit-identical on deterministic
   fields** to an unfaulted reference run;
4. with ``retries=2`` the same (transient, ``times=1``) faults
   self-heal in-run: zero failure records, attempt counts > 1.

Measurements land in ``BENCH_chaos.json`` (schema in PERFORMANCE.md).
"""

import time

from repro.campaign import (
    CampaignConfig,
    RunStore,
    default_spec,
    parse_fault_spec,
    run_campaign,
    would_fault,
)

SEED = 0
NESTS = 4
JOBS = 2
MESHES = ((4, 4), (2, 2))
#: per-task cap during the faulted run: the injected hang is detected
#: within this + the supervisor's grace
TIMEOUT = 3.0

#: expected record shape per injected mode
TYPED = {
    "kill": ("crashed", "crash"),
    "hang": ("timeout", "timeout"),
    "fail": ("error", "fault"),
}


def _grid():
    spec = default_spec(
        seed=SEED, nests=NESTS, include_corpus=False,
        machines=("paragon",), meshes=MESHES,
    )
    return spec, spec.expand()


def _pick_fail_seed(clauses_prefix, tasks, victims):
    """A hash seed for the p= clause such that at least one
    *non-victim* task draws a transient failure on attempt 1 (chosen at
    runtime so the gate does not depend on a magic constant surviving
    task-id changes)."""
    for seed in range(1000):
        clauses = parse_fault_spec(
            clauses_prefix + f";fail:p=0.25,seed={seed}"
        )
        hit = [
            t for t in tasks
            if t.task_id not in victims
            and would_fault(clauses, t.task_id) == "fail"
        ]
        if hit:
            return seed
    raise AssertionError("no seed under 1000 draws a fail fault")


def test_chaos_gate(tmp_path, monkeypatch):
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)

    # --- unfaulted reference -------------------------------------------
    ref_path = str(tmp_path / "ref.jsonl")
    run_campaign(tasks, ref_path, CampaignConfig(jobs=1), meta=meta)
    _, ref = RunStore(ref_path).load()
    want = {k: r.deterministic_dict() for k, r in ref.items()}
    assert all(r.status == "ok" for r in ref.values())

    # --- compose the fault spec: one victim per mode, in three
    # different compile-key groups, plus a probability-drawn fail ------
    by_group = {}
    for t in tasks:
        by_group.setdefault(t.compile_key, t)
    reps = list(by_group.values())
    assert len(reps) >= 3
    kill_v, hang_v, fail_v = reps[0], reps[1], reps[2]
    prefix = (
        f"kill:task={kill_v.task_id},times=99"
        f";hang:task={hang_v.task_id},times=99"
        f";fail:task={fail_v.task_id},times=99"
    )
    victims = {kill_v.task_id, hang_v.task_id, fail_v.task_id}
    fail_seed = _pick_fail_seed(prefix, tasks, victims)
    spec_text = prefix + f";fail:p=0.25,seed={fail_seed}"
    clauses = parse_fault_spec(spec_text)

    # the predicted fault set, computed before anything runs
    predicted = {
        t.task_id: would_fault(clauses, t.task_id)
        for t in tasks
        if would_fault(clauses, t.task_id) is not None
    }
    assert predicted[kill_v.task_id] == "kill"
    assert predicted[hang_v.task_id] == "hang"
    assert sum(1 for m in predicted.values() if m == "hang") == 1
    assert sum(1 for m in predicted.values() if m == "kill") >= 1
    assert sum(1 for m in predicted.values() if m == "fail") >= 2

    # --- gate 1+2: the faulted campaign finishes, faults are typed ----
    out = str(tmp_path / "chaos.jsonl")
    monkeypatch.setenv("REPRO_FAULT_INJECT", spec_text)
    t0 = time.perf_counter()
    faulted = run_campaign(
        tasks, out,
        CampaignConfig(
            jobs=JOBS, executor="resilient", timeout=TIMEOUT,
            heartbeat_timeout=10.0, backoff=0.01,
        ),
        meta=meta,
    )
    faulted_wall = time.perf_counter() - t0
    monkeypatch.delenv("REPRO_FAULT_INJECT")

    assert faulted.ran == len(tasks)  # nothing lost, nothing hung
    _, records = RunStore(out).load()
    assert sorted(records) == sorted(t.task_id for t in tasks)
    for t in tasks:
        rec = records[t.task_id]
        mode = predicted.get(t.task_id)
        if mode is None:
            assert rec.status == "ok", (t.task_id, rec.error)
        else:
            status, kind = TYPED[mode]
            assert rec.status == status, (t.task_id, mode, rec.error)
            assert rec.error_kind == kind
    assert faulted.crashed == sum(
        1 for m in predicted.values() if m == "kill"
    )
    assert faulted.timeouts == 1

    # --- gate 3: fault-free resume converges bit-identically ----------
    t0 = time.perf_counter()
    resumed = run_campaign(
        tasks, out, CampaignConfig(retry_failures=True),
        resume=True, meta=meta,
    )
    resume_wall = time.perf_counter() - t0
    assert resumed.ran == len(predicted)  # exactly the faulted tasks
    assert resumed.ok == len(predicted)
    _, healed = RunStore(out).load()
    assert {k: r.deterministic_dict() for k, r in healed.items()} == want

    # --- gate 4: retries self-heal transient (times=1) faults in-run --
    healed_path = str(tmp_path / "healed.jsonl")
    transient = spec_text.replace("times=99", "times=1")
    monkeypatch.setenv("REPRO_FAULT_INJECT", transient)
    t0 = time.perf_counter()
    selfheal = run_campaign(
        tasks, healed_path,
        CampaignConfig(
            jobs=JOBS, executor="resilient", timeout=TIMEOUT,
            heartbeat_timeout=10.0, retries=2, backoff=0.01,
        ),
        meta=meta,
    )
    selfheal_wall = time.perf_counter() - t0
    monkeypatch.delenv("REPRO_FAULT_INJECT")
    assert selfheal.ok == len(tasks)
    assert selfheal.crashed == 0 and selfheal.errors == 0
    assert selfheal.retried >= 1
    _, third = RunStore(healed_path).load()
    assert {k: r.deterministic_dict() for k, r in third.items()} == want

    from _harness import record_bench

    record_bench(
        "chaos",
        {
            "tasks": len(tasks),
            "groups": len(by_group),
            "fault_spec": spec_text,
            "predicted_faults": {
                mode: sum(1 for m in predicted.values() if m == mode)
                for mode in ("kill", "hang", "fail")
            },
            "faulted_run_seconds": round(faulted_wall, 3),
            "faulted_crashed": faulted.crashed,
            "faulted_timeouts": faulted.timeouts,
            "faulted_errors": faulted.errors,
            "resume_seconds": round(resume_wall, 3),
            "resume_reran": resumed.ran,
            "converged_bit_identical": True,
            "selfheal_seconds": round(selfheal_wall, 3),
            "selfheal_retry_attempts": selfheal.retried,
        },
    )
