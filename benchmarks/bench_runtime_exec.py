"""Runtime execution core — vectorized vs per-element Python pricing.

Not a paper artefact: the performance benchmark the vectorized runtime
executor is held to (the PR-4 twin of ``bench_perf_core.py``).  The
reference pricing workload is the paper's motivating example at
``N = M = 14`` on a 4x4 Paragon mesh — ~28k element communications per
execution, the regime campaign pricing lives in.  It measures

* ``execute`` (dense ``CommBatch`` arrays + ``np.unique`` group-bys)
  vs ``execute_python`` (one ``CommEvent`` object per element, dict
  re-bucketing) — target >= 5x on the **cold** path: every timed run
  gets a fresh program *and* a cleared mapping-level virtual-batch
  cache, so the full extraction is inside the measurement.  The
  warm-cache time (the campaign's price-many regime, where the virtual
  stage is shared across grid cells) is recorded separately;
* ``comm_events`` (vectorized extraction, materialized events) vs
  ``comm_events_python``;

and asserts the two executors are **bit-identical** on the reference
workload, the paper's seed scenarios and a slice of the campaign
generator corpus.  Results go to ``BENCH_runtime_exec.json``.

Bit-identity always gates; the wall-clock speedup floor is enforced
only under ``REPRO_PERF_STRICT=1`` (``run_all.py --timed``), same
policy as ``bench_perf_core.py``.
"""

import os
import time
import warnings

import pytest

from repro import compile_nest
from repro.campaign import generate_workloads
from repro.ir import motivating_example, platonoff_example
from repro.machine import CM5Model, ParagonModel
from repro.runtime import execute, execute_python

from _harness import print_table, record_bench

PARAMS = {"N": 14, "M": 14}
MESH = (4, 4)
REPEATS = 3
EXEC_TARGET = 5.0
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"


def check_speedup_floor(measured: float, target: float, what: str) -> None:
    """Fail in strict mode, warn otherwise (CI noise tolerance)."""
    if measured >= target:
        return
    msg = f"{what} speedup {measured:.1f}x below the {target}x floor"
    if STRICT:
        pytest.fail(msg)
    warnings.warn(msg + " (non-strict mode: recorded, not failed)")


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def reference():
    """Compiled reference workload + machine (compile cost excluded
    from every measurement below).

    Compilation uses the driver's small default legality bounds — the
    *pricing* bounds ``PARAMS`` only enter at program construction,
    exactly how the golden 2-D regression runs the same nest."""
    compiled = compile_nest(motivating_example(), m=2)
    machine = ParagonModel(*MESH)
    return compiled, machine


@pytest.fixture(scope="module")
def measurements(reference):
    compiled, machine = reference

    def cold():
        """Fresh program *and* cleared mapping-level virtual cache: the
        timed call pays the whole extraction, not just fold + group-by."""
        compiled.mapping.__dict__.pop("_virtual_batch_cache", None)
        return compiled.program(machine, PARAMS)

    # warm + bit-identity on the reference workload itself
    vec_report = execute(cold(), machine)
    py_report = execute_python(cold(), machine)
    assert vec_report == py_report, "vectorized executor diverged"

    t_vec = best_of(lambda: execute(cold(), machine))
    t_py = best_of(lambda: execute_python(cold(), machine))
    t_events_vec = best_of(lambda: cold().comm_events())
    t_events_py = best_of(lambda: cold().comm_events_python())

    # the price-many regime: virtual stage cached on the mapping (only
    # the per-program fold + group-by runs), as in campaign grid cells
    warm_prog = compiled.program(machine, PARAMS)
    execute(warm_prog, machine)
    t_warm = best_of(
        lambda: execute(compiled.program(machine, PARAMS), machine)
    )

    events = len(cold().comm_events_python())
    return {
        "params": dict(PARAMS),
        "mesh": "x".join(str(d) for d in MESH),
        "events": events,
        "execute_python_s": t_py,
        "execute_vectorized_s": t_vec,
        "execute_speedup": t_py / t_vec,
        "execute_vectorized_warm_s": t_warm,
        "execute_warm_speedup": t_py / t_warm,
        "comm_events_python_s": t_events_py,
        "comm_events_vectorized_s": t_events_vec,
        "comm_events_speedup": t_events_py / t_events_vec,
        "total_time": vec_report.total_time,
        "total_messages": vec_report.total_messages,
        "total_volume": vec_report.total_volume,
    }


def test_execute_speedup(measurements):
    r = measurements
    print_table(
        "Runtime exec — per-element python vs vectorized",
        ["what", "events", "python (s)", "vectorized (s)", "speedup"],
        [
            [
                "execute (cold)", r["events"], r["execute_python_s"],
                r["execute_vectorized_s"], r["execute_speedup"],
            ],
            [
                "execute (warm)", r["events"], r["execute_python_s"],
                r["execute_vectorized_warm_s"], r["execute_warm_speedup"],
            ],
            [
                "comm_events", r["events"], r["comm_events_python_s"],
                r["comm_events_vectorized_s"], r["comm_events_speedup"],
            ],
        ],
    )
    assert r["events"] >= 20_000  # the reference workload is non-trivial
    check_speedup_floor(
        r["execute_speedup"], EXEC_TARGET, "runtime executor"
    )


def test_seed_scenarios_bit_identical():
    """Both executors agree exactly on the paper's example nests, with
    and without hardware collectives."""
    cm5 = CM5Model()
    cases = [
        (motivating_example(), {"N": 3, "M": 3}),
        (platonoff_example(), {"n": 3}),
    ]
    for nest, params in cases:
        compiled = compile_nest(nest, m=2, params=params)
        for mesh in ((2, 2), (4, 4)):
            machine = ParagonModel(*mesh)
            prog = compiled.program(machine, params)
            assert execute(prog, machine) == execute_python(prog, machine)
            assert execute(prog, machine, collectives=cm5) == execute_python(
                prog, machine, collectives=cm5
            )
            assert prog.comm_events() == prog.comm_events_python()


def test_generated_corpus_bit_identical():
    """A slice of the campaign generator corpus prices identically."""
    machine = ParagonModel(2, 2)
    for wl in generate_workloads(seed=3, count=6):
        nest = wl.resolve()
        compiled = compile_nest(
            nest, m=2, params=dict(wl.params), name=wl.name
        )
        prog = compiled.program(machine, dict(wl.params))
        assert execute(prog, machine) == execute_python(prog, machine), wl.name


def test_record_runtime_exec(measurements):
    path = record_bench(
        "runtime_exec",
        {
            "workload": "motivating_example",
            "targets": {"execute_speedup": EXEC_TARGET},
            "reference": measurements,
        },
    )
    assert path.endswith("BENCH_runtime_exec.json")
