"""Section 5.2.1 — exhaustive decomposition coverage.

Paper: "an exhaustive search shows that every 2x2 matrix T with
det T = 1 and whose coefficients are all lower than or equal to 5 in
absolute value is equal to the product of 2, 3 or 4 elementary
matrices" (identity and single factors aside).  We re-run that search
with the analytic decomposition rules and tabulate the factor-count
histogram; the similarity remark is exercised by checking the
sufficient condition coincides with 3-factor decomposability.
"""

import pytest

from repro.decomp import (
    decompose_2x2,
    decompose_three,
    enumerate_det1,
    similar_to_two_factors_sufficient,
    verify_factors,
)

from _harness import print_table


def coverage(bound=5):
    hist = {0: 0, 1: 0, 2: 0, 3: 0, 4: 0}
    failures = 0
    total = 0
    for t in enumerate_det1(bound):
        total += 1
        factors = decompose_2x2(t)
        if factors is None:
            failures += 1
            continue
        assert verify_factors(t, factors)
        hist[len(factors)] += 1
    return total, hist, failures


def test_sec52_exhaustive_coverage(benchmark):
    total, hist, failures = benchmark(coverage)
    print_table(
        "Section 5.2.1 — factor-count histogram, det=1, |coeff| <= 5",
        ["total", "0", "1", "2", "3", "4", "undecomposable<=4"],
        [[total, hist[0], hist[1], hist[2], hist[3], hist[4], failures]],
    )
    assert failures == 0, "the paper's exhaustive claim must hold"
    assert hist[4] > 0, "some matrices genuinely need four factors"
    assert total == 308  # |SL2(Z) ∩ [-5,5]^4| — verified count


def test_sec52_similarity_matches_three_factor_condition(benchmark):
    """The sufficient similarity condition is the same divisibility as
    the 3-factor decomposition: they succeed on the same inputs."""

    def compare(bound=4):
        agree = 0
        total = 0
        for t in enumerate_det1(bound):
            a, b = t[0, 0], t[0, 1]
            c, d = t[1, 0], t[1, 1]
            if t.is_identity():
                continue
            total += 1
            sim = similar_to_two_factors_sufficient(t)
            three = decompose_three(t)
            cond = (c != 0 and (a - 1) % c == 0) or (
                b != 0 and (d - 1) % b == 0
            )
            if (sim is not None) == cond:
                agree += 1
        return agree, total

    agree, total = benchmark(compare)
    assert agree == total
