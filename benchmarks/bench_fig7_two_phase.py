"""Figure 7 — the two-phase grouped mapping for ``T = L(2) . U(3)``.

Paper: a 10x6 grid of virtual processors is mapped onto a smaller
physical grid with the grouped partition in both dimensions (stride 3
for the U phase along rows, stride 2 for the L phase along columns);
the two communications are performed one after the other, each
axis-parallel and class-local.
"""

import pytest

from repro.decomp import L, U, verify_factors
from repro.distribution import (
    BlockDistribution,
    Distribution2D,
    GroupedDistribution,
)
from repro.linalg import IntMat
from repro.machine import ParagonModel, decomposed_phases

from _harness import print_table

T = IntMat([[1, 3], [2, 7]])
FACTORS = [L(2), U(3)]


def test_fig7_factorization(benchmark):
    ok = benchmark(lambda: verify_factors(T, FACTORS))
    assert ok
    # i' = i + 3 j ; then j'' = j' + 2 i' — the paper's two maps
    assert (U(3) @ IntMat.col([1, 1])) == IntMat.col([4, 1])
    assert (L(2) @ IntMat.col([4, 1])) == IntMat.col([4, 9])
    assert (T @ IntMat.col([1, 1])) == IntMat.col([4, 9])


def test_fig7_two_phase_execution(benchmark):
    """Both phases stay axis-parallel on the grouped layout and the
    two-phase schedule beats the direct general pattern (the paper's
    10x6 virtual grid)."""
    n1, n2 = 10, 6
    machine = ParagonModel(3, 2)
    grouped = Distribution2D(
        GroupedDistribution(n1, 3, k=3),  # rows move by U(3)'s stride
        GroupedDistribution(n2, 2, k=2),  # cols move by L(2)'s stride
    )
    block = Distribution2D(BlockDistribution(n1, 3), BlockDistribution(n2, 2))

    def price():
        return {
            "grouped": machine.time_decomposed(grouped, FACTORS, size=4),
            "block": machine.time_decomposed(block, FACTORS, size=4),
            "direct": machine.time_general(grouped, T, size=4),
        }

    times = benchmark(price)
    print_table(
        "Figure 7 — two-phase execution of T = L(2)U(3) (10x6 on 3x2)",
        ["schedule", "time"],
        [[k, v] for k, v in times.items()],
    )
    assert times["grouped"] < times["direct"]
    assert times["grouped"] <= times["block"]


def test_fig7_matched_stride_fully_local(benchmark):
    """When the grid sizes align classes with physical blocks, the
    grouped partition makes the elementary phases entirely local —
    the limit case of the paper's construction."""
    machine = ParagonModel(3, 2)
    grouped = Distribution2D(
        GroupedDistribution(12, 3, k=3), GroupedDistribution(12, 2, k=2)
    )
    t = benchmark(lambda: machine.time_decomposed(grouped, FACTORS, size=4))
    assert t == 0.0
