"""Figures 4 and 5 — total versus partial broadcast geometry.

Paper: with ``p`` the dimension of ``ker θ ∩ ker F_a \\ ker M_S``, the
broadcast is total when ``p = m``, partial when ``1 <= p < m`` and
hidden when ``p = 0``; partial broadcasts must run along grid axes.
We sweep kernel dimensions and verify the classification matches, and
price the three cases on the mesh model (a total broadcast reaches the
whole grid, a partial one a single row).
"""

import pytest

from repro.linalg import IntMat
from repro.machine import (
    Mesh2D,
    ParagonModel,
    broadcast_tree_phases,
    partial_broadcast_row_phases,
)
from repro.macrocomm import Extent, detect_broadcast

from _harness import print_table

ZERO4 = IntMat.zeros(1, 4)


def classify_cases():
    cases = []
    # p = 2 on a 2-D grid: total
    f_total = IntMat([[1, 0, 0, 0], [0, 1, 0, 0]])
    ms = IntMat([[0, 0, 1, 0], [0, 0, 0, 1]])
    cases.append(("total", detect_broadcast(ZERO4, f_total, ms)))
    # p = 1: partial
    f_partial = IntMat([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0]])
    cases.append(("partial", detect_broadcast(ZERO4, f_partial, ms)))
    # kernel fully hidden by the mapping
    ms_hide = IntMat([[1, 0, 0, 0], [0, 1, 0, 0]])
    cases.append(("hidden", detect_broadcast(ZERO4, f_total, ms_hide)))
    return cases


def test_fig45_classification(benchmark):
    cases = benchmark(classify_cases)
    rows = [
        [name, bc.extent.value, bc.p, bc.axis_parallel]
        for name, bc in cases
    ]
    print_table(
        "Figures 4-5 — broadcast classification (m=2)",
        ["case", "extent", "p", "axis-parallel"],
        rows,
    )
    by_name = dict(cases)
    assert by_name["total"].extent is Extent.TOTAL
    assert by_name["partial"].extent is Extent.PARTIAL
    assert by_name["hidden"].extent is Extent.HIDDEN


def test_fig45_cost_total_vs_partial(benchmark):
    """A partial (row) broadcast is cheaper than a total one."""
    machine = ParagonModel(4, 4)

    def price():
        total = machine.time_phases(
            broadcast_tree_phases(machine.mesh, root=(0, 0), size=16)
        )
        partial = machine.time_phases(
            partial_broadcast_row_phases(machine.mesh, axis=1, size=16)
        )
        return total, partial

    total, partial = benchmark(price)
    assert partial < total
