"""Figure 6 — the grouped-partition layout.

Paper: 12 virtual processors per row, ``U(3)`` communication, ``P = 4``
physical processors: the virtual indices are re-ordered class-major as
``0 3 6 9 | 1 4 7 10 | 2 5 8 11`` and block-partitioned.
"""

import pytest

from repro.distribution import GroupedDistribution

from _harness import print_table


def layout():
    d = GroupedDistribution(12, 4, k=3)
    order = sorted(range(12), key=d.position)
    owners = {p: [v for v in range(12) if d.phys(v) == p] for p in range(4)}
    return d, order, owners


def test_fig6_grouped_layout(benchmark):
    d, order, owners = benchmark(layout)
    print_table(
        "Figure 6 — grouped partition (n=12, k=3, P=4)",
        ["physical proc", "virtual indices"],
        [[p, " ".join(map(str, owners[p]))] for p in range(4)],
    )
    assert order == [0, 3, 6, 9, 1, 4, 7, 10, 2, 5, 8, 11]
    assert owners[0] == [0, 3, 6]
    assert owners[3] == [5, 8, 11]


def test_fig6_classes_never_split_badly(benchmark):
    """Within each residue class, consecutive class members live on the
    same or adjacent physical processors — the property that makes the
    class-internal translations cheap."""

    def check(n=24, p=4, k=3):
        d = GroupedDistribution(n, p, k=k)
        worst = 0
        for c in range(k):
            members = [v for v in range(n) if v % k == c]
            for a, b in zip(members, members[1:]):
                worst = max(worst, abs(d.phys(b) - d.phys(a)))
        return worst

    worst = benchmark(check)
    assert worst <= 1
