"""Figure 3 — a maximum branching of the access graph.

Paper: the branching contains 5 of the 7 edges, so 5 communications
become local and 2 remain; both maximum-weight (3) edges are zeroed
out; the component has a single input vertex.
"""

import pytest

from repro.alignment import (
    build_access_graph,
    maximum_branching,
    two_step_heuristic,
)
from repro.ir import motivating_example

from _harness import print_table


def run_branching():
    ag = build_access_graph(motivating_example(), m=2)
    chosen = maximum_branching(ag.graph)
    return ag, chosen


def test_fig3_maximum_branching(benchmark):
    ag, chosen = benchmark(run_branching)
    g = ag.graph
    rows = [
        [
            g.edge(eid).payload.ref.label,
            g.edge(eid).src.split(":")[1],
            g.edge(eid).dst.split(":")[1],
            g.edge(eid).weight,
        ]
        for eid in sorted(chosen)
    ]
    print_table(
        "Figure 3 — maximum branching (5 edges, weight 12)",
        ["access", "from", "to", "weight"],
        rows,
    )
    assert len(chosen) == 5
    assert g.total_weight(chosen) == 12
    labels = {g.edge(eid).payload.ref.label for eid in chosen}
    # both weight-3 accesses are zeroed out
    assert {"F5", "F7"} <= labels


def test_fig3_local_residual_split(benchmark):
    result = benchmark(lambda: two_step_heuristic(motivating_example(), m=2))
    assert result.alignment.local_labels == {"F1", "F2", "F4", "F5", "F7"}
    residual_graph_labels = {
        r.ref.label
        for r in result.alignment.residuals
        if r.ref.label != "F8"  # F8 is outside the graph
    }
    assert residual_graph_labels == {"F3", "F6"}
