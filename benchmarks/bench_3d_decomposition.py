"""Extension — the m = 3 case (Cray T3D) of Section 5.

The paper states the elementary-matrix decomposition "can be obviously
extended to higher dimensions" and singles out 3-D machines.  This
benchmark decomposes a 3x3 determinant-1 data-flow matrix into unirow
factors (each moving data parallel to one axis of the cube) and prices
direct vs decomposed execution on the T3D model.
"""

import pytest

from repro.decomp import unirow_decomposition, verify_factors
from repro.distribution import CyclicDistribution
from repro.linalg import IntMat
from repro.machine import T3DModel

from _harness import print_table

T3 = IntMat([[1, 1, 0], [1, 2, 1], [0, 1, 2]])  # det 1
N = 12
P = 2
SIZE = 4


def compute():
    factors = unirow_decomposition(T3)
    machine = T3DModel(P, P, P)
    dists = tuple(CyclicDistribution(N, P) for _ in range(3))
    direct = machine.time_general(dists, T3, size=SIZE)
    split = machine.time_decomposed(dists, factors, size=SIZE)
    return factors, direct, split


def test_3d_decomposition(benchmark):
    factors, direct, split = benchmark(compute)
    assert verify_factors(T3, factors)
    print_table(
        f"m = 3 extension — T={T3.tolist()} on a {P}x{P}x{P} T3D mesh",
        ["phases", "direct", "decomposed", "speedup"],
        [[len(factors), direct, split, direct / split]],
    )
    assert split < direct
    # every factor is axis-parallel (identity except one row)
    from repro.decomp import is_unirow

    assert all(is_unirow(f) for f in factors)
