"""Ablation A3 — decomposition strategies on random det-1 matrices.

Compares (a) direct analytic decomposition (<= 4 elementary factors),
(b) similarity-first (spend the unimodular freedom to reach a 2-factor
product when possible) and (c) the unirow fallback, by the number of
axis-parallel phases each needs — fewer phases means fewer
communication rounds.
"""

import pytest

from repro.decomp import (
    decompose_2x2,
    decompose_dataflow,
    enumerate_det1,
    unirow_decomposition,
)

from _harness import print_table


def strategies(bound=4):
    stats = {"direct": 0, "similarity": 0, "unirow": 0}
    phase_sum = {"direct_only": 0, "dispatcher": 0, "unirow_only": 0}
    count = 0
    for t in enumerate_det1(bound):
        if t.is_identity():
            continue
        count += 1
        direct = decompose_2x2(t)
        plan = decompose_dataflow(t)
        uni = unirow_decomposition(t)
        stats[plan.strategy] = stats.get(plan.strategy, 0) + 1
        phase_sum["direct_only"] += len(direct) if direct is not None else 99
        phase_sum["dispatcher"] += plan.num_phases
        phase_sum["unirow_only"] += len(uni)
    return count, stats, phase_sum


def test_a3_strategy_mix(benchmark):
    count, stats, phases = benchmark(strategies)
    print_table(
        "A3 — dispatcher strategy mix on det-1 matrices, |coeff| <= 4",
        ["matrices", "direct", "similarity", "search", "unirow"],
        [[
            count,
            stats.get("direct", 0),
            stats.get("similarity", 0),
            stats.get("search", 0),
            stats.get("unirow", 0),
        ]],
    )
    print_table(
        "A3 — total phases by strategy",
        ["direct-only", "dispatcher (with similarity)", "unirow-only"],
        [[phases["direct_only"], phases["dispatcher"], phases["unirow_only"]]],
    )
    # the dispatcher (similarity allowed) never needs more phases than
    # the pure direct analytic route
    assert phases["dispatcher"] <= phases["direct_only"]
    # similarity actually fires on a meaningful fraction
    assert stats.get("similarity", 0) > 0


def test_a3_all_plans_small(benchmark):
    def worst_case(bound=4):
        worst = 0
        for t in enumerate_det1(bound):
            plan = decompose_dataflow(t)
            worst = max(worst, plan.num_phases)
        return worst

    worst = benchmark(worst_case)
    assert worst <= 4, "no plan should exceed four axis-parallel phases"
