#!/usr/bin/env python3
"""Run every ``bench_*.py`` non-interactively and track the results.

CI / per-PR entry point::

    python benchmarks/run_all.py            # fast: shape claims only
    python benchmarks/run_all.py --timed    # full pytest-benchmark timing
    python benchmarks/run_all.py --match fig  # subset by filename substring
    python benchmarks/run_all.py --profile  # cProfile hotspots -> BENCH_profile.json

Each benchmark file runs in its own pytest subprocess (``PYTHONPATH``
is set up automatically, so this works from a clean checkout).  Shape
claims — the asserts inside the bench tests about who wins, orderings
and speedup floors — always run; ``--timed`` additionally lets
pytest-benchmark do its calibrated timing rounds instead of a single
pass.  Benchmarks that call ``record_bench`` refresh their
``BENCH_<name>.json`` artifacts as they go, and a ``BENCH_run_all.json``
summary (per-file status and wall time) is always written.

Exit status is nonzero iff any benchmark fails, so a shape-claim or
speedup regression fails the pipeline.

Registered subsystem gates (beyond the paper artefacts):

* ``bench_perf_core.py`` — vectorized mesh core speedups (PERFORMANCE.md);
* ``bench_campaign_throughput.py`` — the campaign subsystem's default
  grid must complete with every task ok and zero error/timeout records,
  resume must be a no-op on a completed checkpoint, and the measured
  nests-compiled-per-second lands in ``BENCH_campaign.json`` (section
  ``grid_2d``); its ``cold_compile`` family additionally gates the
  cold-start path in strict mode: a cold run against a warm
  ``REPRO_CAMPAIGN_COMPILE_DIR`` disk cache must reach >= 200 tasks/s
  and the integer Fourier-Motzkin kernel must hold a >= 3x speedup
  (bit-identical verdicts) over the ``Fraction`` baseline on the
  systems the reference compiles actually run;
* ``bench_mesh3d_e2e.py`` — the same gate for the m = 3 path: a small
  campaign grid against ``t3d`` on a ``2x2x2`` cube, recorded under
  ``grid_3d`` in the same artifact;
* ``bench_runtime_exec.py`` — vectorized runtime executor vs the
  per-element Python baseline (bit-identity + >= 5x floor), recorded in
  ``BENCH_runtime_exec.json``;
* ``bench_legality.py`` — vectorized schedule-legality checker vs the
  per-element Python baseline (bit-identity on seed + 50 generated
  workloads always; >= 5x floor in strict mode), recorded in
  ``BENCH_legality.json``;
* ``bench_triangular_campaign.py`` — the triangular-domain campaign
  gate (LU/Cholesky/back-substitution corpus + generated triangular
  nests against ``paragon`` 4x4 and ``t3d`` 2x2x2, zero error records),
  recorded under ``grid_triangular`` in ``BENCH_campaign.json``;
* ``bench_chaos.py`` — the robustness gate: a campaign with injected
  worker kills, SIGALRM-proof hangs and transient failures (the
  ``REPRO_FAULT_INJECT`` harness) must complete under the ``resilient``
  executor with every fault as a typed record, then converge
  bit-identically to the unfaulted run on a ``retry_failures`` resume
  (and self-heal in-run with ``retries=2``); measurements in
  ``BENCH_chaos.json``;
* ``bench_trace_overhead.py`` — the observability gate: tracing
  disabled (the default) must cost <= 5% of the recorded ``grid_2d``
  throughput (a disabled ``span()`` is pinned to nanoseconds), and a
  traced run's per-stage totals (compile + price + executor overhead)
  must sum exactly to the summed task wall time with the instrumented
  stages covering >= 50% of it; the stage shares land in
  ``BENCH_trace.json`` (section ``grid_2d``).

``--profile`` runs the reference scenarios (a *cold* inline campaign
grid + the reference pricing workload) under ``cProfile`` and writes
the top cumulative-time hotspots to ``BENCH_profile.json`` — the
per-PR answer to "where do the cycles go now?".  Since the legality
fast path landed it also *asserts* that ``schedule_is_legal`` has left
the top-10 hotspot list, and since the cold-compile fast path landed
(integer FM kernel + dependence memoization) it asserts that pricing,
not the compile stage, owns the cold profile — compile cumulative time
below batched pricing and every Fraction-FM helper out of the top-10
(exit 1 if either compile-side regression ever returns).  Since the
fused segmented pricing kernels it further asserts the per-phase
pricing entry points (``_price_phase`` / ``phase_time_arrays``) stay
below ``PHASE_CALL_CEILING`` calls and ``phase_times_segmented``
actually ran — the call-count record lands in the same artifact
(``per_phase_pricing_calls`` / ``segmented_kernel_launches``).
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(BENCH_DIR), "src")

#: hotspot rows kept in BENCH_profile.json
PROFILE_TOP_N = 30

#: ceiling on per-phase pricing entry calls (`_price_phase` +
#: `phase_time_arrays`) in the reference profile — ~1,300 before the
#: fused segmented kernels, ~0 after (the slack covers exact-magnitude
#: fallbacks and custom-model duck-typing, not a path regression)
PHASE_CALL_CEILING = 48


def run_profile(top_n: int = PROFILE_TOP_N) -> int:
    """Profile the reference scenarios and record the hotspots.

    Runs (in-process, ``jobs=1`` so worker time is attributed) a small
    campaign grid — compile + price over the default workload corpus —
    and the reference pricing workload of ``bench_runtime_exec.py``,
    then writes the ``top_n`` functions by cumulative time to
    ``BENCH_profile.json``.
    """
    import cProfile
    import pstats

    sys.path.insert(0, SRC_DIR)
    from repro import compile_nest
    from repro.campaign import CampaignConfig, default_spec, run_campaign
    from repro.ir import motivating_example
    from repro.machine import ParagonModel
    from repro.runtime import execute

    import tempfile

    spec = default_spec(seed=0, nests=4, meshes=((4, 4), (2, 2)))
    tasks = spec.expand()
    compiled = compile_nest(motivating_example(), m=2)
    machine = ParagonModel(4, 4)
    params = {"N": 14, "M": 14}

    prof = cProfile.Profile()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "profile.jsonl")
        prof.enable()
        run_campaign(tasks, out, CampaignConfig(jobs=1), meta={})
        execute(compiled.program(machine, params), machine)
        prof.disable()
    wall = time.perf_counter() - t0

    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    rows = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda kv: -kv[1][3]
    ):
        fname, line, name = func
        rows.append(
            {
                "function": name,
                "file": os.path.relpath(fname, os.path.dirname(BENCH_DIR))
                if fname.startswith(os.path.dirname(BENCH_DIR))
                else fname,
                "line": line,
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
        if len(rows) >= top_n:
            break

    by_name: dict = {}
    for r in rows:
        by_name.setdefault(r["function"], r)
    compile_ct = by_name.get("_compile_for_task", {}).get("cumtime_s", 0.0)
    price_ct = by_name.get("price_group_batched", {}).get("cumtime_s", 0.0)

    # full-stats call counts (not just the top rows) for the fused
    # pricing gate: per-phase pricing entry points vs kernel launches
    def _ncalls(fn_name: str) -> int:
        return sum(
            nc
            for (_f, _l, name), (_cc, nc, *_rest) in stats.stats.items()
            if name == fn_name
        )

    per_phase_calls = _ncalls("_price_phase")
    phase_array_calls = _ncalls("phase_time_arrays")
    kernel_launches = _ncalls("phase_times_segmented")

    from _harness import record_bench

    record_bench(
        "profile",
        {
            "scenario": (
                "cold campaign default grid (4 nests + corpus, meshes "
                "4x4+2x2, jobs=1, fresh process so every compile/"
                "dependence cache starts empty) + reference pricing "
                "workload (motivating example, N=M=14, 4x4 mesh)"
            ),
            "wall_seconds": round(wall, 3),
            "top_n": top_n,
            "compile_stage_cumtime_s": compile_ct,
            "pricing_stage_cumtime_s": price_ct,
            "per_phase_pricing_calls": per_phase_calls,
            "phase_time_arrays_calls": phase_array_calls,
            "segmented_kernel_launches": kernel_launches,
            "per_phase_pricing_call_ceiling": PHASE_CALL_CEILING,
            "hotspots": rows,
        },
    )
    top = rows[:5]
    print("top cumulative hotspots:")
    for r in top:
        print(
            f"  {r['cumtime_s']:>8.3f}s  {r['function']} "
            f"({r['file']}:{r['line']})"
        )

    # the PR-5 regression gate: the legality checker's bounded witness
    # enumeration used to dominate compile time; the vectorized domain
    # path must keep it out of the top-10 hotspots
    offenders = [
        r["function"]
        for r in rows[:10]
        if r["function"] in ("schedule_is_legal", "schedule_violations")
    ]
    if offenders:
        print(
            f"FAIL: {', '.join(sorted(set(offenders)))} back in the "
            "top-10 hotspot list — the legality fast path regressed "
            "(see BENCH_profile.json)",
            file=sys.stderr,
        )
        return 1
    print("gate ok: schedule_is_legal is out of the top-10 hotspots")

    # the PR-9 regression gate: the *cold* run used to be compile-bound
    # (~0.7 s of Fraction Fourier-Motzkin to compile 16 nests).  With
    # the integer FM kernel + dependence memoization, pricing — the
    # paper-relevant work — must own the profile: the compile stage
    # stays below the batched pricer in cumulative time, and no
    # Fraction-arithmetic FM helper re-enters the top-10.  If either
    # trips, the cold-compile fast path has regressed and the artifact
    # would drift from the PERFORMANCE.md attribution prose.
    if price_ct and compile_ct >= price_ct:
        print(
            f"FAIL: compile stage ({compile_ct:.3f}s cumulative) has "
            f"overtaken batched pricing ({price_ct:.3f}s) in the cold "
            "profile — the integer FM kernel / dependence memo "
            "regressed (see BENCH_profile.json)",
            file=sys.stderr,
        )
        return 1
    fm_offenders = [
        r["function"]
        for r in rows[:10]
        if r["function"]
        in (
            "_fourier_motzkin",
            "_fourier_motzkin_fraction",
            "_test_dependence_uncached",
            "find_dependences",
        )
    ]
    if fm_offenders:
        print(
            f"FAIL: {', '.join(sorted(set(fm_offenders)))} back in the "
            "top-10 hotspot list — dependence analysis owns the cold "
            "profile again (see BENCH_profile.json)",
            file=sys.stderr,
        )
        return 1
    print(
        "gate ok: pricing owns the cold profile "
        f"(compile {compile_ct:.3f}s < pricing {price_ct:.3f}s cumulative)"
    )

    # the PR-10 regression gate: fused segmented pricing collapsed this
    # scenario's ~1,300 per-phase pricing calls (`_price_phase` +
    # `phase_time_arrays`) into a few hundred whole-label kernel
    # launches.  The per-phase entry points must stay below a small
    # constant — anything more means labels are leaking back onto the
    # per-phase path (a fallback misfire or a dropped
    # `time_phases_segmented` surface) and the cold-throughput gate in
    # bench_campaign_throughput.py is living on borrowed time.
    if per_phase_calls + phase_array_calls > PHASE_CALL_CEILING:
        print(
            f"FAIL: {per_phase_calls} _price_phase + {phase_array_calls} "
            "phase_time_arrays calls in the reference profile, above the "
            f"ceiling of {PHASE_CALL_CEILING} — fused segmented pricing "
            "has regressed to per-phase calls (see BENCH_profile.json)",
            file=sys.stderr,
        )
        return 1
    if kernel_launches == 0:
        print(
            "FAIL: phase_times_segmented never ran in the reference "
            "profile — the fused pricing path is not engaged "
            "(see BENCH_profile.json)",
            file=sys.stderr,
        )
        return 1
    print(
        "gate ok: fused pricing engaged "
        f"({kernel_launches} segmented kernel launches, "
        f"{per_phase_calls + phase_array_calls} per-phase calls <= "
        f"{PHASE_CALL_CEILING})"
    )
    return 0


def bench_files(match: str = "") -> list:
    files = sorted(
        os.path.basename(f) for f in glob.glob(os.path.join(BENCH_DIR, "bench_*.py"))
    )
    return [f for f in files if match in f]


def run_one(fname: str, timed: bool) -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "pytest", fname, "-q", "-p", "no:cacheprovider"]
    if timed:
        # timed runs are assumed quiet enough to enforce speedup floors
        env.setdefault("REPRO_PERF_STRICT", "1")
    else:
        cmd.append("--benchmark-disable")
    t0 = time.perf_counter()
    proc = subprocess.run(
        cmd, cwd=BENCH_DIR, env=env, capture_output=True, text=True
    )
    seconds = time.perf_counter() - t0
    tail = []
    if proc.returncode:
        # stderr first: a subprocess that dies before pytest reporting
        # (usage error, missing plugin) only says why there
        tail = proc.stderr.strip().splitlines()[-10:]
        tail += proc.stdout.strip().splitlines()[-15:]
    return {
        "file": fname,
        "returncode": proc.returncode,
        "seconds": round(seconds, 3),
        "tail": tail,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--timed",
        action="store_true",
        help="run full pytest-benchmark timing rounds (slower)",
    )
    parser.add_argument(
        "--match",
        default="",
        help="only run bench files whose name contains this substring",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the reference scenarios with cProfile and write "
        "the top cumulative hotspots to BENCH_profile.json (skips the "
        "benchmark suite)",
    )
    args = parser.parse_args(argv)

    if args.profile:
        sys.path.insert(0, BENCH_DIR)
        return run_profile()

    files = bench_files(args.match)
    if not files:
        print(f"no bench_*.py files match {args.match!r}", file=sys.stderr)
        return 2

    results = []
    failed = 0
    for fname in files:
        res = run_one(fname, args.timed)
        results.append(res)
        status = "ok" if res["returncode"] == 0 else f"FAIL (rc={res['returncode']})"
        print(f"  {fname:<42} {res['seconds']:>8.2f}s  {status}", flush=True)
        if res["returncode"]:
            failed += 1
            for line in res["tail"]:
                print(f"    | {line}")

    sys.path.insert(0, BENCH_DIR)
    from _harness import record_bench

    record_bench(
        "run_all",
        {
            "timed": args.timed,
            "match": args.match,
            "total": len(results),
            "failed": failed,
            "results": [
                {k: r[k] for k in ("file", "returncode", "seconds")} for r in results
            ],
        },
    )
    print(f"\n{len(results) - failed}/{len(results)} benchmarks ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
