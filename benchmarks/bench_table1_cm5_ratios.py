"""Table 1 — CM-5 execution-time ratios of the four data-movement
classes: reduction, broadcast, translation, general communication.

Paper's qualitative content (absolute numbers lost to OCR; the prose
says the CM-5 has hardware facilities for reductions/broadcasts and
that translations are much more efficient than general affine
communications): reduction ≈ broadcast ≪ translation ≪ general, with
roughly an order of magnitude between broadcast and general.

We regenerate the row from the structural CM-5 model (control-network
tree collectives, software-overhead translations, per-element software
addressing + fat-tree contention for general patterns).
"""

import pytest

from repro.machine import CM5Model

from _harness import print_table


def compute_row(size: int = 100):
    cm5 = CM5Model(nodes=32)
    return {
        "reduction": cm5.reduction_time(size),
        "broadcast": cm5.broadcast_time(size),
        "translation": cm5.translation_time(size),
        "general": cm5.general_time(size),
    }


def test_table1_cm5_ratios(benchmark):
    row = benchmark(compute_row)
    base = row["reduction"]
    ratios = {k: v / base for k, v in row.items()}
    print_table(
        "Table 1 — data-movement time ratios on the CM-5 model "
        "(normalised to reduction)",
        ["reduction", "broadcast", "translation", "general"],
        [[ratios["reduction"], ratios["broadcast"], ratios["translation"], ratios["general"]]],
    )
    # shape claims
    assert ratios["reduction"] == 1.0
    assert ratios["broadcast"] < 1.5, "broadcast must be ~ the reduction"
    assert 2 < ratios["translation"] < 10, "translation clearly costlier"
    assert ratios["general"] > 2.5 * ratios["translation"], (
        "general communication must dominate translations"
    )
    assert ratios["general"] > 10, "order-of-magnitude gap vs collectives"


def test_table1_stable_across_sizes(benchmark):
    def sweep():
        return [compute_row(size) for size in (50, 100, 400, 1000)]

    rows = benchmark(sweep)
    for row in rows:
        assert (
            row["reduction"]
            <= row["broadcast"]
            < row["translation"]
            < row["general"]
        )
