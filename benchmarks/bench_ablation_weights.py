"""Ablation A1 — integer rank weights vs unit weights in the maximum
branching, and Edmonds vs the Feautrier-style greedy baseline.

The paper weights access-graph edges by the rank of the access matrix
so "communications inducing the largest traffic are zeroed out in
priority".  This ablation measures, over a family of random affine
nests, (a) the localized traffic with and without rank weights, and
(b) the greedy baseline's gap to the optimal branching.
"""

import random

import pytest

from repro.alignment import align, build_access_graph, maximum_branching
from repro.baselines import feautrier_align, greedy_edge_selection
from repro.ir import NestBuilder
from repro.linalg import IntMat, rank

from _harness import print_table


def random_nest(rng: random.Random, idx: int):
    """A random 2-statement affine nest over three arrays."""
    b = NestBuilder(f"rand{idx}")
    dims = {"x": rng.choice([2, 3]), "y": rng.choice([2, 3]), "z": 2}
    for name, d in dims.items():
        b.array(name, d)

    def rand_access(arr, depth):
        qd = dims[arr]
        for _ in range(40):
            f = IntMat(
                [
                    [rng.randint(-1, 1) for _ in range(depth)]
                    for _ in range(qd)
                ]
            )
            if rank(f) == min(qd, depth):
                return (arr, f.tolist(), None)
        ident = [[1 if i == j else 0 for j in range(depth)] for i in range(qd)]
        return (arr, ident, None)

    loops2 = [("i", 0, "N"), ("j", 0, "N")]
    loops3 = loops2 + [("k", 0, "N")]
    b.statement(
        "S1",
        loops2,
        writes=[rand_access("x", 2)],
        reads=[rand_access("y", 2), rand_access("z", 2)],
    )
    b.statement(
        "S2",
        loops3,
        writes=[rand_access("y", 3)],
        reads=[rand_access("x", 3), rand_access("z", 3)],
    )
    return b.build()


def localized_traffic(nest, m, use_rank_weights):
    """Sum of rank weights of the accesses made local by step 1."""
    al = align(nest, m, use_rank_weights=use_rank_weights)
    total = 0
    for stmt, acc in nest.all_accesses():
        if (acc.label or "") in al.local_labels:
            total += acc.rank
    return total


def test_a1_rank_weights_help(benchmark):
    def sweep():
        rng = random.Random(20260612)
        with_w, without_w = 0, 0
        for idx in range(30):
            nest = random_nest(rng, idx)
            with_w += localized_traffic(nest, 2, True)
            without_w += localized_traffic(nest, 2, False)
        return with_w, without_w

    with_w, without_w = benchmark(sweep)
    print_table(
        "A1 — localized traffic (sum of ranks) over 30 random nests",
        ["rank weights", "unit weights"],
        [[with_w, without_w]],
    )
    assert with_w >= without_w, "rank weights must not lose traffic"


def test_a1_edmonds_vs_greedy(benchmark):
    def sweep():
        rng = random.Random(42)
        edmonds_total, greedy_total = 0, 0
        wins = 0
        for idx in range(30):
            nest = random_nest(rng, idx)
            g = build_access_graph(nest, 2).graph
            e = g.total_weight(maximum_branching(g))
            gr = g.total_weight(greedy_edge_selection(g))
            edmonds_total += e
            greedy_total += gr
            if e > gr:
                wins += 1
        return edmonds_total, greedy_total, wins

    e_total, g_total, wins = benchmark(sweep)
    print_table(
        "A1 — branching weight: Edmonds vs greedy (30 random nests)",
        ["edmonds", "greedy", "strict wins"],
        [[e_total, g_total, wins]],
    )
    assert e_total >= g_total, "Edmonds is optimal by construction"
