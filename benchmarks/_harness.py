"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's experiment index): it computes the same rows/series
the paper reports, prints them (run with ``-s`` to see the output, or
read ``EXPERIMENTS.md`` for the recorded values), asserts the *shape*
claims (who wins, orderings, rough factors) and times the computation
under ``pytest-benchmark``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Iterable, Mapping, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Format and print an ASCII table; returns the text."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text


def _fmt(x) -> str:
    if isinstance(x, float):
        return f"{x:.2f}"
    return str(x)


def series(label: str, xs: Sequence, ys: Sequence[float]) -> None:
    """Print one figure series as x/y pairs."""
    pairs = "  ".join(f"({x}, {y:.2f})" for x, y in zip(xs, ys))
    print(f"  {label}: {pairs}")


def previous_stat(name: str, section: str, key: str) -> float:
    """A numeric stat from the ``BENCH_<name>.json`` currently on disk
    (0.0 when the artifact, section or key does not exist yet) — the
    trend-delta baseline the campaign gates record against."""
    path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), f"BENCH_{name}.json"
    )
    try:
        with open(path) as fh:
            return float(json.load(fh)[section][key])
    except (OSError, ValueError, KeyError, TypeError):
        return 0.0


def mean_residual_ratio(rows) -> float:
    """Mean per-group Feautrier residual ratio of ``summarize_results``
    rows (0.0 when no group has a ratio) — the campaign quality trend
    recorded next to the throughput trend."""
    ratios = [
        row["residual_ratio"] for row in rows
        if row.get("residual_ratio") is not None
    ]
    return sum(ratios) / len(ratios) if ratios else 0.0


def record_bench(name: str, stats: Mapping, section: str = "") -> str:
    """Persist one benchmark's measurements as ``BENCH_<name>.json``.

    The file lands next to the ``bench_*.py`` sources so the perf
    trajectory is tracked per-PR (see PERFORMANCE.md for the schema
    conventions: wall times in seconds, sizes as plain counts, cache
    stats as the ``stats()`` dicts of the caches involved).  A
    ``python``/``platform`` stamp is added so recorded numbers can be
    interpreted later.  Returns the path written.

    ``section`` lets several bench files share one artifact: the stats
    land under that key and the other top-level sections of an existing
    file are preserved (``BENCH_campaign.json`` holds the 2-D and the
    3-D campaign gates side by side this way).  Without ``section`` the
    file is replaced wholesale.
    """
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), f"BENCH_{name}.json")
    if section:
        payload = {}
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    prior = json.load(fh)
                if isinstance(prior, dict):
                    payload = prior
            except ValueError:
                pass  # corrupt artifact: rebuild from this section
        payload[section] = dict(stats)
    else:
        payload = dict(stats)
    payload["environment"] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    print(f"\n  [record_bench] wrote {path}")
    return path
