"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's experiment index): it computes the same rows/series
the paper reports, prints them (run with ``-s`` to see the output, or
read ``EXPERIMENTS.md`` for the recorded values), asserts the *shape*
claims (who wins, orderings, rough factors) and times the computation
under ``pytest-benchmark``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Format and print an ASCII table; returns the text."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text


def _fmt(x) -> str:
    if isinstance(x, float):
        return f"{x:.2f}"
    return str(x)


def series(label: str, xs: Sequence, ys: Sequence[float]) -> None:
    """Print one figure series as x/y pairs."""
    pairs = "  ".join(f"({x}, {y:.2f})" for x, y in zip(xs, ys))
    print(f"  {label}: {pairs}")
