"""Sections 2.3 and 3 — the worked mapping of the motivating example.

Paper's summary: "we finally obtain on the access graph 5 local
communications, one broadcast and one residual communication that can
be decomposed into two elementary communications"; the rank-deficient
access also becomes an axis-parallel broadcast under the same
unimodular rotation (the footnote's lucky coincidence).
"""

import pytest

from repro.alignment import two_step_heuristic, var_node
from repro.ir import motivating_example
from repro.linalg import IntMat
from repro.machine import CM5Model, ParagonModel
from repro.macrocomm import Extent, MacroKind
from repro.runtime import Folding, MappedProgram, execute

from _harness import print_table


def run():
    return two_step_heuristic(
        motivating_example(),
        m=2,
        root_allocations={var_node("a"): IntMat.identity(2)},
    )


def test_motivating_example_outcome(benchmark):
    result = benchmark(run)
    rows = []
    for o in result.optimized:
        desc = o.classification
        if o.macro is not None and o.classification == "macro":
            desc += f" ({o.macro.kind.value}/{o.macro.extent.value})"
        if o.decomposition is not None:
            desc += f" ({o.decomposition.num_phases} phases)"
        rows.append([o.label, desc])
    print_table(
        "Sections 2.3/3 — residual optimization outcome",
        ["access", "result"],
        [["F1/F2/F4/F5/F7", "local (5 communications)"]] + rows,
    )
    counts = result.counts()
    assert counts["local"] == 5
    f6 = result.residual_by_label("F6")
    assert f6.classification == "macro"
    assert f6.macro.kind is MacroKind.BROADCAST
    assert f6.macro.extent is Extent.PARTIAL and f6.macro.axis_parallel
    f3 = result.residual_by_label("F3")
    assert f3.classification == "decomposed"
    assert f3.decomposition.num_phases == 2
    f8 = result.residual_by_label("F8")
    assert f8.macro is not None and f8.macro.axis_parallel


def test_motivating_example_execution_cost(benchmark):
    """End-to-end costing: the optimized mapping on the mesh, with
    collective hardware for the broadcasts."""
    result = run()
    machine = ParagonModel(4, 4)
    folding = Folding(mesh=machine.mesh, extent=12)
    program = MappedProgram(
        mapping=result, folding=folding, params={"N": 5, "M": 5}
    )

    rep = benchmark(lambda: execute(program, machine, collectives=CM5Model()))
    assert rep.stats("F2").time == 0.0
    assert rep.stats("F6").macro_ops > 0
    assert rep.total_time > 0
