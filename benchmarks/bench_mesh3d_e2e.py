"""End-to-end m = 3 campaign gate: the T3D backend through the whole
pipeline.

Not a paper artefact — the 3-D twin of the campaign shape gate in
``bench_campaign_throughput.py``: a small m = 3 grid (generated
workloads + the named corpus on a ``2x2x2`` cube against the ``t3d``
registry machine) must complete with **all tasks ok and zero
error/timeout records**, resume must be a no-op on a completed run, and
the measured nests-compiled-per-second lands in ``BENCH_campaign.json``
under the ``grid_3d`` section, alongside the 2-D entry.
"""

import json
import os
import time

from repro.campaign import (
    CampaignConfig,
    RunStore,
    default_spec,
    run_campaign,
    summarize_results,
)

SEED = 0
NESTS = 4
JOBS = 2
MESH = (2, 2, 2)


def _previous_tasks_per_second() -> float:
    """The ``grid_3d`` throughput currently on disk (for the delta)."""
    path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_campaign.json"
    )
    try:
        with open(path) as fh:
            return float(json.load(fh)["grid_3d"]["tasks_per_second"])
    except (OSError, ValueError, KeyError, TypeError):
        return 0.0


def _grid():
    spec = default_spec(
        seed=SEED,
        nests=NESTS,
        machines=("t3d",),
        meshes=(MESH,),
        ms=(3,),
    )
    return spec, spec.expand()


def test_mesh3d_campaign_gate(tmp_path, benchmark):
    """Shape gate + throughput measurement on the m = 3 grid."""
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    out = str(tmp_path / "bench3d.jsonl")

    t0 = time.perf_counter()
    outcome = run_campaign(tasks, out, CampaignConfig(jobs=JOBS), meta=meta)
    wall = time.perf_counter() - t0

    benchmark(
        lambda: run_campaign(
            tasks, out, CampaignConfig(jobs=JOBS), meta=meta
        )
    )

    # --- the gate: every task completes, zero errors/timeouts ---------
    assert outcome.ran == len(tasks)
    assert outcome.ok == len(tasks)
    assert outcome.errors == 0
    assert outcome.timeouts == 0

    # resume on a completed checkpoint is a no-op
    again = run_campaign(tasks, out, resume=True, meta=meta)
    assert again.ran == 0 and again.prior == len(tasks)

    _, results = RunStore(out).load()
    rows = summarize_results(results.values())
    assert all(row["errors"] == 0 and row["timeouts"] == 0 for row in rows)
    assert all(row["machine"] == "t3d" and row["m"] == 3 for row in rows)
    assert all(row["mesh"] == "2x2x2" for row in rows)
    # the two-step heuristic should never *lose* to greedy step 1
    assert all(
        row["residuals"] <= row["baseline_residuals"] for row in rows
    )

    compile_seconds = sum(r.seconds for r in results.values())
    prev = _previous_tasks_per_second()
    from _harness import record_bench

    record_bench(
        "campaign",
        {
            "seed": SEED,
            "generated_nests": NESTS,
            "machine": "t3d",
            "mesh": "x".join(str(d) for d in MESH),
            "m": 3,
            "tasks": len(tasks),
            "jobs": JOBS,
            "wall_seconds": round(wall, 3),
            "task_compile_seconds": round(compile_seconds, 3),
            "tasks_per_second": round(len(tasks) / wall, 2),
            "nests_compiled_per_second": round(len(tasks) / wall, 2),
            "unique_compiles": outcome.compile_cache_misses,
            "compile_cache": {
                "hits": outcome.compile_cache_hits,
                "misses": outcome.compile_cache_misses,
            },
            "tasks_per_second_prev": prev,
            "tasks_per_second_delta": round(len(tasks) / wall - prev, 2),
            "summary_rows": rows,
        },
        section="grid_3d",
    )
