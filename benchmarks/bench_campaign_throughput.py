"""Campaign throughput: nests compiled + priced per second.

Not a paper artefact — a subsystem health benchmark for
:mod:`repro.campaign`: the gate grid (generated workloads + the named
corpus against Paragon and CM-5 models on two mesh sizes — a
**multi-cell** grid with 4 machine x mesh cells per nest) must complete
with **all tasks ok and zero error records** (the CI shape gate),
resume must be a no-op on a completed run, and the measured throughput
lands in ``BENCH_campaign.json`` so the compile-rate trajectory is
tracked per PR.

Since the compile-once/price-many split, the recorded section also
carries the compile-cache hit/miss counts (one compile per nest, K - 1
hits for the other cells) and a ``tasks_per_second_delta`` against the
previous ``BENCH_campaign.json`` on disk.

Since batched whole-group pricing, the perf floor moved to where the
optimization lives: the polyhedral compile of PR 5 made the cold run
compile-bound (~0.7 s for 16 nests caps the cold grid near 100/s no
matter how fast pricing gets), so the cold pool run keeps only the
shape gate and the trend stats, while a **steady-state** inline run —
compile LRU and baseline-price memo warm, i.e. the price-bound
compile-once/price-many regime the campaign layer is built around —
must clear ``max(SPEEDUP_FLOOR x 36.04, TASKS_PER_SECOND_FLOOR)`` =
200 tasks/s.  Enforced under ``REPRO_PERF_STRICT=1`` (``run_all.py
--timed``), warned otherwise, same policy as ``bench_perf_core.py``.

``test_batched_vs_per_cell_speedup`` additionally measures the batched
whole-group pricing path against the per-task loop on a rank-weights
swept grid (where the baseline price memo also gets to hit), asserts
the two paths write identical deterministic records, and records the
speedup and baseline-cache hit rate under ``batched_pricing``.
"""

import json
import os
import time
import warnings

import pytest

from repro.campaign import (
    CampaignConfig,
    RunStore,
    clear_baseline_cache,
    clear_compile_cache,
    default_spec,
    run_campaign,
    set_baseline_cache_size,
    set_group_pricing,
    summarize_results,
)
from repro.campaign.sweep import canonical_json

SEED = 0
NESTS = 8
JOBS = 2
#: two meshes x two machines = 4 price cells per compiled nest
MESHES = ((4, 4), (2, 2))

#: tasks/s of the recompile-every-cell runner on this box (the
#: ``grid_2d`` value recorded before the compile-once/price-many +
#: vectorized-executor work) and the floor the new runner must clear
BASELINE_TASKS_PER_SECOND = 36.04
SPEEDUP_FLOOR = 3.0
#: absolute steady-state floor since batched whole-group pricing landed
TASKS_PER_SECOND_FLOOR = 200.0
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"


def _grid():
    spec = default_spec(seed=SEED, nests=NESTS, meshes=MESHES)
    return spec, spec.expand()


def _previous(key: str) -> float:
    """A ``grid_2d`` stat currently on disk (for the trend deltas)."""
    from _harness import previous_stat

    return previous_stat("campaign", "grid_2d", key)


def test_campaign_default_grid_gate(tmp_path, benchmark):
    """Shape gate + throughput measurement on the multi-cell grid."""
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    out = str(tmp_path / "bench.jsonl")
    nests = len({t.compile_key for t in tasks})
    assert len(tasks) == 4 * nests  # 4 cells per compiled nest

    # three measured runs, median wall recorded: pool workers compile
    # cold every run (the LRU lives in the short-lived workers), and a
    # single sample is too noisy for the 5% cross-artifact tolerance
    # bench_trace_overhead.py applies to this number
    walls = []
    outcome = None
    for _ in range(3):
        t0 = time.perf_counter()
        o = run_campaign(tasks, out, CampaignConfig(jobs=JOBS), meta=meta)
        walls.append(time.perf_counter() - t0)
        outcome = outcome or o
    wall = sorted(walls)[1]

    benchmark(
        lambda: run_campaign(
            tasks, out, CampaignConfig(jobs=JOBS), meta=meta
        )
    )

    # --- the gate: every task completes, zero errors/timeouts ---------
    assert outcome.ran == len(tasks)
    assert outcome.ok == len(tasks)
    assert outcome.errors == 0
    assert outcome.timeouts == 0

    # compile-once/price-many: exactly one compile per nest, the other
    # K - 1 cells hit the per-worker cache (grouping makes this exact)
    assert outcome.compile_cache_misses == nests
    assert outcome.compile_cache_hits == len(tasks) - nests

    # resume on a completed checkpoint is a no-op
    again = run_campaign(tasks, out, resume=True, meta=meta)
    assert again.ran == 0 and again.prior == len(tasks)

    _, results = RunStore(out).load()
    rows = summarize_results(results.values())
    assert all(row["errors"] == 0 and row["timeouts"] == 0 for row in rows)
    # the two-step heuristic should never *lose* to greedy step 1
    assert all(
        row["residuals"] <= row["baseline_residuals"] for row in rows
    )

    tasks_per_second = len(tasks) / wall

    # steady-state: the compile LRU and the baseline-price memo are
    # process-persistent, so a repeat campaign is price-bound — the
    # regime the batched group pricing optimizes and the floor gates.
    # One inline warm-up run fills both caches, the second is measured.
    run_campaign(
        tasks, str(tmp_path / "warmup.jsonl"),
        CampaignConfig(jobs=1), meta=meta,
    )
    t0 = time.perf_counter()
    steady = run_campaign(
        tasks, str(tmp_path / "steady.jsonl"),
        CampaignConfig(jobs=1), meta=meta,
    )
    steady_wall = time.perf_counter() - t0
    assert steady.ok == len(tasks) and steady.errors == 0
    # every baseline price is a memo hit in steady state
    assert steady.baseline_cache_hits == len(tasks)
    steady_tasks_per_second = len(tasks) / steady_wall

    floor = max(
        SPEEDUP_FLOOR * BASELINE_TASKS_PER_SECOND, TASKS_PER_SECOND_FLOOR
    )
    if steady_tasks_per_second < floor:
        msg = (
            f"steady-state campaign throughput "
            f"{steady_tasks_per_second:.1f} tasks/s below the floor of "
            f"{floor:.0f}/s (max of {SPEEDUP_FLOOR}x the recompiling "
            f"baseline {BASELINE_TASKS_PER_SECOND}/s and the "
            f"batched-pricing floor {TASKS_PER_SECOND_FLOOR:.0f}/s)"
        )
        if STRICT:
            pytest.fail(msg)
        warnings.warn(msg + " (non-strict mode: recorded, not failed)")

    from _harness import mean_residual_ratio, record_bench

    # per-group Feautrier residual ratios: the scenario-quality trend
    # line recorded next to the throughput trend
    mean_ratio = mean_residual_ratio(rows)
    compile_seconds = sum(r.seconds for r in results.values())
    prev = _previous("tasks_per_second")
    prev_ratio = _previous("mean_residual_ratio")
    prev_steady = _previous("steady_state_tasks_per_second")

    # the 2-D entry of BENCH_campaign.json; bench_mesh3d_e2e.py records
    # the 3-D (t3d) grid under "grid_3d" in the same artifact
    record_bench(
        "campaign",
        {
            "seed": SEED,
            "generated_nests": NESTS,
            "meshes": ["x".join(str(d) for d in mm) for mm in MESHES],
            "tasks": len(tasks),
            "jobs": JOBS,
            "wall_seconds": round(wall, 3),
            "task_compile_seconds": round(compile_seconds, 3),
            # one task = one grid cell priced; with the compile cache a
            # nest compiles once and prices on every cell, so the two
            # rates differ by the cells-per-nest factor now
            "tasks_per_second": round(tasks_per_second, 2),
            "nests_compiled_per_second": round(tasks_per_second, 2),
            "unique_compiles": outcome.compile_cache_misses,
            "compile_cache": {
                "hits": outcome.compile_cache_hits,
                "misses": outcome.compile_cache_misses,
            },
            # no knob sweep on this grid: every (workload, machine,
            # mesh) baseline is distinct, so hits stay 0 here — the
            # sweep-shaped hit rate lands under "batched_pricing"
            "baseline_cache": {
                "hits": outcome.baseline_cache_hits,
                "misses": outcome.baseline_cache_misses,
            },
            "tasks_per_second_prev": prev,
            "tasks_per_second_delta": round(tasks_per_second - prev, 2),
            # price-bound repeat run (warm compile LRU + baseline memo):
            # the number the 200/s floor gates
            "steady_state_wall_seconds": round(steady_wall, 3),
            "steady_state_tasks_per_second": round(
                steady_tasks_per_second, 2
            ),
            "steady_state_tasks_per_second_prev": prev_steady,
            "steady_state_tasks_per_second_delta": round(
                steady_tasks_per_second - prev_steady, 2
            ),
            "steady_state_speedup_vs_recompiling_baseline": round(
                steady_tasks_per_second / BASELINE_TASKS_PER_SECOND, 2
            ),
            "tasks_per_second_floor": TASKS_PER_SECOND_FLOOR,
            "mean_residual_ratio": round(mean_ratio, 4),
            "mean_residual_ratio_prev": prev_ratio,
            "mean_residual_ratio_delta": round(mean_ratio - prev_ratio, 4),
            "baseline_tasks_per_second": BASELINE_TASKS_PER_SECOND,
            "speedup_vs_recompiling_baseline": round(
                tasks_per_second / BASELINE_TASKS_PER_SECOND, 2
            ),
            "summary_rows": rows,
        },
        section="grid_2d",
    )


def test_batched_vs_per_cell_speedup(tmp_path, benchmark):
    """Batched whole-group pricing vs the per-task loop, measured on a
    rank-weights swept grid (the shape the baseline memo exists for:
    half the baselines are pure re-prices).  The two paths must write
    identical deterministic records; the speedup and baseline-cache
    hit rate land under ``batched_pricing``."""
    spec = default_spec(
        seed=SEED, nests=4, include_corpus=False,
        meshes=MESHES, rank_weights=(True, False),
    )
    tasks = spec.expand()
    meta = {"spec_digest": spec.digest()}
    cells = len(tasks) // 2  # distinct (workload, machine, mesh)

    def run(name, *, batched):
        path = str(tmp_path / f"{name}.jsonl")
        clear_compile_cache()
        clear_baseline_cache()
        prev_gp = set_group_pricing(batched)
        prev_bc = set_baseline_cache_size(512 if batched else 0)
        t0 = time.perf_counter()
        try:
            outcome = run_campaign(
                tasks, path, CampaignConfig(jobs=1), meta=meta
            )
        finally:
            set_group_pricing(prev_gp)
            set_baseline_cache_size(prev_bc)
        wall = time.perf_counter() - t0
        assert outcome.ok == len(tasks) and outcome.errors == 0
        _, results = RunStore(path).load()
        return outcome, results, wall

    per_cell_outcome, per_cell, per_cell_wall = run(
        "per_cell", batched=False
    )
    batched_outcome, batched, batched_wall = run("batched", batched=True)

    # --- the gate: record-for-record byte identity ---------------------
    assert set(batched) == set(per_cell)
    for tid in batched:
        assert canonical_json(
            batched[tid].deterministic_dict()
        ) == canonical_json(per_cell[tid].deterministic_dict()), tid

    # the sweep shape delivers: one baseline priced per cell, the
    # second knob value's baseline is a memo hit
    assert batched_outcome.baseline_cache_misses == cells
    assert batched_outcome.baseline_cache_hits == cells
    assert per_cell_outcome.baseline_cache_hits == 0

    benchmark(
        lambda: run_campaign(
            tasks, str(tmp_path / "b.jsonl"),
            CampaignConfig(jobs=1), meta=meta,
        )
    )

    speedup = per_cell_wall / batched_wall if batched_wall else 0.0
    hits = batched_outcome.baseline_cache_hits
    misses = batched_outcome.baseline_cache_misses
    from _harness import record_bench

    record_bench(
        "campaign",
        {
            "seed": SEED,
            "tasks": len(tasks),
            "meshes": ["x".join(str(d) for d in mm) for mm in MESHES],
            "rank_weights_swept": True,
            "per_cell_wall_seconds": round(per_cell_wall, 3),
            "batched_wall_seconds": round(batched_wall, 3),
            "batched_speedup": round(speedup, 2),
            "batched_tasks_per_second": round(
                len(tasks) / batched_wall, 2
            ),
            "baseline_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 3),
            },
        },
        section="batched_pricing",
    )
