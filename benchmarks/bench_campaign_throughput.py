"""Campaign throughput: nests compiled + priced per second.

Not a paper artefact — a subsystem health benchmark for
:mod:`repro.campaign`: the default grid (generated workloads + the
named corpus against Paragon and CM-5 models) must complete with **all
tasks ok and zero error records** (the CI shape gate), resume must be a
no-op on a completed run, and the measured throughput lands in
``BENCH_campaign.json`` so the compile-rate trajectory is tracked
per PR.
"""

import time

from repro.campaign import (
    CampaignConfig,
    RunStore,
    default_spec,
    run_campaign,
    summarize_results,
)

SEED = 0
NESTS = 8
JOBS = 2


def _grid():
    spec = default_spec(seed=SEED, nests=NESTS)
    return spec, spec.expand()


def test_campaign_default_grid_gate(tmp_path, benchmark):
    """Shape gate + throughput measurement on the default grid."""
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    out = str(tmp_path / "bench.jsonl")

    # one measured run for the recorded throughput number (the
    # benchmark fixture may add calibration rounds of its own below)
    t0 = time.perf_counter()
    outcome = run_campaign(tasks, out, CampaignConfig(jobs=JOBS), meta=meta)
    wall = time.perf_counter() - t0

    benchmark(
        lambda: run_campaign(
            tasks, out, CampaignConfig(jobs=JOBS), meta=meta
        )
    )

    # --- the gate: every task completes, zero errors/timeouts ---------
    assert outcome.ran == len(tasks)
    assert outcome.ok == len(tasks)
    assert outcome.errors == 0
    assert outcome.timeouts == 0

    # resume on a completed checkpoint is a no-op
    again = run_campaign(tasks, out, resume=True, meta=meta)
    assert again.ran == 0 and again.prior == len(tasks)

    _, results = RunStore(out).load()
    rows = summarize_results(results.values())
    assert all(row["errors"] == 0 and row["timeouts"] == 0 for row in rows)
    # the two-step heuristic should never *lose* to greedy step 1
    assert all(
        row["residuals"] <= row["baseline_residuals"] for row in rows
    )

    compile_seconds = sum(r.seconds for r in results.values())
    from _harness import record_bench

    record_bench(
        "campaign",
        {
            "seed": SEED,
            "generated_nests": NESTS,
            "tasks": len(tasks),
            "jobs": JOBS,
            "wall_seconds": round(wall, 3),
            "task_compile_seconds": round(compile_seconds, 3),
            # each task is one full compile+price of one nest, so the
            # two rates coincide on this grid
            "tasks_per_second": round(len(tasks) / wall, 2),
            "nests_compiled_per_second": round(len(tasks) / wall, 2),
            "summary_rows": rows,
        },
    )
