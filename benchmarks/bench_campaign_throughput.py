"""Campaign throughput: nests compiled + priced per second.

Not a paper artefact — a subsystem health benchmark for
:mod:`repro.campaign`: the gate grid (generated workloads + the named
corpus against Paragon and CM-5 models on two mesh sizes — a
**multi-cell** grid with 4 machine x mesh cells per nest) must complete
with **all tasks ok and zero error records** (the CI shape gate),
resume must be a no-op on a completed run, and the measured throughput
lands in ``BENCH_campaign.json`` so the compile-rate trajectory is
tracked per PR.

Since the compile-once/price-many split, the recorded section also
carries the compile-cache hit/miss counts (one compile per nest, K - 1
hits for the other cells) and a ``tasks_per_second_delta`` against the
previous ``BENCH_campaign.json`` on disk.  The speedup floor —
``tasks_per_second`` at least ``SPEEDUP_FLOOR`` x the recompiling
runner's recorded 36.04/s — is enforced under ``REPRO_PERF_STRICT=1``
(``run_all.py --timed``), warned otherwise, same policy as
``bench_perf_core.py``.
"""

import json
import os
import time
import warnings

import pytest

from repro.campaign import (
    CampaignConfig,
    RunStore,
    default_spec,
    run_campaign,
    summarize_results,
)

SEED = 0
NESTS = 8
JOBS = 2
#: two meshes x two machines = 4 price cells per compiled nest
MESHES = ((4, 4), (2, 2))

#: tasks/s of the recompile-every-cell runner on this box (the
#: ``grid_2d`` value recorded before the compile-once/price-many +
#: vectorized-executor work) and the floor the new runner must clear
BASELINE_TASKS_PER_SECOND = 36.04
SPEEDUP_FLOOR = 3.0
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"


def _grid():
    spec = default_spec(seed=SEED, nests=NESTS, meshes=MESHES)
    return spec, spec.expand()


def _previous(key: str) -> float:
    """A ``grid_2d`` stat currently on disk (for the trend deltas)."""
    from _harness import previous_stat

    return previous_stat("campaign", "grid_2d", key)


def test_campaign_default_grid_gate(tmp_path, benchmark):
    """Shape gate + throughput measurement on the multi-cell grid."""
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    out = str(tmp_path / "bench.jsonl")
    nests = len({t.compile_key for t in tasks})
    assert len(tasks) == 4 * nests  # 4 cells per compiled nest

    # one measured run for the recorded throughput number (the
    # benchmark fixture may add calibration rounds of its own below)
    t0 = time.perf_counter()
    outcome = run_campaign(tasks, out, CampaignConfig(jobs=JOBS), meta=meta)
    wall = time.perf_counter() - t0

    benchmark(
        lambda: run_campaign(
            tasks, out, CampaignConfig(jobs=JOBS), meta=meta
        )
    )

    # --- the gate: every task completes, zero errors/timeouts ---------
    assert outcome.ran == len(tasks)
    assert outcome.ok == len(tasks)
    assert outcome.errors == 0
    assert outcome.timeouts == 0

    # compile-once/price-many: exactly one compile per nest, the other
    # K - 1 cells hit the per-worker cache (grouping makes this exact)
    assert outcome.compile_cache_misses == nests
    assert outcome.compile_cache_hits == len(tasks) - nests

    # resume on a completed checkpoint is a no-op
    again = run_campaign(tasks, out, resume=True, meta=meta)
    assert again.ran == 0 and again.prior == len(tasks)

    _, results = RunStore(out).load()
    rows = summarize_results(results.values())
    assert all(row["errors"] == 0 and row["timeouts"] == 0 for row in rows)
    # the two-step heuristic should never *lose* to greedy step 1
    assert all(
        row["residuals"] <= row["baseline_residuals"] for row in rows
    )

    tasks_per_second = len(tasks) / wall
    floor = SPEEDUP_FLOOR * BASELINE_TASKS_PER_SECOND
    if tasks_per_second < floor:
        msg = (
            f"campaign throughput {tasks_per_second:.1f} tasks/s below the "
            f"{SPEEDUP_FLOOR}x floor over the recompiling baseline "
            f"({BASELINE_TASKS_PER_SECOND}/s)"
        )
        if STRICT:
            pytest.fail(msg)
        warnings.warn(msg + " (non-strict mode: recorded, not failed)")

    from _harness import mean_residual_ratio, record_bench

    # per-group Feautrier residual ratios: the scenario-quality trend
    # line recorded next to the throughput trend
    mean_ratio = mean_residual_ratio(rows)
    compile_seconds = sum(r.seconds for r in results.values())
    prev = _previous("tasks_per_second")
    prev_ratio = _previous("mean_residual_ratio")

    # the 2-D entry of BENCH_campaign.json; bench_mesh3d_e2e.py records
    # the 3-D (t3d) grid under "grid_3d" in the same artifact
    record_bench(
        "campaign",
        {
            "seed": SEED,
            "generated_nests": NESTS,
            "meshes": ["x".join(str(d) for d in mm) for mm in MESHES],
            "tasks": len(tasks),
            "jobs": JOBS,
            "wall_seconds": round(wall, 3),
            "task_compile_seconds": round(compile_seconds, 3),
            # one task = one grid cell priced; with the compile cache a
            # nest compiles once and prices on every cell, so the two
            # rates differ by the cells-per-nest factor now
            "tasks_per_second": round(tasks_per_second, 2),
            "nests_compiled_per_second": round(tasks_per_second, 2),
            "unique_compiles": outcome.compile_cache_misses,
            "compile_cache": {
                "hits": outcome.compile_cache_hits,
                "misses": outcome.compile_cache_misses,
            },
            "tasks_per_second_prev": prev,
            "tasks_per_second_delta": round(tasks_per_second - prev, 2),
            "mean_residual_ratio": round(mean_ratio, 4),
            "mean_residual_ratio_prev": prev_ratio,
            "mean_residual_ratio_delta": round(mean_ratio - prev_ratio, 4),
            "baseline_tasks_per_second": BASELINE_TASKS_PER_SECOND,
            "speedup_vs_recompiling_baseline": round(
                tasks_per_second / BASELINE_TASKS_PER_SECOND, 2
            ),
            "summary_rows": rows,
        },
        section="grid_2d",
    )
