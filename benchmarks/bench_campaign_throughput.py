"""Campaign throughput: nests compiled + priced per second.

Not a paper artefact — a subsystem health benchmark for
:mod:`repro.campaign`: the gate grid (generated workloads + the named
corpus against Paragon and CM-5 models on two mesh sizes — a
**multi-cell** grid with 4 machine x mesh cells per nest) must complete
with **all tasks ok and zero error records** (the CI shape gate),
resume must be a no-op on a completed run, and the measured throughput
lands in ``BENCH_campaign.json`` so the compile-rate trajectory is
tracked per PR.

Since the compile-once/price-many split, the recorded section also
carries the compile-cache hit/miss counts (one compile per nest, K - 1
hits for the other cells) and a ``tasks_per_second_delta`` against the
previous ``BENCH_campaign.json`` on disk.

Since batched whole-group pricing, the perf floor moved to where the
optimization lives: the polyhedral compile of PR 5 made the cold run
compile-bound (~0.7 s for 16 nests caps the cold grid near 100/s no
matter how fast pricing gets), so the cold pool run keeps only the
shape gate and the trend stats, while a **steady-state** inline run —
compile LRU and baseline-price memo warm, i.e. the price-bound
compile-once/price-many regime the campaign layer is built around —
must clear ``max(SPEEDUP_FLOOR x 36.04, TASKS_PER_SECOND_FLOOR)`` =
200 tasks/s.  Enforced under ``REPRO_PERF_STRICT=1`` (``run_all.py
--timed``), warned otherwise, same policy as ``bench_perf_core.py``.

``test_batched_vs_per_cell_speedup`` additionally measures the batched
whole-group pricing path against the per-task loop on a rank-weights
swept grid (where the baseline price memo also gets to hit), asserts
the two paths write identical deterministic records, and records the
speedup and baseline-cache hit rate under ``batched_pricing``.
"""

import json
import os
import time
import warnings

import pytest

from repro.campaign import (
    CampaignConfig,
    RunStore,
    clear_baseline_cache,
    clear_compile_cache,
    compile_cache_stats,
    default_spec,
    run_campaign,
    set_baseline_cache_size,
    set_compile_cache_dir,
    set_group_pricing,
    summarize_results,
)
from repro.campaign.sweep import canonical_json, group_by_compile_key

SEED = 0
NESTS = 8
JOBS = 2
#: two meshes x two machines = 4 price cells per compiled nest
MESHES = ((4, 4), (2, 2))

#: tasks/s of the recompile-every-cell runner on this box (the
#: ``grid_2d`` value recorded before the compile-once/price-many +
#: vectorized-executor work) and the floor the new runner must clear
BASELINE_TASKS_PER_SECOND = 36.04
SPEEDUP_FLOOR = 3.0
#: absolute steady-state floor since batched whole-group pricing landed
TASKS_PER_SECOND_FLOOR = 200.0
#: cold-run floor with a *warm disk* compile cache (fresh process, no
#: in-memory caches, every compile a disk hit) — the warm-start regime
#: of CI re-runs and the future ``repro serve`` daemon
COLD_TASKS_PER_SECOND_FLOOR = 200.0
#: cold-run floor with **no** disk tier at all — every compile real,
#: every price cold.  Out of reach while pricing was per-phase
#: (~148/s); the fused segmented kernels put the fully-cold run past
#: the same 200/s bar the other regimes gate
COLD_NODISK_TASKS_PER_SECOND_FLOOR = 200.0
#: the int64 Fourier–Motzkin kernel against the exact Fraction twin,
#: measured on the FM systems the reference grid's compiles actually run
FM_INTEGER_SPEEDUP_FLOOR = 3.0
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"


def _grid():
    spec = default_spec(seed=SEED, nests=NESTS, meshes=MESHES)
    return spec, spec.expand()


def _previous(key: str) -> float:
    """A ``grid_2d`` stat currently on disk (for the trend deltas)."""
    from _harness import previous_stat

    return previous_stat("campaign", "grid_2d", key)


def test_campaign_default_grid_gate(tmp_path, benchmark):
    """Shape gate + throughput measurement on the multi-cell grid."""
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    out = str(tmp_path / "bench.jsonl")
    nests = len({t.compile_key for t in tasks})
    assert len(tasks) == 4 * nests  # 4 cells per compiled nest

    # three measured runs, median wall recorded: pool workers compile
    # cold every run (the LRU lives in the short-lived workers), and a
    # single sample is too noisy for the 5% cross-artifact tolerance
    # bench_trace_overhead.py applies to this number
    walls = []
    outcome = None
    for _ in range(3):
        t0 = time.perf_counter()
        o = run_campaign(tasks, out, CampaignConfig(jobs=JOBS), meta=meta)
        walls.append(time.perf_counter() - t0)
        outcome = outcome or o
    wall = sorted(walls)[1]

    benchmark(
        lambda: run_campaign(
            tasks, out, CampaignConfig(jobs=JOBS), meta=meta
        )
    )

    # --- the gate: every task completes, zero errors/timeouts ---------
    assert outcome.ran == len(tasks)
    assert outcome.ok == len(tasks)
    assert outcome.errors == 0
    assert outcome.timeouts == 0

    # compile-once/price-many: exactly one compile per nest, the other
    # K - 1 cells hit the per-worker cache (grouping makes this exact)
    assert outcome.compile_cache_misses == nests
    assert outcome.compile_cache_hits == len(tasks) - nests

    # resume on a completed checkpoint is a no-op
    again = run_campaign(tasks, out, resume=True, meta=meta)
    assert again.ran == 0 and again.prior == len(tasks)

    _, results = RunStore(out).load()
    rows = summarize_results(results.values())
    assert all(row["errors"] == 0 and row["timeouts"] == 0 for row in rows)
    # the two-step heuristic should never *lose* to greedy step 1
    assert all(
        row["residuals"] <= row["baseline_residuals"] for row in rows
    )

    tasks_per_second = len(tasks) / wall

    # steady-state: the compile LRU and the baseline-price memo are
    # process-persistent, so a repeat campaign is price-bound — the
    # regime the batched group pricing optimizes and the floor gates.
    # One inline warm-up run fills both caches, the second is measured.
    run_campaign(
        tasks, str(tmp_path / "warmup.jsonl"),
        CampaignConfig(jobs=1), meta=meta,
    )
    t0 = time.perf_counter()
    steady = run_campaign(
        tasks, str(tmp_path / "steady.jsonl"),
        CampaignConfig(jobs=1), meta=meta,
    )
    steady_wall = time.perf_counter() - t0
    assert steady.ok == len(tasks) and steady.errors == 0
    # every baseline price is a memo hit in steady state
    assert steady.baseline_cache_hits == len(tasks)
    steady_tasks_per_second = len(tasks) / steady_wall

    floor = max(
        SPEEDUP_FLOOR * BASELINE_TASKS_PER_SECOND, TASKS_PER_SECOND_FLOOR
    )
    if steady_tasks_per_second < floor:
        msg = (
            f"steady-state campaign throughput "
            f"{steady_tasks_per_second:.1f} tasks/s below the floor of "
            f"{floor:.0f}/s (max of {SPEEDUP_FLOOR}x the recompiling "
            f"baseline {BASELINE_TASKS_PER_SECOND}/s and the "
            f"batched-pricing floor {TASKS_PER_SECOND_FLOOR:.0f}/s)"
        )
        if STRICT:
            pytest.fail(msg)
        warnings.warn(msg + " (non-strict mode: recorded, not failed)")

    from _harness import mean_residual_ratio, record_bench

    # per-group Feautrier residual ratios: the scenario-quality trend
    # line recorded next to the throughput trend
    mean_ratio = mean_residual_ratio(rows)
    compile_seconds = sum(r.seconds for r in results.values())
    prev = _previous("tasks_per_second")
    prev_ratio = _previous("mean_residual_ratio")
    prev_steady = _previous("steady_state_tasks_per_second")

    # the 2-D entry of BENCH_campaign.json; bench_mesh3d_e2e.py records
    # the 3-D (t3d) grid under "grid_3d" in the same artifact
    record_bench(
        "campaign",
        {
            "seed": SEED,
            "generated_nests": NESTS,
            "meshes": ["x".join(str(d) for d in mm) for mm in MESHES],
            "tasks": len(tasks),
            "jobs": JOBS,
            "wall_seconds": round(wall, 3),
            "task_compile_seconds": round(compile_seconds, 3),
            # one task = one grid cell priced; with the compile cache a
            # nest compiles once and prices on every cell, so the two
            # rates differ by the cells-per-nest factor now
            "tasks_per_second": round(tasks_per_second, 2),
            "nests_compiled_per_second": round(tasks_per_second, 2),
            "unique_compiles": outcome.compile_cache_misses,
            "compile_cache": {
                "hits": outcome.compile_cache_hits,
                "misses": outcome.compile_cache_misses,
            },
            # no knob sweep on this grid: every (workload, machine,
            # mesh) baseline is distinct, so hits stay 0 here — the
            # sweep-shaped hit rate lands under "batched_pricing"
            "baseline_cache": {
                "hits": outcome.baseline_cache_hits,
                "misses": outcome.baseline_cache_misses,
            },
            "tasks_per_second_prev": prev,
            "tasks_per_second_delta": round(tasks_per_second - prev, 2),
            # price-bound repeat run (warm compile LRU + baseline memo):
            # the number the 200/s floor gates
            "steady_state_wall_seconds": round(steady_wall, 3),
            "steady_state_tasks_per_second": round(
                steady_tasks_per_second, 2
            ),
            "steady_state_tasks_per_second_prev": prev_steady,
            "steady_state_tasks_per_second_delta": round(
                steady_tasks_per_second - prev_steady, 2
            ),
            "steady_state_speedup_vs_recompiling_baseline": round(
                steady_tasks_per_second / BASELINE_TASKS_PER_SECOND, 2
            ),
            "tasks_per_second_floor": TASKS_PER_SECOND_FLOOR,
            "mean_residual_ratio": round(mean_ratio, 4),
            "mean_residual_ratio_prev": prev_ratio,
            "mean_residual_ratio_delta": round(mean_ratio - prev_ratio, 4),
            "baseline_tasks_per_second": BASELINE_TASKS_PER_SECOND,
            "speedup_vs_recompiling_baseline": round(
                tasks_per_second / BASELINE_TASKS_PER_SECOND, 2
            ),
            "summary_rows": rows,
        },
        section="grid_2d",
    )


def test_batched_vs_per_cell_speedup(tmp_path, benchmark):
    """Batched whole-group pricing vs the per-task loop, measured on a
    rank-weights swept grid (the shape the baseline memo exists for:
    half the baselines are pure re-prices).  The two paths must write
    identical deterministic records; the speedup and baseline-cache
    hit rate land under ``batched_pricing``."""
    spec = default_spec(
        seed=SEED, nests=4, include_corpus=False,
        meshes=MESHES, rank_weights=(True, False),
    )
    tasks = spec.expand()
    meta = {"spec_digest": spec.digest()}
    cells = len(tasks) // 2  # distinct (workload, machine, mesh)

    def run(name, *, batched):
        path = str(tmp_path / f"{name}.jsonl")
        clear_compile_cache()
        clear_baseline_cache()
        prev_gp = set_group_pricing(batched)
        prev_bc = set_baseline_cache_size(512 if batched else 0)
        t0 = time.perf_counter()
        try:
            outcome = run_campaign(
                tasks, path, CampaignConfig(jobs=1), meta=meta
            )
        finally:
            set_group_pricing(prev_gp)
            set_baseline_cache_size(prev_bc)
        wall = time.perf_counter() - t0
        assert outcome.ok == len(tasks) and outcome.errors == 0
        _, results = RunStore(path).load()
        return outcome, results, wall

    per_cell_outcome, per_cell, per_cell_wall = run(
        "per_cell", batched=False
    )
    batched_outcome, batched, batched_wall = run("batched", batched=True)

    # --- the gate: record-for-record byte identity ---------------------
    assert set(batched) == set(per_cell)
    for tid in batched:
        assert canonical_json(
            batched[tid].deterministic_dict()
        ) == canonical_json(per_cell[tid].deterministic_dict()), tid

    # the sweep shape delivers: one baseline priced per cell, the
    # second knob value's baseline is a memo hit
    assert batched_outcome.baseline_cache_misses == cells
    assert batched_outcome.baseline_cache_hits == cells
    assert per_cell_outcome.baseline_cache_hits == 0

    benchmark(
        lambda: run_campaign(
            tasks, str(tmp_path / "b.jsonl"),
            CampaignConfig(jobs=1), meta=meta,
        )
    )

    speedup = per_cell_wall / batched_wall if batched_wall else 0.0
    hits = batched_outcome.baseline_cache_hits
    misses = batched_outcome.baseline_cache_misses
    from _harness import record_bench

    record_bench(
        "campaign",
        {
            "seed": SEED,
            "tasks": len(tasks),
            "meshes": ["x".join(str(d) for d in mm) for mm in MESHES],
            "rank_weights_swept": True,
            "per_cell_wall_seconds": round(per_cell_wall, 3),
            "batched_wall_seconds": round(batched_wall, 3),
            "batched_speedup": round(speedup, 2),
            "batched_tasks_per_second": round(
                len(tasks) / batched_wall, 2
            ),
            "baseline_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 3),
            },
        },
        section="batched_pricing",
    )


def test_fused_vs_per_phase_pricing(tmp_path, benchmark):
    """Fused segmented pricing kernels vs the per-phase baseline on the
    reference grid: the two paths must write identical deterministic
    records, and the fused run's wall, speedup and phase/kernel counts
    land under ``fused_pricing`` — the attribution record for the
    fully-cold throughput gate in ``test_cold_compile_disk_cache``."""
    import cProfile
    import pstats

    from repro.obs import clear_spans, set_enabled, span_snapshot
    from repro.runtime import set_segmented_pricing

    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}

    def run(name, *, fused):
        path = str(tmp_path / f"{name}.jsonl")
        clear_compile_cache()
        clear_baseline_cache()
        prev = set_segmented_pricing(fused)
        t0 = time.perf_counter()
        try:
            outcome = run_campaign(
                tasks, path, CampaignConfig(jobs=1), meta=meta
            )
        finally:
            set_segmented_pricing(prev)
        wall = time.perf_counter() - t0
        assert outcome.ok == len(tasks) and outcome.errors == 0
        _, results = RunStore(path).load()
        return results, wall

    per_phase, per_phase_wall = run("per_phase", fused=False)
    fused, fused_wall = run("fused", fused=True)

    # --- the gate: record-for-record byte identity ---------------------
    assert set(fused) == set(per_phase)
    for tid in fused:
        assert canonical_json(
            fused[tid].deterministic_dict()
        ) == canonical_json(per_phase[tid].deterministic_dict()), tid

    # segment accounting: spans count *phases* (one exec.segmented span
    # per kernel launch, count = phases priced), the profile counts
    # kernel launches and leftover per-phase calls
    clear_compile_cache()
    clear_baseline_cache()
    prev_trace = set_enabled(True)
    clear_spans()
    prof = cProfile.Profile()
    try:
        prof.runcall(
            run_campaign, tasks, str(tmp_path / "prof.jsonl"),
            CampaignConfig(jobs=1), meta=meta,
        )
    finally:
        set_enabled(prev_trace)
    phases_priced = sum(
        int(e["count"])
        for p, e in span_snapshot().items()
        if p.endswith("exec.segmented")
    )
    clear_spans()
    counts = {}
    for (_f, _l, name), (_cc, nc, *_rest) in pstats.Stats(
        prof
    ).stats.items():
        if name in (
            "phase_times_segmented", "_price_phase", "phase_time_arrays"
        ):
            counts[name] = counts.get(name, 0) + nc
    kernel_launches = counts.get("phase_times_segmented", 0)
    assert kernel_launches > 0
    assert phases_priced >= kernel_launches

    benchmark(lambda: run("bench", fused=True))

    from _harness import record_bench

    record_bench(
        "campaign",
        {
            "seed": SEED,
            "tasks": len(tasks),
            "per_phase_wall_seconds": round(per_phase_wall, 3),
            "fused_wall_seconds": round(fused_wall, 3),
            "fused_speedup": round(
                per_phase_wall / fused_wall if fused_wall else 0.0, 2
            ),
            "fused_tasks_per_second": round(len(tasks) / fused_wall, 2),
            "phases_priced": phases_priced,
            "segmented_kernel_launches": kernel_launches,
            "phases_per_launch": round(
                phases_priced / kernel_launches, 2
            ),
            "per_phase_calls_on_fused_path": counts.get("_price_phase", 0),
            "phase_time_arrays_calls_on_fused_path": counts.get(
                "phase_time_arrays", 0
            ),
        },
        section="fused_pricing",
    )


def test_cold_compile_disk_cache(tmp_path, benchmark):
    """The cold-start family: how fast is a *fresh process* campaign
    with and without a warm persistent compile cache, and how much of
    the remaining cold compile the integer Fourier–Motzkin kernel saves
    over the ``Fraction`` baseline.

    Three inline cold runs (in-memory caches cleared before each, so
    every compile is real): no disk tier, disk tier populating, disk
    tier warm.  The warm-disk cold run — the regime of CI re-runs and a
    restarted pricing service — must clear
    ``COLD_TASKS_PER_SECOND_FLOOR`` under ``REPRO_PERF_STRICT=1``.  The
    FM comparison replays the exact systems the reference grid's
    compiles ran, asserts verdict-for-verdict identity, and gates the
    kernel speedup at ``FM_INTEGER_SPEEDUP_FLOOR``.
    """
    spec, tasks = _grid()
    meta = {"spec_digest": spec.digest()}
    nests = len({t.compile_key for t in tasks})
    disk = str(tmp_path / "compile-cache")

    def cold_run(name, disk_dir):
        clear_compile_cache()
        clear_baseline_cache()
        prev = set_compile_cache_dir(disk_dir)
        t0 = time.perf_counter()
        try:
            outcome = run_campaign(
                tasks, str(tmp_path / f"{name}.jsonl"),
                CampaignConfig(jobs=1), meta=meta,
            )
        finally:
            set_compile_cache_dir(prev)
        wall = time.perf_counter() - t0
        assert outcome.ok == len(tasks) and outcome.errors == 0
        return outcome, wall, compile_cache_stats()

    nodisk_outcome, nodisk_wall, nodisk_stats = cold_run("nodisk", None)
    # cold by construction: the in-memory LRU starts empty
    assert nodisk_outcome.compile_cache_misses == nests
    assert nodisk_stats["disk_writes"] == 0
    _, populate_wall, populate_stats = cold_run("populate", disk)
    assert populate_stats["disk_writes"] == nests
    warm_outcome, warm_wall, warm_stats = cold_run("warm", disk)
    # a disk hit is a compile the task never paid: every task reports a
    # cache hit even though the in-memory LRU started empty
    assert warm_outcome.compile_cache_hits == len(tasks)
    assert warm_stats["disk_hits"] == nests
    assert warm_stats["disk_misses"] == 0

    benchmark(lambda: cold_run("bench", disk))

    cold_tps = len(tasks) / nodisk_wall
    warm_tps = len(tasks) / warm_wall
    if warm_tps < COLD_TASKS_PER_SECOND_FLOOR:
        msg = (
            f"warm-disk cold campaign ran {warm_tps:.1f} tasks/s, below "
            f"the {COLD_TASKS_PER_SECOND_FLOOR:.0f}/s cold-start floor"
        )
        if STRICT:
            pytest.fail(msg)
        warnings.warn(msg + " (non-strict mode: recorded, not failed)")
    # since fused segmented pricing, even the fully-cold run (no disk
    # tier, every compile real) must clear the cold-start bar
    if cold_tps < COLD_NODISK_TASKS_PER_SECOND_FLOOR:
        msg = (
            f"no-disk cold campaign ran {cold_tps:.1f} tasks/s, below "
            f"the {COLD_NODISK_TASKS_PER_SECOND_FLOOR:.0f}/s fully-cold "
            f"floor (fused segmented pricing regression?)"
        )
        if STRICT:
            pytest.fail(msg)
        warnings.warn(msg + " (non-strict mode: recorded, not failed)")

    # --- integer FM kernel vs the exact Fraction twin -------------------
    # record every system the reference compiles actually run (memo off
    # so repeats aren't hidden), then replay both kernels on the corpus
    from fractions import Fraction

    from repro.campaign.runner import _compile_for_task
    from repro.ir import dependence as dep
    from repro.ir import set_dependence_cache_size

    systems = []
    real = dep._fm_feasible

    def recorder(rows, nvars):
        systems.append(([list(r) for r in rows], nvars))
        return real(rows, nvars)

    prev_size = set_dependence_cache_size(0)
    clear_compile_cache()
    dep._fm_feasible = recorder
    try:
        for group in group_by_compile_key(tasks):
            _compile_for_task(group[0])
    finally:
        dep._fm_feasible = real
        set_dependence_cache_size(prev_size)
        clear_compile_cache()
    assert systems, "reference compiles ran no FM systems"

    frac_systems = [
        ([(tuple(r[:nv]), r[nv]) for r in rows], nv) for rows, nv in systems
    ]
    # best-of-N passes per kernel: the corpus is small enough that a
    # single sweep is noise-bound, and the floor gates the stable ratio
    fm_passes = 5
    frac_seconds = float("inf")
    for _ in range(fm_passes):
        t0 = time.perf_counter()
        frac_verdicts = [
            dep._fourier_motzkin_fraction(iq, nv) for iq, nv in frac_systems
        ]
        frac_seconds = min(frac_seconds, time.perf_counter() - t0)
    int_seconds = float("inf")
    for _ in range(fm_passes):
        t0 = time.perf_counter()
        int_verdicts = [dep._fm_feasible(rows, nv) for rows, nv in systems]
        int_seconds = min(int_seconds, time.perf_counter() - t0)

    # bit-identical verdicts over the whole corpus, or the speedup is void
    assert int_verdicts == frac_verdicts
    fm_speedup = frac_seconds / int_seconds if int_seconds else 0.0
    if fm_speedup < FM_INTEGER_SPEEDUP_FLOOR:
        msg = (
            f"integer FM kernel speedup {fm_speedup:.2f}x below the "
            f"{FM_INTEGER_SPEEDUP_FLOOR}x floor over the Fraction "
            f"baseline ({len(systems)} systems)"
        )
        if STRICT:
            pytest.fail(msg)
        warnings.warn(msg + " (non-strict mode: recorded, not failed)")

    from _harness import previous_stat, record_bench

    prev_warm = previous_stat(
        "campaign", "cold_compile", "warm_disk_tasks_per_second"
    )
    record_bench(
        "campaign",
        {
            "seed": SEED,
            "tasks": len(tasks),
            "unique_compiles": nests,
            "no_disk_wall_seconds": round(nodisk_wall, 3),
            "no_disk_tasks_per_second": round(cold_tps, 2),
            "populate_wall_seconds": round(populate_wall, 3),
            "warm_disk_wall_seconds": round(warm_wall, 3),
            "warm_disk_tasks_per_second": round(warm_tps, 2),
            "warm_disk_tasks_per_second_prev": prev_warm,
            "warm_disk_tasks_per_second_delta": round(
                warm_tps - prev_warm, 2
            ),
            "warm_disk_speedup_vs_no_disk": round(
                nodisk_wall / warm_wall, 2
            ),
            "cold_tasks_per_second_floor": COLD_TASKS_PER_SECOND_FLOOR,
            "cold_nodisk_tasks_per_second_floor": (
                COLD_NODISK_TASKS_PER_SECOND_FLOOR
            ),
            "disk_cache": {
                "writes": populate_stats["disk_writes"],
                "hits": warm_stats["disk_hits"],
                "misses": warm_stats["disk_misses"],
            },
            "fm_systems": len(systems),
            "fm_fraction_seconds": round(frac_seconds, 4),
            "fm_integer_seconds": round(int_seconds, 4),
            "fm_integer_speedup": round(fm_speedup, 2),
            "fm_integer_speedup_floor": FM_INTEGER_SPEEDUP_FLOOR,
        },
        section="cold_compile",
    )
