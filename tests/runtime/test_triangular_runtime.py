"""Triangular domains through the vectorized runtime core.

The dense int64 matmul path of PR 4 must survive polyhedral domains
unchanged: non-rectangular nests enumerate as bounding box + membership
mask, and the vectorized executor stays bit-identical to the
per-element Python reference on every shape.
"""

import pytest

from repro import compile_nest
from repro.campaign import generate_triangular_workloads, triangular_corpus
from repro.machine import ParagonModel, T3DModel
from repro.runtime import execute, execute_python

TRI_SRC = """array a(2), b(2), c(2)
for i = 0..N:
  for j = i..N:
    for k = 0..N:
      S: c[i, j] = f(a[i, k], b[k, j], c[i, j])
"""


class TestTriangularExtraction:
    def test_event_count_matches_domain_size(self):
        params = {"N": 4}
        c = compile_nest(TRI_SRC, m=2, params=params, name="tri")
        prog = c.program(ParagonModel(4, 4), params)
        stmt = c.nest.statements[0]
        n = stmt.domain_size(params)
        assert n == sum(
            1
            for i in range(5)
            for j in range(i, 5)
            for k in range(5)
        )
        for batch in prog.comm_batches():
            assert batch.n == n

    def test_batches_match_python_events(self):
        params = {"N": 3}
        c = compile_nest(TRI_SRC, m=2, params=params, name="tri")
        prog = c.program(ParagonModel(2, 2), params)
        assert prog.comm_events() == prog.comm_events_python()

    def test_execute_bit_identical_2d(self):
        params = {"N": 4}
        c = compile_nest(TRI_SRC, m=2, params=params, name="tri")
        machine = ParagonModel(4, 4)
        prog = c.program(machine, params)
        assert execute(prog, machine) == execute_python(prog, machine)

    def test_execute_bit_identical_3d(self):
        params = {"N": 3}
        c = compile_nest(TRI_SRC, m=3, params=params, name="tri3")
        machine = T3DModel(2, 2, 2)
        prog = c.program(machine, params)
        assert execute(prog, machine) == execute_python(prog, machine)


class TestTriangularCorpusRuntime:
    @pytest.mark.parametrize("wl", triangular_corpus(), ids=lambda w: w.name)
    def test_corpus_bit_identical(self, wl):
        nest = wl.resolve()
        params = dict(wl.params)
        schedules = wl.resolve_schedules(nest)
        compiled = compile_nest(
            nest, m=2, schedules=schedules, params=params,
            check_legality=wl.check_legality, name=wl.name,
        )
        machine = ParagonModel(2, 2)
        prog = compiled.program(machine, params)
        assert execute(prog, machine) == execute_python(prog, machine)
        assert prog.comm_events() == prog.comm_events_python()


class TestGeneratedTriangularRuntime:
    def test_generated_workloads_bit_identical(self):
        machine = ParagonModel(2, 2)
        for wl in generate_triangular_workloads(seed=2, count=5):
            nest = wl.resolve()
            params = dict(wl.params)
            compiled = compile_nest(nest, m=2, params=params, name=wl.name)
            prog = compiled.program(machine, params)
            assert execute(prog, machine) == execute_python(prog, machine), wl.name
