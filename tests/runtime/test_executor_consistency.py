"""Consistency between the compile-time classification and the
run-time communication events, on randomized nests: what the heuristic
calls local must not move data (beyond a constant shift), and macro
classifications must match the observed fan-out/fan-in shapes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import two_step_heuristic
from repro.ir import NestBuilder
from repro.linalg import IntMat, rank
from repro.machine import Mesh2D, ParagonModel
from repro.runtime import Folding, MappedProgram, execute


def _random_full_rank(rng, rows, cols):
    for _ in range(50):
        cand = IntMat(
            [[rng.randint(-2, 2) for _ in range(cols)] for _ in range(rows)]
        )
        if rank(cand) == min(rows, cols):
            return cand
    return IntMat([[1 if i == j else 0 for j in range(cols)] for i in range(rows)])


def random_nest(seed: int):
    rng = random.Random(seed)
    b = NestBuilder(f"exec{seed}")
    dims = {"x": rng.choice([2, 3]), "y": 2}
    for name, d in dims.items():
        b.array(name, d)
    depth = rng.choice([2, 3])
    loops = [("ijk"[d], 0, 3) for d in range(depth)]
    b.statement(
        "S",
        loops,
        writes=[("x", _random_full_rank(rng, dims["x"], depth).tolist(),
                 [rng.randint(-1, 1) for _ in range(dims["x"])], "W")],
        reads=[("y", _random_full_rank(rng, 2, depth).tolist(),
                [rng.randint(-1, 1), rng.randint(-1, 1)], "R")],
    )
    return b.build()


def _program(nest):
    mapping = two_step_heuristic(nest, m=2)
    mesh = Mesh2D(2, 2)
    folding = Folding(mesh=mesh, extent=8)
    return MappedProgram(mapping=mapping, folding=folding, params={})


class TestClassificationMatchesEvents:
    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_local_accesses_are_constant_shifts(self, seed):
        nest = random_nest(seed)
        program = _program(nest)
        local = program.mapping.alignment.local_labels
        shifts = {}
        for ev in program.comm_events():
            if ev.access_label in local:
                delta = tuple(
                    r - s for r, s in zip(ev.receiver_virtual, ev.sender_virtual)
                )
                shifts.setdefault(ev.access_label, set()).add(delta)
        for label, deltas in shifts.items():
            assert len(deltas) == 1, (
                f"local access {label} moved by non-constant {deltas}"
            )
            # tree-local accesses are exactly zero-shift (offsets
            # absorbed); re-added edges may keep a constant shift
            assert all(len(d) == 2 for d in deltas)

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_execution_never_crashes(self, seed):
        nest = random_nest(seed)
        program = _program(nest)
        rep = execute(program, ParagonModel(2, 2))
        assert rep.total_time >= 0.0
        assert rep.total_messages >= 0

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_translation_classification_observed(self, seed):
        """Accesses classified as translations move every element by
        the same virtual-grid offset."""
        nest = random_nest(seed)
        program = _program(nest)
        translations = {
            o.label
            for o in program.mapping.optimized
            if o.classification == "translation"
        }
        shifts = {}
        for ev in program.comm_events():
            if ev.access_label in translations:
                delta = tuple(
                    r - s for r, s in zip(ev.receiver_virtual, ev.sender_virtual)
                )
                shifts.setdefault(ev.access_label, set()).add(delta)
        for label, deltas in shifts.items():
            assert len(deltas) == 1


class TestBroadcastShapeObserved:
    def test_broadcast_fanout_in_events(self):
        """For the motivating example's F6 broadcast, one array cell is
        consumed by several virtual processors at the same time step."""
        from repro.ir import motivating_example

        program = _program(motivating_example())
        # replace params with the nest's symbolic sizes
        program = MappedProgram(
            mapping=program.mapping,
            folding=program.folding,
            params={"N": 3, "M": 3},
        )
        senders = {}
        for ev in program.comm_events():
            if ev.access_label == "F6":
                senders.setdefault(
                    (ev.sender_virtual, ev.time), set()
                ).add(ev.receiver_virtual)
        assert any(len(r) > 1 for r in senders.values()), (
            "expected one source feeding several receivers"
        )
