"""Fused segmented pricing vs the per-phase baseline.

The segmented kernel (`phase_times_segmented`) and the executor path
that feeds it (`REPRO_SEGMENTED_PRICING` / `set_segmented_pricing`)
must be **bit-identical** to per-phase pricing — every
``CommReport``/``PhaseReport`` float compares exactly, over rectangular
and triangular corpora, 2-D and 3-D machines, macro/collective labels,
the batched ``execute_group`` path and the campaign store payloads.
"""

import hashlib

import numpy as np
import pytest

from repro import compile_nest
from repro.campaign import CampaignConfig, RunStore, default_spec, run_campaign
from repro.campaign.sweep import canonical_json
from repro.campaign.workloads import (
    corpus,
    generate_triangular_workloads,
    generate_workloads,
    triangular_corpus,
)
from repro.ir import motivating_example
from repro.machine import (
    CM5Model,
    CostParams,
    ParagonModel,
    machine_spec,
    phase_time_arrays,
    phase_times_segmented,
)
from repro.machine.contention import _EXACT_F64
from repro.obs import clear_spans, set_enabled, span_snapshot
from repro.runtime import (
    execute,
    execute_group,
    segmented_pricing_enabled,
    set_segmented_pricing,
)

from test_group_pricing import CELLS_2D, CELLS_3D, compile_cells

PARAMS = {"N": 3, "M": 3}


@pytest.fixture
def force_per_phase():
    prev = set_segmented_pricing(False)
    yield
    set_segmented_pricing(prev)


def random_phases(rng, mesh_dims, n_phases, events_per_phase, max_size=9):
    """Random message matrices with an explicit segment column; some
    rows are deliberately local (src == dst) and one segment may be
    empty."""
    rank = len(mesh_dims)
    rows = []
    for pid in range(n_phases):
        n = events_per_phase if pid != 1 else 0  # keep one empty segment
        for _ in range(n):
            src = [int(rng.integers(0, d)) for d in mesh_dims]
            if rng.random() < 0.15:
                dst = list(src)  # local message
            else:
                dst = [int(rng.integers(0, d)) for d in mesh_dims]
            rows.append([pid] + src + dst + [int(rng.integers(1, max_size))])
    arr = np.array(rows, dtype=np.int64)
    phase_ids = arr[:, 0]
    senders = arr[:, 1: 1 + rank]
    receivers = arr[:, 1 + rank: 1 + 2 * rank]
    sizes = arr[:, 1 + 2 * rank]
    return senders, receivers, sizes, phase_ids


class TestKernelBitIdentity:
    """`phase_times_segmented` segment-by-segment against
    `phase_time_arrays`, on 2-D and 3-D meshes."""

    @pytest.mark.parametrize("dims", [(4, 4), (3, 2), (2, 2, 2), (3, 2, 2)])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_phase(self, dims, seed):
        rng = np.random.default_rng(seed)
        mesh = machine_spec("t3d" if len(dims) == 3 else "paragon").make(
            dims
        ).mesh
        senders, receivers, sizes, phase_ids = random_phases(
            rng, dims, n_phases=5, events_per_phase=13
        )
        params = CostParams(alpha=19.7, beta=1.3, gamma=0.41)
        srep = phase_times_segmented(
            mesh, senders, receivers, sizes, phase_ids, params
        )
        assert len(srep) == 5
        for pid in range(5):
            m = phase_ids == pid
            want = phase_time_arrays(
                mesh, senders[m], receivers[m], sizes[m], params
            )
            assert srep.report(pid) == want, (dims, seed, pid)

    def test_explicit_n_phases_pads_empty_tail(self):
        mesh = ParagonModel(4, 4).mesh
        senders = np.array([[0, 0]], dtype=np.int64)
        receivers = np.array([[3, 3]], dtype=np.int64)
        sizes = np.array([4], dtype=np.int64)
        phase_ids = np.array([0], dtype=np.int64)
        srep = phase_times_segmented(
            mesh, senders, receivers, sizes, phase_ids,
            CostParams(), n_phases=3,
        )
        assert len(srep) == 3
        empty = phase_time_arrays(
            mesh, senders[:0], receivers[:0], sizes[:0], CostParams()
        )
        assert srep.report(1) == empty and srep.report(2) == empty

    def test_all_local_and_empty_inputs(self):
        mesh = ParagonModel(2, 2).mesh
        senders = np.array([[1, 1], [0, 1]], dtype=np.int64)
        srep = phase_times_segmented(
            mesh, senders, senders.copy(), np.array([3, 5]),
            np.array([0, 1]), CostParams(),
        )
        assert srep.times.tolist() == [0.0, 0.0]
        assert srep.local_messages.tolist() == [1, 1]
        empty = phase_times_segmented(
            mesh, np.empty((0, 2), dtype=np.int64),
            np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64), CostParams(),
        )
        assert len(empty) == 0

    def test_magnitude_guard_takes_exact_fallback(self):
        """Sizes past the float64-exact bound still price bit-identical
        (through the per-phase exact fallback)."""
        mesh = ParagonModel(4, 4).mesh
        big = _EXACT_F64  # one message already overflows the guard
        senders = np.array([[0, 0], [0, 0], [1, 0]], dtype=np.int64)
        receivers = np.array([[3, 3], [2, 1], [3, 2]], dtype=np.int64)
        sizes = np.array([big, 7, 11], dtype=np.int64)
        phase_ids = np.array([0, 0, 1], dtype=np.int64)
        params = CostParams()
        srep = phase_times_segmented(
            mesh, senders, receivers, sizes, phase_ids, params
        )
        for pid in range(2):
            m = phase_ids == pid
            assert srep.report(pid) == phase_time_arrays(
                mesh, senders[m], receivers[m], sizes[m], params
            )

    def test_cm5_macro_lane_matches_scalar(self):
        cm5 = CM5Model()
        sizes = np.array([1, 7, 100, 4096], dtype=np.int64)
        red = cm5.macro_times_segmented("reduction", sizes)
        bro = cm5.macro_times_segmented("broadcast", sizes)
        for i, s in enumerate(sizes.tolist()):
            assert red[i] == cm5.reduction_time(s)
            assert bro[i] == cm5.broadcast_time(s)


def assert_segmented_matches_baseline(cells):
    """execute() and execute_group() with fused pricing on vs the
    per-phase baseline: every report equal, float for float."""
    assert segmented_pricing_enabled()
    fused = [execute(p, m, collectives=c) for p, m, c in cells]
    fused_group = execute_group(cells)
    prev = set_segmented_pricing(False)
    try:
        base = [execute(p, m, collectives=c) for p, m, c in cells]
    finally:
        set_segmented_pricing(prev)
    for (program, machine, _), got, got_g, want in zip(
        cells, fused, fused_group, base
    ):
        assert got == want, (machine, program.folding.mesh.dims)
        assert got_g == want, (machine, program.folding.mesh.dims)


class TestExecutorBitIdentityRect:
    @pytest.mark.parametrize("workload", corpus(), ids=lambda w: w.name)
    def test_named_corpus_2d(self, workload):
        assert_segmented_matches_baseline(
            compile_cells(workload, 2, CELLS_2D)
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_generated_2d(self, seed):
        for workload in generate_workloads(seed, 3):
            assert_segmented_matches_baseline(
                compile_cells(workload, 2, CELLS_2D)
            )


class TestExecutorBitIdentityTriangular:
    @pytest.mark.parametrize(
        "workload", triangular_corpus(), ids=lambda w: w.name
    )
    def test_named_corpus_2d(self, workload):
        assert_segmented_matches_baseline(
            compile_cells(workload, 2, CELLS_2D)
        )

    def test_generated_2d(self):
        for workload in generate_triangular_workloads(0, 3):
            assert_segmented_matches_baseline(
                compile_cells(workload, 2, CELLS_2D)
            )


class TestExecutorBitIdentity3D:
    def test_generated_t3d(self):
        for workload in generate_workloads(0, 2):
            assert_segmented_matches_baseline(
                compile_cells(workload, 3, CELLS_3D)
            )

    def test_triangular_t3d(self):
        for workload in generate_triangular_workloads(0, 2):
            assert_segmented_matches_baseline(
                compile_cells(workload, 3, CELLS_3D)
            )


class _PerPhaseOnlyModel:
    """A registered-model stand-in exposing only the per-phase array
    surface — the duck-typed fallback the segmented executor must keep
    working for."""

    def __init__(self, p, q):
        self._inner = ParagonModel(p, q)
        self.mesh = self._inner.mesh

    def time_phase(self, messages):
        return self._inner.time_phase(messages)

    def time_phase_arrays(self, senders, receivers, sizes):
        return self._inner.time_phase_arrays(senders, receivers, sizes)


class TestFallbacks:
    def test_duck_typed_model_prices_per_phase(self):
        compiled = compile_nest(motivating_example(), m=2, params=PARAMS)
        full = ParagonModel(4, 4)
        duck = _PerPhaseOnlyModel(4, 4)
        want = execute(compiled.program(full, PARAMS), full)
        got = execute(compiled.program(duck, PARAMS), duck)
        assert got == want

    def test_macro_lane_without_vectorized_collectives(self):
        class _ScalarCM5(CM5Model):
            # hide the vectorized lane: the executor must fall back to
            # scalar reduction_time/broadcast_time per segment
            macro_times_segmented = None

        compiled = compile_nest(motivating_example(), m=2, params=PARAMS)
        machine = ParagonModel(4, 4)
        prog = compiled.program(machine, PARAMS)
        got = execute(prog, machine, collectives=_ScalarCM5())
        want = execute(prog, machine, collectives=CM5Model())
        assert got == want

    def test_toggle_restores(self, force_per_phase):
        assert not segmented_pricing_enabled()
        compiled = compile_nest(motivating_example(), m=2, params=PARAMS)
        machine = ParagonModel(4, 4)
        prog = compiled.program(machine, PARAMS)
        assert execute(prog, machine).total_time > 0


class TestSpanTaxonomy:
    def test_segmented_span_counts_phases(self):
        """One fused kernel launch records ``count = phases``, so stage
        reports keep counting phases after the fusion: the aggregated
        exec.segmented count equals the per-phase exec.phase count."""
        compiled = compile_nest(motivating_example(), m=2, params=PARAMS)
        machine = ParagonModel(4, 4)
        prog = compiled.program(machine, PARAMS)
        prev = set_enabled(True)
        try:
            clear_spans()
            execute(prog, machine, collectives=CM5Model())
            fused = {
                p: e["count"]
                for p, e in span_snapshot().items()
                if p.endswith("exec.segmented")
            }
            seg = set_segmented_pricing(False)
            try:
                clear_spans()
                execute(prog, machine, collectives=CM5Model())
                per_phase = {
                    p: e["count"]
                    for p, e in span_snapshot().items()
                    if p.endswith("exec.phase")
                }
            finally:
                set_segmented_pricing(seg)
        finally:
            set_enabled(prev)
            clear_spans()
        assert sum(fused.values()) == sum(per_phase.values()) > 0


class TestStoreGolden:
    def test_campaign_store_identical_on_and_off(self, tmp_path):
        """The canonical-json record payload of a small campaign is
        byte-identical with fused pricing on and off."""
        digests = []
        for on in (True, False):
            prev = set_segmented_pricing(on)
            try:
                spec = default_spec(seed=0, nests=2, meshes=((2, 2),))
                tasks = spec.expand()
                out = str(tmp_path / f"seg_{int(on)}.jsonl")
                outcome = run_campaign(
                    tasks, out, CampaignConfig(jobs=1), meta={}
                )
                assert outcome.errors == 0 and outcome.timeouts == 0
                _, results = RunStore(out).load()
                payload = canonical_json(
                    [results[t.task_id].deterministic_dict() for t in tasks]
                )
                digests.append(hashlib.sha1(payload.encode()).hexdigest())
            finally:
                set_segmented_pricing(prev)
        assert digests[0] == digests[1]
