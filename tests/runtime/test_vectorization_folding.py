"""Runtime tests: message vectorization effect, grouped folding,
collective costing, and robustness at other grid dimensions."""

import pytest

from repro.alignment import two_step_heuristic
from repro.ir import (
    NestBuilder,
    Schedule,
    ScheduledNest,
    outer_sequential_schedules,
    parse_nest,
)
from repro.linalg import IntMat
from repro.machine import CM5Model, Mesh2D, ParagonModel
from repro.runtime import Folding, MappedProgram, execute


def _timed_nest():
    """A nest whose read is vectorizable: the source does not move with
    the sequential time loop."""
    b = NestBuilder("vect")
    b.array("x", 2).array("y", 2)
    b.statement(
        "S",
        [("t", 0, 3), ("i", 0, 5), ("j", 0, 5)],
        writes=[("x", [[0, 1, 0], [0, 0, 1]], None, "W")],
        reads=[("y", [[0, 0, 1], [0, 1, 0]], None, "R")],
    )
    return b.build()


class TestVectorization:
    def test_vectorizable_flag_set(self):
        nest = _timed_nest()
        schedules = outer_sequential_schedules(nest, outer=1)
        result = two_step_heuristic(nest, m=2, schedules=schedules)
        residual_labels = {o.label: o for o in result.optimized}
        if "R" in residual_labels:
            assert residual_labels["R"].vectorizable

    def test_vectorization_reduces_message_count(self):
        """With 4 time steps, the vectorized read sends 1 batch where a
        non-vectorized schedule would send 4."""
        nest = _timed_nest()
        schedules = outer_sequential_schedules(nest, outer=1)
        result = two_step_heuristic(nest, m=2, schedules=schedules)
        machine = ParagonModel(2, 2)
        program = MappedProgram(
            mapping=result,
            folding=Folding(mesh=machine.mesh, extent=6),
            params={},
        )
        rep = execute(program, machine)
        for o in result.optimized:
            if o.vectorizable and o.label in rep.per_access:
                s = rep.per_access[o.label]
                if s.messages_before_vectorization:
                    assert (
                        s.messages_after_vectorization
                        < s.messages_before_vectorization
                    )


class TestFoldingSchemes:
    def test_grouped_folding_accepted(self):
        nest = _timed_nest()
        schedules = outer_sequential_schedules(nest, outer=1)
        result = two_step_heuristic(nest, m=2, schedules=schedules)
        mesh = Mesh2D(2, 2)
        folding = Folding(
            mesh=mesh,
            extent=6,
            row_scheme="grouped",
            row_kw={"k": 2},
            col_scheme="block",
        )
        program = MappedProgram(mapping=result, folding=folding, params={})
        rep = execute(program, ParagonModel(2, 2))
        assert rep.total_time >= 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            Folding(mesh=Mesh2D(2, 2), extent=4, row_scheme="bogus")


class TestCollectives:
    def test_reduction_priced_by_hardware(self):
        """A matmul-style reduction access costed with CM-5 collectives
        uses reduction_time, which is far below the mesh price."""
        b = NestBuilder("red")
        b.array("s", 2).array("v", 2)
        b.statement(
            "S",
            [("i", 0, 5), ("j", 0, 5), ("k", 0, 5)],
            writes=[("s", [[1, 0, 0], [0, 1, 0]], None, "Ws")],
            reads=[("v", [[1, 0, 0], [0, 0, 1]], None, "Rv")],
        )
        nest = b.build()
        schedules = ScheduledNest(
            nest=nest, schedules={"S": Schedule(theta=IntMat([[0, 0, 1]]))}
        )
        result = two_step_heuristic(nest, m=2, schedules=schedules)
        machine = ParagonModel(2, 2)
        folding = Folding(mesh=machine.mesh, extent=6)
        program = MappedProgram(mapping=result, folding=folding, params={})
        plain = execute(program, machine)
        with_hw = execute(program, machine, collectives=CM5Model())
        macro_labels = [
            o.label for o in result.optimized if o.classification == "macro"
        ]
        if macro_labels:
            assert with_hw.total_time < plain.total_time


class TestOtherGridDims:
    def test_m1_mapping_runs(self):
        nest = _timed_nest()
        result = two_step_heuristic(nest, m=1)
        assert result.alignment.m == 1
        for mat in result.alignment.allocations.values():
            assert mat.nrows == 1

    def test_m3_mapping_runs(self):
        src = """array a(3), b(3)
for i = 0..7:
  for j = 0..7:
    for k = 0..7:
      S: a[i, j, k] = f(b[j, i, k])
"""
        nest = parse_nest(src)
        result = two_step_heuristic(nest, m=3)
        assert result.alignment.m == 3
        # permutation access: both can be local
        assert len(result.alignment.local_labels) == 2
