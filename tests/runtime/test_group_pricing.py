"""Batched whole-group pricing: ``execute_group`` must be bit-identical
to K per-cell ``execute()`` runs — over rectangular *and* triangular
corpora, generated workloads, 2-D and 3-D machines.

``CommReport``/``AccessCommStats`` are plain dataclasses with default
equality, so ``report_a == report_b`` compares every float exactly —
the comparisons below are bit-identity checks, not tolerance checks.
"""

import pytest

from repro import compile_nest
from repro.campaign.workloads import (
    corpus,
    generate_triangular_workloads,
    generate_workloads,
    triangular_corpus,
)
from repro.ir import motivating_example
from repro.machine import machine_spec
from repro.runtime import execute, execute_group

#: 2-D grid cells shared by the property tests: two machine models,
#: square and non-square meshes
CELLS_2D = [
    ("paragon", (4, 4)),
    ("paragon", (3, 2)),
    ("cm5", (4, 4)),
    ("cm5", (2, 2)),
]
CELLS_3D = [
    ("t3d", (2, 2, 2)),
    ("t3d", (3, 2, 2)),
]


def compile_cells(workload, m, grid):
    """Compile a workload once and fold it onto every (machine, mesh)
    cell — the campaign's compile-key group invariant."""
    nest = workload.resolve()
    schedules = workload.resolve_schedules(nest)
    params = dict(workload.params)
    compiled = compile_nest(
        nest,
        m=m,
        schedules=schedules,
        params=params,
        check_legality=workload.check_legality,
        name=workload.name,
    )
    cells = []
    for name, mesh in grid:
        spec = machine_spec(name)
        machine = spec.make(mesh)
        cells.append(
            (
                compiled.program(machine, params),
                machine,
                spec.make_collectives(mesh),
            )
        )
    return cells


def assert_group_matches_per_cell(cells):
    batched = execute_group(cells)
    for (program, machine, coll), got in zip(cells, batched):
        want = execute(program, machine, collectives=coll)
        assert got == want, (machine, program.folding.mesh.dims)


class TestBitIdentityRect:
    @pytest.mark.parametrize(
        "workload", corpus(), ids=lambda w: w.name
    )
    def test_named_corpus_2d(self, workload):
        assert_group_matches_per_cell(
            compile_cells(workload, 2, CELLS_2D)
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_generated_2d(self, seed):
        for workload in generate_workloads(seed, 3):
            assert_group_matches_per_cell(
                compile_cells(workload, 2, CELLS_2D)
            )


class TestBitIdentityTriangular:
    @pytest.mark.parametrize(
        "workload", triangular_corpus(), ids=lambda w: w.name
    )
    def test_named_corpus_2d(self, workload):
        assert_group_matches_per_cell(
            compile_cells(workload, 2, CELLS_2D)
        )

    def test_generated_2d(self):
        for workload in generate_triangular_workloads(0, 3):
            assert_group_matches_per_cell(
                compile_cells(workload, 2, CELLS_2D)
            )


class TestBitIdentity3D:
    def test_generated_t3d(self):
        for workload in generate_workloads(0, 2):
            assert_group_matches_per_cell(
                compile_cells(workload, 3, CELLS_3D)
            )

    def test_triangular_t3d(self):
        for workload in generate_triangular_workloads(0, 2):
            assert_group_matches_per_cell(
                compile_cells(workload, 3, CELLS_3D)
            )


class TestGroupContract:
    def test_empty_group(self):
        assert execute_group([]) == []

    def test_single_cell_delegates_to_execute(self):
        compiled = compile_nest(motivating_example(), m=2)
        params = {"N": 8, "M": 8}
        spec = machine_spec("paragon")
        machine = spec.make((4, 4))
        cell = (
            compiled.program(machine, params),
            machine,
            spec.make_collectives((4, 4)),
        )
        [got] = execute_group([cell])
        assert got == execute(cell[0], cell[1], collectives=cell[2])

    def test_mismatched_mappings_rejected(self):
        params = {"N": 8, "M": 8}
        spec = machine_spec("paragon")
        machine = spec.make((4, 4))
        cells = []
        for _ in range(2):  # two separate compiles: distinct mappings
            compiled = compile_nest(motivating_example(), m=2)
            cells.append(
                (
                    compiled.program(machine, params),
                    machine,
                    spec.make_collectives((4, 4)),
                )
            )
        with pytest.raises(ValueError, match="share one mapping"):
            execute_group(cells)

    def test_mismatched_params_rejected(self):
        compiled = compile_nest(motivating_example(), m=2)
        spec = machine_spec("paragon")
        machine = spec.make((4, 4))
        cells = [
            (compiled.program(machine, {"N": 8, "M": 8}), machine, None),
            (compiled.program(machine, {"N": 9, "M": 9}), machine, None),
        ]
        with pytest.raises(ValueError, match="size bindings"):
            execute_group(cells)
