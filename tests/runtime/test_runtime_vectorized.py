"""Vectorized runtime core vs the per-element Python baselines.

The dense-array communication extraction (`MappedProgram.comm_batches`
feeding the `np.unique`-based `execute`) must be **bit-identical** to
the original per-event path (`comm_events_python` / `execute_python`)
— on the paper's seed scenarios and on randomized generated workloads
(the campaign generator's full shape vocabulary: mixed depths, perfect
and non-perfect nests, unimodular / selection / rank-deficient
accesses).  Same old-vs-new pattern as ``phase_time_python`` in the
machine layer.
"""

import pytest

from repro import compile_nest
from repro.campaign import generate_workloads
from repro.ir import motivating_example, platonoff_example
from repro.machine import CM5Model, ParagonModel, machine_spec
from repro.runtime import count_nonlocal_virtual, execute, execute_python

PARAMS = {"N": 3, "M": 3}


def _compiled_program(nest_or_src, m=2, machine=None, params=None, **kw):
    params = params or PARAMS
    c = compile_nest(nest_or_src, m=m, params=params, **kw)
    machine = machine or ParagonModel(2, 2)
    return c, c.program(machine, params), machine


class TestSeedScenarios:
    def test_motivating_example_bit_identical(self):
        _c, prog, machine = _compiled_program(motivating_example())
        assert prog.comm_events() == prog.comm_events_python()
        assert execute(prog, machine) == execute_python(prog, machine)

    def test_motivating_with_collectives_bit_identical(self):
        _c, prog, machine = _compiled_program(motivating_example())
        cm5 = CM5Model()
        assert execute(prog, machine, collectives=cm5) == execute_python(
            prog, machine, collectives=cm5
        )

    def test_platonoff_example_bit_identical(self):
        _c, prog, machine = _compiled_program(
            platonoff_example(), params={"n": 3}
        )
        assert prog.comm_events() == prog.comm_events_python()
        assert execute(prog, machine) == execute_python(prog, machine)

    def test_payload_scaling_bit_identical(self):
        _c, prog, machine = _compiled_program(motivating_example())
        assert execute(prog, machine, payload=7) == execute_python(
            prog, machine, payload=7
        )

    def test_3d_path_bit_identical(self):
        spec = machine_spec("t3d")
        machine = spec.make((2, 2, 2))
        src = (
            "array a(3), b(3)\n"
            "for i = 0..N:\n"
            "  for j = 0..N:\n"
            "    for k = 0..N:\n"
            "      S: a[i, j, k] = f(b[j, i, k])\n"
        )
        c = compile_nest(src, m=3, params={"N": 3})
        prog = c.program(machine, {"N": 3})
        assert prog.comm_events() == prog.comm_events_python()
        assert execute(prog, machine) == execute_python(prog, machine)


class TestGeneratedWorkloads:
    """Property check over the campaign generator's corpus: every
    (deterministic) generated nest prices identically on both paths."""

    @pytest.fixture(scope="class")
    def workloads(self):
        return generate_workloads(seed=7, count=12)

    def test_comm_events_bit_identical(self, workloads):
        for wl in workloads:
            nest = wl.resolve()
            c = compile_nest(nest, m=2, params=dict(wl.params), name=wl.name)
            prog = c.program(ParagonModel(2, 2), dict(wl.params))
            assert prog.comm_events() == prog.comm_events_python(), wl.name

    def test_execute_bit_identical(self, workloads):
        cm5 = CM5Model()
        for wl in workloads:
            nest = wl.resolve()
            c = compile_nest(nest, m=2, params=dict(wl.params), name=wl.name)
            for mesh in ((2, 2), (4, 4)):
                machine = ParagonModel(*mesh)
                prog = c.program(machine, dict(wl.params))
                assert execute(prog, machine) == execute_python(
                    prog, machine
                ), (wl.name, mesh)
                assert execute(prog, machine, collectives=cm5) == (
                    execute_python(prog, machine, collectives=cm5)
                ), (wl.name, mesh)

    def test_empty_domain_bit_identical(self):
        """Bindings that empty a loop range: both executors produce the
        same (empty) per-access map."""
        c = compile_nest(motivating_example(), m=2)
        machine = ParagonModel(2, 2)
        prog = c.program(machine, {"N": 0, "M": 0})
        assert execute(prog, machine) == execute_python(prog, machine)
        assert prog.comm_events() == prog.comm_events_python()

    def test_count_nonlocal_virtual_matches_python(self, workloads):
        for wl in workloads[:6]:
            nest = wl.resolve()
            c = compile_nest(nest, m=2, params=dict(wl.params), name=wl.name)
            prog = c.program(ParagonModel(2, 2), dict(wl.params))
            ref = {}
            for ev in prog.comm_events_python():
                if ev.sender_virtual != ev.receiver_virtual:
                    ref[ev.access_label] = ref.get(ev.access_label, 0) + 1
            assert count_nonlocal_virtual(prog) == ref, wl.name


class TestMemoization:
    def test_comm_events_memoized_on_instance(self):
        _c, prog, _machine = _compiled_program(motivating_example())
        first = prog.comm_events()
        assert prog.comm_events() is first

    def test_execute_and_count_share_batches(self):
        _c, prog, machine = _compiled_program(motivating_example())
        execute(prog, machine)
        first = prog.comm_batches()
        count_nonlocal_virtual(prog)
        assert prog.comm_batches() is first

    def test_rotation_invalidates_cached_batches(self):
        """A component rotation after pricing must not leave stale
        virtual coordinates in any cache: both executors agree before
        and after."""
        from repro.linalg import IntMat

        c = compile_nest(motivating_example(), m=2, params=PARAMS)
        machine = ParagonModel(2, 2)
        prog = c.program(machine, PARAMS)
        execute(prog, machine)  # populate mapping + program caches
        al = c.mapping.alignment
        root = next(iter(set(al.component_root_of.values())))
        al.rotate_component(root, IntMat([[0, 1], [1, 0]]))
        rotated = c.program(machine, PARAMS)
        assert execute(rotated, machine) == execute_python(rotated, machine)
        # the old program instance also recomputes instead of serving
        # pre-rotation arrays
        assert execute(prog, machine) == execute_python(prog, machine)

    def test_virtual_stage_shared_across_foldings(self):
        """Two programs over the same mapping (different meshes — the
        campaign's price-many case) share one virtual-stage cache entry
        on the mapping."""
        c = compile_nest(motivating_example(), m=2, params=PARAMS)
        p1 = c.program(ParagonModel(2, 2), PARAMS)
        p1.comm_batches()
        cache = c.mapping.__dict__.get("_virtual_batch_cache")
        assert cache is not None and len(cache) == 1
        p2 = c.program(ParagonModel(4, 4), PARAMS)
        p2.comm_batches()
        assert len(c.mapping.__dict__["_virtual_batch_cache"]) == 1

    def test_distinct_programs_price_identically(self):
        """Memoization never leaks across different foldings."""
        c = compile_nest(motivating_example(), m=2, params=PARAMS)
        m_small, m_big = ParagonModel(2, 2), ParagonModel(4, 4)
        r_small = execute(c.program(m_small, PARAMS), m_small)
        r_big = execute(c.program(m_big, PARAMS), m_big)
        assert r_small == execute_python(c.program(m_small, PARAMS), m_small)
        assert r_big == execute_python(c.program(m_big, PARAMS), m_big)


class TestFoldArray:
    def test_fold_array_matches_scalar_fold(self):
        import numpy as np

        from repro.machine import Mesh2D
        from repro.runtime import Folding

        for schemes in (None, ("block", "grouped"), ("cyclic_block", "cyclic")):
            kw = {}
            if schemes == ("block", "grouped"):
                kw = {"scheme_kw": ({}, {"k": 3})}
            elif schemes == ("cyclic_block", "cyclic"):
                kw = {"scheme_kw": ({"block": 2}, {})}
            f = Folding(
                mesh=Mesh2D(3, 4), extent=12,
                **({"schemes": schemes, **kw} if schemes else {}),
            )
            virt = np.array(
                [[v, w] for v in range(-15, 16, 3) for w in range(-5, 20, 4)],
                dtype=np.int64,
            )
            folded = f.fold_array(virt)
            for row, out in zip(virt.tolist(), folded.tolist()):
                assert tuple(out) == f.fold(tuple(row))

    def test_fold_array_shape_mismatch_rejected(self):
        import numpy as np

        from repro.machine import Mesh2D
        from repro.runtime import Folding

        f = Folding(mesh=Mesh2D(2, 2), extent=4)
        with pytest.raises(ValueError, match="expected"):
            f.fold_array(np.zeros((3, 3), dtype=np.int64))
