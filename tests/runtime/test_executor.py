"""Tests for the runtime executor: folding, message extraction,
vectorization and costing on the motivating example."""

import pytest

from repro.alignment import two_step_heuristic, var_node
from repro.ir import motivating_example
from repro.linalg import IntMat
from repro.machine import CM5Model, Mesh2D, ParagonModel
from repro.runtime import (
    CommReport,
    Folding,
    MappedProgram,
    count_nonlocal_virtual,
    execute,
)

PARAMS = {"N": 3, "M": 3}


@pytest.fixture(scope="module")
def program():
    nest = motivating_example()
    mapping = two_step_heuristic(
        nest, m=2, root_allocations={var_node("a"): IntMat.identity(2)}
    )
    machine = ParagonModel(2, 2)
    folding = Folding(mesh=machine.mesh, extent=8)
    return MappedProgram(mapping=mapping, folding=folding, params=PARAMS)


@pytest.fixture(scope="module")
def machine():
    return ParagonModel(2, 2)


class TestFolding:
    def test_fold_basic(self):
        f = Folding(mesh=Mesh2D(2, 2), extent=4)
        assert f.fold((0, 0)) == (0, 0)
        assert f.fold((1, 1)) == (1, 1)  # cyclic default
        assert f.fold((2, 2)) == (0, 0)

    def test_fold_negative(self):
        f = Folding(mesh=Mesh2D(2, 2), extent=4)
        # negative virtual coordinates wrap into the window
        assert f.fold((-1, 0))[0] in (0, 1)

    def test_fold_extra_dims_rejected(self):
        """Extra virtual dimensions are no longer silently summed away:
        a rank mismatch is a friendly error."""
        f = Folding(mesh=Mesh2D(2, 2), extent=4)
        with pytest.raises(ValueError, match="virtual grid dimension m"):
            f.fold((1, 1, 1))

    def test_fold_missing_dims_rejected(self):
        f = Folding(mesh=Mesh2D(2, 2), extent=4)
        with pytest.raises(ValueError, match="3-D mesh|2-D mesh"):
            f.fold((3,))

    def test_fold_3d_mesh(self):
        from repro.machine import Mesh3D

        f = Folding(mesh=Mesh3D(2, 2, 2), extent=4)
        assert f.rank == 3
        assert f.fold((1, 2, 3)) == (1, 0, 1)  # cyclic per dimension
        with pytest.raises(ValueError, match="m must"):
            f.fold((1, 2))

    def test_fold_3d_schemes_per_dimension(self):
        from repro.machine import Mesh3D

        f = Folding(
            mesh=Mesh3D(2, 2, 2), extent=4,
            schemes=("block", "cyclic", "block"),
        )
        assert f.fold((3, 3, 0)) == (1, 1, 0)

    def test_scheme_count_must_match_rank(self):
        with pytest.raises(ValueError, match="one distribution scheme"):
            Folding(mesh=Mesh2D(2, 2), extent=4, schemes=("cyclic",))

    def test_row_col_spelling_rejected_on_3d_mesh(self):
        """The 2-D row/col scheme spelling cannot silently degrade to
        all-cyclic on a higher-rank mesh."""
        from repro.machine import Mesh3D

        with pytest.raises(ValueError, match="only apply to"):
            Folding(mesh=Mesh3D(2, 2, 2), extent=4, row_scheme="block")

    def test_mixing_schemes_and_row_col_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            Folding(
                mesh=Mesh2D(2, 2), extent=4,
                schemes=("cyclic", "cyclic"), row_scheme="block",
            )

    def test_block_scheme(self):
        f = Folding(mesh=Mesh2D(2, 2), extent=4, row_scheme="block")
        assert f.fold((0, 0))[0] == 0
        assert f.fold((3, 0))[0] == 1


class TestCommEvents:
    def test_local_accesses_have_equal_virtuals(self, program):
        events = program.comm_events()
        local_labels = program.mapping.alignment.local_labels
        for ev in events:
            if ev.access_label in local_labels:
                assert ev.sender_virtual == ev.receiver_virtual

    def test_residual_accesses_move_data(self, program):
        counts = count_nonlocal_virtual(program)
        assert set(counts) == {"F3", "F6", "F8"}
        assert all(v > 0 for v in counts.values())

    def test_event_count_matches_domain(self, program):
        nest = program.mapping.alignment.nest
        events = program.comm_events()
        expected = sum(
            s.domain_size(PARAMS) * len(s.accesses) for s in nest.statements
        )
        assert len(events) == expected

    def test_read_direction(self, program):
        # for reads, the receiver is the statement processor
        ev = next(
            e for e in program.comm_events() if e.access_label == "F6"
        )
        # find the matching index: receiver must equal M_S2 @ idx
        assert ev.receiver_virtual is not None


class TestExecute:
    def test_report_structure(self, program, machine):
        rep = execute(program, machine)
        assert isinstance(rep, CommReport)
        assert rep.stats("F2").classification == "local"
        assert rep.stats("F2").time == 0.0
        assert rep.stats("F6").classification == "macro"
        assert rep.stats("F3").classification == "decomposed"
        assert rep.total_time > 0

    def test_local_cost_zero(self, program, machine):
        rep = execute(program, machine)
        for lab in program.mapping.alignment.local_labels:
            assert rep.stats(lab).time == 0.0
            assert rep.stats(lab).messages_after_vectorization == 0

    def test_vectorization_reduces_messages(self, program, machine):
        rep = execute(program, machine)
        s = rep.stats("F3")
        assert s.messages_after_vectorization <= s.messages_before_vectorization

    def test_collectives_price_macros(self, program, machine):
        cm5 = CM5Model()
        rep = execute(program, machine, collectives=cm5)
        assert rep.stats("F6").macro_ops > 0

    def test_describe(self, program, machine):
        text = execute(program, machine).describe()
        assert "F6" in text and "total:" in text
