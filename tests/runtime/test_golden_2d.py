"""Golden 2-D regression: the dimension-generic refactor of the
machine/runtime layers (N-D folding, MachineModel registry, generic
phase timing) must not move a single number on the paper's example
nests.

The expected values below were recorded from the pre-refactor
implementation (hard-wired ``Mesh2D``/``ParagonModel``, 2-tuple
folding) and pin the full ``CommReport``: totals plus the per-access
classification / event / message / volume / time breakdown.
"""

import pytest

from repro import compile_nest
from repro.ir import motivating_example, platonoff_example
from repro.machine import ParagonModel

# per-access golden rows: classification, events, virtual_local,
# phys_local, messages_after_vectorization, volume, time
GOLDEN_MOTIVATING = {
    "totals": {"time": 99.5, "messages": 8, "volume": 67},
    "per_access": {
        "F1": ("local", 9, 9, 0, 0, 0, 0.0),
        "F2": ("local", 9, 9, 0, 0, 0, 0.0),
        "F3": ("decomposed", 9, 0, 5, 2, 4, 22.5),
        "F4": ("local", 9, 9, 0, 0, 0, 0.0),
        "F5": ("local", 54, 54, 0, 0, 0, 0.0),
        "F6": ("macro", 54, 0, 27, 4, 27, 32.5),
        "F7": ("local", 54, 54, 0, 0, 0, 0.0),
        "F8": ("macro", 54, 0, 18, 2, 36, 44.5),
    },
}

GOLDEN_PLATONOFF = {
    "totals": {"time": 0.0, "messages": 0, "volume": 0},
    "per_access": {
        "Fa": ("local", 81, 81, 0, 0, 0, 0.0),
        "Fb": ("local", 81, 81, 0, 0, 0, 0.0),
    },
}


def _check(report, golden):
    t = golden["totals"]
    assert report.total_time == t["time"]
    assert report.total_messages == t["messages"]
    assert report.total_volume == t["volume"]
    assert set(report.per_access) == set(golden["per_access"])
    for label, row in golden["per_access"].items():
        s = report.stats(label)
        got = (
            s.classification,
            s.events,
            s.virtual_local,
            s.phys_local,
            s.messages_after_vectorization,
            s.volume,
            s.time,
        )
        assert got == row, f"{label}: {got} != {row}"


class TestGolden2D:
    def test_motivating_example_report_unchanged(self):
        c = compile_nest(motivating_example(), m=2)
        rep = c.run(ParagonModel(2, 2), params={"N": 3, "M": 3})
        _check(rep, GOLDEN_MOTIVATING)

    def test_platonoff_example_report_unchanged(self):
        c = compile_nest(platonoff_example(), m=2)
        rep = c.run(ParagonModel(2, 2), params={"n": 3})
        _check(rep, GOLDEN_PLATONOFF)

    def test_source_and_ir_paths_agree(self):
        """Compiling the motivating example from parser source prices
        identically to the IR factory path."""
        src = """
array a(2), b(3), c(3)
for i = 1..N:
  for j = 1..M:
    S1: b[i, j, 0] = g1(a[i+j, j+1], a[i-j, i+1], c[j, i, 0])
    for k = 1..N+M:
      S2: b[i, j, k] = g2(a[i+j+k+1, j+k])
      S3: c[i, j, j+k] = g3(a[i+j, i+j+1])
"""
        c = compile_nest(src, m=2)
        rep = c.run(ParagonModel(2, 2), params={"N": 3, "M": 3})
        _check(rep, GOLDEN_MOTIVATING)
