"""Tests for mesh topology, routing, contention model and event
simulator (conservation and ordering properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    CM5Model,
    CostParams,
    EventSimulator,
    Mesh2D,
    Message,
    ParagonModel,
    broadcast_tree_phases,
    message_counts,
    phase_time,
    reduction_tree_phases,
    translation_pattern,
)
from repro.distribution import BlockDistribution, CyclicDistribution, Distribution2D


class TestRouting:
    def test_local_no_links(self):
        m = Mesh2D(2, 2)
        assert m.xy_route((0, 0), (0, 0)) == []

    def test_route_includes_inj_eje(self):
        m = Mesh2D(2, 2)
        route = m.xy_route((0, 0), (1, 1))
        assert route[0] == ("inj", (0, 0))
        assert route[-1] == ("eje", (1, 1))
        # X (column) first, then Y
        assert ("net", (0, 0), (0, 1)) in route
        assert ("net", (0, 1), (1, 1)) in route

    def test_hops(self):
        m = Mesh2D(4, 4)
        assert m.hops((0, 0), (3, 3)) == 6

    def test_route_length_matches_hops(self):
        m = Mesh2D(3, 5)
        for src in m.nodes():
            for dst in m.nodes():
                r = m.xy_route(src, dst)
                if src == dst:
                    assert r == []
                else:
                    assert len(r) == m.hops(src, dst) + 2

    def test_outside_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(2, 2).xy_route((0, 0), (5, 0))


class TestContention:
    def test_single_message(self):
        m = Mesh2D(2, 2)
        p = CostParams(alpha=10, beta=1, gamma=0.5)
        rep = phase_time(m, [Message((0, 0), (0, 1), size=4)], p)
        assert rep.total_messages == 1
        assert rep.max_link_load == 4
        assert rep.time == 10 + 4 + 0.5

    def test_local_messages_free(self):
        m = Mesh2D(2, 2)
        rep = phase_time(m, [Message((0, 0), (0, 0), size=100)], CostParams())
        assert rep.time == 0
        assert rep.local_messages == 1

    def test_conflicting_messages_serialize(self):
        m = Mesh2D(1, 4)
        p = CostParams(alpha=0, beta=1, gamma=0)
        # both messages cross link (0,1)->(0,2)
        msgs = [
            Message((0, 0), (0, 3), size=5),
            Message((0, 1), (0, 2), size=5),
        ]
        rep = phase_time(m, msgs, p)
        assert rep.max_link_load == 10

    def test_fanout_serializes_at_sender(self):
        m = Mesh2D(2, 2)
        p = CostParams(alpha=7, beta=0, gamma=0)
        msgs = [Message((0, 0), d, size=1) for d in [(0, 1), (1, 0), (1, 1)]]
        rep = phase_time(m, msgs, p)
        assert rep.max_msgs_per_sender == 3
        assert rep.time == 21

    def test_decomposed_beats_general_shape(self):
        """The Table 2 phenomenon: T = L U implemented as two
        coalesced axis-parallel phases beats the direct general pattern
        (which the compiler cannot vectorize: one message per element).
        """
        from repro.linalg import IntMat
        from repro.decomp import L, U

        n = 12
        pm = ParagonModel(4, 4)
        dist = Distribution2D(
            rows=CyclicDistribution(n, 4), cols=CyclicDistribution(n, 4)
        )
        t = IntMat([[1, 3], [2, 7]])
        direct = pm.time_general(dist, t, size=4)
        split = pm.time_decomposed(dist, [L(2), U(3)], size=4)
        assert split < direct


class TestEventSim:
    def test_empty(self):
        sim = EventSimulator(Mesh2D(2, 2), CostParams())
        assert sim.run([]) == 0.0

    def test_single_message_time(self):
        sim = EventSimulator(Mesh2D(1, 2), CostParams(alpha=0, beta=1, gamma=2))
        # wormhole: beta*size once + gamma per network hop (1 hop here)
        t = sim.run([Message((0, 0), (0, 1), size=2)])
        assert t == 4.0

    def test_conflicting_paths_serialize(self):
        sim = EventSimulator(Mesh2D(1, 4), CostParams(alpha=0, beta=1, gamma=0))
        msgs = [
            Message((0, 0), (0, 3), size=5),
            Message((0, 1), (0, 2), size=5),
        ]
        # both need link (0,1)->(0,2): they serialize
        assert sim.run(msgs) == 10.0

    def test_disjoint_paths_overlap(self):
        sim = EventSimulator(Mesh2D(1, 4), CostParams(alpha=0, beta=1, gamma=0))
        msgs = [
            Message((0, 0), (0, 1), size=5),
            Message((0, 2), (0, 3), size=5),
        ]
        assert sim.run(msgs) == 5.0

    def test_never_faster_than_bottleneck(self):
        mesh = Mesh2D(2, 4)
        params = CostParams(alpha=2, beta=1, gamma=0.1)
        msgs = [
            Message((0, 0), (1, 3), size=3),
            Message((0, 1), (1, 2), size=2),
            Message((1, 0), (0, 0), size=4),
        ]
        analytic = phase_time(mesh, msgs, params)
        simulated = EventSimulator(mesh, params).run(msgs)
        assert simulated >= analytic.max_link_load * params.beta

    def test_agrees_on_ordering_with_analytic(self):
        from repro.linalg import IntMat
        from repro.machine import affine_pattern, decomposed_phases
        from repro.decomp import L, U

        n = 8
        pm = ParagonModel(4, 2)
        dist = Distribution2D(
            rows=CyclicDistribution(n, 4), cols=CyclicDistribution(n, 2)
        )
        t = IntMat([[1, 3], [2, 7]])
        direct = pm.time_event_driven(
            [affine_pattern(dist, t, size=2, merge=False)]
        )
        split = pm.time_event_driven(decomposed_phases(dist, [L(2), U(3)], size=2))
        assert split < direct


class TestCollectivePatterns:
    def test_broadcast_covers_everyone(self):
        mesh = Mesh2D(2, 4)
        phases = broadcast_tree_phases(mesh, root=(0, 0), size=1)
        receivers = {m.dst for ph in phases for m in ph}
        assert receivers == set(mesh.nodes()) - {(0, 0)}
        # binomial: ceil(log2(8)) = 3 phases
        assert len(phases) == 3

    def test_reduction_mirrors_broadcast(self):
        mesh = Mesh2D(2, 2)
        red = reduction_tree_phases(mesh, root=(0, 0))
        senders = {m.src for ph in red for m in ph}
        assert senders == set(mesh.nodes()) - {(0, 0)}

    def test_message_counts(self):
        msgs = [
            Message((0, 0), (0, 0), size=5),
            Message((0, 0), (0, 1), size=2),
        ]
        c = message_counts(msgs)
        assert c == {"total": 2, "remote": 1, "local": 1, "volume": 2}


class TestCM5:
    def test_table1_ordering(self):
        cm5 = CM5Model(nodes=32)
        red, bc, tr, gen = (
            cm5.reduction_time(),
            cm5.broadcast_time(),
            cm5.translation_time(),
            cm5.general_time(),
        )
        assert red <= bc < tr < gen
        assert gen / bc > 8  # order-of-magnitude gap, as in Table 1

    def test_ratios_normalised(self):
        ratios = CM5Model().table1_ratios()
        assert ratios[0] == 1.0
        assert ratios == sorted(ratios)

    def test_tree_depth(self):
        assert CM5Model(nodes=32).tree_depth == 5
        assert CM5Model(nodes=1).tree_depth == 1
