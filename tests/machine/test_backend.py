"""The pluggable array backend (``REPRO_PRICE_BACKEND``): selection
knob semantics, friendly failure modes, the packed-key ``unique_rows``
fast path, and bit-identity of the array-native phase timing."""

import numpy as np
import pytest

from repro.machine import (
    BACKEND_ENV,
    CostParams,
    Mesh2D,
    Message,
    phase_time,
    phase_time_arrays,
    price_backend,
    set_price_backend,
)
from repro.machine.backend import unique_rows
from repro.machine.topology3d import Mesh3D, Message3


class TestBackendSelection:
    def test_default_is_numpy(self):
        assert price_backend() == "numpy"

    def test_set_returns_previous(self):
        prev = set_price_backend("numpy")
        assert prev == "numpy"
        assert price_backend() == "numpy"

    def test_unknown_name_is_friendly(self):
        with pytest.raises(ValueError, match="unknown price backend"):
            set_price_backend("torch")
        with pytest.raises(ValueError, match=BACKEND_ENV):
            set_price_backend("torch")
        assert price_backend() == "numpy"  # selection unchanged

    def test_missing_cupy_is_friendly(self):
        # the container has no cupy; selecting it must raise eagerly
        # with a message naming the knob and the fix — never a bare
        # ModuleNotFoundError mid-campaign
        with pytest.raises(RuntimeError, match="cupy"):
            set_price_backend("cupy")
        with pytest.raises(RuntimeError, match="numpy"):
            set_price_backend("cupy")
        assert price_backend() == "numpy"


class TestUniqueRows:
    def rows(self, rng, n, cols, high):
        return rng.integers(0, high, size=(n, cols), dtype=np.int64)

    @pytest.mark.parametrize("high", [2, 7, 64])
    @pytest.mark.parametrize("cols", [2, 4, 7])
    def test_packed_matches_axis_unique(self, cols, high):
        rng = np.random.default_rng(cols * 100 + high)
        arr = self.rows(rng, 500, cols, high)
        uniq, counts = unique_rows(arr)
        want_u, want_c = np.unique(arr, axis=0, return_counts=True)
        assert np.array_equal(uniq, want_u)
        assert np.array_equal(counts, want_c)

    def test_negative_values_fall_back(self):
        arr = np.array([[1, -2], [1, -2], [0, 5]], dtype=np.int64)
        uniq, counts = unique_rows(arr)
        want_u, want_c = np.unique(arr, axis=0, return_counts=True)
        assert np.array_equal(uniq, want_u)
        assert np.array_equal(counts, want_c)

    def test_wide_values_fall_back(self):
        # 3 columns x 2**40 values cannot pack into 63 bits
        arr = np.array(
            [[2**40, 1, 2**40], [2**40, 1, 2**40], [0, 0, 1]],
            dtype=np.int64,
        )
        uniq, counts = unique_rows(arr)
        want_u, want_c = np.unique(arr, axis=0, return_counts=True)
        assert np.array_equal(uniq, want_u)
        assert np.array_equal(counts, want_c)

    def test_empty(self):
        arr = np.empty((0, 4), dtype=np.int64)
        uniq, counts = unique_rows(arr)
        assert uniq.shape == (0, 4)
        assert counts.shape == (0,)


class TestPhaseTimeArrays:
    """The array-native ``time_phase`` surface must price exactly like
    the ``Message``-object path it replaces."""

    def random_messages_2d(self, rng, mesh, n):
        coords = rng.integers(
            0, (mesh.p, mesh.q), size=(n, 2, 2), dtype=np.int64
        )
        sizes = rng.integers(1, 50, size=n, dtype=np.int64)
        msgs = [
            Message(src=tuple(c[0]), dst=tuple(c[1]), size=int(s))
            for c, s in zip(coords.tolist(), sizes.tolist())
        ]
        return coords[:, 0], coords[:, 1], sizes, msgs

    @pytest.mark.parametrize("seed", range(5))
    def test_2d_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        mesh = Mesh2D(4, 3)
        params = CostParams()
        senders, receivers, sizes, msgs = self.random_messages_2d(
            rng, mesh, 40
        )
        want = phase_time(mesh, msgs, params)
        got = phase_time_arrays(mesh, senders, receivers, sizes, params)
        assert got == want

    @pytest.mark.parametrize("seed", range(3))
    def test_3d_bit_identical(self, seed):
        rng = np.random.default_rng(100 + seed)
        mesh = Mesh3D(3, 2, 2)
        params = CostParams()
        coords = rng.integers(0, (3, 2, 2), size=(30, 2, 3), dtype=np.int64)
        sizes = rng.integers(1, 50, size=30, dtype=np.int64)
        msgs = [
            Message3(src=tuple(c[0]), dst=tuple(c[1]), size=int(s))
            for c, s in zip(coords.tolist(), sizes.tolist())
        ]
        want = phase_time(mesh, msgs, params)
        got = phase_time_arrays(
            mesh, coords[:, 0], coords[:, 1], sizes, params
        )
        assert got == want

    def test_all_local(self):
        mesh = Mesh2D(4, 4)
        params = CostParams()
        senders = np.array([[1, 1], [2, 3]], dtype=np.int64)
        sizes = np.array([10, 20], dtype=np.int64)
        msgs = [
            Message(src=(1, 1), dst=(1, 1), size=10),
            Message(src=(2, 3), dst=(2, 3), size=20),
        ]
        assert phase_time_arrays(
            mesh, senders, senders, sizes, params
        ) == phase_time(mesh, msgs, params)

    def test_empty_phase(self):
        mesh = Mesh2D(4, 4)
        params = CostParams()
        empty = np.empty((0, 2), dtype=np.int64)
        assert phase_time_arrays(
            mesh, empty, empty, np.empty(0, dtype=np.int64), params
        ) == phase_time(mesh, [], params)
