"""Additional CM-5 model and contention-report tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    CM5Model,
    CostParams,
    Mesh2D,
    Message,
    phase_time,
    phased_time,
    total_time,
)


class TestCM5Parameters:
    def test_scaling_with_nodes(self):
        small = CM5Model(nodes=8)
        big = CM5Model(nodes=512)
        # collectives grow logarithmically with machine size
        assert big.reduction_time(0) > small.reduction_time(0)
        assert big.reduction_time(0) - small.reduction_time(0) <= 7 * big.hw_cycle

    def test_translation_independent_of_nodes(self):
        assert CM5Model(nodes=8).translation_time(64) == CM5Model(
            nodes=512
        ).translation_time(64)

    @given(st.integers(1, 2000))
    @settings(max_examples=50, deadline=None)
    def test_ordering_all_sizes(self, size):
        cm5 = CM5Model()
        assert cm5.reduction_time(size) <= cm5.broadcast_time(size)
        assert cm5.translation_time(size) < cm5.general_time(size)

    def test_large_payload_collectives_still_cheap(self):
        cm5 = CM5Model()
        assert cm5.broadcast_time(10_000) < cm5.general_time(10_000)


class TestPhaseReports:
    def test_phased_time_and_total(self):
        mesh = Mesh2D(2, 2)
        params = CostParams(alpha=1, beta=1, gamma=0)
        phases = [
            [Message((0, 0), (0, 1), size=2)],
            [Message((0, 1), (1, 1), size=3)],
        ]
        reports = phased_time(mesh, phases, params)
        assert len(reports) == 2
        assert total_time(reports) == sum(r.time for r in reports)

    def test_report_describe(self):
        mesh = Mesh2D(2, 2)
        rep = phase_time(mesh, [Message((0, 0), (1, 1), size=4)], CostParams())
        text = rep.describe()
        assert "link_load" in text and "msgs=1" in text

    def test_empty_phase(self):
        rep = phase_time(Mesh2D(2, 2), [], CostParams())
        assert rep.time == 0.0
        assert rep.total_messages == 0

    def test_gamma_latency_component(self):
        mesh = Mesh2D(1, 5)
        p = CostParams(alpha=0, beta=0, gamma=2.0)
        rep = phase_time(mesh, [Message((0, 0), (0, 4), size=1)], p)
        assert rep.time == 8.0  # 4 hops * gamma

    def test_cost_params_scaled(self):
        p = CostParams().scaled(alpha=99.0)
        assert p.alpha == 99.0
        assert p.beta == CostParams().beta
