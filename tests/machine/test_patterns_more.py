"""Additional pattern-generator and model tests: coalescing,
translations, boundary behaviour, parameter scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp import L, U
from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    Distribution2D,
    GroupedDistribution,
)
from repro.linalg import IntMat
from repro.machine import (
    CostParams,
    Mesh2D,
    Message,
    ParagonModel,
    affine_pattern,
    coalesce,
    decomposed_phases,
    message_counts,
    translation_pattern,
)


def _dist(n=8, p=2, q=2):
    return Distribution2D(BlockDistribution(n, p), BlockDistribution(n, q))


class TestCoalesce:
    def test_merges_pairs(self):
        msgs = [
            Message((0, 0), (0, 1), size=2),
            Message((0, 0), (0, 1), size=3),
            Message((0, 0), (1, 1), size=1),
        ]
        merged = coalesce(msgs)
        assert len(merged) == 2
        sizes = {(m.src, m.dst): m.size for m in merged}
        assert sizes[((0, 0), (0, 1))] == 5

    def test_volume_conserved(self):
        msgs = [
            Message((0, 0), (1, 1), size=k) for k in range(1, 6)
        ]
        merged = coalesce(msgs)
        assert sum(m.size for m in merged) == sum(m.size for m in msgs)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_conservation(self, seed):
        import random

        rng = random.Random(seed)
        nodes = [(i, j) for i in range(2) for j in range(2)]
        msgs = [
            Message(rng.choice(nodes), rng.choice(nodes), size=rng.randint(1, 5))
            for _ in range(rng.randint(0, 20))
        ]
        merged = coalesce(msgs)
        assert sum(m.size for m in merged) == sum(m.size for m in msgs)
        assert len({(m.src, m.dst) for m in merged}) == len(merged)


class TestTranslation:
    def test_zero_offset_all_local(self):
        msgs = translation_pattern(_dist(), (0, 0))
        assert all(m.is_local for m in msgs)

    def test_no_wrap_drops_boundary(self):
        wrapped = translation_pattern(_dist(), (1, 0), wrap=True, merge=False)
        clipped = translation_pattern(_dist(), (1, 0), wrap=False, merge=False)
        assert len(clipped) < len(wrapped)

    def test_translation_cheaper_than_general(self):
        machine = ParagonModel(2, 2)
        dist = _dist()
        tr = machine.time_phase(translation_pattern(dist, (1, 0), size=4)).time
        gen = machine.time_general(dist, IntMat([[1, 3], [2, 7]]), size=4)
        assert tr < gen


class TestAffinePattern:
    def test_identity_all_local(self):
        msgs = affine_pattern(_dist(), IntMat.identity(2))
        assert all(m.is_local for m in msgs)

    def test_rejects_non_2x2(self):
        with pytest.raises(ValueError):
            affine_pattern(_dist(), IntMat.identity(3))

    def test_element_count_without_merge(self):
        n = 8
        msgs = affine_pattern(_dist(n), U(1), merge=False)
        assert len(msgs) == n * n

    def test_decomposed_phases_order(self):
        # phases apply right-to-left: factors [L, U] -> [U phase, L phase]
        dist = _dist()
        phases = decomposed_phases(dist, [L(1), U(1)], size=1)
        assert len(phases) == 2


class TestModelScaling:
    def test_time_scales_with_alpha(self):
        dist = _dist()
        t = IntMat([[1, 1], [1, 2]])
        cheap = ParagonModel(2, 2, params=CostParams(alpha=1.0))
        dear = ParagonModel(2, 2, params=CostParams(alpha=100.0))
        assert dear.time_general(dist, t) > cheap.time_general(dist, t)

    def test_time_scales_with_payload(self):
        machine = ParagonModel(2, 2)
        dist = _dist()
        t = IntMat([[1, 1], [1, 2]])
        assert machine.time_general(dist, t, size=8) > machine.time_general(
            dist, t, size=1
        )

    def test_bigger_mesh_shorter_or_equal_loads(self):
        # same virtual traffic spread over more processors: the
        # bottleneck link load cannot grow
        n = 16
        t = IntMat([[1, 1], [0, 1]])
        small = ParagonModel(2, 2)
        big = ParagonModel(4, 4)
        d_small = Distribution2D(
            CyclicDistribution(n, 2), CyclicDistribution(n, 2)
        )
        d_big = Distribution2D(
            CyclicDistribution(n, 4), CyclicDistribution(n, 4)
        )
        rep_small = small.time_phase(affine_pattern(d_small, t, size=2))
        rep_big = big.time_phase(affine_pattern(d_big, t, size=2))
        assert rep_big.max_link_load <= rep_small.max_link_load * 2


class TestGroupedInteraction:
    @given(st.integers(1, 6), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_grouped_never_worse_than_block_for_matching_stride(self, k, p):
        n = 2 * k * p  # keep classes balanced
        machine = ParagonModel(p, 2)
        grouped = Distribution2D(
            GroupedDistribution(n, p, k=k), BlockDistribution(n, 2)
        )
        block = Distribution2D(
            BlockDistribution(n, p), BlockDistribution(n, 2)
        )
        tg = machine.time_phase(affine_pattern(grouped, U(k), size=2)).time
        tb = machine.time_phase(affine_pattern(block, U(k), size=2)).time
        assert tg <= tb + 1e-9
