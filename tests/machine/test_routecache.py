"""Tests for the vectorized mesh-simulation core.

Covers the RouteCache link-id layout (2-D and 3-D), LRU behaviour,
bit-identity of the vectorized simulators against the pure-Python
baselines, and the reconciled hop semantics (``Mesh2D.hops`` ==
``route_hops(xy_route)`` everywhere — the head-of-line edge the
event simulator used to paper over with a ``max(0, ...)`` clamp).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    CostParams,
    EventSimulator,
    Mesh2D,
    Mesh3D,
    Message,
    Message3,
    RouteCache,
    RouteCache3D,
    clear_route_caches,
    phase_time,
    phase_time_3d,
    phase_time_3d_python,
    phase_time_python,
    route_cache_for,
)

PARAMS = CostParams(alpha=10.0, beta=1.0, gamma=0.5)


def random_messages(mesh, nmsg, seed, local_fraction=0.2):
    rng = random.Random(seed)
    nodes = list(mesh.nodes())
    msg_cls = Message if len(nodes[0]) == 2 else Message3
    out = []
    for _ in range(nmsg):
        if rng.random() < local_fraction:
            n = rng.choice(nodes)
            out.append(msg_cls(src=n, dst=n, size=rng.randint(1, 8)))
        else:
            src, dst = rng.sample(nodes, 2)
            out.append(msg_cls(src=src, dst=dst, size=rng.randint(1, 8)))
    return out


class TestRouteIds2D:
    def test_ids_match_xy_route_all_pairs(self):
        mesh = Mesh2D(4, 5)
        cache = RouteCache(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                ids = cache.link_ids(src, dst)
                ref = [cache.link_id(l) for l in mesh.xy_route(src, dst)]
                assert list(ids) == ref

    def test_ids_are_dense_and_unique(self):
        mesh = Mesh2D(3, 3)
        cache = RouteCache(mesh)
        seen = set()
        for src in mesh.nodes():
            for dst in mesh.nodes():
                ids = list(cache.link_ids(src, dst))
                assert len(set(ids)) == len(ids)  # no link twice per route
                assert all(0 <= i < cache.num_links for i in ids)
                seen.update(ids)
        # every link of the mesh is used by some pair
        assert seen == set(range(cache.num_links))

    def test_local_route_empty(self):
        cache = RouteCache(Mesh2D(2, 2))
        assert cache.link_ids((1, 1), (1, 1)).shape == (0,)

    def test_outside_mesh_rejected(self):
        cache = RouteCache(Mesh2D(2, 2))
        with pytest.raises(ValueError):
            cache.link_ids((0, 0), (5, 0))

    def test_arrays_read_only(self):
        cache = RouteCache(Mesh2D(3, 3))
        ids = cache.link_ids((0, 0), (2, 2))
        with pytest.raises(ValueError):
            ids[0] = 99


class TestRouteIds3D:
    def test_ids_match_xyz_route_all_pairs(self):
        mesh = Mesh3D(2, 3, 2)
        cache = RouteCache3D(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                ids = cache.link_ids(src, dst)
                ref = [cache.link_id(l) for l in mesh.xyz_route(src, dst)]
                assert list(ids) == ref

    def test_all_links_covered(self):
        mesh = Mesh3D(2, 2, 2)
        cache = RouteCache3D(mesh)
        seen = set()
        for src in mesh.nodes():
            for dst in mesh.nodes():
                seen.update(cache.link_ids(src, dst).tolist())
        assert seen == set(range(cache.num_links))


class TestRouteCacheLRU:
    def test_hit_returns_identical_object(self):
        cache = RouteCache(Mesh2D(3, 3))
        a = cache.link_ids((0, 0), (2, 2))
        b = cache.link_ids((0, 0), (2, 2))
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_respects_lru_bound(self):
        cache = RouteCache(Mesh2D(3, 3), maxsize=2)
        cache.link_ids((0, 0), (1, 1))
        cache.link_ids((0, 0), (2, 2))
        cache.link_ids((0, 0), (0, 1))  # evicts the (1,1) entry
        assert len(cache) == 2
        assert ((0, 0), (1, 1)) not in cache
        assert ((0, 0), (2, 2)) in cache

    def test_lru_recency_ordering(self):
        cache = RouteCache(Mesh2D(3, 3), maxsize=2)
        cache.link_ids((0, 0), (1, 1))
        cache.link_ids((0, 0), (2, 2))
        cache.link_ids((0, 0), (1, 1))  # refresh -> (2,2) is now oldest
        cache.link_ids((0, 0), (0, 1))
        assert ((0, 0), (1, 1)) in cache
        assert ((0, 0), (2, 2)) not in cache

    def test_stats_and_clear(self):
        cache = RouteCache(Mesh2D(2, 2))
        cache.link_ids((0, 0), (1, 1))
        cache.link_ids((0, 0), (1, 1))
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["size"] == 1
        cache.clear()
        assert cache.stats()["size"] == 0 and cache.hits == 0

    def test_registry_shares_cache_per_mesh(self):
        clear_route_caches()
        c1 = route_cache_for(Mesh2D(4, 4))
        c2 = route_cache_for(Mesh2D(4, 4))
        assert c1 is c2
        c3 = route_cache_for(Mesh3D(2, 2, 2))
        assert isinstance(c3, RouteCache3D)


class TestVectorizedBitIdentity:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_phase_time_matches_python(self, seed):
        mesh = Mesh2D(4, 5)
        msgs = random_messages(mesh, 30, seed)
        assert phase_time(mesh, msgs, PARAMS) == phase_time_python(
            mesh, msgs, PARAMS
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_eventsim_matches_python(self, seed):
        mesh = Mesh2D(4, 5)
        msgs = random_messages(mesh, 30, seed)
        sim = EventSimulator(mesh, PARAMS)
        assert sim.run(msgs) == sim.run_python(msgs)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_phase_time_3d_matches_python(self, seed):
        mesh = Mesh3D(2, 3, 2)
        msgs = random_messages(mesh, 20, seed)
        assert phase_time_3d(mesh, msgs, PARAMS) == phase_time_3d_python(
            mesh, msgs, PARAMS
        )

    def test_empty_phase(self):
        mesh = Mesh2D(2, 2)
        assert phase_time(mesh, [], PARAMS) == phase_time_python(mesh, [], PARAMS)
        assert EventSimulator(mesh, PARAMS).run([]) == 0.0

    def test_huge_sizes_stay_exact(self):
        """Loads past 2**53 leave the float64 bincount fast path; the
        fallback must stay bit-identical to the Python dict sums."""
        mesh = Mesh2D(2, 2)
        big = 2 ** 52
        msgs = [Message((0, 0), (1, 1), size=big) for _ in range(5)]
        fast = phase_time(mesh, msgs, PARAMS)
        slow = phase_time_python(mesh, msgs, PARAMS)
        assert fast == slow
        assert fast.max_link_load == 5 * big  # exact, no float rounding

    def test_all_local_phase(self):
        mesh = Mesh2D(2, 2)
        msgs = [Message((0, 0), (0, 0), size=5), Message((1, 1), (1, 1))]
        rep = phase_time(mesh, msgs, PARAMS)
        assert rep.time == 0.0 and rep.local_messages == 2
        assert rep == phase_time_python(mesh, msgs, PARAMS)


class TestHopSemantics:
    """Satellite: Mesh.hops and route lengths must agree everywhere."""

    def test_route_hops_agree_2d(self):
        mesh = Mesh2D(4, 5)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                route = mesh.xy_route(src, dst)
                assert Mesh2D.route_hops(route) == mesh.hops(src, dst)

    def test_route_hops_agree_3d(self):
        mesh = Mesh3D(2, 3, 2)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                route = mesh.xyz_route(src, dst)
                assert Mesh3D.route_hops(route) == mesh.hops(src, dst)

    def test_neighbor_message_pays_one_hop(self):
        """A 1-hop neighbour message has route inj + net + eje: the
        simulator must charge gamma for exactly one hop, matching
        ``Mesh2D.hops`` (the old ``len(route) - 2`` clamp also gave 1
        here, but only because no remote route can be inj + eje only —
        the invariant now asserted above)."""
        mesh = Mesh2D(1, 2)
        params = CostParams(alpha=0.0, beta=2.0, gamma=7.0)
        sim = EventSimulator(mesh, params)
        msgs = [Message((0, 0), (0, 1), size=3)]
        expected = params.beta * 3 + params.gamma * 1
        assert sim.run(msgs) == expected
        assert sim.run_python(msgs) == expected
        rep = phase_time(mesh, msgs, params)
        assert rep.max_hops == 1

    def test_local_message_costs_nothing_in_sim(self):
        mesh = Mesh2D(2, 2)
        sim = EventSimulator(mesh, PARAMS)
        assert sim.run([Message((0, 0), (0, 0), size=100)]) == 0.0
