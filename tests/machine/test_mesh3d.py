"""Tests for the 3-D mesh substrate and the T3D model (the paper's
m = 3 case)."""

import pytest

from repro.decomp import elementary, unirow_decomposition, verify_factors
from repro.distribution import BlockDistribution, CyclicDistribution
from repro.linalg import IntMat
from repro.machine import (
    CostParams,
    Mesh3D,
    Message3,
    T3DModel,
    affine_pattern_3d,
    phase_time_3d,
)


class TestMesh3D:
    def test_size_and_nodes(self):
        m = Mesh3D(2, 3, 4)
        assert m.size == 24
        assert len(list(m.nodes())) == 24

    def test_route_local(self):
        m = Mesh3D(2, 2, 2)
        assert m.xyz_route((0, 0, 0), (0, 0, 0)) == []

    def test_route_length(self):
        m = Mesh3D(3, 3, 3)
        r = m.xyz_route((0, 0, 0), (2, 2, 2))
        assert len(r) == m.hops((0, 0, 0), (2, 2, 2)) + 2
        assert r[0][0] == "inj" and r[-1][0] == "eje"

    def test_route_dimension_order(self):
        m = Mesh3D(2, 2, 2)
        r = m.xyz_route((0, 0, 0), (1, 1, 1))
        # last axis moves first
        assert r[1] == ("net", (0, 0, 0), (0, 0, 1))

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Mesh3D(0, 1, 1)
        with pytest.raises(ValueError):
            Mesh3D(2, 2, 2).xyz_route((0, 0, 0), (5, 0, 0))


class TestTiming3D:
    def test_single_message(self):
        mesh = Mesh3D(2, 2, 2)
        p = CostParams(alpha=10, beta=1, gamma=0.5)
        rep = phase_time_3d(mesh, [Message3((0, 0, 0), (0, 0, 1), size=4)], p)
        assert rep.time == 10 + 4 + 0.5
        # the full utilization breakdown comes back, like in 2-D
        assert rep.max_link_load == 4
        assert rep.max_hops == 1
        assert rep.total_messages == 1
        assert rep.total_volume == 4

    def test_local_free(self):
        mesh = Mesh3D(2, 2, 2)
        rep = phase_time_3d(
            mesh, [Message3((0, 0, 0), (0, 0, 0), 9)], CostParams()
        )
        assert rep.time == 0
        assert rep.local_messages == 1

    def test_t3d_time_phase_returns_report(self):
        """T3DModel.time_phase exposes the same PhaseReport surface as
        ParagonModel (formerly a bare float)."""
        from repro.machine import PhaseReport

        machine = T3DModel(2, 2, 2)
        rep = machine.time_phase([Message3((0, 0, 0), (1, 1, 1), size=2)])
        assert isinstance(rep, PhaseReport)
        assert rep.time > 0 and rep.max_hops == 3

    def test_t3d_event_driven_cross_check(self):
        """The event simulator runs on the 3-D mesh — the same
        cross-check Paragon has: for a conflict-free phase the makespan
        is the transfer+pipeline term, and the analytic model is an
        upper bound (it additionally charges the sender start-up)."""
        machine = T3DModel(2, 2, 2)
        phase = [Message3((0, 0, 0), (1, 1, 1), size=2)]
        event = machine.time_event_driven([phase])
        p = machine.params
        assert event == p.beta * 2 + p.gamma * 3
        assert event <= machine.time_phases([phase])


class TestT3DDecomposition:
    def _dists(self, n=8, p=2):
        return (
            CyclicDistribution(n, p),
            CyclicDistribution(n, p),
            CyclicDistribution(n, p),
        )

    def test_3d_elementary_moves_one_axis(self):
        # elementary matrix with non-trivial row 0: moves axis 0 only
        e = elementary(3, 0, [1, 2, 1], diag=1)
        dists = self._dists()
        msgs = affine_pattern_3d(dists, e, merge=False)
        for m in msgs:
            if m.src != m.dst:
                assert m.src[1:] == m.dst[1:]

    def test_3d_decomposition_beats_general(self):
        """The m = 3 analogue of Table 2: a 3-D unirow decomposition of
        a general det-1 matrix beats the direct element-wise pattern."""
        t = IntMat([[1, 1, 0], [1, 2, 1], [0, 1, 2]])
        assert t.det() == 1
        factors = unirow_decomposition(t)
        assert verify_factors(t, factors)
        machine = T3DModel(2, 2, 2)
        dists = self._dists()
        direct = machine.time_general(dists, t, size=4)
        split = machine.time_decomposed(dists, factors, size=4)
        assert split < direct

    def test_pattern_wrap_and_merge(self):
        dists = self._dists(n=4)
        t = IntMat.identity(3)
        merged = affine_pattern_3d(dists, t, merge=True)
        # identity pattern: every message is local
        assert all(m.src == m.dst for m in merged)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            affine_pattern_3d(self._dists(), IntMat.identity(2))
