"""The MachineModel protocol and the name→factory registry."""

import pytest

from repro.machine import (
    CM5Model,
    MachineModel,
    MachineSpec,
    ParagonModel,
    T3DModel,
    machine_for_mesh,
    machine_names,
    machine_spec,
    make_machine,
    register_machine,
)


class TestRegistry:
    def test_builtin_names(self):
        names = machine_names()
        assert ("paragon", "cm5", "t3d") == names[:3]

    def test_make_machine_paragon(self):
        m = make_machine("paragon", (4, 4))
        assert isinstance(m, ParagonModel)
        assert m.mesh.dims == (4, 4)

    def test_make_machine_t3d(self):
        m = make_machine("t3d", (2, 3, 4))
        assert isinstance(m, T3DModel)
        assert m.mesh.dims == (2, 3, 4)

    def test_unknown_name_friendly(self):
        with pytest.raises(ValueError, match="unknown machine 't3e'"):
            make_machine("t3e", (4, 4))

    def test_rank_mismatch_friendly(self):
        with pytest.raises(ValueError, match="needs a 3-D mesh"):
            make_machine("t3d", (4, 4))
        with pytest.raises(ValueError, match="needs a 2-D mesh"):
            make_machine("paragon", (2, 2, 2))

    def test_nonpositive_mesh_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_machine("paragon", (0, 4))

    def test_cm5_is_paragon_plus_collectives(self):
        spec = machine_spec("cm5")
        machine = spec.make((4, 4))
        collectives = spec.make_collectives((4, 4))
        assert isinstance(machine, ParagonModel)
        assert isinstance(collectives, CM5Model)
        assert collectives.nodes == 16

    def test_point_to_point_machines_have_no_collectives(self):
        assert machine_spec("paragon").make_collectives((4, 4)) is None
        assert machine_spec("t3d").make_collectives((2, 2, 2)) is None

    def test_machine_for_mesh_by_rank(self):
        assert machine_for_mesh((4, 4)).name == "paragon"
        assert machine_for_mesh((2, 2, 2)).name == "t3d"
        with pytest.raises(ValueError, match="no machine model"):
            machine_for_mesh((2, 2, 2, 2))

    def test_custom_registration(self):
        spec = MachineSpec(
            name="_test_mesh3d",
            mesh_rank=3,
            factory=T3DModel,
            description="test-only alias",
        )
        try:
            register_machine(spec)
            assert "_test_mesh3d" in machine_names()
            m = make_machine("_test_mesh3d", (2, 2, 2))
            assert isinstance(m, T3DModel)
        finally:
            from repro.machine.model import _REGISTRY

            _REGISTRY.pop("_test_mesh3d", None)


class TestProtocolConformance:
    """Both presets satisfy the structural MachineModel interface and
    produce interchangeable PhaseReports."""

    @pytest.mark.parametrize(
        "machine", [ParagonModel(2, 2), T3DModel(2, 2, 2)]
    )
    def test_runtime_checkable(self, machine):
        assert isinstance(machine, MachineModel)

    def test_phase_report_surface_matches(self):
        from repro.machine import Message, PhaseReport

        rep2 = ParagonModel(2, 2).time_phase(
            [Message((0, 0), (1, 1), size=3)]
        )
        rep3 = T3DModel(2, 2, 2).time_phase(
            [Message((0, 0, 0), (1, 1, 1), size=3)]
        )
        assert isinstance(rep2, PhaseReport)
        assert isinstance(rep3, PhaseReport)
        # one more dimension, one more hop; same cost structure
        assert rep3.max_hops == rep2.max_hops + 1
        assert rep3.total_volume == rep2.total_volume

    def test_time_phases_total(self):
        from repro.machine import Message

        machine = T3DModel(2, 2, 2)
        phases = [
            [Message((0, 0, 0), (0, 0, 1), size=2)],
            [Message((0, 0, 1), (0, 1, 1), size=2)],
        ]
        total = machine.time_phases(phases)
        assert total == sum(machine.time_phase(p).time for p in phases)
