"""The persistent compile-cache disk tier.

Invariants: warm entries eliminate compiles entirely; stale, corrupt,
truncated, foreign or concurrently-written entries degrade to misses
(never errors); stored task records are byte-identical with the tier on
or off; and the directory travels through ``ExecutorConfig``/worker
init so spawn-context workers share the parent's cache.
"""

import os
import pickle

import pytest

from repro.campaign import (
    CampaignConfig,
    RunStore,
    clear_baseline_cache,
    clear_compile_cache,
    code_fingerprint,
    compile_cache_dir,
    compile_cache_stats,
    default_spec,
    run_campaign,
    set_compile_cache_dir,
)
from repro.campaign import runner
from repro.campaign.sweep import canonical_json


@pytest.fixture(scope="module")
def grid():
    spec = default_spec(seed=0, nests=3, meshes=((4, 4), (2, 2)))
    return spec, spec.expand()


@pytest.fixture(autouse=True)
def fresh_state():
    clear_compile_cache()
    clear_baseline_cache()
    prev = set_compile_cache_dir(None)
    yield
    set_compile_cache_dir(prev)
    clear_compile_cache()
    clear_baseline_cache()


def _run(tasks, tmp_path, name, disk=None, **cfg):
    clear_compile_cache()
    clear_baseline_cache()
    cfg.setdefault("jobs", 1)
    prev = set_compile_cache_dir(disk)
    try:
        outcome = run_campaign(
            tasks,
            str(tmp_path / f"{name}.jsonl"),
            CampaignConfig(**cfg),
            meta={},
        )
    finally:
        set_compile_cache_dir(prev)
    _, results = RunStore(str(tmp_path / f"{name}.jsonl")).load()
    return outcome, results


class TestDiskTierBasics:
    def test_default_off(self, grid, tmp_path):
        _spec, tasks = grid
        assert compile_cache_dir() is None
        _run(tasks, tmp_path, "plain")
        stats = compile_cache_stats()
        assert stats["disk_hits"] == stats["disk_misses"] == 0
        assert stats["disk_writes"] == 0

    def test_cold_run_populates_then_warm_run_hits(self, grid, tmp_path):
        _spec, tasks = grid
        nests = len({t.compile_key for t in tasks})
        disk = str(tmp_path / "cache")

        _run(tasks, tmp_path, "populate", disk=disk)
        stats = compile_cache_stats()
        assert stats["disk_writes"] == nests
        assert stats["disk_misses"] == nests
        assert stats["disk_hits"] == 0
        entries = os.listdir(disk)
        assert len(entries) == nests
        assert all(e.endswith(f"-{code_fingerprint()}.pkl") for e in entries)

        outcome, _ = _run(tasks, tmp_path, "warm", disk=disk)
        stats = compile_cache_stats()
        assert stats["disk_hits"] == nests
        assert stats["disk_misses"] == 0
        assert stats["disk_writes"] == 0
        assert outcome.ok == len(tasks)

    def test_warm_entries_skip_compilation_entirely(
        self, grid, tmp_path, monkeypatch
    ):
        _spec, tasks = grid
        disk = str(tmp_path / "cache")
        _run(tasks, tmp_path, "populate", disk=disk)

        import repro.driver as driver

        def boom(*args, **kwargs):
            raise AssertionError("compile_nest ran despite a warm disk cache")

        monkeypatch.setattr(driver, "compile_nest", boom)
        outcome, _ = _run(tasks, tmp_path, "warm", disk=disk)
        assert outcome.ok == len(tasks)
        assert outcome.errors == 0


class TestGoldenByteIdentity:
    def test_records_byte_identical_with_tier_on_or_off(self, grid, tmp_path):
        _spec, tasks = grid
        disk = str(tmp_path / "cache")
        _, plain = _run(tasks, tmp_path, "plain")
        _run(tasks, tmp_path, "populate", disk=disk)
        _, warm = _run(tasks, tmp_path, "warm", disk=disk)
        assert set(plain) == set(warm) == {t.task_id for t in tasks}
        for tid in plain:
            assert canonical_json(
                plain[tid].deterministic_dict()
            ) == canonical_json(warm[tid].deterministic_dict()), tid


class TestCorruptionDegradesToMisses:
    def _populate(self, grid, tmp_path):
        _spec, tasks = grid
        disk = str(tmp_path / "cache")
        _run(tasks, tmp_path, "populate", disk=disk)
        return tasks, disk

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda data: b"",  # truncated to nothing
            lambda data: b"not a pickle",
            lambda data: data[: len(data) // 2],  # torn write, no rename
            lambda data: pickle.dumps({"key": "wrong"}),
            lambda data: pickle.dumps([1, 2, 3]),
        ],
        ids=["empty", "garbage", "truncated", "foreign-key", "wrong-shape"],
    )
    def test_corrupt_entries_miss_and_rewrite(self, grid, tmp_path, mangle):
        tasks, disk = self._populate(grid, tmp_path)
        nests = len({t.compile_key for t in tasks})
        victim = os.path.join(disk, sorted(os.listdir(disk))[0])
        with open(victim, "rb") as fh:
            payload = fh.read()
        with open(victim, "wb") as fh:
            fh.write(mangle(payload))
        outcome, _ = _run(tasks, tmp_path, "recover", disk=disk)
        stats = compile_cache_stats()
        assert outcome.ok == len(tasks)
        assert outcome.errors == 0
        assert stats["disk_hits"] == nests - 1
        assert stats["disk_misses"] == 1
        assert stats["disk_writes"] == 1
        # the recompile repaired the entry in place
        assert open(victim, "rb").read() == payload

    def test_stale_fingerprint_misses_by_filename(
        self, grid, tmp_path, monkeypatch
    ):
        tasks, disk = self._populate(grid, tmp_path)
        nests = len({t.compile_key for t in tasks})
        monkeypatch.setattr(runner, "_code_fingerprint_cache", "0" * 12)
        outcome, _ = _run(tasks, tmp_path, "stale", disk=disk)
        stats = compile_cache_stats()
        assert outcome.ok == len(tasks)
        assert stats["disk_hits"] == 0
        assert stats["disk_misses"] == nests
        assert stats["disk_writes"] == nests
        # old and new generations coexist; neither clobbers the other
        assert len(os.listdir(disk)) == 2 * nests

    def test_concurrent_writer_temp_files_are_ignored(self, grid, tmp_path):
        tasks, disk = self._populate(grid, tmp_path)
        nests = len({t.compile_key for t in tasks})
        # a concurrent writer mid-store leaves only .tmp files behind
        leftover = os.path.join(disk, ".deadbeef-xyz.tmp")
        with open(leftover, "wb") as fh:
            fh.write(b"partial")
        outcome, _ = _run(tasks, tmp_path, "tmpfiles", disk=disk)
        assert outcome.ok == len(tasks)
        assert compile_cache_stats()["disk_hits"] == nests
        assert os.path.exists(leftover)  # never touched

    def test_last_complete_write_wins(self, grid, tmp_path):
        _spec, tasks = grid
        disk = str(tmp_path / "cache")
        task = tasks[0]
        prev = set_compile_cache_dir(disk)
        try:
            cw, _ = runner._compile_for_task(task)
            # two writers racing on the same key: both complete, the
            # rename is atomic, and the survivor loads cleanly
            runner._disk_store(task.compile_key, cw)
            runner._disk_store(task.compile_key, cw)
            assert runner._disk_load(task.compile_key) is not None
        finally:
            set_compile_cache_dir(prev)

    def test_unusable_directory_is_not_an_error(self, grid, tmp_path):
        # the "directory" is a regular file: makedirs and every open
        # under it fail, and the campaign must not care
        _spec, tasks = grid
        blocked = tmp_path / "blocked"
        blocked.write_bytes(b"in the way")
        outcome, _ = _run(tasks, tmp_path, "ro", disk=str(blocked))
        assert outcome.ok == len(tasks)
        assert outcome.errors == 0
        assert compile_cache_stats()["disk_writes"] == 0
        assert compile_cache_stats()["disk_hits"] == 0


class TestWorkerPassthrough:
    def test_dir_travels_through_executor_config(self, grid, tmp_path):
        from repro.campaign.executors.base import ExecutorConfig, init_worker

        disk = str(tmp_path / "cache")
        init_worker(
            ExecutorConfig(compile_cache_dir=disk),
            allow_kill=False,
            allow_hang=False,
        )
        try:
            assert compile_cache_dir() == disk
        finally:
            set_compile_cache_dir(None)

    def test_spawn_workers_populate_parent_directory(self, grid, tmp_path):
        # spawn workers re-import the runner with the env default
        # (no REPRO_CAMPAIGN_COMPILE_DIR set in this suite), so the
        # directory must arrive via worker init for entries to land
        _spec, tasks = grid
        nests = len({t.compile_key for t in tasks})
        disk = str(tmp_path / "cache")
        outcome, _ = _run(
            tasks,
            tmp_path,
            "spawned",
            disk=disk,
            jobs=2,
            executor="pool",
            mp_context="spawn",
        )
        assert outcome.ok == len(tasks)
        assert len(os.listdir(disk)) == nests
