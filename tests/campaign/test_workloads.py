"""Property tests for the seeded workload generator and the corpus."""

import pytest

from repro.alignment import two_step_heuristic
from repro.campaign import Workload, corpus, generate_workloads
from repro.ir import infer_schedules, parse_nest, schedule_is_legal

#: one generated nest per seed keeps the 50-seed sweep fast while still
#: exercising 50 independent RNG streams
SEEDS = range(50)


class TestGeneratorDeterminism:
    def test_same_seed_byte_identical(self):
        a = generate_workloads(7, 6)
        b = generate_workloads(7, 6)
        assert [w.source for w in a] == [w.source for w in b]
        assert [w.to_dict() for w in a] == [w.to_dict() for w in b]

    def test_prefix_stability(self):
        long = generate_workloads(3, 8)
        short = generate_workloads(3, 4)
        assert [w.source for w in short] == [w.source for w in long[:4]]

    def test_different_seeds_differ(self):
        a = generate_workloads(0, 4)
        b = generate_workloads(1, 4)
        assert [w.source for w in a] != [w.source for w in b]

    def test_partial_params_keep_nm_bound(self):
        # user bindings that name neither N nor M must not starve the
        # generator: defaults stay bound underneath
        (wl,) = generate_workloads(0, 1, params={"K": 4})
        assert wl.params["K"] == 4
        assert "N" in wl.params and "M" in wl.params


class TestGeneratorValidity:
    """Every generated nest parses, is legally schedulable, and survives
    the two-step heuristic — over >= 50 seeds."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_nest_is_valid(self, seed):
        (wl,) = generate_workloads(seed, 1)
        nest = parse_nest(wl.source, name=wl.name)  # parses
        assert nest.statements
        bounds = dict(wl.params)
        schedules = infer_schedules(nest, bounds)
        assert schedule_is_legal(schedules, bounds)
        result = two_step_heuristic(nest, m=2, schedules=schedules)  # no raise
        # every access is either zeroed out (local) or a classified residual
        total_accesses = sum(len(s.accesses) for s in nest.statements)
        assert result.local_count + len(result.optimized) == total_accesses

    def test_workload_roundtrip(self):
        (wl,) = generate_workloads(11, 1)
        again = Workload.from_dict(wl.to_dict())
        assert again == wl
        assert again.resolve().describe() == wl.resolve().describe()


class TestCorpus:
    def test_all_corpus_workloads_resolve_and_compile(self):
        from repro.driver import compile_nest

        entries = corpus()
        assert len(entries) >= 8
        names = {w.name for w in entries}
        assert {"example1", "example5", "matmul", "gauss", "adi"} <= names
        for wl in entries:
            nest = wl.resolve()
            compiled = compile_nest(
                nest,
                m=2,
                schedules=wl.resolve_schedules(nest),
                params=dict(wl.params),
                check_legality=wl.check_legality,
                name=wl.name,
            )
            assert compiled.mapping is not None

    def test_unknown_named_workload(self):
        with pytest.raises(KeyError):
            Workload(name="nope", kind="named").resolve()

    def test_bad_schedule_policy(self):
        (wl,) = generate_workloads(2, 1)
        wl.schedule = "bogus"
        with pytest.raises(ValueError):
            wl.resolve_schedules(wl.resolve())
