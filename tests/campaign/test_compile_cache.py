"""Compile-once/price-many: the runner's compile cache must change
*nothing* about what lands on disk — records are byte-identical to a
recompile-every-cell run — while compiling each nest once per grid.
"""

import pytest

from repro.campaign import (
    CampaignConfig,
    RunStore,
    clear_compile_cache,
    compile_cache_stats,
    default_spec,
    execute_task,
    group_by_compile_key,
    run_campaign,
    set_compile_cache_size,
)
from repro.campaign.sweep import canonical_json


@pytest.fixture(scope="module")
def multi_cell_grid():
    # 2 machines x 2 meshes = 4 cells per nest at m = 2
    spec = default_spec(
        seed=0, nests=3, meshes=((4, 4), (2, 2)),
    )
    return spec, spec.expand()


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestCompileKeyGrouping:
    def test_cells_of_one_nest_share_a_compile_key(self, multi_cell_grid):
        _spec, tasks = multi_cell_grid
        keys = {}
        for t in tasks:
            keys.setdefault((t.workload.name, t.m, t.rank_weights), set()).add(
                t.compile_key
            )
        for ident, ks in keys.items():
            assert len(ks) == 1, ident

    def test_compile_key_independent_of_machine_and_mesh(self, multi_cell_grid):
        _spec, tasks = multi_cell_grid
        by_key = {}
        for t in tasks:
            by_key.setdefault(t.compile_key, []).append(t)
        # 4 cells per compile key on this grid
        assert all(len(g) == 4 for g in by_key.values())
        for g in by_key.values():
            assert len({(t.machine, t.mesh) for t in g}) == 4

    def test_grouping_preserves_order(self, multi_cell_grid):
        _spec, tasks = multi_cell_grid
        groups = group_by_compile_key(tasks)
        flat = [t.task_id for g in groups for t in g]
        assert sorted(flat) == sorted(t.task_id for t in tasks)
        # tasks within a group keep grid order
        index = {t.task_id: i for i, t in enumerate(tasks)}
        for g in groups:
            positions = [index[t.task_id] for t in g]
            assert positions == sorted(positions)


class TestCacheBehaviour:
    def test_inline_run_compiles_once_per_nest(self, multi_cell_grid, tmp_path):
        _spec, tasks = multi_cell_grid
        outcome = run_campaign(
            tasks, str(tmp_path / "c.jsonl"), CampaignConfig(jobs=1), meta={}
        )
        nests = len({t.compile_key for t in tasks})
        assert outcome.compile_cache_misses == nests
        assert outcome.compile_cache_hits == len(tasks) - nests
        assert outcome.errors == 0
        stats = compile_cache_stats()
        assert stats["hits"] == outcome.compile_cache_hits
        assert stats["misses"] == outcome.compile_cache_misses

    def test_pool_run_compiles_once_per_nest(self, multi_cell_grid, tmp_path):
        _spec, tasks = multi_cell_grid
        outcome = run_campaign(
            tasks, str(tmp_path / "p.jsonl"), CampaignConfig(jobs=2), meta={}
        )
        nests = len({t.compile_key for t in tasks})
        # grouping pins every cell of one nest to one worker, so the
        # compile count is exact even under pool scheduling
        assert outcome.compile_cache_misses == nests
        assert outcome.compile_cache_hits == len(tasks) - nests

    def test_cache_disable_recompiles_every_cell(self, multi_cell_grid, tmp_path):
        _spec, tasks = multi_cell_grid
        prev = set_compile_cache_size(0)
        try:
            outcome = run_campaign(
                tasks, str(tmp_path / "d.jsonl"), CampaignConfig(jobs=1), meta={}
            )
        finally:
            set_compile_cache_size(prev)
        assert outcome.compile_cache_hits == 0
        assert outcome.compile_cache_misses == len(tasks)

    def test_lru_eviction_bounds_entries(self, multi_cell_grid):
        _spec, tasks = multi_cell_grid
        prev = set_compile_cache_size(2)
        try:
            for t in tasks:
                execute_task(t)
            stats = compile_cache_stats()
            assert stats["size"] <= 2
        finally:
            set_compile_cache_size(prev)


class TestGoldenByteIdentity:
    def test_records_byte_identical_to_recompiling(self, multi_cell_grid, tmp_path):
        """The golden check: cached and cache-disabled campaigns write
        records whose deterministic payloads (task ids, digests, counts,
        times, ratios — everything but wall-clock seconds) serialize to
        identical bytes."""
        _spec, tasks = multi_cell_grid
        cached_path = str(tmp_path / "cached.jsonl")
        plain_path = str(tmp_path / "plain.jsonl")

        run_campaign(tasks, cached_path, CampaignConfig(jobs=1), meta={})
        clear_compile_cache()
        prev = set_compile_cache_size(0)
        try:
            run_campaign(tasks, plain_path, CampaignConfig(jobs=1), meta={})
        finally:
            set_compile_cache_size(prev)

        _, cached = RunStore(cached_path).load()
        _, plain = RunStore(plain_path).load()
        assert set(cached) == set(plain) == {t.task_id for t in tasks}
        for tid in cached:
            assert canonical_json(
                cached[tid].deterministic_dict()
            ) == canonical_json(plain[tid].deterministic_dict()), tid

    def test_cache_hit_flag_never_reaches_disk(self, multi_cell_grid, tmp_path):
        _spec, tasks = multi_cell_grid
        path = str(tmp_path / "flags.jsonl")
        run_campaign(tasks, path, CampaignConfig(jobs=1), meta={})
        with open(path) as fh:
            assert "compile_cache_hit" not in fh.read()
        # ...and the loader leaves the in-memory flag unknown
        _, results = RunStore(path).load()
        assert all(r.compile_cache_hit is None for r in results.values())

    def test_resume_equivalence_with_cache(self, multi_cell_grid, tmp_path):
        """Interrupted-and-resumed equals uninterrupted, cache on."""
        _spec, tasks = multi_cell_grid
        full = str(tmp_path / "full.jsonl")
        part = str(tmp_path / "part.jsonl")
        run_campaign(tasks, full, CampaignConfig(jobs=1), meta={})
        run_campaign(tasks, part, CampaignConfig(jobs=1, max_tasks=5), meta={})
        clear_compile_cache()  # a fresh process resumes
        run_campaign(tasks, part, CampaignConfig(jobs=1), resume=True, meta={})
        _, a = RunStore(full).load()
        _, b = RunStore(part).load()
        assert {k: r.deterministic_dict() for k, r in a.items()} == {
            k: r.deterministic_dict() for k, r in b.items()
        }
