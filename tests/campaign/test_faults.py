"""The fault-injection harness: spec parsing, deterministic selection,
capability downgrades and the pure prediction used by the chaos gate."""

import pytest

from repro.campaign import faults
from repro.campaign.faults import (
    FaultClause,
    InjectedFault,
    parse_fault_spec,
    would_fault,
)


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


class TestParse:
    def test_single_clause_with_options(self):
        (c,) = parse_fault_spec("fail:p=0.25,seed=7")
        assert c.mode == "fail" and c.p == 0.25 and c.seed == 7

    def test_multiple_clauses(self):
        clauses = parse_fault_spec("kill:task=ab12,times=2;fail:p=0.1")
        assert [c.mode for c in clauses] == ["kill", "fail"]
        assert clauses[0].task == "ab12" and clauses[0].times == 2

    def test_counter_clause(self):
        (c,) = parse_fault_spec("hang:n=3")
        assert c.mode == "hang" and c.n == 3

    def test_empty_clauses_skipped(self):
        assert parse_fault_spec("; fail:p=1.0 ;") == [
            FaultClause(mode="fail", p=1.0)
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:p=0.5",  # unknown mode
            "fail:prob=0.5",  # unknown option
            "fail:p=two",  # non-numeric probability
            "fail:p=1.5",  # out of range
            "fail:times=x",  # non-integer
            "fail",  # no selector
            "fail:seed=3",  # selector-free options
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError, match="REPRO_FAULT_INJECT"):
            parse_fault_spec(bad)


class TestSelection:
    def test_probability_roll_is_deterministic(self):
        a = faults._roll(0, "fail", "deadbeef", 1)
        b = faults._roll(0, "fail", "deadbeef", 1)
        assert a == b and 0.0 <= a < 1.0

    def test_roll_varies_with_every_key_part(self):
        base = faults._roll(0, "fail", "deadbeef", 1)
        assert faults._roll(1, "fail", "deadbeef", 1) != base
        assert faults._roll(0, "kill", "deadbeef", 1) != base
        assert faults._roll(0, "fail", "deadbee0", 1) != base
        assert faults._roll(0, "fail", "deadbeef", 2) != base

    def test_retry_rerolls_probability_clause(self):
        # transient by construction: some attempt escapes a p<1 clause
        (c,) = parse_fault_spec("fail:p=0.5,seed=3")
        fates = [c.fires("abc123", attempt, 0) for attempt in range(1, 12)]
        assert True in fates and False in fates

    def test_task_prefix_clause_caps_at_times(self):
        (c,) = parse_fault_spec("fail:task=ab,times=2")
        assert c.fires("abcd", 1, 0) and c.fires("abcd", 2, 0)
        assert not c.fires("abcd", 3, 0)
        assert not c.fires("zzzz", 1, 0)

    def test_counter_clause_fires_once_per_process(self):
        faults.activate("fail:n=2")
        plan = faults._active
        assert plan.check("t1", 1) is None
        assert plan.check("t2", 1) == "fail"
        assert plan.check("t2", 2) is None

    def test_first_matching_clause_wins(self):
        clauses = parse_fault_spec("kill:task=ab;fail:task=ab")
        assert would_fault(clauses, "abcd") == "kill"

    def test_would_fault_predicts_and_skips_counter_clauses(self):
        clauses = parse_fault_spec("hang:n=1;fail:task=ab")
        assert would_fault(clauses, "abcd") == "fail"
        assert would_fault(clauses, "zzzz") is None


class TestInjection:
    def test_inactive_plan_is_a_noop(self):
        faults.deactivate()
        faults.maybe_inject("anything", 1)  # must not raise

    def test_fail_raises_injected_fault(self):
        faults.activate("fail:task=ab")
        with pytest.raises(InjectedFault, match="fault-injected"):
            faults.maybe_inject("abcd", 1)

    def test_kill_downgrades_without_capability(self):
        # an inline run must never SIGKILL the main process
        faults.activate("kill:task=ab", allow_kill=False)
        with pytest.raises(InjectedFault, match="downgraded"):
            faults.maybe_inject("abcd", 1)

    def test_hang_downgrades_without_capability(self):
        faults.activate("hang:task=ab", allow_hang=False)
        with pytest.raises(InjectedFault, match="downgraded"):
            faults.maybe_inject("abcd", 1)

    def test_activate_none_disarms(self):
        faults.activate("fail:task=ab")
        faults.activate(None)
        faults.maybe_inject("abcd", 1)  # must not raise

    def test_active_spec_reads_environment(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        assert faults.active_spec() is None
        monkeypatch.setenv(faults.FAULT_ENV, "fail:p=0.5")
        assert faults.active_spec() == "fail:p=0.5"
