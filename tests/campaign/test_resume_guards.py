"""Resume correctness under real failure: shard guards, failure-retry
compaction and a campaign process SIGKILLed mid-write."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignSpecMismatch,
    RunStore,
    default_spec,
    run_campaign,
    shard_tasks,
)


@pytest.fixture(scope="module")
def small_grid():
    spec = default_spec(
        seed=0, nests=4, include_corpus=False, machines=("paragon",),
    )
    return spec, spec.expand()


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)


class TestShardGuard:
    def test_resuming_with_wrong_shard_is_refused(self, small_grid, tmp_path):
        spec, tasks = small_grid
        path = str(tmp_path / "shard.jsonl")
        meta = {"spec_digest": spec.digest(), "shard": "0/2"}
        run_campaign(
            shard_tasks(tasks, 0, 2), path,
            CampaignConfig(max_tasks=1), meta=meta,
        )
        # same full-grid digest, different shard: must be refused
        with pytest.raises(CampaignSpecMismatch, match="shard 0/2"):
            run_campaign(
                shard_tasks(tasks, 1, 2), path, resume=True,
                meta={"spec_digest": spec.digest(), "shard": "1/2"},
            )
        # forgetting --shard entirely is refused too
        with pytest.raises(CampaignSpecMismatch, match="none \\(full grid\\)"):
            run_campaign(
                tasks, path, resume=True,
                meta={"spec_digest": spec.digest()},
            )
        # the original shard resumes fine
        outcome = run_campaign(
            shard_tasks(tasks, 0, 2), path, resume=True, meta=meta,
        )
        assert outcome.prior == 1

    def test_full_grid_checkpoint_refuses_shard_resume(
        self, small_grid, tmp_path
    ):
        spec, tasks = small_grid
        path = str(tmp_path / "full.jsonl")
        meta = {"spec_digest": spec.digest()}
        run_campaign(tasks, path, CampaignConfig(max_tasks=1), meta=meta)
        with pytest.raises(CampaignSpecMismatch, match="full grid"):
            run_campaign(
                shard_tasks(tasks, 0, 2), path, resume=True,
                meta={"spec_digest": spec.digest(), "shard": "0/2"},
            )


class TestRetryFailuresCompaction:
    def test_superseded_failure_lines_are_compacted_away(
        self, small_grid, tmp_path, monkeypatch
    ):
        spec, tasks = small_grid
        victim = tasks[0]
        path = tmp_path / "heal.jsonl"
        meta = {"spec_digest": spec.digest()}

        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"fail:task={victim.task_id},times=99"
        )
        first = run_campaign(tasks, str(path), CampaignConfig(), meta=meta)
        assert first.errors == 1

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        healed = run_campaign(
            tasks, str(path), CampaignConfig(retry_failures=True),
            resume=True, meta=meta,
        )
        assert healed.ran == 1 and healed.ok == 1

        # exactly one meta line + one line per task: the stale failure
        # line was compacted, not merely superseded
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert lines[0]["record"] == "meta"
        assert lines[0]["spec_digest"] == spec.digest()
        assert len(lines) == 1 + len(tasks)
        by_id = [ln for ln in lines[1:] if ln["task_id"] == victim.task_id]
        assert len(by_id) == 1 and by_id[0]["status"] == "ok"

    def test_without_retry_failures_last_record_wins(
        self, small_grid, tmp_path, monkeypatch
    ):
        spec, tasks = small_grid
        victim = tasks[0]
        path = str(tmp_path / "keep.jsonl")
        meta = {"spec_digest": spec.digest()}
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"fail:task={victim.task_id},times=99"
        )
        run_campaign(tasks, path, CampaignConfig(), meta=meta)
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        # failures count as done: nothing re-runs, the record stays
        again = run_campaign(tasks, path, CampaignConfig(),
                             resume=True, meta=meta)
        assert again.ran == 0 and again.prior == len(tasks)
        _, results = RunStore(path).load()
        assert results[victim.task_id].status == "error"
        assert results[victim.task_id].error_kind == "fault"


class TestKilledMidWrite:
    def test_sigkilled_campaign_resumes_to_identical_results(
        self, small_grid, tmp_path
    ):
        """SIGKILL a real campaign process mid-write, then resume: the
        merged store must equal an uninterrupted run bit-for-bit on
        deterministic fields."""
        spec, tasks = small_grid
        meta = {"spec_digest": spec.digest()}

        full = str(tmp_path / "full.jsonl")
        run_campaign(tasks, full, CampaignConfig(), meta=meta)
        _, want = RunStore(full).load()

        out = str(tmp_path / "killed.jsonl")
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run",
                "--out", out, "--seed", "0", "--nests", "4",
                "--no-corpus", "--machines", "paragon",
            ],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # wait for a few records to land, then kill without warning
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                try:
                    with open(out) as fh:
                        if sum(1 for _ in fh) >= 3:
                            break
                except FileNotFoundError:
                    pass
                time.sleep(0.01)
            proc.kill()
        finally:
            proc.wait(timeout=30)

        resumed = run_campaign(
            tasks, out, CampaignConfig(), resume=True, meta=meta,
        )
        assert resumed.prior + resumed.ran >= len(tasks)
        got_meta, got = RunStore(out).load()
        assert got_meta["spec_digest"] == spec.digest()
        assert {k: r.deterministic_dict() for k, r in got.items()} == {
            k: r.deterministic_dict() for k, r in want.items()
        }

    def test_kill_while_worker_running_under_pool(
        self, small_grid, tmp_path, monkeypatch
    ):
        """Campaign killed while its *worker* is mid-task (injected
        worker kill with no retries), resumed with retry_failures: the
        crashed record is re-run and converges to the clean result."""
        spec, tasks = small_grid
        victim = tasks[0]
        meta = {"spec_digest": spec.digest()}

        full = str(tmp_path / "full.jsonl")
        run_campaign(tasks, full, CampaignConfig(), meta=meta)
        _, want = RunStore(full).load()

        out = str(tmp_path / "crashed.jsonl")
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"kill:task={victim.task_id},times=99"
        )
        first = run_campaign(
            tasks, out,
            CampaignConfig(jobs=2, executor="pool", backoff=0.01),
            meta=meta,
        )
        assert first.crashed >= 1

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        run_campaign(
            tasks, out, CampaignConfig(retry_failures=True),
            resume=True, meta=meta,
        )
        _, got = RunStore(out).load()
        assert {k: r.deterministic_dict() for k, r in got.items()} == {
            k: r.deterministic_dict() for k, r in want.items()
        }
