"""Grid expansion and stable task ids."""

import pytest

from repro.campaign import SweepSpec, SweepTask, default_spec, generate_workloads


class TestSweepSpec:
    def test_expansion_is_full_cross_product(self):
        wls = generate_workloads(0, 3)
        spec = SweepSpec(
            workloads=wls,
            machines=("paragon", "cm5"),
            meshes=((2, 2), (4, 4)),
            ms=(2,),
            rank_weights=(True, False),
        )
        tasks = spec.expand()
        assert len(tasks) == 3 * 2 * 2 * 1 * 2
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_ids_stable_across_expansions(self):
        spec = default_spec(seed=1, nests=2)
        a = [t.task_id for t in spec.expand()]
        b = [t.task_id for t in default_spec(seed=1, nests=2).expand()]
        assert a == b
        assert spec.digest() == default_spec(seed=1, nests=2).digest()

    def test_ids_change_with_any_knob(self):
        wl = generate_workloads(0, 1)[0]
        base = SweepTask.make(wl, "paragon", (4, 4), 2, True)
        assert SweepTask.make(wl, "cm5", (4, 4), 2, True).task_id != base.task_id
        assert SweepTask.make(wl, "paragon", (2, 8), 2, True).task_id != base.task_id
        assert SweepTask.make(wl, "paragon", (4, 4), 3, True).task_id != base.task_id
        assert SweepTask.make(wl, "paragon", (4, 4), 2, False).task_id != base.task_id

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(workloads=generate_workloads(0, 1), machines=("t3e",))

    def test_digest_tracks_grid(self):
        assert default_spec(seed=0, nests=2).digest() != default_spec(
            seed=0, nests=3
        ).digest()


class TestMixedRankGrids:
    """Registry-backed machines: mixed 2-D/3-D grids expand to exactly
    the compatible (machine, mesh, m) cells."""

    def test_t3d_grid_expands(self):
        wls = generate_workloads(0, 2)
        spec = SweepSpec(
            workloads=wls, machines=("t3d",), meshes=((2, 2, 2),), ms=(3,)
        )
        tasks = spec.expand()
        assert len(tasks) == 2
        assert all(t.machine == "t3d" and t.mesh == (2, 2, 2) for t in tasks)

    def test_mixed_grid_keeps_compatible_cells_only(self):
        wls = generate_workloads(0, 2)
        spec = SweepSpec(
            workloads=wls,
            machines=("paragon", "cm5", "t3d"),
            meshes=((4, 4), (2, 2, 2)),
            ms=(2, 3),
        )
        tasks = spec.expand()
        # per workload: paragon+cm5 on (4,4,m=2) and t3d on (2,2,2,m=3)
        assert len(tasks) == 2 * 3
        cells = {(t.machine, t.mesh, t.m) for t in tasks}
        assert cells == {
            ("paragon", (4, 4), 2),
            ("cm5", (4, 4), 2),
            ("t3d", (2, 2, 2), 3),
        }

    def test_fully_incompatible_grid_refused(self):
        wls = generate_workloads(0, 1)
        spec = SweepSpec(
            workloads=wls, machines=("t3d",), meshes=((4, 4),), ms=(2,)
        )
        with pytest.raises(ValueError, match="empty sweep grid"):
            spec.expand()

    def test_compatibility_filter_keeps_2d_ids_stable(self):
        """Adding 3-D cells to a grid must not disturb the task ids of
        the 2-D cells (checkpoints of old campaigns stay resumable)."""
        wls = generate_workloads(0, 2)
        pure = SweepSpec(
            workloads=wls, machines=("paragon",), meshes=((4, 4),), ms=(2,)
        ).expand()
        mixed = SweepSpec(
            workloads=wls,
            machines=("paragon", "t3d"),
            meshes=((4, 4), (2, 2, 2)),
            ms=(2, 3),
        ).expand()
        pure_ids = {t.task_id for t in pure}
        mixed_ids = {t.task_id for t in mixed}
        assert pure_ids <= mixed_ids
