"""Grid expansion and stable task ids."""

import pytest

from repro.campaign import SweepSpec, SweepTask, default_spec, generate_workloads


class TestSweepSpec:
    def test_expansion_is_full_cross_product(self):
        wls = generate_workloads(0, 3)
        spec = SweepSpec(
            workloads=wls,
            machines=("paragon", "cm5"),
            meshes=((2, 2), (4, 4)),
            ms=(2,),
            rank_weights=(True, False),
        )
        tasks = spec.expand()
        assert len(tasks) == 3 * 2 * 2 * 1 * 2
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_ids_stable_across_expansions(self):
        spec = default_spec(seed=1, nests=2)
        a = [t.task_id for t in spec.expand()]
        b = [t.task_id for t in default_spec(seed=1, nests=2).expand()]
        assert a == b
        assert spec.digest() == default_spec(seed=1, nests=2).digest()

    def test_ids_change_with_any_knob(self):
        wl = generate_workloads(0, 1)[0]
        base = SweepTask.make(wl, "paragon", (4, 4), 2, True)
        assert SweepTask.make(wl, "cm5", (4, 4), 2, True).task_id != base.task_id
        assert SweepTask.make(wl, "paragon", (2, 8), 2, True).task_id != base.task_id
        assert SweepTask.make(wl, "paragon", (4, 4), 3, True).task_id != base.task_id
        assert SweepTask.make(wl, "paragon", (4, 4), 2, False).task_id != base.task_id

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(workloads=generate_workloads(0, 1), machines=("t3e",))

    def test_digest_tracks_grid(self):
        assert default_spec(seed=0, nests=2).digest() != default_spec(
            seed=0, nests=3
        ).digest()
