"""Triangular workload vocabulary: generation, round-trips, end-to-end.

The ISSUE-5 property suite: >= 50 seeds of generated triangular
workloads round-trip through the parser and the workload serializer,
their domains enumerate exactly the brute-force filtered product, and
the named triangular corpus prices cleanly on 2-D and 3-D machines.
"""

from itertools import product

import pytest

from repro.campaign import (
    SweepSpec,
    Workload,
    default_spec,
    generate_triangular_workloads,
    generate_workloads,
    triangular_corpus,
)
from repro.ir import parse_nest


class TestGenerator:
    def test_deterministic(self):
        a = generate_triangular_workloads(seed=5, count=4)
        b = generate_triangular_workloads(seed=5, count=4)
        assert [w.source for w in a] == [w.source for w in b]
        assert [w.name for w in a] == ["tri-5-0", "tri-5-1", "tri-5-2", "tri-5-3"]

    def test_prefix_extension(self):
        small = generate_triangular_workloads(seed=7, count=2)
        big = generate_triangular_workloads(seed=7, count=4)
        assert [w.source for w in big[:2]] == [w.source for w in small]

    def test_independent_of_rectangular_stream(self):
        """Growing the triangular vocabulary never perturbs the
        rectangular corpus (byte-stability of existing campaigns)."""
        before = [w.source for w in generate_workloads(seed=0, count=4)]
        generate_triangular_workloads(seed=0, count=4)
        after = [w.source for w in generate_workloads(seed=0, count=4)]
        assert before == after

    @pytest.mark.parametrize("seed", range(50))
    def test_property_round_trip_and_enumeration(self, seed):
        """>= 50 seeds: the generated workload parses, serializes
        losslessly, contains a non-rectangular statement, and every
        statement's domain enumerates the brute-force filtered
        product."""
        (wl,) = generate_triangular_workloads(seed=seed, count=1)
        # workload round-trip through the serializer
        clone = Workload.from_dict(wl.to_dict())
        assert clone == wl
        # source round-trip through the parser
        nest = wl.resolve()
        assert clone.resolve().describe() == nest.describe()
        assert any(not s.is_rectangular for s in nest.statements)
        params = dict(wl.params)
        for s in nest.statements:
            dom = s.domain
            mx = 2 * max(params.values()) + 2
            brute = [
                p
                for p in product(range(-2, mx + 1), repeat=s.depth)
                if dom.contains(p, params)
            ]
            assert list(s.iteration_domain(params)) == brute
            assert s.domain_size(params) == len(brute)


class TestTriangularCorpus:
    def test_names_and_shapes(self):
        names = [w.name for w in triangular_corpus()]
        assert names == ["tri-matmul", "lu", "cholesky", "backsub"]
        for w in triangular_corpus():
            nest = w.resolve()
            assert any(not s.is_rectangular for s in nest.statements), w.name

    @pytest.mark.parametrize("machine,mesh,m", [
        ("paragon", (4, 4), 2),
        ("t3d", (2, 2, 2), 3),
    ])
    def test_corpus_prices_cleanly(self, machine, mesh, m):
        """Every triangular kernel compiles and prices with both
        executors agreeing bit-for-bit."""
        from repro.campaign.runner import execute_task
        from repro.campaign.sweep import SweepTask

        for wl in triangular_corpus():
            task = SweepTask.make(wl, machine, mesh, m, True)
            result = execute_task(task)
            assert result.status == "ok", (wl.name, result.error)


class TestTriangularSpec:
    def test_shapes_param(self):
        rect = default_spec(seed=0, nests=2)
        tri = default_spec(seed=0, nests=2, shapes=("tri",))
        both = default_spec(seed=0, nests=2, shapes=("rect", "tri"))
        rect_names = [w.name for w in rect.workloads]
        tri_names = [w.name for w in tri.workloads]
        assert [w.name for w in both.workloads] == rect_names + tri_names
        assert "lu" in tri_names and "tri-0-0" in tri_names
        assert not set(rect_names) & set(tri_names)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown workload shape"):
            default_spec(seed=0, nests=1, shapes=("hexagonal",))

    def test_rect_default_unchanged(self):
        """shapes=("rect",) expands to the exact historical grid."""
        legacy = default_spec(seed=0, nests=2)
        explicit = default_spec(seed=0, nests=2, shapes=("rect",))
        assert [t.task_id for t in legacy.expand()] == [
            t.task_id for t in explicit.expand()
        ]
