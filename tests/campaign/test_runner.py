"""Checkpoint/resume, error capture and parallel-vs-serial equality."""

import json
import signal

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignSpecMismatch,
    RunStore,
    SweepTask,
    Workload,
    default_spec,
    execute_task,
    run_campaign,
)


@pytest.fixture(scope="module")
def small_grid():
    # 4 generated + 8 corpus workloads on one mesh = 12 tasks
    spec = default_spec(seed=0, nests=4, machines=("paragon",))
    return spec, spec.expand()


def _deterministic(results):
    return {k: r.deterministic_dict() for k, r in results.items()}


class TestResume:
    def test_interrupted_then_resumed_equals_uninterrupted(
        self, small_grid, tmp_path
    ):
        spec, tasks = small_grid
        meta = {"spec_digest": spec.digest()}

        full = str(tmp_path / "full.jsonl")
        run_campaign(tasks, full, CampaignConfig(jobs=1), meta=meta)

        # "kill" the campaign after 5 tasks, then resume to completion
        part = str(tmp_path / "part.jsonl")
        first = run_campaign(
            tasks, part, CampaignConfig(jobs=1, max_tasks=5), meta=meta
        )
        assert first.ran == 5 and first.remaining == len(tasks) - 5
        second = run_campaign(
            tasks, part, CampaignConfig(jobs=1), resume=True, meta=meta
        )
        assert second.prior == 5
        assert second.ran == len(tasks) - 5

        _, full_results = RunStore(full).load()
        _, merged = RunStore(part).load()
        assert _deterministic(full_results) == _deterministic(merged)

    def test_resume_after_truncated_record(self, small_grid, tmp_path):
        spec, tasks = small_grid
        meta = {"spec_digest": spec.digest()}
        path = tmp_path / "killed.jsonl"
        run_campaign(
            tasks, str(path), CampaignConfig(jobs=1, max_tasks=3), meta=meta
        )
        # writer died mid-record: a dangling half line on disk
        path.write_text(path.read_text() + '{"record": "result", "task_id')
        outcome = run_campaign(
            tasks, str(path), CampaignConfig(jobs=1), resume=True, meta=meta
        )
        assert outcome.prior == 3
        _, results = RunStore(str(path)).load()
        assert len(results) == len(tasks)
        assert all(r.status == "ok" for r in results.values())

    def test_resume_is_noop_when_complete(self, small_grid, tmp_path):
        spec, tasks = small_grid
        meta = {"spec_digest": spec.digest()}
        path = str(tmp_path / "done.jsonl")
        run_campaign(tasks, path, meta=meta)
        again = run_campaign(tasks, path, resume=True, meta=meta)
        assert again.ran == 0 and again.prior == len(tasks)

    def test_resume_rewrites_lost_meta_line(self, small_grid, tmp_path):
        spec, tasks = small_grid
        meta = {"spec_digest": spec.digest()}
        path = tmp_path / "lostmeta.jsonl"
        run_campaign(tasks, str(path), CampaignConfig(max_tasks=2), meta=meta)
        # meta line truncated mid-record (leaves an undecodable line the
        # loader counts under _skipped_lines), results kept
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0][:20]] + lines[1:]) + "\n")
        run_campaign(
            tasks, str(path), CampaignConfig(max_tasks=1), resume=True,
            meta=meta,
        )
        restored, _ = RunStore(str(path)).load()
        assert restored["spec_digest"] == spec.digest()
        # ...so the digest guard works again on the next resume
        with pytest.raises(CampaignSpecMismatch):
            run_campaign(
                tasks, str(path), resume=True,
                meta={"spec_digest": "0000aaaa1111"},
            )

    def test_resume_rejects_different_grid(self, small_grid, tmp_path):
        spec, tasks = small_grid
        path = str(tmp_path / "run.jsonl")
        run_campaign(
            tasks, path, CampaignConfig(max_tasks=1),
            meta={"spec_digest": spec.digest()},
        )
        with pytest.raises(CampaignSpecMismatch):
            run_campaign(
                tasks, path, resume=True, meta={"spec_digest": "0000aaaa1111"}
            )

    def test_retry_failures_reruns_failed_records(self, small_grid, tmp_path):
        spec, tasks = small_grid
        meta = {"spec_digest": spec.digest()}
        path = str(tmp_path / "retry.jsonl")
        run_campaign(tasks, path, meta=meta)
        store = RunStore(path)
        # forge a transient failure for one completed task
        _, results = store.load()
        victim = results[tasks[0].task_id]
        from repro.campaign import TaskResult

        store.append(
            TaskResult(
                task_id=victim.task_id, workload=victim.workload,
                machine=victim.machine, mesh=victim.mesh, m=victim.m,
                rank_weights=victim.rank_weights, status="timeout",
                error="task exceeded 0.0s",
            )
        )
        # plain resume: the failure counts as done, nothing re-runs
        plain = run_campaign(tasks, path, resume=True, meta=meta)
        assert plain.ran == 0
        # retry resume: the failed task re-runs and its ok record wins
        retry = run_campaign(
            tasks, path, CampaignConfig(retry_failures=True),
            resume=True, meta=meta,
        )
        assert retry.ran == 1
        _, after = store.load()
        assert after[victim.task_id].status == "ok"
        assert after[victim.task_id] == victim  # seconds excluded from ==

    def test_max_tasks_zero_runs_nothing(self, small_grid, tmp_path):
        spec, tasks = small_grid
        outcome = run_campaign(
            tasks, str(tmp_path / "zero.jsonl"),
            CampaignConfig(max_tasks=0), meta={},
        )
        assert outcome.ran == 0
        assert outcome.remaining == len(tasks)

    def test_resume_on_missing_file_starts_fresh(self, small_grid, tmp_path):
        spec, tasks = small_grid
        path = str(tmp_path / "fresh.jsonl")
        outcome = run_campaign(
            tasks, path, CampaignConfig(max_tasks=2), resume=True,
            meta={"spec_digest": spec.digest()},
        )
        assert outcome.ran == 2
        meta, _ = RunStore(path).load()
        assert meta["spec_digest"] == spec.digest()


class TestParallel:
    def test_pool_matches_serial(self, small_grid, tmp_path):
        spec, tasks = small_grid
        meta = {"spec_digest": spec.digest()}
        serial = str(tmp_path / "serial.jsonl")
        pooled = str(tmp_path / "pooled.jsonl")
        run_campaign(tasks, serial, CampaignConfig(jobs=1), meta=meta)
        run_campaign(tasks, pooled, CampaignConfig(jobs=3), meta=meta)
        _, a = RunStore(serial).load()
        _, b = RunStore(pooled).load()
        assert _deterministic(a) == _deterministic(b)


class TestErrorCapture:
    def test_broken_workload_becomes_error_record(self, tmp_path):
        bad = Workload(name="does-not-exist", kind="named")
        task = SweepTask.make(bad, "paragon", (2, 2), 2, True)
        result = execute_task(task)
        assert result.status == "error"
        assert "does-not-exist" in result.error

        # ...and does not sink the campaign around it
        spec = default_spec(seed=0, nests=1, include_corpus=False)
        tasks = spec.expand() + [task]
        path = str(tmp_path / "mixed.jsonl")
        outcome = run_campaign(tasks, path, meta={})
        assert outcome.errors == 1
        assert outcome.ok == len(tasks) - 1

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_timeout_becomes_timeout_record(self):
        # a big domain makes the executor slow enough to trip 1 ms
        slow = Workload(
            name="slow", kind="named", source=(
                "array A(2)\n"
                "for k = 1..N:\n"
                "  for i = 1..N:\n"
                "    for j = 1..N:\n"
                "      S: A[i, j] = f(A[i, j], A[i, k], A[k, j])\n"
            ),
            schedule="outer:1", params={"N": 12}, check_legality=False,
        )
        task = SweepTask.make(slow, "paragon", (4, 4), 2, True)
        result = execute_task(task, timeout=0.001)
        assert result.status == "timeout"
        assert "0.001" in result.error


class TestMachinesSatellite:
    def test_paragon_models_do_not_share_cost_params(self):
        from repro.machine import ParagonModel, T3DModel

        a, b = ParagonModel(2, 2), ParagonModel(4, 4)
        assert a.params is not b.params
        assert a.params == b.params  # same defaults, distinct instances

        t1, t2 = T3DModel(2, 2, 2), T3DModel(2, 2, 2)
        assert t1.params is not t2.params
