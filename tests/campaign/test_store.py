"""JSONL store: append/load roundtrip, truncation tolerance, summary."""

import json

from repro.campaign import RunStore, TaskResult, summarize_results


def _result(i, status="ok", machine="paragon"):
    return TaskResult(
        task_id=f"id{i:04d}",
        workload=f"wl{i}",
        machine=machine,
        mesh=(4, 4),
        m=2,
        rank_weights=True,
        status=status,
        counts={"local": 2, "general": 1} if status == "ok" else {},
        residuals=1 if status == "ok" else 0,
        total_time=10.0 * (i + 1) if status == "ok" else 0.0,
        total_messages=5,
        total_volume=5,
        baseline_residuals=2,
        baseline_time=30.0 * (i + 1) if status == "ok" else 0.0,
        error=None if status == "ok" else "boom",
        seconds=0.5,
    )


class TestRunStore:
    def test_roundtrip(self, tmp_path):
        store = RunStore(str(tmp_path / "run.jsonl"))
        store.start({"spec_digest": "abc"})
        for i in range(3):
            store.append(_result(i))
        meta, results = store.load()
        assert meta["spec_digest"] == "abc"
        assert sorted(results) == ["id0000", "id0001", "id0002"]
        assert results["id0001"] == _result(1)

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(str(path))
        store.start({"spec_digest": "abc"})
        store.append(_result(0))
        store.append(_result(1))
        # simulate a writer killed mid-record
        text = path.read_text()
        path.write_text(text + json.dumps(_result(2).to_dict())[: 40])
        meta, results = store.load()
        assert sorted(results) == ["id0000", "id0001"]
        assert meta["_skipped_lines"] == 1

    def test_json_valid_but_malformed_record_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(str(path))
        store.start({"spec_digest": "abc"})
        store.append(_result(0))
        bad = _result(1).to_dict()
        bad["mesh"] = 7  # scalar where a pair belongs
        with open(path, "a") as fh:
            fh.write(json.dumps(bad) + "\n")
        meta, results = store.load()
        assert sorted(results) == ["id0000"]
        assert meta["_skipped_lines"] == 1

    def test_append_meta_restores_lost_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(str(path))
        store.start({"spec_digest": "abc"})
        store.append(_result(0))
        # drop the meta line, keep the result
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")
        meta, _ = store.load()
        assert "spec_digest" not in meta
        store.append_meta({"spec_digest": "abc"})
        meta, results = store.load()
        assert meta["spec_digest"] == "abc"
        assert sorted(results) == ["id0000"]

    def test_load_missing_file(self, tmp_path):
        meta, results = RunStore(str(tmp_path / "nope.jsonl")).load()
        assert meta == {} and results == {}

    def test_deterministic_dict_excludes_wall_clock(self):
        a, b = _result(0), _result(0)
        b.seconds = 99.0
        assert a.deterministic_dict() == b.deterministic_dict()
        assert a.to_dict() != b.to_dict()


class TestSummarize:
    def test_grouping_and_ratios(self):
        results = [_result(0), _result(1), _result(2, status="error"),
                   _result(3, machine="cm5")]
        rows = summarize_results(results)
        assert [r["machine"] for r in rows] == ["cm5", "paragon"]
        paragon = rows[1]
        assert paragon["tasks"] == 3
        assert paragon["ok"] == 2
        assert paragon["errors"] == 1
        assert paragon["local"] == 4
        assert paragon["general"] == 2
        assert paragon["residuals"] == 2
        assert paragon["baseline_residuals"] == 4
        assert paragon["mean_time_ratio"] == 3.0

    def test_all_failed_group_has_null_ratio_and_valid_json(self):
        rows = summarize_results([_result(0, status="error")])
        assert rows[0]["mean_time_ratio"] is None
        # must stay strict-JSON-serializable (no NaN tokens in BENCH_*.json)
        json.dumps(rows, allow_nan=False)

        from repro.report import format_campaign_summary

        assert "-" in format_campaign_summary(rows)

    def test_formatting(self):
        from repro.report import format_campaign_summary

        text = format_campaign_summary(summarize_results([_result(0)]))
        assert "campaign summary" in text
        assert "paragon" in text
        assert format_campaign_summary([]) == "campaign: no results"
