"""JSONL store: append/load roundtrip, truncation tolerance, summary,
durability knobs and crash-safe rewrites."""

import glob
import json
import os

import pytest

from repro.campaign import RunStore, TaskResult, merge_stores, summarize_results


def _result(i, status="ok", machine="paragon"):
    return TaskResult(
        task_id=f"id{i:04d}",
        workload=f"wl{i}",
        machine=machine,
        mesh=(4, 4),
        m=2,
        rank_weights=True,
        status=status,
        counts={"local": 2, "general": 1} if status == "ok" else {},
        residuals=1 if status == "ok" else 0,
        total_time=10.0 * (i + 1) if status == "ok" else 0.0,
        total_messages=5,
        total_volume=5,
        baseline_residuals=2,
        baseline_time=30.0 * (i + 1) if status == "ok" else 0.0,
        error=None if status == "ok" else "boom",
        seconds=0.5,
    )


class TestRunStore:
    def test_roundtrip(self, tmp_path):
        store = RunStore(str(tmp_path / "run.jsonl"))
        store.start({"spec_digest": "abc"})
        for i in range(3):
            store.append(_result(i))
        meta, results = store.load()
        assert meta["spec_digest"] == "abc"
        assert sorted(results) == ["id0000", "id0001", "id0002"]
        assert results["id0001"] == _result(1)

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(str(path))
        store.start({"spec_digest": "abc"})
        store.append(_result(0))
        store.append(_result(1))
        # simulate a writer killed mid-record
        text = path.read_text()
        path.write_text(text + json.dumps(_result(2).to_dict())[: 40])
        meta, results = store.load()
        assert sorted(results) == ["id0000", "id0001"]
        assert meta["_skipped_lines"] == 1

    def test_json_valid_but_malformed_record_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(str(path))
        store.start({"spec_digest": "abc"})
        store.append(_result(0))
        bad = _result(1).to_dict()
        bad["mesh"] = 7  # scalar where a pair belongs
        with open(path, "a") as fh:
            fh.write(json.dumps(bad) + "\n")
        meta, results = store.load()
        assert sorted(results) == ["id0000"]
        assert meta["_skipped_lines"] == 1

    def test_append_meta_restores_lost_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(str(path))
        store.start({"spec_digest": "abc"})
        store.append(_result(0))
        # drop the meta line, keep the result
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")
        meta, _ = store.load()
        assert "spec_digest" not in meta
        store.append_meta({"spec_digest": "abc"})
        meta, results = store.load()
        assert meta["spec_digest"] == "abc"
        assert sorted(results) == ["id0000"]

    def test_load_missing_file(self, tmp_path):
        meta, results = RunStore(str(tmp_path / "nope.jsonl")).load()
        assert meta == {} and results == {}

    def test_deterministic_dict_excludes_wall_clock(self):
        a, b = _result(0), _result(0)
        b.seconds = 99.0
        assert a.deterministic_dict() == b.deterministic_dict()
        assert a.to_dict() != b.to_dict()

    def test_deterministic_dict_excludes_attempt_count(self):
        # a retried-ok record must converge bit-identically with a
        # first-try-ok record (the chaos gate depends on this)
        a, b = _result(0), _result(0)
        b.attempts = 3
        assert a.deterministic_dict() == b.deterministic_dict()

    def test_default_fields_omitted_for_byte_compat(self):
        # pre-taxonomy stores must stay byte-identical: error_kind=None
        # and attempts=1 never appear on the wire
        d = _result(0).to_dict()
        assert "error_kind" not in d and "attempts" not in d
        r = _result(1, status="error")
        r.error_kind = "compile"
        r.attempts = 2
        d = r.to_dict()
        assert d["error_kind"] == "compile" and d["attempts"] == 2
        back = TaskResult.from_dict(d)
        assert back.error_kind == "compile" and back.attempts == 2


class TestDurability:
    def test_fsync_knob_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_FSYNC", raising=False)
        assert RunStore(str(tmp_path / "a.jsonl")).fsync is False
        monkeypatch.setenv("REPRO_STORE_FSYNC", "1")
        assert RunStore(str(tmp_path / "b.jsonl")).fsync is True
        # an explicit argument beats the environment
        assert RunStore(str(tmp_path / "c.jsonl"), fsync=False).fsync is False

    def test_fsynced_append_roundtrips(self, tmp_path):
        store = RunStore(str(tmp_path / "run.jsonl"), fsync=True)
        store.start({"spec_digest": "abc"})
        store.append(_result(0))
        meta, results = store.load()
        assert meta["spec_digest"] == "abc" and sorted(results) == ["id0000"]

    def test_start_leaves_no_temp_files(self, tmp_path):
        store = RunStore(str(tmp_path / "run.jsonl"))
        store.start({"spec_digest": "abc"})
        store.compact({"spec_digest": "abc"}, [_result(0)])
        assert glob.glob(str(tmp_path / "*.tmp.*")) == []

    def test_compact_drops_superseded_lines_and_markers(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(str(path))
        store.start({"spec_digest": "abc"})
        store.append(_result(0, status="error"))
        store.append(_result(0))  # supersedes the failure
        text = path.read_text()
        path.write_text(text + '{"half a rec')  # killed writer
        meta, results = store.load()
        assert meta["_skipped_lines"] == 1
        store.compact(meta, results.values())
        meta, results = store.load()
        assert "_skipped_lines" not in meta
        assert meta["spec_digest"] == "abc"
        assert len(path.read_text().splitlines()) == 2  # meta + 1 result
        assert results["id0000"].status == "ok"


class TestMergeCrashSafety:
    def _shard(self, tmp_path, name, indices, digest="abc"):
        p = str(tmp_path / name)
        store = RunStore(p)
        store.start({"spec_digest": digest})
        for i in indices:
            store.append(_result(i))
        return p

    def test_failed_merge_leaves_existing_output_untouched(self, tmp_path):
        a = self._shard(tmp_path, "a.jsonl", [0], digest="abc")
        b = self._shard(tmp_path, "b.jsonl", [1], digest="zzz")
        out = tmp_path / "out.jsonl"
        out.write_text("precious bytes\n")
        with pytest.raises(ValueError, match="different grids"):
            merge_stores([a, b], str(out))
        assert out.read_text() == "precious bytes\n"
        assert glob.glob(str(tmp_path / "out.jsonl.tmp.*")) == []

    def test_successful_merge_is_atomic_and_clean(self, tmp_path):
        a = self._shard(tmp_path, "a.jsonl", [0, 1])
        b = self._shard(tmp_path, "b.jsonl", [1, 2])
        out = str(tmp_path / "out.jsonl")
        summary = merge_stores([a, b], out)
        assert summary["results"] == 3 and summary["duplicates"] == 1
        assert glob.glob(out + ".tmp.*") == []
        meta, results = RunStore(out).load()
        assert meta["spec_digest"] == "abc"
        assert sorted(results) == ["id0000", "id0001", "id0002"]


class TestSummarize:
    def test_grouping_and_ratios(self):
        results = [_result(0), _result(1), _result(2, status="error"),
                   _result(3, machine="cm5")]
        rows = summarize_results(results)
        assert [r["machine"] for r in rows] == ["cm5", "paragon"]
        paragon = rows[1]
        assert paragon["tasks"] == 3
        assert paragon["ok"] == 2
        assert paragon["errors"] == 1
        assert paragon["local"] == 4
        assert paragon["general"] == 2
        assert paragon["residuals"] == 2
        assert paragon["baseline_residuals"] == 4
        assert paragon["mean_time_ratio"] == 3.0

    def test_all_failed_group_has_null_ratio_and_valid_json(self):
        rows = summarize_results([_result(0, status="error")])
        assert rows[0]["mean_time_ratio"] is None
        # must stay strict-JSON-serializable (no NaN tokens in BENCH_*.json)
        json.dumps(rows, allow_nan=False)

        from repro.report import format_campaign_summary

        assert "-" in format_campaign_summary(rows)

    def test_formatting(self):
        from repro.report import format_campaign_summary

        text = format_campaign_summary(summarize_results([_result(0)]))
        assert "campaign summary" in text
        assert "paragon" in text
        assert format_campaign_summary([]) == "campaign: no results"
