"""Golden byte-compatibility of rectangular campaigns.

The polyhedral-domain refactor must not move a single byte of what a
pre-existing (rectangular) campaign writes: the grid digest pins the
task ids (workload sources, spec hashing) and the record digest pins
every deterministic result payload (counts, residuals, times, ratios).
Both constants below were recorded from the pre-refactor implementation
(PR 4) on the reference grid ``default_spec(seed=0, nests=3,
meshes=((2, 2),))``.
"""

import hashlib

from repro.campaign import CampaignConfig, RunStore, default_spec, run_campaign
from repro.campaign.sweep import canonical_json

#: recorded from the pre-domain-layer implementation (see module doc)
GOLDEN_GRID_DIGEST = "2dac62a303bb"
GOLDEN_RECORDS_SHA1 = "ba1ded04e48e0dc682dae04ef662820fedf631cd"


class TestGoldenCampaignDigests:
    def test_grid_digest_unchanged(self):
        spec = default_spec(seed=0, nests=3, meshes=((2, 2),))
        assert spec.digest() == GOLDEN_GRID_DIGEST

    def test_record_payloads_unchanged(self, tmp_path):
        spec = default_spec(seed=0, nests=3, meshes=((2, 2),))
        tasks = spec.expand()
        out = str(tmp_path / "golden.jsonl")
        outcome = run_campaign(tasks, out, CampaignConfig(jobs=1), meta={})
        assert outcome.errors == 0 and outcome.timeouts == 0
        _, results = RunStore(out).load()
        payload = canonical_json(
            [results[t.task_id].deterministic_dict() for t in tasks]
        )
        digest = hashlib.sha1(payload.encode()).hexdigest()
        assert digest == GOLDEN_RECORDS_SHA1
