"""Campaign sharding (multi-host grid partitioning) and shard merging."""

import json

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignSpecMismatch,
    RunStore,
    default_spec,
    merge_stores,
    run_campaign,
    shard_tasks,
)


@pytest.fixture(scope="module")
def grid():
    spec = default_spec(seed=0, nests=3)
    return spec, spec.expand()


class TestShardTasks:
    def test_partition_is_disjoint_and_complete(self, grid):
        _spec, tasks = grid
        for n in (2, 3, 5):
            shards = [shard_tasks(tasks, i, n) for i in range(n)]
            ids = [t.task_id for s in shards for t in s]
            assert sorted(ids) == sorted(t.task_id for t in tasks)
            assert len(ids) == len(set(ids))

    def test_stable_by_task_id_prefix(self, grid):
        """A task's shard depends only on its own id — every host
        computes the same partition without coordination."""
        _spec, tasks = grid
        for t in shard_tasks(tasks, 1, 3):
            assert int(t.task_id[:8], 16) % 3 == 1

    def test_single_shard_is_identity(self, grid):
        _spec, tasks = grid
        assert shard_tasks(tasks, 0, 1) == list(tasks)

    def test_order_preserved(self, grid):
        _spec, tasks = grid
        index = {t.task_id: i for i, t in enumerate(tasks)}
        positions = [index[t.task_id] for t in shard_tasks(tasks, 0, 2)]
        assert positions == sorted(positions)

    def test_bad_specs_rejected(self, grid):
        _spec, tasks = grid
        with pytest.raises(ValueError):
            shard_tasks(tasks, 0, 0)
        with pytest.raises(ValueError):
            shard_tasks(tasks, 3, 3)
        with pytest.raises(ValueError):
            shard_tasks(tasks, -1, 2)

    def test_resume_with_wrong_shard_refused(self, grid, tmp_path):
        """Shards share the full-grid digest by design, so resume must
        check the shard spec itself: resuming a shard checkpoint with a
        different (or forgotten) --shard would silently run another
        shard's tasks into this file."""
        spec, tasks = grid
        p = str(tmp_path / "s0.jsonl")
        meta0 = {"spec_digest": spec.digest(), "shard": "0/2"}
        run_campaign(
            shard_tasks(tasks, 0, 2)[:2], p,
            CampaignConfig(jobs=1, max_tasks=1), meta=meta0,
        )
        with pytest.raises(CampaignSpecMismatch, match="shard"):
            run_campaign(
                shard_tasks(tasks, 1, 2), p, CampaignConfig(jobs=1),
                resume=True,
                meta={"spec_digest": spec.digest(), "shard": "1/2"},
            )
        with pytest.raises(CampaignSpecMismatch, match="shard"):
            run_campaign(
                tasks, p, CampaignConfig(jobs=1), resume=True,
                meta={"spec_digest": spec.digest()},
            )
        # the matching shard spec resumes fine
        outcome = run_campaign(
            shard_tasks(tasks, 0, 2)[:2], p, CampaignConfig(jobs=1),
            resume=True, meta=meta0,
        )
        assert outcome.prior == 1 and outcome.ran == 1


class TestMergeStores:
    def _run_shards(self, tasks, digest, tmp_path, n=2):
        paths = []
        for i in range(n):
            p = str(tmp_path / f"shard{i}.jsonl")
            run_campaign(
                shard_tasks(tasks, i, n), p, CampaignConfig(jobs=1),
                meta={"spec_digest": digest, "shard": f"{i}/{n}"},
            )
            paths.append(p)
        return paths

    def test_merge_recovers_full_grid(self, grid, tmp_path):
        spec, tasks = grid
        paths = self._run_shards(tasks, spec.digest(), tmp_path)
        out = str(tmp_path / "merged.jsonl")
        summary = merge_stores(paths, out)
        assert summary["results"] == len(tasks)
        assert summary["duplicates"] == 0
        assert summary["spec_digest"] == spec.digest()
        meta, results = RunStore(out).load()
        assert set(results) == {t.task_id for t in tasks}
        assert meta["spec_digest"] == spec.digest()
        assert meta["shards"] == 2

    def test_merged_file_is_deterministic(self, grid, tmp_path):
        """Merging in any shard order writes identical result lines
        (sorted by task id)."""
        spec, tasks = grid
        paths = self._run_shards(tasks, spec.digest(), tmp_path)
        a, b = str(tmp_path / "ab.jsonl"), str(tmp_path / "ba.jsonl")
        merge_stores(paths, a)
        merge_stores(list(reversed(paths)), b)

        def result_lines(path):
            with open(path) as fh:
                return [
                    l for l in fh
                    if json.loads(l).get("record") == "result"
                ]

        assert result_lines(a) == result_lines(b)

    def test_duplicates_deduped_last_wins(self, grid, tmp_path):
        spec, tasks = grid
        paths = self._run_shards(tasks, spec.digest(), tmp_path)
        # merge shard0 twice: every shard0 task id occurs twice
        out = str(tmp_path / "dup.jsonl")
        summary = merge_stores([paths[0], paths[0], paths[1]], out)
        n0 = len(shard_tasks(tasks, 0, 2))
        assert summary["duplicates"] == n0
        assert summary["results"] == len(tasks)

    def test_digest_mismatch_refused(self, grid, tmp_path):
        spec, tasks = grid
        p0 = str(tmp_path / "a.jsonl")
        p1 = str(tmp_path / "b.jsonl")
        run_campaign(
            shard_tasks(tasks, 0, 2), p0, CampaignConfig(jobs=1),
            meta={"spec_digest": "aaaaaaaaaaaa"},
        )
        run_campaign(
            shard_tasks(tasks, 1, 2), p1, CampaignConfig(jobs=1),
            meta={"spec_digest": "bbbbbbbbbbbb"},
        )
        out = str(tmp_path / "m.jsonl")
        with pytest.raises(ValueError, match="different grids"):
            merge_stores([p0, p1], out)
        summary = merge_stores([p0, p1], out, force=True)
        assert summary["results"] == len(tasks)
        assert summary["spec_digest"] is None

    def test_empty_shard_refused(self, tmp_path):
        missing = str(tmp_path / "missing.jsonl")
        with pytest.raises(ValueError, match="no campaign records"):
            merge_stores([missing], str(tmp_path / "out.jsonl"))


class TestShardCli:
    def test_run_shards_then_merge(self, grid, tmp_path):
        from repro.__main__ import main

        _spec, tasks = grid
        s0 = str(tmp_path / "s0.jsonl")
        s1 = str(tmp_path / "s1.jsonl")
        base = ["campaign", "run", "--seed", "0", "--nests", "3"]
        assert main(base + ["--shard", "0/2", "--out", s0]) == 0
        assert main(base + ["--shard", "1/2", "--out", s1]) == 0
        merged = str(tmp_path / "m.jsonl")
        assert main(["campaign", "merge", "--out", merged, s0, s1]) == 0
        _, results = RunStore(merged).load()
        assert set(results) == {t.task_id for t in tasks}

    def test_bad_shard_spec_exits_2(self, tmp_path):
        from repro.__main__ import main

        out = str(tmp_path / "x.jsonl")
        for bad in ("2", "3/2", "-1/2", "a/b"):
            assert main(
                ["campaign", "run", "--out", out, f"--shard={bad}"]
            ) == 2

    def test_merge_existing_out_needs_force(self, grid, tmp_path):
        from repro.__main__ import main

        spec, tasks = grid
        p = str(tmp_path / "s.jsonl")
        run_campaign(
            tasks[:2], p, CampaignConfig(jobs=1),
            meta={"spec_digest": spec.digest()},
        )
        out = str(tmp_path / "m.jsonl")
        assert main(["campaign", "merge", "--out", out, p]) == 0
        assert main(["campaign", "merge", "--out", out, p]) == 2
        assert main(["campaign", "merge", "--force", "--out", out, p]) == 0

    def test_merge_mixed_grids_needs_allow_mixed(self, grid, tmp_path):
        """--force only overwrites the output file; merging shards of
        *different* grids needs the dedicated --allow-mixed opt-out."""
        from repro.__main__ import main

        _spec, tasks = grid
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        run_campaign(
            tasks[:1], a, CampaignConfig(jobs=1),
            meta={"spec_digest": "aaaaaaaaaaaa"},
        )
        run_campaign(
            tasks[1:2], b, CampaignConfig(jobs=1),
            meta={"spec_digest": "bbbbbbbbbbbb"},
        )
        out = str(tmp_path / "m.jsonl")
        assert main(["campaign", "merge", "--out", out, a, b]) == 2
        assert main(
            ["campaign", "merge", "--force", "--out", out, a, b]
        ) == 2
        assert main(
            ["campaign", "merge", "--allow-mixed", "--out", out, a, b]
        ) == 0
