"""Tracing across the campaign stack: JSONL round-trip, spawn-context
enablement pass-through, crashed-task attribution and the guarantee
that tracing never touches the stored results."""

import json

import pytest

from repro.__main__ import main
from repro.campaign import (
    CampaignConfig,
    RunStore,
    default_spec,
    run_campaign,
)
from repro.obs import (
    format_stage_breakdown,
    format_trace_report,
    load_trace,
    stage_rows,
    stage_totals,
    tracing,
)


@pytest.fixture(scope="module")
def grid():
    # 2 generated nests x 2 meshes on one machine = 4 tasks, 2 groups
    spec = default_spec(
        seed=0, nests=2, include_corpus=False,
        machines=("paragon",), meshes=((4, 4), (2, 2)),
    )
    return spec, spec.expand()


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    from repro.campaign import clear_compile_cache

    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    # earlier tests may have compiled this module's grid in-process;
    # a warm LRU would make the inline runs emit no compile spans
    clear_compile_cache()
    prev = tracing.is_enabled()
    yield
    tracing.set_enabled(prev)


def _run(grid, tmp_path, name, **kw):
    spec, tasks = grid
    path = str(tmp_path / f"{name}.jsonl")
    outcome = run_campaign(
        tasks, path, CampaignConfig(**kw),
        meta={"spec_digest": spec.digest()},
    )
    _, results = RunStore(path).load()
    return outcome, results, path


class TestRoundTrip:
    def test_traced_run_writes_full_jsonl(self, grid, tmp_path):
        from repro.obs import metrics

        # the counter is process-cumulative; assert this run's delta
        ok_before = metrics.snapshot().get("campaign.tasks.ok", 0)
        trace_path = str(tmp_path / "trace.jsonl")
        outcome, results, _ = _run(
            grid, tmp_path, "traced", jobs=1, trace=trace_path
        )
        assert outcome.ok == len(results) == 4
        trace = load_trace(trace_path)
        assert trace["meta"]["executor"] == "inline"
        assert trace["meta"]["spec_digest"] == grid[0].digest()
        assert len(trace["tasks"]) == 4
        # every task carries compile/price stage spans and its group key
        for t in trace["tasks"]:
            assert t["status"] == "ok"
            assert t["compile_key"]
            assert "price" in t["spans"]
            assert t["spans"]["price"]["seconds"] > 0
        # compile happens once per group: the cache-hit tasks have no
        # compile span but the group total is positive
        rows = stage_rows(trace["tasks"])
        assert len(rows) == 2  # one row per compile-key group
        for r in rows:
            assert r["tasks"] == 2 and r["ok"] == 2
            assert r["compile_seconds"] > 0
            assert r["price_seconds"] > 0
            assert r["phase_calls"] > 0
            # stage seconds never exceed task wall time
            assert (
                r["compile_seconds"] + r["price_seconds"]
                <= r["seconds"] + 1e-6
            )
        # campaign-level aggregate has parent-side spans too
        assert "store.append" in trace["spans"]
        assert trace["metrics"]["campaign.tasks.ok"] - ok_before == 4
        # the report renders from the file alone
        report = format_trace_report(trace)
        assert "per-stage time by compile-key group" in report
        assert "span aggregate" in report

    def test_price_subspans_attribute_the_two_halves(self, grid, tmp_path):
        """The price stage splits into ``price.heuristic`` /
        ``price.baseline`` sub-spans; their seconds are inclusive
        slices of the price span, so the report attributes the two
        halves without changing any stage total."""
        from repro.campaign import clear_baseline_cache

        clear_baseline_cache()  # all baselines priced (and spanned)
        trace_path = str(tmp_path / "sub.jsonl")
        _run(grid, tmp_path, "sub", jobs=1, trace=trace_path)
        trace = load_trace(trace_path)
        for t in trace["tasks"]:
            assert "price/price.heuristic" in t["spans"]
            assert "price/price.baseline" in t["spans"]
        rows = stage_rows(trace["tasks"])
        for r in rows:
            assert r["price_heuristic_seconds"] > 0
            assert r["price_baseline_seconds"] > 0
            assert (
                r["price_heuristic_seconds"] + r["price_baseline_seconds"]
                <= r["price_seconds"] + 1e-6
            )
        totals = stage_totals(trace["tasks"])
        assert totals["price_heuristic_seconds"] > 0
        assert totals["price_baseline_seconds"] > 0
        report = format_stage_breakdown(trace["tasks"])
        assert "heur_s" in report and "base_s" in report

    def test_totals_sum_to_task_seconds(self, grid, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        _run(grid, tmp_path, "tot", jobs=1, trace=trace_path)
        totals = stage_totals(load_trace(trace_path)["tasks"])
        lhs = (
            totals["compile_seconds"]
            + totals["price_seconds"]
            + totals["overhead_seconds"]
        )
        assert lhs == pytest.approx(totals["task_seconds"], abs=1e-6)

    def test_tracing_flag_restored_after_run(self, grid, tmp_path):
        assert not tracing.is_enabled()
        _run(grid, tmp_path, "flag", jobs=1,
             trace=str(tmp_path / "f.jsonl"))
        assert not tracing.is_enabled()


class TestStoreIsolation:
    def test_store_records_identical_to_untraced_run(self, grid, tmp_path):
        _, plain, plain_path = _run(grid, tmp_path, "plain", jobs=1)
        _, traced_r, traced_path = _run(
            grid, tmp_path, "tr", jobs=1, trace=str(tmp_path / "x.jsonl")
        )
        assert {k: r.deterministic_dict() for k, r in plain.items()} == {
            k: r.deterministic_dict() for k, r in traced_r.items()
        }
        # no trace payload leaks into the result store
        with open(traced_path) as fh:
            for line in fh:
                assert "trace" not in json.loads(line)

    def test_disabled_tracing_attaches_no_trace(self, grid, tmp_path):
        from repro.campaign import execute_task

        result = execute_task(grid[1][0])
        assert result.status == "ok"
        assert result.trace is None
        assert "trace" not in result.to_dict()


class TestWorkers:
    def test_spawn_workers_emit_traces(self, grid, tmp_path):
        """Regression: trace enablement must travel through worker
        initializers — a spawn worker re-imports repro.obs with tracing
        off and would otherwise return empty span trees."""
        trace_path = str(tmp_path / "spawn.jsonl")
        outcome, _, _ = _run(
            grid, tmp_path, "spawn", jobs=2, executor="resilient",
            mp_context="spawn", trace=trace_path,
        )
        assert outcome.ok == 4
        trace = load_trace(trace_path)
        assert len(trace["tasks"]) == 4
        for t in trace["tasks"]:
            assert t["spans"], f"task {t['task_id']} lost its spans"
            assert "price" in t["spans"]

    def test_crashed_task_attributed_traceless(self, grid, tmp_path, monkeypatch):
        """A task whose worker is killed appears in the trace as a
        traceless record; the rest of its group still carries spans."""
        spec, tasks = grid
        victim = tasks[0]
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"kill:task={victim.task_id},times=99"
        )
        trace_path = str(tmp_path / "crash.jsonl")
        outcome, results, _ = _run(
            grid, tmp_path, "crash", jobs=2, executor="resilient",
            backoff=0.01, trace=trace_path,
        )
        assert outcome.crashed == 1 and outcome.ok == 3
        trace = load_trace(trace_path)
        by_id = {t["task_id"]: t for t in trace["tasks"]}
        assert by_id[victim.task_id]["status"] == "crashed"
        assert by_id[victim.task_id]["spans"] == {}
        ok_spans = [
            t for t in trace["tasks"]
            if t["status"] == "ok" and t["spans"]
        ]
        assert len(ok_spans) == 3
        rows = {r["compile_key"]: r for r in stage_rows(trace["tasks"])}
        assert rows[victim.compile_key]["traceless"] == 1
        # lifecycle counters made it into the metrics export
        deaths = trace["metrics"].get(
            "campaign.executor.resilient.worker_deaths", 0
        )
        assert deaths >= 1
        assert "TOTAL" in format_stage_breakdown(trace["tasks"])


class TestCli:
    def test_cli_traced_run_and_report(self, grid, tmp_path, capsys):
        out = str(tmp_path / "cli.jsonl")
        trace_path = str(tmp_path / "cli_trace.jsonl")
        rc = main([
            "campaign", "run", "--out", out, "--seed", "0",
            "--nests", "2", "--no-corpus", "--machines", "paragon",
            "--mesh", "4x4", "--trace", trace_path,
        ])
        assert rc == 0
        rc = main(["trace", "report", trace_path])
        assert rc == 0
        report = capsys.readouterr().out
        assert "per-stage time by compile-key group" in report
        assert "span aggregate" in report

    def test_cli_summarize_timings(self, grid, tmp_path, capsys):
        out = str(tmp_path / "s.jsonl")
        trace_path = str(tmp_path / "s_trace.jsonl")
        assert main([
            "campaign", "run", "--out", out, "--seed", "0",
            "--nests", "2", "--no-corpus", "--machines", "paragon",
            "--mesh", "4x4", "--trace", trace_path,
        ]) == 0
        capsys.readouterr()
        assert main([
            "campaign", "summarize", out, "--timings", trace_path,
        ]) == 0
        text = capsys.readouterr().out
        assert "per-stage time by compile-key group" in text

    def test_cli_trace_report_missing_file(self, tmp_path, capsys):
        rc = main(["trace", "report", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no trace file" in capsys.readouterr().err
