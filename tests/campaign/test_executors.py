"""The pluggable execution backends: parity with inline, worker-death
recovery, retry/backoff telemetry, hang detection and configuration
pass-through for spawn-context workers."""

import pytest

from repro.__main__ import main
from repro.campaign import (
    CampaignConfig,
    RunStore,
    baseline_cache_stats,
    clear_baseline_cache,
    default_spec,
    execute_task,
    executor_names,
    make_executor,
    run_campaign,
    set_baseline_cache_size,
    set_compile_cache_size,
)
from repro.campaign.executors import (
    BACKOFF_CAP,
    ExecutorConfig,
    backoff_delay,
    init_worker,
)


@pytest.fixture(scope="module")
def grid():
    # 3 generated nests x 2 meshes on one machine = 6 tasks, 3 groups
    spec = default_spec(
        seed=0, nests=3, include_corpus=False,
        machines=("paragon",), meshes=((4, 4), (2, 2)),
    )
    return spec, spec.expand()


@pytest.fixture(scope="module")
def reference(grid, tmp_path_factory):
    spec, tasks = grid
    path = str(tmp_path_factory.mktemp("ref") / "ref.jsonl")
    run_campaign(tasks, path, CampaignConfig(jobs=1),
                 meta={"spec_digest": spec.digest()})
    _, results = RunStore(path).load()
    return {k: r.deterministic_dict() for k, r in results.items()}


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)


def _run(grid, tmp_path, name, **kw):
    spec, tasks = grid
    path = str(tmp_path / f"{name}.jsonl")
    outcome = run_campaign(
        tasks, path, CampaignConfig(**kw),
        meta={"spec_digest": spec.digest()},
    )
    _, results = RunStore(path).load()
    return outcome, results


class TestRegistry:
    def test_three_backends_registered(self):
        assert executor_names() == ["inline", "pool", "resilient"]

    def test_unknown_name_is_friendly(self):
        with pytest.raises(ValueError, match="unknown executor 'warp'"):
            make_executor("warp", ExecutorConfig())

    def test_runner_rejects_unknown_executor(self, grid, tmp_path):
        with pytest.raises(ValueError, match="unknown executor"):
            _run(grid, tmp_path, "bad", executor="warp")

    def test_backoff_delay_is_capped_exponential(self):
        assert backoff_delay(0.5, 1) == 0.5
        assert backoff_delay(0.5, 3) == 2.0
        assert backoff_delay(10.0, 9) == BACKOFF_CAP
        assert backoff_delay(0.0, 5) == 0.0
        assert backoff_delay(0.5, 0) == 0.0


class TestParity:
    @pytest.mark.parametrize("name", ["pool", "resilient"])
    def test_process_backends_match_inline(
        self, grid, tmp_path, reference, name
    ):
        outcome, results = _run(grid, tmp_path, name, jobs=2, executor=name)
        assert outcome.ok == len(reference) and outcome.crashed == 0
        got = {k: r.deterministic_dict() for k, r in results.items()}
        assert got == reference

    def test_explicit_inline_matches_default(self, grid, tmp_path, reference):
        _, results = _run(grid, tmp_path, "inline", executor="inline")
        got = {k: r.deterministic_dict() for k, r in results.items()}
        assert got == reference


class TestWorkerDeath:
    """A SIGKILLed worker must surface as typed records, never a hang."""

    @pytest.mark.parametrize("name", ["pool", "resilient"])
    def test_kill_surfaces_crashed_and_campaign_continues(
        self, grid, tmp_path, monkeypatch, name
    ):
        spec, tasks = grid
        victim = tasks[0]
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"kill:task={victim.task_id},times=99"
        )
        outcome, results = _run(
            grid, tmp_path, name, jobs=2, executor=name, backoff=0.01,
        )
        assert outcome.crashed >= 1
        crashed = [r for r in results.values() if r.status == "crashed"]
        assert any(r.task_id == victim.task_id for r in crashed)
        for r in crashed:
            assert r.error_kind == "crash"
            assert "worker process died" in r.error
        # the rest of the campaign completed
        assert outcome.ok == len(tasks) - len(crashed)

    def test_resilient_crash_granularity_is_per_task(
        self, grid, tmp_path, monkeypatch
    ):
        # the victim's compile-key group has 2 mesh cells; only the
        # victim task is lost, its sibling completes in the respawn
        spec, tasks = grid
        victim = tasks[0]
        siblings = [
            t for t in tasks
            if t.compile_key == victim.compile_key
            and t.task_id != victim.task_id
        ]
        assert siblings
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"kill:task={victim.task_id},times=99"
        )
        _, results = _run(
            grid, tmp_path, "resilient", jobs=2, executor="resilient",
            backoff=0.01,
        )
        assert results[victim.task_id].status == "crashed"
        for s in siblings:
            assert results[s.task_id].status == "ok"

    @pytest.mark.parametrize("name", ["pool", "resilient"])
    def test_retries_heal_a_transient_kill(
        self, grid, tmp_path, monkeypatch, reference, name
    ):
        spec, tasks = grid
        victim = tasks[0]
        # times=1: only the first attempt dies; the retry succeeds
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"kill:task={victim.task_id},times=1"
        )
        outcome, results = _run(
            grid, tmp_path, name, jobs=2, executor=name,
            retries=2, backoff=0.01,
        )
        assert outcome.crashed == 0 and outcome.ok == len(tasks)
        assert outcome.retried >= 1
        assert results[victim.task_id].attempts == 2
        # the healed record is bit-identical to the unfaulted run
        got = {k: r.deterministic_dict() for k, r in results.items()}
        assert got == reference


class TestHangDetection:
    def test_resilient_kills_and_types_a_sigalrm_proof_hang(
        self, grid, tmp_path, monkeypatch
    ):
        spec, tasks = grid
        victim = tasks[0]
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"hang:task={victim.task_id},times=99"
        )
        outcome, results = _run(
            grid, tmp_path, "resilient", jobs=2, executor="resilient",
            timeout=2.0, heartbeat_timeout=10.0, backoff=0.01,
        )
        rec = results[victim.task_id]
        assert rec.status == "timeout" and rec.error_kind == "timeout"
        assert "hang detected" in rec.error
        assert outcome.timeouts == 1
        assert outcome.ok == len(tasks) - 1

    def test_inline_downgrades_hang_to_transient_failure(
        self, grid, tmp_path, monkeypatch
    ):
        spec, tasks = grid
        victim = tasks[0]
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"hang:task={victim.task_id},times=99"
        )
        _, results = _run(grid, tmp_path, "inline", executor="inline")
        rec = results[victim.task_id]
        assert rec.status == "error" and rec.error_kind == "fault"
        assert "downgraded" in rec.error


class TestSpawnConfigPassthrough:
    def test_spawn_workers_honour_parent_cache_size(self, grid, tmp_path):
        # spawn workers re-import the module, so a fork-inherited
        # global would silently revert to the default (32); the size
        # must travel through the worker-init call instead
        prev = set_compile_cache_size(0)
        try:
            outcome, _ = _run(
                grid, tmp_path, "spawned", jobs=2, executor="resilient",
                mp_context="spawn",
            )
        finally:
            set_compile_cache_size(prev)
        assert outcome.ok == len(grid[1])
        assert outcome.compile_cache_hits == 0
        assert outcome.compile_cache_misses == len(grid[1])

    def test_spawn_workers_honour_parent_baseline_cache_size(self, tmp_path):
        # the baseline price memo must travel through worker init like
        # the compile-cache size: a rank-weights sweep on one pool
        # worker hits the memo by default, and a parent that disabled
        # it must see zero hits even from spawn-context workers
        spec = default_spec(
            seed=0, nests=2, include_corpus=False,
            machines=("paragon",), meshes=((4, 4), (2, 2)),
            rank_weights=(True, False),
        )
        tasks = spec.expand()
        cells = len(tasks) // 2  # distinct (workload, machine, mesh)

        def run(name):
            path = str(tmp_path / f"{name}.jsonl")
            outcome = run_campaign(
                tasks, path,
                CampaignConfig(jobs=1, executor="pool", mp_context="spawn"),
                meta={"spec_digest": spec.digest()},
            )
            return outcome

        clear_baseline_cache()
        outcome = run("default")
        assert outcome.ok == len(tasks)
        assert outcome.baseline_cache_misses == cells
        assert outcome.baseline_cache_hits == cells

        prev = set_baseline_cache_size(0)
        try:
            outcome = run("disabled")
        finally:
            set_baseline_cache_size(prev)
        assert outcome.ok == len(tasks)
        assert outcome.baseline_cache_hits == 0
        assert outcome.baseline_cache_misses == len(tasks)

    def test_init_worker_applies_baseline_and_backend_knobs(self):
        from repro.machine.backend import price_backend

        prev = baseline_cache_stats()["maxsize"]
        try:
            init_worker(
                ExecutorConfig(
                    baseline_cache_size=7, price_backend="numpy"
                ),
                allow_kill=False,
                allow_hang=False,
            )
            assert baseline_cache_stats()["maxsize"] == 7
            assert price_backend() == "numpy"
        finally:
            set_baseline_cache_size(prev)


class TestTimeoutValidation:
    @pytest.mark.parametrize("bad", [0, -3.5])
    def test_execute_task_rejects_nonpositive_timeout(self, grid, bad):
        with pytest.raises(ValueError, match="timeout must be positive"):
            execute_task(grid[1][0], timeout=bad)

    @pytest.mark.parametrize("bad", [0, -3.5])
    def test_run_campaign_rejects_nonpositive_timeout(
        self, grid, tmp_path, bad
    ):
        with pytest.raises(ValueError, match="timeout must be positive"):
            _run(grid, tmp_path, "bad", timeout=bad)

    def test_cli_rejects_nonpositive_timeout_with_exit_2(
        self, tmp_path, capsys
    ):
        out = str(tmp_path / "out.jsonl")
        rc = main([
            "campaign", "run", "--out", out, "--nests", "1",
            "--no-corpus", "--timeout", "0",
        ])
        assert rc == 2
        assert "--timeout must be positive" in capsys.readouterr().err

    def test_cli_rejects_negative_retries_with_exit_2(
        self, tmp_path, capsys
    ):
        out = str(tmp_path / "out.jsonl")
        rc = main([
            "campaign", "run", "--out", out, "--nests", "1",
            "--no-corpus", "--retries", "-1",
        ])
        assert rc == 2
        assert "--retries" in capsys.readouterr().err
