"""Baseline price memo: the Feautrier baseline is rank-weights
independent, so a knob sweep must price each (workload, m, machine,
mesh) baseline once — without changing a byte of what lands on disk.
Also covers the batched whole-group pricing path's record identity
against the per-task loop.
"""

import pytest

from repro.campaign import (
    CampaignConfig,
    RunStore,
    baseline_cache_stats,
    clear_baseline_cache,
    clear_compile_cache,
    group_pricing_allowed,
    run_campaign,
    set_baseline_cache_size,
    set_group_pricing,
)
from repro.campaign.sweep import canonical_json, default_spec, group_by_compile_key


@pytest.fixture(scope="module")
def rw_sweep_grid():
    # rank_weights swept: 2 nests x 4 machine x mesh cells x 2 knob
    # values; the baseline of the second knob value is a pure re-price
    spec = default_spec(
        seed=0,
        nests=2,
        include_corpus=False,
        meshes=((4, 4), (2, 2)),
        rank_weights=(True, False),
    )
    return spec.expand()


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_compile_cache()
    clear_baseline_cache()
    yield
    clear_compile_cache()
    clear_baseline_cache()


class TestBaselineCacheBehaviour:
    def test_rank_weight_sweep_hits_across_groups(self, rw_sweep_grid, tmp_path):
        outcome = run_campaign(
            rw_sweep_grid, str(tmp_path / "b.jsonl"), CampaignConfig(jobs=1),
            meta={},
        )
        cells = len(rw_sweep_grid) // 2  # distinct (wl, machine, mesh)
        assert outcome.errors == 0
        assert outcome.baseline_cache_misses == cells
        assert outcome.baseline_cache_hits == cells
        stats = baseline_cache_stats()
        assert stats["hits"] == outcome.baseline_cache_hits
        assert stats["misses"] == outcome.baseline_cache_misses

    def test_hits_reported_in_describe(self, rw_sweep_grid, tmp_path):
        outcome = run_campaign(
            rw_sweep_grid, str(tmp_path / "d.jsonl"), CampaignConfig(jobs=1),
            meta={},
        )
        text = outcome.describe()
        assert "baseline cache" in text
        hits = outcome.baseline_cache_hits
        total = hits + outcome.baseline_cache_misses
        assert f"{hits}/{total} hit(s)" in text

    def test_disabled_cache_always_misses(self, rw_sweep_grid, tmp_path):
        prev = set_baseline_cache_size(0)
        try:
            outcome = run_campaign(
                rw_sweep_grid, str(tmp_path / "off.jsonl"),
                CampaignConfig(jobs=1), meta={},
            )
        finally:
            set_baseline_cache_size(prev)
        assert outcome.baseline_cache_hits == 0
        assert outcome.baseline_cache_misses == len(rw_sweep_grid)

    def test_cache_hits_on_per_task_path_too(self, rw_sweep_grid, tmp_path):
        prev = set_group_pricing(False)
        try:
            outcome = run_campaign(
                rw_sweep_grid, str(tmp_path / "pt.jsonl"),
                CampaignConfig(jobs=1), meta={},
            )
        finally:
            set_group_pricing(prev)
        cells = len(rw_sweep_grid) // 2
        assert outcome.baseline_cache_hits == cells
        assert outcome.baseline_cache_misses == cells

    def test_lru_eviction_bounds_entries(self, rw_sweep_grid, tmp_path):
        prev = set_baseline_cache_size(2)
        try:
            run_campaign(
                rw_sweep_grid, str(tmp_path / "lru.jsonl"),
                CampaignConfig(jobs=1), meta={},
            )
            assert baseline_cache_stats()["size"] <= 2
        finally:
            set_baseline_cache_size(prev)


class TestGroupPricingGates:
    def test_allowed_on_plain_multi_cell_group(self, rw_sweep_grid):
        groups = group_by_compile_key(rw_sweep_grid)
        assert group_pricing_allowed(groups[0], timeout=None)

    def test_blocked_by_timeout_switch_and_size(self, rw_sweep_grid):
        groups = group_by_compile_key(rw_sweep_grid)
        group = groups[0]
        assert not group_pricing_allowed(group, timeout=30.0)
        assert not group_pricing_allowed(group[:1], timeout=None)
        prev = set_group_pricing(False)
        try:
            assert not group_pricing_allowed(group, timeout=None)
        finally:
            set_group_pricing(prev)


class TestGoldenByteIdentity:
    def test_batched_records_identical_to_per_task(self, rw_sweep_grid, tmp_path):
        """The golden check: a batched-group campaign and a per-task
        campaign (group pricing off, baseline cache off) write records
        whose deterministic payloads serialize to identical bytes."""
        batched_path = str(tmp_path / "batched.jsonl")
        plain_path = str(tmp_path / "plain.jsonl")

        run_campaign(
            rw_sweep_grid, batched_path, CampaignConfig(jobs=1), meta={}
        )
        clear_compile_cache()
        clear_baseline_cache()
        prev_gp = set_group_pricing(False)
        prev_bc = set_baseline_cache_size(0)
        try:
            run_campaign(
                rw_sweep_grid, plain_path, CampaignConfig(jobs=1), meta={}
            )
        finally:
            set_group_pricing(prev_gp)
            set_baseline_cache_size(prev_bc)

        _, batched = RunStore(batched_path).load()
        _, plain = RunStore(plain_path).load()
        assert set(batched) == set(plain) == {
            t.task_id for t in rw_sweep_grid
        }
        for tid in batched:
            assert canonical_json(
                batched[tid].deterministic_dict()
            ) == canonical_json(plain[tid].deterministic_dict()), tid

    def test_hit_flag_never_reaches_disk(self, rw_sweep_grid, tmp_path):
        path = str(tmp_path / "flags.jsonl")
        run_campaign(
            rw_sweep_grid, path, CampaignConfig(jobs=1), meta={}
        )
        with open(path) as fh:
            assert "baseline_cache_hit" not in fh.read()
        _, results = RunStore(path).load()
        assert all(r.baseline_cache_hit is None for r in results.values())
