"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import _parse_params, main

EX5_SRC = """array a(4), b(3)
for t = 1..n:
  for i = 1..n:
    for j = 1..n:
      for k = 1..n:
        S: a[t, i, j, k] = b[t, i, j]
"""


@pytest.fixture()
def nest_file(tmp_path):
    p = tmp_path / "ex5.nest"
    p.write_text(EX5_SRC)
    return str(p)


class TestCli:
    def test_basic_run(self, nest_file, capsys):
        assert main([nest_file]) == 0
        out = capsys.readouterr().out
        assert "mapping:" in out

    def test_outer_sequential_communication_free(self, nest_file, capsys):
        assert main([nest_file, "--outer-sequential", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 local" in out

    def test_spmd_flag(self, nest_file, capsys):
        assert main([nest_file, "--spmd"]) == 0
        out = capsys.readouterr().out
        assert "distribute a[" in out
        assert "on_processor" in out

    def test_execute_flag(self, nest_file, capsys):
        rc = main(
            [nest_file, "--execute", "--params", "n=3", "--mesh", "2x2",
             "--outer-sequential", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total:" in out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/nest.txt"]) == 2

    def test_parse_params(self):
        assert _parse_params("N=4,M=7") == {"N": 4, "M": 7}
        assert _parse_params("") == {}

    def test_explicit_map_subcommand_matches_default(self, nest_file, capsys):
        assert main([nest_file]) == 0
        implicit = capsys.readouterr().out
        assert main(["map", nest_file]) == 0
        explicit = capsys.readouterr().out
        assert implicit == explicit


class TestCliHardening:
    """Malformed arguments exit 2 with a friendly message (shared
    between the map and campaign subcommands)."""

    def test_bad_mesh(self, nest_file, capsys):
        assert main([nest_file, "--execute", "--mesh", "4"]) == 2
        err = capsys.readouterr().err
        assert "bad --mesh" in err and "PxQ" in err

    def test_bad_mesh_nonnumeric(self, nest_file, capsys):
        assert main([nest_file, "--mesh", "axb"]) == 2
        assert "bad --mesh" in capsys.readouterr().err

    def test_nonpositive_mesh(self, nest_file, capsys):
        assert main([nest_file, "--mesh", "0x4"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_bad_params_no_equals(self, nest_file, capsys):
        assert main([nest_file, "--execute", "--params", "N"]) == 2
        assert "bad --params" in capsys.readouterr().err

    def test_bad_params_value(self, nest_file, capsys):
        assert main([nest_file, "--execute", "--params", "N=three"]) == 2
        assert "bad --params" in capsys.readouterr().err

    def test_bad_m(self, nest_file, capsys):
        assert main([nest_file, "--m", "two"]) == 2
        assert "bad --m" in capsys.readouterr().err

    def test_campaign_shares_parsers(self, tmp_path, capsys):
        out = str(tmp_path / "r.jsonl")
        assert main(["campaign", "run", "--out", out, "--mesh", "4"]) == 2
        assert "bad --mesh" in capsys.readouterr().err
        assert main(["campaign", "run", "--out", out, "--m", "x"]) == 2
        assert "bad --m" in capsys.readouterr().err

    def test_campaign_repeated_grid_cell(self, tmp_path, capsys):
        out = str(tmp_path / "r.jsonl")
        rc = main(
            ["campaign", "run", "--out", out, "--nests", "1", "--no-corpus",
             "--mesh", "4x4,4x4"]
        )
        assert rc == 2
        assert "repeated cell" in capsys.readouterr().err

    def test_truncated_3d_mesh(self, nest_file, capsys):
        assert main([nest_file, "--mesh", "2x"]) == 2
        assert "bad --mesh" in capsys.readouterr().err

    def test_map_3d_mesh_with_m2_exits_2(self, nest_file, capsys):
        rc = main(
            [nest_file, "--execute", "--mesh", "2x2x2", "--m", "2"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "3-D" in err and "--m" in err

    def test_map_2d_mesh_with_m3_exits_2(self, nest_file, capsys):
        rc = main([nest_file, "--execute", "--mesh", "4x4", "--m", "3"])
        assert rc == 2
        assert "mesh rank" in capsys.readouterr().err

    def test_campaign_3d_mesh_with_m2_exits_2(self, tmp_path, capsys):
        out = str(tmp_path / "r.jsonl")
        rc = main(
            ["campaign", "run", "--out", out, "--nests", "1", "--no-corpus",
             "--mesh", "2x2x2", "--m", "2"]
        )
        assert rc == 2
        assert "compatible" in capsys.readouterr().err


class TestCampaignCli:
    def _run(self, tmp_path, *extra):
        out = str(tmp_path / "demo.jsonl")
        args = [
            "campaign", "run", "--seed", "0", "--nests", "2", "--no-corpus",
            "--machines", "paragon", "--out", out,
        ] + list(extra)
        return out, main(args)

    def test_run_and_summarize(self, tmp_path, capsys):
        out, rc = self._run(tmp_path)
        assert rc == 0
        run_out = capsys.readouterr().out
        assert "campaign grid:" in run_out
        assert "campaign summary" in run_out

        assert main(["campaign", "summarize", out]) == 0
        text = capsys.readouterr().out
        assert "campaign summary" in text
        assert "paragon" in text

    def test_refuses_to_clobber_without_resume(self, tmp_path, capsys):
        out, rc = self._run(tmp_path)
        assert rc == 0
        capsys.readouterr()
        _, rc2 = self._run(tmp_path)
        assert rc2 == 2
        assert "--resume" in capsys.readouterr().err

    def test_interrupt_resume_matches_uninterrupted(self, tmp_path, capsys):
        import json

        full, rc = self._run(tmp_path)
        assert rc == 0
        part = str(tmp_path / "part.jsonl")
        base = [
            "campaign", "run", "--seed", "0", "--nests", "2", "--no-corpus",
            "--machines", "paragon", "--out", part,
        ]
        assert main(base + ["--max-tasks", "1"]) == 0
        assert main(base + ["--resume"]) == 0
        capsys.readouterr()

        def load(path):
            out = {}
            with open(path) as fh:
                for line in fh:
                    d = json.loads(line)
                    if d.get("record") == "result":
                        d.pop("seconds")
                        out[d["task_id"]] = d
            return out

        assert load(full) == load(part)

    def test_resume_subcommand(self, tmp_path, capsys):
        part = str(tmp_path / "p.jsonl")
        base = ["--seed", "0", "--nests", "2", "--no-corpus",
                "--machines", "paragon", "--out", part]
        assert main(["campaign", "run"] + base + ["--max-tasks", "1"]) == 0
        assert main(["campaign", "resume"] + base) == 0
        out = capsys.readouterr().out
        assert "restored from checkpoint" in out

    def test_summarize_missing_file(self, tmp_path, capsys):
        assert main(["campaign", "summarize", str(tmp_path / "no.jsonl")]) == 2
        assert "no campaign records" in capsys.readouterr().err


class TestCli3D:
    """The m = 3 / T3D path through both subcommands."""

    def test_map_execute_on_cube(self, nest_file, capsys):
        rc = main(
            [nest_file, "--execute", "--mesh", "2x2x2", "--m", "3",
             "--params", "n=3", "--outer-sequential", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total:" in out

    def test_campaign_t3d_runs_clean(self, tmp_path, capsys):
        out = str(tmp_path / "t3d.jsonl")
        rc = main(
            ["campaign", "run", "--seed", "0", "--nests", "2", "--no-corpus",
             "--machines", "t3d", "--mesh", "2x2x2", "--m", "3",
             "--out", out]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "0 error" in text
        assert "2x2x2" in text  # N-D mesh rendered in the summary table

    def test_campaign_mixed_rank_grid(self, tmp_path, capsys):
        """paragon on 4x4 at m=2 next to t3d on 2x2x2 at m=3 in one
        campaign: only compatible cells expand, zero error records."""
        import json

        out = str(tmp_path / "mixed.jsonl")
        rc = main(
            ["campaign", "run", "--seed", "0", "--nests", "2", "--no-corpus",
             "--machines", "paragon,t3d", "--mesh", "4x4,2x2x2",
             "--m", "2,3", "--out", out]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "4 task(s)" in text and "4 ok" in text
        by_machine = {}
        with open(out) as fh:
            for line in fh:
                d = json.loads(line)
                if d.get("record") == "result":
                    assert d["status"] == "ok"
                    by_machine.setdefault(d["machine"], set()).add(
                        tuple(d["mesh"])
                    )
        assert by_machine == {
            "paragon": {(4, 4)}, "t3d": {(2, 2, 2)},
        }
