"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import _parse_params, main

EX5_SRC = """array a(4), b(3)
for t = 1..n:
  for i = 1..n:
    for j = 1..n:
      for k = 1..n:
        S: a[t, i, j, k] = b[t, i, j]
"""


@pytest.fixture()
def nest_file(tmp_path):
    p = tmp_path / "ex5.nest"
    p.write_text(EX5_SRC)
    return str(p)


class TestCli:
    def test_basic_run(self, nest_file, capsys):
        assert main([nest_file]) == 0
        out = capsys.readouterr().out
        assert "mapping:" in out

    def test_outer_sequential_communication_free(self, nest_file, capsys):
        assert main([nest_file, "--outer-sequential", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 local" in out

    def test_spmd_flag(self, nest_file, capsys):
        assert main([nest_file, "--spmd"]) == 0
        out = capsys.readouterr().out
        assert "distribute a[" in out
        assert "on_processor" in out

    def test_execute_flag(self, nest_file, capsys):
        rc = main(
            [nest_file, "--execute", "--params", "n=3", "--mesh", "2x2",
             "--outer-sequential", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total:" in out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/nest.txt"]) == 2

    def test_parse_params(self):
        assert _parse_params("N=4,M=7") == {"N": 4, "M": 7}
        assert _parse_params("") == {}
