"""Tests for the Section 4 macro-communication detectors, axis
parallelism and message vectorization."""

import pytest

from repro.linalg import IntMat
from repro.macrocomm import (
    Extent,
    MacroKind,
    axis_alignment_rotation,
    axis_parallel,
    can_vectorize,
    detect_broadcast,
    detect_gather,
    detect_reduction,
    detect_scatter,
)

ZERO2 = IntMat.zeros(1, 2)
ZERO3 = IntMat.zeros(1, 3)


class TestBroadcast:
    def test_partial_broadcast(self):
        # F has kernel e3; M_S sees it: p = 1 < m = 2 -> partial
        f = IntMat([[1, 0, 0], [0, 1, 0]])
        m_s = IntMat([[1, 0, 0], [0, 0, 1]])
        bc = detect_broadcast(ZERO3, f, m_s)
        assert bc is not None
        assert bc.kind is MacroKind.BROADCAST
        assert bc.extent is Extent.PARTIAL
        assert bc.p == 1
        assert bc.grid_directions[0] == IntMat.col([0, 1])

    def test_hidden_broadcast(self):
        # kernel direction also in ker M_S: the mapping hides it
        f = IntMat([[1, 0, 0], [0, 1, 0]])
        m_s = IntMat([[1, 0, 0], [0, 1, 0]])
        bc = detect_broadcast(ZERO3, f, m_s)
        assert bc is not None
        assert bc.extent is Extent.HIDDEN

    def test_total_broadcast(self):
        # 2-D kernel fully visible on a 2-D grid
        f = IntMat([[1, 0, 0], [1, 0, 0]])
        m_s = IntMat([[0, 1, 0], [0, 0, 1]])
        bc = detect_broadcast(ZERO3, f, m_s)
        assert bc.extent is Extent.TOTAL

    def test_no_kernel_no_broadcast(self):
        f = IntMat([[1, 0], [0, 1]])
        m_s = IntMat([[1, 0], [0, 1]])
        assert detect_broadcast(ZERO2, f, m_s) is None

    def test_schedule_limits_broadcast(self):
        # sequential schedule along the kernel direction kills it
        f = IntMat([[1, 0, 0], [0, 1, 0]])
        theta = IntMat([[0, 0, 1]])
        m_s = IntMat([[1, 0, 0], [0, 0, 1]])
        bc = detect_broadcast(theta, f, m_s)
        assert bc is None or bc.extent is Extent.HIDDEN


class TestScatterGather:
    def test_scatter_detected(self):
        # M_a F kills a direction that F itself moves: same owner,
        # different data, different destinations
        f = IntMat([[1, 0], [0, 1]])
        m_a = IntMat([[1, 0]])  # 1-D grid of owners... use 2x2 grid:
        m_a = IntMat([[1, 0], [0, 0]])
        m_s = IntMat([[1, 0], [0, 1]])
        sc = detect_scatter(ZERO2, f, m_a, m_s)
        assert sc is not None
        assert sc.kind is MacroKind.SCATTER
        assert sc.extent is Extent.PARTIAL

    def test_gather_detected(self):
        f = IntMat([[1, 0], [0, 1]])
        m_a = IntMat([[1, 0], [0, 0]])
        m_s = IntMat([[1, 0], [0, 1]])
        ga = detect_gather(ZERO2, f, m_a, m_s)
        assert ga is not None
        assert ga.kind is MacroKind.GATHER

    def test_scatter_requires_moving_data(self):
        # direction in ker F: same datum -> broadcast, not scatter
        f = IntMat([[1, 0, 0], [0, 1, 0]])
        m_a = IntMat([[1, 0], [0, 1]])
        m_s = IntMat([[1, 0, 0], [0, 1, 0]])
        sc = detect_scatter(ZERO3, f, m_a, m_s)
        if sc is not None:
            for v in sc.iteration_directions:
                assert not (f @ v).is_zero()


class TestReduction:
    def test_reduction_detected(self):
        # all (i, j) instances compute on processor (i, 0) but read
        # b[j], owned by processor (j, 0): a fan-in along j
        f = IntMat([[0, 1]])  # b read through (j)
        m_b = IntMat([[1], [0]])
        m_s = IntMat([[1, 0], [0, 0]])  # instances (i, j) -> (i, 0)
        red = detect_reduction(ZERO2, f, m_b, m_s)
        assert red is not None
        assert red.kind is MacroKind.REDUCTION
        assert red.p >= 1

    def test_no_reduction_when_sources_agree(self):
        f = IntMat([[1, 0], [0, 1]])
        m_b = IntMat([[1, 0], [0, 1]])
        m_s = IntMat([[1, 0], [0, 1]])
        red = detect_reduction(ZERO2, f, m_b, m_s)
        assert red is None or red.p == 0


class TestAxisParallel:
    def test_axis_parallel_single(self):
        assert axis_parallel(IntMat.col([0, 3]))
        assert not axis_parallel(IntMat.col([1, 1]))

    def test_axis_parallel_matrix(self):
        assert axis_parallel(IntMat([[2, 0], [0, 5]]))
        # a full-rank square D spans the whole (coordinate) space: the
        # paper's condition D = [D1 ; 0] is satisfied with no zero block
        assert axis_parallel(IntMat([[1, 1], [0, 1]]))
        # three non-zero rows but rank 2: not a coordinate subspace
        assert not axis_parallel(IntMat([[1, 0], [1, 0], [0, 1]]))

    def test_rotation_fixes_direction(self):
        d = IntMat.col([1, 1])
        v = axis_alignment_rotation(d)
        assert axis_parallel(v @ d)

    def test_rotation_fixes_matrix(self):
        d = IntMat([[1, 2], [1, 1], [1, 0]])  # 3x2 directions in 3-D grid
        v = axis_alignment_rotation(d)
        rotated = v @ d
        assert axis_parallel(rotated)

    def test_rotation_unimodular(self):
        from repro.linalg import is_unimodular

        assert is_unimodular(axis_alignment_rotation(IntMat.col([2, 3])))


class TestVectorization:
    def test_vectorizable(self):
        # M_S and M_a F have the same kernel: source constant over time
        m_s = IntMat([[1, 0, 0], [0, 1, 0]])
        m_a = IntMat([[1, 0], [0, 1]])
        f = IntMat([[1, 0, 0], [0, 1, 0]])
        assert can_vectorize(m_s, m_a, f)

    def test_not_vectorizable(self):
        # source depends on the third index, receiver does not
        m_s = IntMat([[1, 0, 0], [0, 1, 0]])
        m_a = IntMat([[1, 0], [0, 1]])
        f = IntMat([[1, 0, 0], [0, 0, 1]])
        assert not can_vectorize(m_s, m_a, f)
