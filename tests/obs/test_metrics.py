"""The metrics registry: get-or-create semantics, type safety,
providers and the unified snapshot over the formerly bespoke cache
stats surfaces."""

import json

import pytest

from repro.obs import metrics
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram(self):
        h = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                        "mean": 2.0}

    def test_empty_histogram_snapshot(self):
        assert Histogram("h").snapshot()["mean"] is None


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        reg.histogram("c").observe(1.0)
        reg.register_provider("prov", lambda: {"k": 1})
        snap = reg.snapshot()
        json.dumps(snap)
        assert snap["a"] == 1
        assert snap["b"] == 2.0
        assert snap["c"]["count"] == 1
        assert snap["prov"] == {"k": 1}

    def test_broken_provider_degrades_to_error_stub(self):
        reg = MetricsRegistry()

        def boom():
            raise RuntimeError("nope")

        reg.register_provider("bad", boom)
        assert "RuntimeError" in reg.snapshot()["bad"]["error"]

    def test_clear_resets_values_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(7)
        reg.register_provider("p", lambda: {})
        reg.clear()
        assert reg.counter("a") is c
        assert c.value == 0
        assert "p" in reg.provider_names()


class TestUnifiedSurfaces:
    """Satellite: the three bespoke stats surfaces report through one
    obs namespace, while their public accessors stay intact."""

    def test_linalg_cache_reports_through_registry(self):
        from repro.linalg import smith_normal_form
        from repro.linalg.cache import get_cache
        from repro.linalg.intmat import IntMat

        cache = get_cache("smith_normal_form")
        cache.clear()
        a = IntMat([[2, 0], [0, 3]])
        smith_normal_form(a)
        smith_normal_form(a)
        assert cache.hits == 1 and cache.misses == 1
        snap = metrics.snapshot()
        assert snap["linalg.cache.smith_normal_form.hits"] == 1
        assert snap["linalg.cache"]["smith_normal_form"]["hits"] == 1

    def test_route_cache_provider_in_snapshot(self):
        from repro.machine.routecache import (
            clear_route_caches,
            route_cache_for,
        )
        from repro.machine.topology import Mesh2D

        clear_route_caches()
        cache = route_cache_for(Mesh2D(2, 2))
        cache.link_ids((0, 0), (1, 1))
        cache.link_ids((0, 0), (1, 1))
        section = metrics.snapshot()["machine.routecache"]
        (stats,) = section.values()
        assert stats["hits"] == 1 and stats["misses"] == 1
        clear_route_caches()

    def test_route_cache_instances_are_independent(self):
        from repro.machine.routecache import RouteCache
        from repro.machine.topology import Mesh2D

        a = RouteCache(Mesh2D(2, 2))
        b = RouteCache(Mesh2D(2, 2))
        a.link_ids((0, 0), (0, 1))
        assert a.misses == 1 and b.misses == 0
        a.clear()
        assert a.misses == 0

    def test_compile_cache_provider_and_shim(self):
        from repro.campaign import compile_cache_stats

        stats = compile_cache_stats()
        assert set(stats) == {
            "hits",
            "misses",
            "size",
            "maxsize",
            "disk_hits",
            "disk_misses",
            "disk_writes",
            "dir",
        }
        assert metrics.snapshot()["campaign.compile_cache"] == stats
