"""Span semantics: nesting/parenting paths, the disabled no-op fast
path, per-task capture buffers and cross-process merge."""

import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    capture,
    clear_spans,
    freeze_capture,
    merge_spans,
    set_enabled,
    span,
    span_snapshot,
    traced,
)


@pytest.fixture(autouse=True)
def _clean_tracing():
    prev = set_enabled(False)
    clear_spans()
    yield
    set_enabled(prev)
    clear_spans()


class TestDisabled:
    def test_span_is_shared_noop(self):
        # one flag read, no allocation: the same singleton every call
        assert span("a") is span("b")

    def test_disabled_spans_record_nothing(self):
        with span("outer"):
            with span("inner"):
                pass
        assert span_snapshot() == {}

    def test_traced_decorator_passthrough(self):
        calls = []

        @traced("t")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        assert calls == [3]
        assert span_snapshot() == {}


class TestNesting:
    def test_paths_encode_parentage(self):
        set_enabled(True)
        with span("compile"):
            with span("align"):
                with span("step1"):
                    pass
            with span("align"):
                pass
        snap = span_snapshot()
        assert set(snap) == {"compile", "compile/align", "compile/align/step1"}
        assert snap["compile"]["count"] == 1
        assert snap["compile/align"]["count"] == 2
        assert snap["compile/align/step1"]["count"] == 1

    def test_parent_time_covers_child(self):
        set_enabled(True)
        with span("p"):
            with span("c"):
                pass
        snap = span_snapshot()
        assert snap["p"]["seconds"] >= snap["p/c"]["seconds"]

    def test_exception_still_records(self):
        set_enabled(True)
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        assert span_snapshot()["boom"]["count"] == 1

    def test_traced_decorator_nests(self):
        set_enabled(True)

        @traced("inner")
        def fn():
            return 1

        with span("outer"):
            fn()
        assert "outer/inner" in span_snapshot()

    def test_thread_local_stacks(self):
        set_enabled(True)
        done = threading.Event()

        def other():
            with span("t2"):
                pass
            done.set()

        with span("t1"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert done.is_set()
        snap = span_snapshot()
        # the second thread's span is NOT nested under the first's
        assert "t2" in snap and "t1/t2" not in snap


class TestCapture:
    def test_capture_isolates_and_freezes(self):
        set_enabled(True)
        with span("before"):
            pass
        with capture() as buf:
            with span("during"):
                pass
        frozen = freeze_capture(buf)
        assert set(frozen) == {"during"}
        assert frozen["during"]["count"] == 1
        assert frozen["during"]["seconds"] >= 0
        # the global aggregate saw both
        assert set(span_snapshot()) == {"before", "during"}

    def test_capture_after_exit_stops_recording(self):
        set_enabled(True)
        with capture() as buf:
            pass
        with span("later"):
            pass
        assert freeze_capture(buf) == {}

    def test_merge_spans_both_layouts(self):
        merge_spans({"a": {"count": 2, "seconds": 1.5}})
        merge_spans({"a": [1, 0.5], "b": [3, 0.25]})
        merge_spans(None)
        merge_spans({})
        snap = span_snapshot()
        assert snap["a"] == {"count": 3, "seconds": 2.0}
        assert snap["b"] == {"count": 3, "seconds": 0.25}


class TestEnablement:
    def test_set_enabled_returns_previous(self):
        assert set_enabled(True) is False
        assert set_enabled(False) is True
        assert tracing.is_enabled() is False

    def test_env_knob_name(self):
        assert tracing.TRACE_ENV == "REPRO_TRACE"
