"""Additional baseline tests: greedy selection mechanics, Platonoff's
broadcast-preserving allocation constructor, cross-nest behaviour."""

import pytest

from repro.alignment import build_access_graph
from repro.alignment.digraph import Digraph, is_branching
from repro.baselines import feautrier_align, greedy_edge_selection, platonoff_mapping
from repro.baselines.platonoff import _axis_preserving_allocation, _broadcast_direction
from repro.ir import (
    motivating_example,
    outer_sequential_schedules,
    platonoff_example,
    trivial_schedules,
)
from repro.linalg import IntMat, full_rank


class TestGreedySelection:
    def test_prefers_heavy_edges(self):
        g = Digraph()
        light = g.add_edge("a", "b", 1)
        heavy = g.add_edge("c", "b", 9)
        chosen = greedy_edge_selection(g)
        assert heavy.id in chosen and light.id not in chosen

    def test_respects_in_degree(self):
        g = Digraph()
        e1 = g.add_edge("a", "c", 5)
        e2 = g.add_edge("b", "c", 5)
        chosen = greedy_edge_selection(g)
        assert len(chosen & {e1.id, e2.id}) == 1

    def test_avoids_cycles(self):
        g = Digraph()
        g.add_edge("a", "b", 5)
        g.add_edge("b", "a", 5)
        chosen = greedy_edge_selection(g)
        assert is_branching(g, chosen)

    def test_greedy_suboptimal_instance(self):
        """The classic trap: the heaviest edge excludes two medium ones
        that together weigh more — greedy takes the bait, Edmonds does
        not (weights chosen so the branching structure, not just edge
        picks, differs)."""
        from repro.alignment import maximum_branching

        g = Digraph()
        g.add_edge("a", "c", 10)
        g.add_edge("c", "a", 9)
        g.add_edge("b", "c", 9)
        greedy = greedy_edge_selection(g)
        optimal = maximum_branching(g)
        assert g.total_weight(optimal) >= g.total_weight(greedy)


class TestPlatonoffInternals:
    def test_axis_preserving_allocation(self):
        v = IntMat.col([0, 0, 0, 1])
        m = _axis_preserving_allocation(2, v)
        assert m.shape == (2, 4)
        assert full_rank(m)
        assert (m @ v) == IntMat.col([0, 1])  # e_m: axis-parallel

    def test_axis_preserving_nontrivial_direction(self):
        v = IntMat.col([1, 1, 1])
        m = _axis_preserving_allocation(2, v)
        assert (m @ v) == IntMat.col([0, 1])

    def test_broadcast_direction_found(self):
        nest = platonoff_example()
        schedules = outer_sequential_schedules(nest, outer=1)
        v = _broadcast_direction(nest.statement("S"), schedules)
        assert v is not None
        # e4: the k direction of ker(theta) ∩ ker(Fb)
        assert v == IntMat.col([0, 0, 0, 1])

    def test_no_broadcast_no_constraint(self):
        nest = motivating_example()
        schedules = trivial_schedules(nest)
        # S1 reads a through invertible matrices: F4 read of c is
        # narrow => trivial kernel; no broadcast direction from S1
        v = _broadcast_direction(nest.statement("S1"), schedules)
        assert v is None


class TestBaselineOnMotivatingExample:
    def test_platonoff_on_example1_runs(self):
        nest = motivating_example()
        result = platonoff_mapping(nest, m=2, schedules=trivial_schedules(nest))
        # S2/S3 have broadcast candidates (F6/F8 kernels): preserved,
        # so those reads stay non-local
        labels = {o.label for o in result.optimized}
        assert "F6" in labels or "F8" in labels

    def test_feautrier_graph_matches(self):
        nest = motivating_example()
        al = feautrier_align(nest, 2)
        ag = build_access_graph(nest, 2)
        assert len(al.access_graph.graph) == len(ag.graph)
