"""The Section 7.2 experiment: on Example 5, the two-step heuristic
finds a communication-free mapping while Platonoff's broadcast-first
strategy pays one partial broadcast per (i, j) pair per time step."""

import pytest

from repro.alignment import two_step_heuristic
from repro.baselines import feautrier_align, platonoff_mapping
from repro.ir import (
    motivating_example,
    outer_sequential_schedules,
    platonoff_example,
    trivial_schedules,
)
from repro.linalg import IntMat
from repro.macrocomm import Extent, MacroKind


@pytest.fixture(scope="module")
def nest():
    return platonoff_example()


@pytest.fixture(scope="module")
def schedules(nest):
    # outer t loop sequential, i/j/k parallel (the paper's premise)
    return outer_sequential_schedules(nest, outer=1)


class TestOurHeuristic:
    def test_communication_free(self, nest, schedules):
        result = two_step_heuristic(nest, m=2, schedules=schedules)
        assert result.optimized == []
        assert result.local_count == 2  # both accesses local

    def test_parallelism_preserved(self, nest, schedules):
        """The chosen mapping must keep a 2-D set of processors active
        per time step (not project the grid onto the time axis)."""
        from repro.linalg import integer_kernel_basis, rank

        result = two_step_heuristic(nest, m=2, schedules=schedules)
        ms = result.alignment.allocation_of_stmt("S")
        theta = schedules.schedule_of("S").theta
        kern = integer_kernel_basis(theta)
        cols = [v.column_tuple(0) for v in kern]
        k_mat = IntMat(list(zip(*cols)))
        assert rank(ms @ k_mat) == 2


class TestPlatonoffBaseline:
    def test_broadcast_preserved_but_residual(self, nest, schedules):
        result = platonoff_mapping(nest, m=2, schedules=schedules)
        labels = {o.label: o for o in result.optimized}
        assert "Fb" in labels, "the read of b must stay non-local"
        fb = labels["Fb"]
        assert fb.classification == "macro"
        assert fb.macro.kind is MacroKind.BROADCAST
        assert fb.macro.extent is Extent.PARTIAL
        assert fb.macro.axis_parallel

    def test_write_is_local(self, nest, schedules):
        result = platonoff_mapping(nest, m=2, schedules=schedules)
        assert "Fa" in result.alignment.local_labels


class TestEndToEndComparison:
    def test_message_counts(self, nest, schedules):
        """Executing both mappings: ours moves nothing, the baseline
        issues broadcasts every time step."""
        from repro.machine import Mesh2D, ParagonModel
        from repro.runtime import Folding, MappedProgram, execute

        params = {"n": 3}
        machine = ParagonModel(2, 2)
        folding = Folding(mesh=machine.mesh, extent=4)

        ours = two_step_heuristic(nest, m=2, schedules=schedules)
        prog = MappedProgram(mapping=ours, folding=folding, params=params)
        rep = execute(prog, machine)
        assert rep.total_messages == 0
        assert rep.total_time == 0.0

        base = platonoff_mapping(nest, m=2, schedules=schedules)
        prog_b = MappedProgram(mapping=base, folding=folding, params=params)
        rep_b = execute(prog_b, machine)
        assert rep_b.total_messages > 0
        assert rep_b.total_time > 0.0

    def test_virtual_nonlocal_counts(self, nest, schedules):
        from repro.machine import Mesh2D, ParagonModel
        from repro.runtime import Folding, MappedProgram, count_nonlocal_virtual

        params = {"n": 3}
        folding = Folding(mesh=Mesh2D(2, 2), extent=4)
        ours = two_step_heuristic(nest, m=2, schedules=schedules)
        base = platonoff_mapping(nest, m=2, schedules=schedules)
        ours_counts = count_nonlocal_virtual(
            MappedProgram(mapping=ours, folding=folding, params=params)
        )
        base_counts = count_nonlocal_virtual(
            MappedProgram(mapping=base, folding=folding, params=params)
        )
        assert sum(ours_counts.values()) == 0
        # baseline: every (t,i,j,k) instance with k != projection reads
        # remotely — Θ(n^4) element communications before vectorization
        assert sum(base_counts.values()) > 0


class TestFeautrierBaseline:
    def test_greedy_still_reasonable_on_example1(self):
        nest = motivating_example()
        al = feautrier_align(nest, 2)
        # greedy zeroes out *some* communications but needs not reach
        # the branching's five
        assert 1 <= len(al.local_labels) <= 5

    def test_edmonds_at_least_as_good(self):
        nest = motivating_example()
        greedy = feautrier_align(nest, 2)
        edmonds = two_step_heuristic(nest, m=2)
        assert len(edmonds.alignment.local_labels) >= len(greedy.local_labels)

    def test_greedy_allocations_full_rank(self):
        from repro.linalg import full_rank

        nest = motivating_example()
        al = feautrier_align(nest, 2)
        for node, mat in al.allocations.items():
            assert full_rank(mat)
