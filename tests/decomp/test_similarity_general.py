"""Tests for similarity reduction, unirow decomposition and the
top-level decompose_dataflow dispatcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp import (
    conjugate,
    decompose_dataflow,
    decompose_two,
    is_unirow,
    similar_to_two_factors_search,
    similar_to_two_factors_sufficient,
    triangular_unirow_factors,
    two_factor_traces,
    unirow_decomposition,
    verify_factors,
)
from repro.linalg import IntMat, is_unimodular, unimodular_inverse


class TestSimilarity:
    def test_sufficient_condition_applies(self):
        # c | a-1: a=3, c=2
        t = IntMat([[3, 4], [2, 3]])
        out = similar_to_two_factors_sufficient(t)
        assert out is not None
        m, factors = out
        assert is_unimodular(m)
        sim = conjugate(t, m)
        assert verify_factors(sim, factors)
        assert len(factors) <= 2

    def test_sufficient_condition_transpose_side(self):
        t = IntMat([[3, 2], [4, 3]])
        out = similar_to_two_factors_sufficient(t)
        assert out is not None
        m, factors = out
        assert verify_factors(conjugate(t, m), factors)

    def test_search_finds_conjugation(self):
        t = IntMat([[3, 4], [2, 3]])
        out = similar_to_two_factors_search(t, bound=2)
        assert out is not None
        m, factors = out
        assert verify_factors(conjugate(t, m), factors)

    def test_search_none_when_trace_unreachable(self):
        # two-factor products have trace 2 + l k; trace values near 2
        # are always reachable, but a matrix similar to L·U must keep
        # the trace.  tr=2 with non-unipotent structure is impossible
        # for det-1... use tr(T)=2, T != unipotent-conjugate-of-LU with
        # content 3: T - I has content 3 -> only similar to L(±3)/U(±3),
        # which *is* a 1-factor product, so search succeeds.  Instead
        # certify the negative case via trace: tr = 1 (so l k = -1)
        # admits only L(1)U(-1)-type classes; class number of the order
        # of disc -3 is 1, so search should actually succeed there too.
        # A certified negative: no 2-factor product has trace 3 unless
        # lk = 1, giving exactly [[1,k],[l,2]] classes; the matrix
        # below has trace 7 and c=3 ∤ a-1=4, b=9 ∤ d-1=2 — the sufficient
        # condition fails, and the bounded search documents the gap.
        t = IntMat([[5, 9], [3, 2]])  # wrong det; fix below
        t = IntMat([[5, 8], [3, 5]])  # det 1, tr 10
        out = similar_to_two_factors_sufficient(t)
        assert out is None

    def test_two_factor_traces(self):
        traces = two_factor_traces(3)
        assert 2 in traces  # l or k zero
        assert 3 in traces  # lk = 1
        assert 11 in traces  # lk = 9


class TestUnirow:
    def test_identity(self):
        assert unirow_decomposition(IntMat.identity(3)) == []

    def test_diagonal(self):
        t = IntMat.diag([2, 3])
        factors = unirow_decomposition(t)
        assert verify_factors(t, factors)
        assert all(is_unirow(f) for f in factors)

    def test_det1_matrix(self):
        t = IntMat([[1, 3], [2, 7]])
        factors = unirow_decomposition(t)
        assert verify_factors(t, factors)
        assert all(is_unirow(f) for f in factors)

    def test_negative_det(self):
        t = IntMat([[0, 1], [1, 0]])
        factors = unirow_decomposition(t)
        assert verify_factors(t, factors)
        assert all(is_unirow(f) for f in factors)

    def test_3x3(self):
        t = IntMat([[2, 1, 0], [1, 3, 1], [0, 1, 4]])
        factors = unirow_decomposition(t)
        assert verify_factors(t, factors)
        assert all(is_unirow(f) for f in factors)

    def test_rejects_singular(self):
        with pytest.raises(ValueError):
            unirow_decomposition(IntMat([[1, 1], [1, 1]]))

    def test_triangular_peel_upper(self):
        h = IntMat([[2, 5, 7], [0, 3, 1], [0, 0, 4]])
        factors = triangular_unirow_factors(h, lower=False)
        assert verify_factors(h, factors)

    def test_triangular_peel_lower(self):
        h = IntMat([[2, 0, 0], [5, 3, 0], [7, 1, 4]])
        factors = triangular_unirow_factors(h, lower=True)
        assert verify_factors(h, factors)

    @given(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_3x3(self, rows):
        t = IntMat(rows)
        if t.det() == 0:
            return
        factors = unirow_decomposition(t)
        assert verify_factors(t, factors)
        assert all(is_unirow(f) for f in factors)


class TestDispatcher:
    def test_direct_two(self):
        plan = decompose_dataflow(IntMat([[1, 3], [2, 7]]))
        assert plan.strategy == "direct"
        assert plan.num_phases == 2
        assert plan.conjugator is None

    def test_similarity_path(self):
        t = IntMat([[3, 4], [2, 3]])
        plan = decompose_dataflow(t)
        assert plan.strategy in ("similarity", "direct")
        if plan.conjugator is not None:
            sim = conjugate(t, plan.conjugator)
            assert verify_factors(sim, plan.factors)
        else:
            assert verify_factors(t, plan.factors)

    def test_no_conjugation_flag(self):
        t = IntMat([[3, 4], [2, 3]])
        plan = decompose_dataflow(t, allow_conjugation=False)
        assert plan.conjugator is None
        assert verify_factors(t, plan.factors)

    def test_non_det1_uses_unirow(self):
        t = IntMat([[2, 1], [1, 2]])  # det 3
        plan = decompose_dataflow(t)
        assert plan.strategy == "unirow"
        assert verify_factors(t, plan.factors)

    def test_3x3_uses_unirow(self):
        t = IntMat([[1, 1, 0], [0, 1, 1], [0, 0, 1]])
        plan = decompose_dataflow(t)
        assert verify_factors(t, plan.factors)
