"""Tests for the analytic 2x2 decomposition rules, including the
paper's exhaustive coverage claim (|coeffs| <= 5 => at most 4 factors)
on a reduced bound here (full bound in the benchmark suite)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp import (
    L,
    U,
    decompose_2x2,
    decompose_four,
    decompose_one,
    decompose_three,
    decompose_two,
    enumerate_det1,
    kind_2x2,
    shortest_decomposition,
    verify_factors,
)
from repro.linalg import IntMat


#: all 2x2 det-1 matrices with |coeffs| <= 5 (the paper's bound)
_ALL_BOUND5 = list(enumerate_det1(5))


def det1_matrices(bound=5):
    if bound == 5:
        pool = _ALL_BOUND5
    else:
        pool = list(enumerate_det1(bound))
    return st.sampled_from(pool)


class TestElementaryHelpers:
    def test_L_U(self):
        assert L(3) == IntMat([[1, 0], [3, 1]])
        assert U(-2) == IntMat([[1, -2], [0, 1]])

    def test_kind(self):
        assert kind_2x2(L(2)) == "L"
        assert kind_2x2(U(2)) == "U"
        assert kind_2x2(IntMat.identity(2)) == "I"
        with pytest.raises(ValueError):
            kind_2x2(IntMat([[1, 1], [1, 2]]))


class TestOneTwo:
    def test_identity(self):
        assert decompose_2x2(IntMat.identity(2)) == []

    def test_single(self):
        assert decompose_one(U(5)) == [U(5)]
        assert decompose_one(L(-4)) == [L(-4)]
        assert decompose_one(IntMat([[1, 1], [1, 2]])) is None

    def test_lu_when_a_is_1(self):
        t = IntMat([[1, 3], [2, 7]])  # the paper's Figure 7 matrix
        factors = decompose_two(t)
        assert factors == [L(2), U(3)]
        assert verify_factors(t, factors)

    def test_ul_when_d_is_1(self):
        t = IntMat([[7, 3], [2, 1]])
        factors = decompose_two(t)
        assert verify_factors(t, factors)
        assert len(factors) == 2

    def test_motivating_example_T(self):
        # T = L(-1) U(2) arises in our Example 1 reconstruction
        t = IntMat([[1, 2], [-1, -1]])
        factors = decompose_two(t)
        assert factors == [L(-1), U(2)]

    def test_two_impossible(self):
        # a != 1 and d != 1
        t = IntMat([[2, 1], [3, 2]])
        assert decompose_two(t) is None


class TestThree:
    def test_c_divides_a_minus_1(self):
        # a=3, c=2: 2 | 2
        a, c = 3, 2
        d = 3  # ad - bc = 1 -> b = (ad-1)/c = 4
        t = IntMat([[3, 4], [2, 3]])
        factors = decompose_three(t)
        assert factors is not None
        assert len(factors) == 3
        assert verify_factors(t, factors)

    def test_b_divides_d_minus_1(self):
        t = IntMat([[3, 4], [2, 3]]).T
        factors = decompose_three(t)
        assert factors is not None
        assert verify_factors(t, factors)

    def test_three_impossible(self):
        # need c not dividing a-1 and b not dividing d-1
        t = IntMat([[4, 3], [5, 4]])  # det 16-15=1; 5 ∤ 3, 3 ∤ 3? 3|3 yes
        # pick another: a=5,c=3: 3∤4; b: ad-1=24? d=5,b=(25-1)/3=8: 8∤4
        t = IntMat([[5, 8], [3, 5]])
        assert decompose_three(t) is None


class TestFour:
    def test_four_factor_case(self):
        t = IntMat([[5, 8], [3, 5]])
        factors = decompose_four(t)
        assert factors is not None
        assert len(factors) == 4
        assert verify_factors(t, factors)

    def test_d_zero_case(self):
        t = IntMat([[3, 1], [-1, 0]])
        factors = decompose_2x2(t)
        assert factors is not None
        assert verify_factors(t, factors)

    @given(det1_matrices(bound=5))
    @settings(max_examples=60, deadline=None)
    def test_property_le4_within_bound5(self, t):
        """The paper's claim: |coeffs| <= 5 and det 1 implies a product
        of at most 4 elementary factors."""
        factors = decompose_2x2(t)
        assert factors is not None
        assert len(factors) <= 4
        assert verify_factors(t, factors)


class TestExhaustiveSmall:
    def test_all_bound2_matrices_decompose_le4(self):
        count = 0
        for t in enumerate_det1(2):
            factors = decompose_2x2(t)
            assert factors is not None, f"no decomposition for {t!r}"
            assert len(factors) <= 4
            assert verify_factors(t, factors)
            count += 1
        assert count > 50  # sanity: the enumeration is non-trivial

    def test_search_agrees_on_minimality_samples(self):
        for t in [
            IntMat([[1, 3], [2, 7]]),
            IntMat([[3, 4], [2, 3]]),
            IntMat([[5, 8], [3, 5]]),
        ]:
            analytic = decompose_2x2(t)
            bfs = shortest_decomposition(t, max_len=4, coeff_bound=9)
            assert bfs is not None
            assert len(bfs) <= len(analytic)
            assert verify_factors(t, bfs)


class TestValidation:
    def test_rejects_non_2x2(self):
        with pytest.raises(ValueError):
            decompose_2x2(IntMat.identity(3))

    def test_rejects_det_not_1(self):
        with pytest.raises(ValueError):
            decompose_2x2(IntMat([[2, 0], [0, 1]]))
