"""Tests for the binary-quadratic-form similarity decision (the
Latimer–MacDuffee argument of Section 5.2.2 made executable)."""

import pytest

from repro.decomp import (
    decompose_two,
    enumerate_det1,
    forms_equivalent,
    lu_trace_forms,
    matrix_to_form,
    reduction_cycle,
    similar_to_lu_decision,
    similar_to_two_factors_search,
)
from repro.decomp.quadratic import discriminant, _is_reduced_indefinite
from repro.linalg import IntMat


class TestForms:
    def test_matrix_to_form_discriminant(self):
        t = IntMat([[1, 3], [2, 7]])
        f = matrix_to_form(t)
        assert f is not None
        # fixed-point form has discriminant tr^2 - 4 (up to the square
        # of the removed content)
        tr = t.trace()
        d = discriminant(f)
        assert d > 0
        assert (tr * tr - 4) % d == 0

    def test_triangular_returns_none(self):
        assert matrix_to_form(IntMat([[1, 5], [0, 1]])) is None

    def test_reduction_cycle_closes(self):
        f = (1, 5, -5)  # disc 45
        cyc = reduction_cycle(f)
        assert cyc
        for g in cyc:
            assert discriminant(g) == discriminant(f)
            assert _is_reduced_indefinite(g)

    def test_equivalence_reflexive(self):
        f = (1, 5, -5)
        assert forms_equivalent(f, f)

    def test_inequivalent_different_disc(self):
        assert not forms_equivalent((1, 5, -5), (1, 3, -3))


class TestDecision:
    def test_positive_cases_match_search(self):
        for t in enumerate_det1(3):
            if abs(t.trace()) <= 2:
                continue
            dec = similar_to_lu_decision(t)
            if dec is None:
                continue
            search = similar_to_two_factors_search(t, bound=3)
            if search is not None:
                assert dec, f"search found a conjugation for {t.tolist()}"

    def test_certified_negative_example(self):
        """T = [[2,3],[3,5]] (trace 7, det 1, disc 45) is *not*
        GL2(Z)-similar to any product of two elementary matrices — a
        concrete witness of the paper's genus obstruction."""
        t = IntMat([[2, 3], [3, 5]])
        assert t.det() == 1
        assert similar_to_lu_decision(t) is False
        # the bounded search agrees as far as it can see
        assert similar_to_two_factors_search(t, bound=3) is None
        # and the paper's fallback still handles it: <= 4 direct factors
        from repro.decomp import decompose_2x2

        factors = decompose_2x2(t)
        assert factors is not None and len(factors) <= 4

    def test_lu_products_decided_positive(self):
        from repro.decomp import L, U

        for l in (-3, -1, 2, 3):
            for k in (-2, 1, 3):
                t = L(l) @ U(k)
                if abs(t.trace()) <= 2:
                    continue
                dec = similar_to_lu_decision(t)
                if dec is not None:
                    assert dec, f"L({l})U({k}) must be similar to itself"

    def test_elliptic_returns_none(self):
        assert similar_to_lu_decision(IntMat([[0, -1], [1, 0]])) is None

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            similar_to_lu_decision(IntMat([[2, 0], [0, 1]]))

    def test_lu_trace_forms_nonempty(self):
        assert lu_trace_forms(7)  # lk = 5 has divisor pairs
        assert lu_trace_forms(2) == []  # triangular products
