"""Tests for the built-in example nests of Section 4 (broadcast /
gather / reduction shapes) and their macro-communication detection
through the full pipeline."""

import pytest

from repro.alignment import two_step_heuristic
from repro.ir import (
    broadcast_example,
    gather_example,
    infer_schedules,
    is_fully_parallel,
    motivating_example,
    reduction_example,
    trivial_schedules,
)
from repro.macrocomm import MacroKind

PARAMS = {"N": 3, "M": 3, "n": 3}


class TestExampleNests:
    def test_broadcast_example_shape(self):
        nest = broadcast_example()
        assert nest.statement("S").depth == 3
        assert is_fully_parallel(nest, PARAMS)

    def test_broadcast_detected_through_pipeline(self):
        nest = broadcast_example()
        result = two_step_heuristic(nest, m=2)
        # the rank-deficient-in-k read of `a` either becomes local or a
        # broadcast — with `out` 3-D and `a` 2-D the branching aligns
        # out with S, leaving the `a` read as the broadcast
        macros = [o for o in result.optimized if o.macro is not None]
        bc = [o for o in macros if o.macro.kind is MacroKind.BROADCAST]
        locals_ = result.alignment.local_labels
        assert bc or "Fa" in locals_

    def test_gather_example_runs(self):
        nest = gather_example()
        result = two_step_heuristic(nest, m=2)
        assert result.alignment.m == 2

    def test_reduction_example_detected(self):
        nest = reduction_example()
        # s is 1-D: with m = 1 the fan-in becomes visible
        result = two_step_heuristic(nest, m=1)
        kinds = {
            o.macro.kind
            for o in result.optimized
            if o.macro is not None
        }
        # the accumulator write collapses j: reduction or gather fan-in
        assert (
            MacroKind.REDUCTION in kinds
            or MacroKind.GATHER in kinds
            or result.optimized == []
        )

    def test_infer_schedules_on_examples(self):
        for nest in (broadcast_example(), gather_example(), motivating_example()):
            sn = infer_schedules(nest, PARAMS)
            sn.validate_shapes()

    def test_reduction_example_needs_sequential_schedule(self):
        nest = reduction_example()
        sn = infer_schedules(nest, PARAMS)
        # s = s + ... carries a dependence: cannot be all-parallel
        assert not sn.schedule_of("S").theta.is_zero()
