"""Tests for the loop-nest IR: accesses, bounds, builder, domains."""

import pytest

from repro.ir import (
    AccessKind,
    AffineAccess,
    Bound,
    LoopDim,
    LoopNest,
    NestBuilder,
    Statement,
    read,
    write,
)
from repro.linalg import IntMat


class TestBound:
    def test_constant(self):
        assert Bound.of(5).evaluate({}) == 5

    def test_parameter(self):
        assert Bound.of("N").evaluate({"N": 10}) == 10

    def test_sum(self):
        b = Bound.of("N") + "M" + 1
        assert b.evaluate({"N": 3, "M": 4}) == 8

    def test_unbound_raises(self):
        with pytest.raises(KeyError):
            Bound.of("N").evaluate({})

    def test_describe(self):
        assert "N" in (Bound.of("N") + 1).describe()

    def test_reject_bad_type(self):
        with pytest.raises(TypeError):
            Bound.of(3.5)


class TestAffineAccess:
    def test_default_offset_zero(self):
        a = read("a", [[1, 0], [0, 1]])
        assert a.c == IntMat.zeros(2, 1)

    def test_apply(self):
        a = read("a", [[1, 1], [0, 1]], c=[0, 1])
        assert a.apply((2, 3)) == (5, 4)

    def test_apply_wrong_length(self):
        a = read("a", [[1, 0]])
        with pytest.raises(ValueError):
            a.apply((1, 2, 3))

    def test_shapes(self):
        a = write("b", [[1, 0], [0, 1], [1, 1]])
        assert a.array_dim == 3
        assert a.depth == 2
        assert a.rank == 2
        assert a.is_full_rank

    def test_rank_deficient(self):
        a = read("a", [[1, 1, 0], [1, 1, 0]])
        assert a.rank == 1
        assert not a.is_full_rank

    def test_offset_shape_mismatch(self):
        with pytest.raises(ValueError):
            AffineAccess(array="a", F=IntMat([[1, 0]]), c=IntMat.col([1, 2]))

    def test_kind(self):
        assert read("a", [[1]]).kind is AccessKind.READ
        assert write("a", [[1]]).kind is AccessKind.WRITE


class TestStatementAndNest:
    def _stmt(self):
        return Statement(
            name="S",
            loops=[
                LoopDim("i", Bound.of(0), Bound.of(2)),
                LoopDim("j", Bound.of(0), Bound.of(1)),
            ],
            accesses=[read("a", [[1, 0], [0, 1]])],
        )

    def test_depth_and_names(self):
        s = self._stmt()
        assert s.depth == 2
        assert s.index_names == ("i", "j")

    def test_domain(self):
        s = self._stmt()
        pts = list(s.iteration_domain({}))
        assert len(pts) == 6
        assert (0, 0) in pts and (2, 1) in pts

    def test_domain_size(self):
        assert self._stmt().domain_size({}) == 6

    def test_access_depth_validation(self):
        s = Statement(
            name="S",
            loops=[LoopDim("i", Bound.of(0), Bound.of(1))],
            accesses=[read("a", [[1, 0], [0, 1]])],
        )
        with pytest.raises(ValueError):
            s.validate()

    def test_nest_rejects_undeclared_array(self):
        nest = LoopNest(name="t")
        with pytest.raises(ValueError):
            nest.add_statement(self._stmt())

    def test_nest_rejects_dim_mismatch(self):
        nest = LoopNest(name="t")
        nest.declare_array("a", 3)
        with pytest.raises(ValueError):
            nest.add_statement(self._stmt())

    def test_nest_lookup(self):
        nest = LoopNest(name="t")
        nest.declare_array("a", 2)
        s = nest.add_statement(self._stmt())
        assert nest.statement("S") is s
        with pytest.raises(KeyError):
            nest.statement("missing")

    def test_duplicate_rejected(self):
        nest = LoopNest(name="t")
        nest.declare_array("a", 2)
        nest.add_statement(self._stmt())
        with pytest.raises(ValueError):
            nest.add_statement(self._stmt())
        with pytest.raises(ValueError):
            nest.declare_array("a", 2)


class TestBuilder:
    def test_build_round_trip(self):
        b = NestBuilder("ex")
        b.array("a", 2).array("b", 2)
        b.statement(
            "S1",
            [("i", 0, "N"), ("j", 0, "M")],
            writes=[("b", [[1, 0], [0, 1]], [0, 1])],
            reads=[("a", [[0, 1], [1, 0]])],
        )
        nest = b.build()
        s = nest.statement("S1")
        assert s.depth == 2
        assert len(s.writes()) == 1
        assert len(s.reads()) == 1
        assert s.writes()[0].c == IntMat.col([0, 1])

    def test_labels_assigned(self):
        b = NestBuilder("ex")
        b.array("a", 1)
        b.statement("S", [("i", 0, 3)], reads=[("a", [[1]])])
        acc = b.build().statement("S").reads()[0]
        assert acc.label is not None

    def test_describe(self):
        b = NestBuilder("ex")
        b.array("a", 1)
        b.statement("S", [("i", 0, 3)], reads=[("a", [[1]], [2], "Fx")])
        text = b.build().describe()
        assert "Fx" in text and "array a" in text
