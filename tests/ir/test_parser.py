"""Tests for the textual loop-nest front end."""

import pytest

from repro.ir import NestSyntaxError, motivating_example, parse_nest
from repro.linalg import IntMat

EXAMPLE1_SRC = """
array a(2), b(3), c(3)
for i = 1..N:
  for j = 1..M:
    S1: b[i, j, 0] = g1(a[i+j, j+1], a[i-j, i+1], c[j, i, 0])
    for k = 1..N+M:
      S2: b[i, j, k] = g2(a[i+j+k+1, j+k])
      S3: c[i, j, j+k] = g3(a[i+j, i+j+1])
"""


class TestParseExample1:
    def test_round_trip_matches_builtin(self):
        parsed = parse_nest(EXAMPLE1_SRC, name="example1")
        builtin = motivating_example()
        assert set(parsed.arrays) == set(builtin.arrays)
        for s_parsed in parsed.statements:
            s_ref = builtin.statement(s_parsed.name)
            assert s_parsed.depth == s_ref.depth
            got = {(a.array, a.F, a.c, a.kind) for a in s_parsed.accesses}
            want = {(a.array, a.F, a.c, a.kind) for a in s_ref.accesses}
            assert got == want

    def test_labels_in_source_order(self):
        parsed = parse_nest(EXAMPLE1_SRC)
        labels = [a.label for s in parsed.statements for a in s.accesses]
        assert labels == [f"F{i}" for i in range(1, 9)]

    def test_bounds(self):
        parsed = parse_nest(EXAMPLE1_SRC)
        s2 = parsed.statement("S2")
        k_loop = s2.loops[2]
        assert k_loop.upper.evaluate({"N": 3, "M": 4}) == 7


class TestExpressionForms:
    def test_coefficients(self):
        nest = parse_nest(
            "array x(1)\nfor i = 0..9:\n  S: x[2*i - 3] = x[i*2]\n"
        )
        w = nest.statement("S").writes()[0]
        assert w.F == IntMat([[2]])
        assert w.c == IntMat.col([-3])
        r = nest.statement("S").reads()[0]
        assert r.F == IntMat([[2]])

    def test_negative_leading_var(self):
        nest = parse_nest("array x(1)\nfor i = 0..9:\n  S: x[-i] = x[-i+1]\n")
        assert nest.statement("S").writes()[0].F == IntMat([[-1]])

    def test_constant_subscript(self):
        nest = parse_nest(
            "array x(2)\nfor i = 0..9:\n  S: x[i, 5] = x[i, 0]\n"
        )
        w = nest.statement("S").writes()[0]
        assert w.F == IntMat([[1], [0]])
        assert w.c == IntMat.col([0, 5])


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(NestSyntaxError):
            parse_nest("array x(1)\nfor i = 0..9:\n  S: x[z] = x[i]\n")

    def test_non_affine(self):
        with pytest.raises(NestSyntaxError):
            parse_nest("array x(1)\nfor i = 0..9:\n  S: x[i*i] = x[i]\n")

    def test_statement_outside_loop(self):
        with pytest.raises(NestSyntaxError):
            parse_nest("array x(1)\nS: x[0] = x[1]\n")

    def test_bad_array_decl(self):
        with pytest.raises(NestSyntaxError):
            parse_nest("array x[2]\n")

    def test_shadowed_loop_var(self):
        with pytest.raises(NestSyntaxError):
            parse_nest(
                "array x(1)\nfor i = 0..9:\n  for i = 0..9:\n    S: x[i] = x[i]\n"
            )

    def test_no_assignment(self):
        with pytest.raises(NestSyntaxError):
            parse_nest("array x(1)\nfor i = 0..9:\n  S: x[i]\n")

    def test_dim_mismatch_caught(self):
        with pytest.raises(ValueError):
            parse_nest("array x(2)\nfor i = 0..9:\n  S: x[i] = x[i, 0]\n")

    def test_garbage_line(self):
        with pytest.raises(NestSyntaxError):
            parse_nest("this is not a nest\n")


class TestParsedNestsAlign:
    def test_parsed_example1_full_pipeline(self):
        """The parsed nest runs through the whole heuristic and yields
        the same outcome as the built-in example."""
        from repro.alignment import two_step_heuristic

        parsed = parse_nest(EXAMPLE1_SRC, name="example1")
        result = two_step_heuristic(parsed, m=2)
        assert result.counts()["local"] == 5
        assert result.residual_by_label("F3").classification == "decomposed"
