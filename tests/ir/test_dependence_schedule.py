"""Tests for dependence analysis and scheduling, including the paper's
example nests."""

import pytest

from repro.ir import (
    NestBuilder,
    Schedule,
    find_dependences,
    infer_schedules,
    is_fully_parallel,
    motivating_example,
    outer_sequential_schedules,
    platonoff_example,
    trivial_schedules,
)
from repro.ir.dependence import bounds_test, gcd_test, lattice_test
from repro.linalg import IntMat

PARAMS = {"N": 4, "M": 3, "n": 3}


class TestGcd:
    def test_disproves(self):
        # 2 i1 - 4 i2 = 3 has no integer solution
        f1 = IntMat([[2]])
        f2 = IntMat([[4]])
        assert not gcd_test(f1, IntMat.col([0]), f2, IntMat.col([3]))

    def test_allows(self):
        f1 = IntMat([[2]])
        f2 = IntMat([[4]])
        assert gcd_test(f1, IntMat.col([0]), f2, IntMat.col([2]))

    def test_zero_row(self):
        f1 = IntMat([[0]])
        f2 = IntMat([[0]])
        assert not gcd_test(f1, IntMat.col([0]), f2, IntMat.col([1]))
        assert gcd_test(f1, IntMat.col([1]), f2, IntMat.col([1]))


class TestLattice:
    def test_solution_exists(self):
        f = IntMat([[1, 0], [0, 1]])
        sol = lattice_test(f, IntMat.col([0, 0]), f, IntMat.col([1, 0]))
        assert sol is not None

    def test_no_solution(self):
        f1 = IntMat([[2, 0]])
        f2 = IntMat([[2, 0]])
        assert lattice_test(f1, IntMat.col([0]), f2, IntMat.col([1])) is None


class TestBounds:
    def test_witness_within_bounds(self):
        f = IntMat([[1]])
        sol = lattice_test(f, IntMat.col([0]), f, IntMat.col([1]))
        # i1 = i2 + 1, both in 0..5: feasible
        assert bounds_test(sol, 1, 1, [(0, 5)], [(0, 5)])

    def test_witness_outside_bounds(self):
        f = IntMat([[1]])
        sol = lattice_test(f, IntMat.col([0]), f, IntMat.col([10]))
        # i1 = i2 + 10 cannot fit in 0..5 x 0..5
        assert not bounds_test(sol, 1, 1, [(0, 5)], [(0, 5)])


class TestNestAnalysis:
    def test_motivating_example_parallel(self):
        nest = motivating_example()
        assert is_fully_parallel(nest, PARAMS)

    def test_example5_has_dependences(self):
        # a[t,i,j,k] written, never read; b read, never written:
        # actually dependence-free as a *memory* nest, but the paper
        # schedules t sequentially by assumption.
        nest = platonoff_example()
        deps = find_dependences(nest, PARAMS)
        assert deps == []

    def test_overlapping_writes_detected(self):
        b = NestBuilder("conflict")
        b.array("x", 1)
        b.statement("S1", [("i", 0, 4)], writes=[("x", [[1]], [0])])
        b.statement("S2", [("i", 0, 4)], writes=[("x", [[1]], [2])])
        nest = b.build()
        deps = find_dependences(nest, {})
        assert any(d.kind == "output" for d in deps)

    def test_disjoint_writes_not_detected(self):
        b = NestBuilder("disjoint")
        b.array("x", 1)
        b.statement("S1", [("i", 0, 4)], writes=[("x", [[1]], [0])])
        b.statement("S2", [("i", 0, 4)], writes=[("x", [[1]], [100])])
        nest = b.build()
        assert is_fully_parallel(nest, {})

    def test_flow_dependence(self):
        b = NestBuilder("flow")
        b.array("x", 1)
        b.statement(
            "S",
            [("i", 1, 4)],
            writes=[("x", [[1]], [0])],
            reads=[("x", [[1]], [-1])],
        )
        nest = b.build()
        deps = find_dependences(nest, {})
        kinds = {d.kind for d in deps}
        assert "flow" in kinds or "anti" in kinds

    def test_uniform_self_dependence_excluded_when_identity(self):
        b = NestBuilder("self")
        b.array("x", 1)
        b.statement(
            "S",
            [("i", 0, 4)],
            writes=[("x", [[1]], [0])],
        )
        nest = b.build()
        # single write access, distinct iterations write distinct cells
        assert is_fully_parallel(nest, {})


class TestSchedule:
    def test_trivial(self):
        s = Schedule.trivial(3)
        assert s.time_of((1, 2, 3)) == (0,)

    def test_sequential_outer(self):
        s = Schedule.sequential_outer(4, outer=1)
        assert s.time_of((7, 1, 2, 3)) == (7,)

    def test_parallel_direction(self):
        s = Schedule.sequential_outer(4, outer=1)
        assert s.is_parallel_direction(IntMat.col([0, 1, 0, 0]))
        assert not s.is_parallel_direction(IntMat.col([1, 0, 0, 0]))

    def test_trivial_schedules_nest(self):
        nest = motivating_example()
        sn = trivial_schedules(nest)
        sn.validate_shapes()
        assert sn.schedule_of("S1").depth == 2
        assert sn.schedule_of("S2").depth == 3

    def test_outer_sequential_nest(self):
        nest = platonoff_example()
        sn = outer_sequential_schedules(nest, outer=1)
        sn.validate_shapes()
        th = sn.schedule_of("S").theta
        assert th == IntMat([[1, 0, 0, 0]])

    def test_infer_parallel(self):
        nest = motivating_example()
        sn = infer_schedules(nest, PARAMS)
        assert sn.schedule_of("S1").theta.is_zero()

    def test_infer_sequentializes(self):
        b = NestBuilder("seq")
        b.array("x", 1)
        # x[i] = x[i-1]: outer loop must be sequential
        b.statement(
            "S",
            [("i", 1, 5)],
            writes=[("x", [[1]], [0])],
            reads=[("x", [[1]], [-1])],
        )
        nest = b.build()
        sn = infer_schedules(nest, {})
        assert not sn.schedule_of("S").theta.is_zero()

    def test_infer_inner_parallel(self):
        b = NestBuilder("wave")
        b.array("x", 2)
        # x[i, j] = x[i-1, j]: i sequential, j parallel
        b.statement(
            "S",
            [("i", 1, 4), ("j", 1, 4)],
            writes=[("x", [[1, 0], [0, 1]], [0, 0])],
            reads=[("x", [[1, 0], [0, 1]], [-1, 0])],
        )
        nest = b.build()
        sn = infer_schedules(nest, {})
        assert sn.schedule_of("S").theta == IntMat([[1, 0]])

    def test_missing_schedule_rejected(self):
        from repro.ir import ScheduledNest

        nest = motivating_example()
        sn = ScheduledNest(nest=nest, schedules={})
        with pytest.raises(ValueError):
            sn.validate_shapes()
