"""The integer Fourier–Motzkin kernel against its ``Fraction`` twin.

The int64 kernel must return *identical* feasibility verdicts to the
exact ``Fraction`` baseline — over a 50-seed corpus of random
rectangular and triangular constraint systems, their mutated-infeasible
twins, and the full dependence pipeline of generated workloads — and
must hand off to the baseline (not wrap around) when entries threaten
int64 overflow.  The memo layer must likewise be invisible: cached and
uncached dependence analysis agree result-for-result.
"""

import random
from fractions import Fraction

import numpy as np
import pytest

from repro.campaign.workloads import (
    generate_triangular_workloads,
    generate_workloads,
    triangular_corpus,
)
from repro.ir import dependence as dep
from repro.ir import (
    clear_dependence_caches,
    dependence_cache_stats,
    find_dependences,
    infer_schedules,
    set_dependence_cache_size,
)

SEEDS = range(50)


def _as_fraction_ineqs(rows, nvars):
    return [(tuple(Fraction(x) for x in r[:nvars]), Fraction(r[nvars])) for r in rows]


def _rect_system(rng, nvars):
    """A random box: lo_v <= y_v <= hi_v (sometimes an empty interval)."""
    rows = []
    for v in range(nvars):
        lo = rng.randint(-6, 3)
        hi = lo + rng.randint(-2, 7)  # negative span => infeasible box
        hi_row = [0] * nvars + [hi]
        hi_row[v] = 1
        rows.append(hi_row)
        lo_row = [0] * nvars + [-lo]
        lo_row[v] = -1
        rows.append(lo_row)
    return rows


def _tri_system(rng, nvars):
    """A box plus random coupling rows (triangular-domain shapes)."""
    rows = _rect_system(rng, nvars)
    for _ in range(rng.randint(1, max(nvars, 1))):
        row = [0] * (nvars + 1)
        for _ in range(rng.randint(1, 2) if nvars == 1 else 2):
            row[rng.randrange(nvars)] = rng.choice([-3, -2, -1, 1, 2, 3])
        row[nvars] = rng.randint(-4, 6)
        rows.append(row)
    return rows


def _mutate_infeasible(rng, rows, nvars):
    """Append the strict complement of one nonzero row: together with
    the original (``a.y <= b`` and ``a.y >= b+1``) the system has no
    rational point, whatever else it contains."""
    candidates = [r for r in rows if any(r[:nvars])]
    r = rng.choice(candidates)
    return rows + [[-x for x in r[:nvars]] + [-r[nvars] - 1]]


class TestVerdictIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_systems_match_fraction_baseline(self, seed):
        rng = random.Random(seed)
        for build in (_rect_system, _tri_system):
            nvars = rng.randint(1, 4)
            rows = build(rng, nvars)
            expected = dep._fourier_motzkin_fraction(
                _as_fraction_ineqs(rows, nvars), nvars
            )
            got = dep._fourier_motzkin_int(
                np.array(rows, dtype=np.int64), nvars
            )
            assert got == expected, (seed, build.__name__, rows)
            # the scalar small-system twin and the dispatcher must
            # agree with both kernels
            assert dep._fourier_motzkin_scalar(rows, nvars) == expected
            assert dep._fm_feasible(rows, nvars) == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mutated_infeasible_twins(self, seed):
        rng = random.Random(1000 + seed)
        nvars = rng.randint(1, 4)
        rows = _mutate_infeasible(rng, _tri_system(rng, nvars), nvars)
        assert dep._fourier_motzkin_int(
            np.array(rows, dtype=np.int64), nvars
        ) is False
        assert dep._fourier_motzkin_scalar(rows, nvars) is False
        assert dep._fourier_motzkin_fraction(
            _as_fraction_ineqs(rows, nvars), nvars
        ) is False

    def test_contradiction_without_variables_is_caught_early(self):
        # 0 <= -1 present from the start: the early-exit check must
        # report infeasibility even with no eliminations left to run
        rows = [[0, 0, -1], [1, 0, 5], [0, 1, 5]]
        assert dep._fourier_motzkin_int(np.array(rows, dtype=np.int64), 2) is False
        assert dep._fourier_motzkin_fraction(_as_fraction_ineqs(rows, 2), 2) is False

    def test_infeasibility_created_by_last_round_is_caught(self):
        # y0 <= 0 and y0 >= 1 only combine in the final round
        rows = [[1, 0], [-1, -1]]
        assert dep._fm_feasible(rows, 1) is False

    def test_unbounded_variable_projects_out(self):
        # y0 only bounded above, y1 infeasible: verdict comes from y1
        rows = [[1, 0, 5], [0, 1, 0], [0, -1, -1]]
        assert dep._fm_feasible(rows, 2) is False
        rows_ok = [[1, 0, 5], [0, 1, 3], [0, -1, 0]]
        assert dep._fm_feasible(rows_ok, 2) is True


class TestOverflowFallback:
    def test_kernel_raises_on_threatened_overflow(self):
        big = 2 ** 45
        rows = np.array(
            [[big, 1, big], [-big, 1, 0], [0, -1, 0]], dtype=np.int64
        )
        with pytest.raises(dep._FMOverflow):
            dep._fourier_motzkin_int(rows, 2)

    def test_dispatcher_falls_back_to_fraction_verdict(self):
        big = 2 ** 45
        feasible = [[big, 1, big], [-big, 1, 0], [0, -1, 0]]
        expected = dep._fourier_motzkin_fraction(
            _as_fraction_ineqs(feasible, 2), 2
        )
        assert dep._fm_feasible(feasible, 2) == expected
        # and entries beyond int64 never reach the numpy kernel at all
        huge = [[2 ** 70, 1], [-(2 ** 70), -1]]
        assert dep._fm_feasible(huge, 1) == dep._fourier_motzkin_fraction(
            _as_fraction_ineqs(huge, 1), 1
        )

    def test_legacy_entry_accepts_fractions(self):
        # the historical signature still takes genuinely rational rows
        ineqs = [
            ((Fraction(1, 2),), Fraction(3)),
            ((Fraction(-1, 3),), Fraction(-1)),
        ]
        assert dep._fourier_motzkin(ineqs, 1) is True
        ineqs_bad = ineqs + [((Fraction(1),), Fraction(-10))]
        assert dep._fourier_motzkin(ineqs_bad, 1) is False


def _pipeline_workloads():
    wls = (
        generate_workloads(seed=3, count=4)
        + generate_triangular_workloads(seed=4, count=3)
        + triangular_corpus()
    )
    return [(w.resolve(), dict(w.params)) for w in wls]


class TestPipelineIdentity:
    def test_dependences_match_forced_fraction_path(self, monkeypatch):
        """End to end: the dependence sets of real workloads are
        identical whether every FM system runs on the int64 kernel or
        on the Fraction baseline."""
        nests = _pipeline_workloads()
        prev = set_dependence_cache_size(0)
        try:
            fast = [find_dependences(n, p) for n, p in nests]

            def fraction_only(rows, nvars):
                return dep._fourier_motzkin_fraction(
                    _as_fraction_ineqs(rows, nvars), nvars
                )

            monkeypatch.setattr(dep, "_fm_feasible", fraction_only)
            slow = [find_dependences(n, p) for n, p in nests]
        finally:
            monkeypatch.undo()
            set_dependence_cache_size(prev)
        assert fast == slow


class TestDependenceMemo:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_dependence_caches()
        yield
        clear_dependence_caches()

    def test_memoized_results_identical_to_uncached(self):
        nests = _pipeline_workloads()
        prev = set_dependence_cache_size(0)
        try:
            uncached_deps = [find_dependences(n, p) for n, p in nests]
            uncached_scheds = [infer_schedules(n, p) for n, p in nests]
        finally:
            set_dependence_cache_size(prev)
        cached_deps = [find_dependences(n, p) for n, p in nests]
        cached_scheds = [infer_schedules(n, p) for n, p in nests]
        assert cached_deps == uncached_deps
        for a, b in zip(cached_scheds, uncached_scheds):
            assert a.schedules == b.schedules

    def test_repeat_analysis_hits_the_cache(self):
        nest, params = _pipeline_workloads()[0]
        find_dependences(nest, params)
        before = dependence_cache_stats()["test_dependence"]
        find_dependences(nest, params)
        after = dependence_cache_stats()["test_dependence"]
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_schedule_memo_hits_across_reinference(self):
        for nest, params in _pipeline_workloads():
            infer_schedules(nest, params)
        before = dependence_cache_stats()["inner_loops_parallel"]
        for nest, params in _pipeline_workloads():
            infer_schedules(nest, params)
        after = dependence_cache_stats()["inner_loops_parallel"]
        assert after["misses"] == before["misses"]

    def test_disabling_bypasses_and_clears(self):
        nest, params = _pipeline_workloads()[0]
        find_dependences(nest, params)
        prev = set_dependence_cache_size(0)
        try:
            stats = dependence_cache_stats()["test_dependence"]
            assert stats == {"hits": 0, "misses": 0, "size": 0, "maxsize": stats["maxsize"]}
            find_dependences(nest, params)
            assert dependence_cache_stats()["test_dependence"]["size"] == 0
        finally:
            set_dependence_cache_size(prev)

    def test_counters_live_in_obs_registry(self):
        from repro import obs

        nest, params = _pipeline_workloads()[0]
        find_dependences(nest, params)
        snap = obs.snapshot()
        names = {
            "ir.dependence.cache.test_dependence.hits",
            "ir.dependence.cache.test_dependence.misses",
            "ir.dependence.cache.inner_loops_parallel.hits",
            "ir.dependence.cache.inner_loops_parallel.misses",
            "ir.dependence.cache",  # the full-stats provider
        }
        assert names <= set(snap)
