"""Tests for the polyhedral iteration-domain layer."""

import random
from itertools import product

import numpy as np
import pytest

from repro.ir import Domain, NestSyntaxError, parse_nest
from repro.ir.loopnest import Bound, LoopDim


def _loop(var, lo, hi):
    return LoopDim(var=var, lower=Bound.of(lo), upper=Bound.of(hi))


def _tri_loop(var, lo_var, hi):
    """``for var = lo_var..hi`` with a variable lower bound."""
    return LoopDim(
        var=var, lower=Bound(coeffs=((lo_var, 1),)), upper=Bound.of(hi)
    )


class TestConstruction:
    def test_rectangular_is_trivial_special_case(self):
        dom = Domain.from_loops([_loop("i", 0, "N"), _loop("j", 1, "M")])
        assert dom.is_rectangular
        assert dom.dim == 2
        # two half-spaces per loop
        assert len(dom.constraints) == 4

    def test_triangular_is_polyhedral(self):
        dom = Domain.from_loops([_loop("i", 0, "N"), _tri_loop("j", "i", "N")])
        assert not dom.is_rectangular
        assert "polyhedral" in dom.describe()

    def test_inner_variable_reference_rejected(self):
        with pytest.raises(ValueError, match="outer"):
            Domain.from_loops([_tri_loop("i", "j", "N"), _loop("j", 0, "N")])

    def test_own_variable_reference_rejected(self):
        with pytest.raises(ValueError, match="outer"):
            Domain.from_loops([_tri_loop("i", "i", "N")])


class TestEnumeration:
    PARAMS = {"N": 4, "M": 3}

    def test_rectangular_matches_product(self):
        dom = Domain.from_loops([_loop("i", 0, "N"), _loop("j", 1, "M")])
        pts = list(dom.enumerate_points(self.PARAMS))
        assert pts == list(product(range(0, 5), range(1, 4)))
        assert dom.size(self.PARAMS) == len(pts)

    def test_triangular_matches_filtered_product(self):
        dom = Domain.from_loops([_loop("i", 0, "N"), _tri_loop("j", "i", "N")])
        pts = list(dom.enumerate_points(self.PARAMS))
        brute = [
            p for p in product(range(0, 5), range(0, 5)) if p[1] >= p[0]
        ]
        assert pts == brute
        assert dom.size(self.PARAMS) == len(brute)

    def test_point_matrix_matches_enumeration(self):
        dom = Domain.from_loops([_loop("i", 0, "N"), _tri_loop("j", "i", "N")])
        mat = dom.point_matrix(self.PARAMS)
        assert mat.dtype == np.int64
        assert mat.tolist() == [list(p) for p in dom.enumerate_points(self.PARAMS)]

    def test_membership_mask_agrees_with_contains(self):
        dom = Domain.from_loops([_loop("i", 0, "N"), _tri_loop("j", "i", "N")])
        box = dom._box_matrix(self.PARAMS)
        mask = dom.mask(box, self.PARAMS)
        for row, ok in zip(box.tolist(), mask.tolist()):
            assert dom.contains(row, self.PARAMS) == ok

    def test_empty_dimension(self):
        dom = Domain.from_loops([_loop("i", 3, 1)])
        assert dom.size({}) == 0
        assert list(dom.enumerate_points({})) == []
        assert dom.point_matrix({}).shape == (0, 1)

    def test_zero_depth_single_point(self):
        dom = Domain.from_loops([])
        assert dom.size({}) == 1
        assert list(dom.enumerate_points({})) == [()]
        assert dom.point_matrix({}).shape == (1, 0)


class TestParserRoundTrip:
    def test_triangular_bounds_parse(self):
        nest = parse_nest(
            """array A(2)
for i = 1..N:
  for j = i..N:
    S: A[i, j] = f(A[i, j])
"""
        )
        s = nest.statements[0]
        assert not s.is_rectangular
        assert list(s.iteration_domain({"N": 3})) == [
            (1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)
        ]

    def test_scaled_variable_bound(self):
        nest = parse_nest(
            """array A(1)
for i = 1..N:
  for j = i..2*i:
    S: A[j] = f(A[j])
"""
        )
        pts = list(nest.statements[0].iteration_domain({"N": 2}))
        assert pts == [(1, 1), (1, 2), (2, 2), (2, 3), (2, 4)]

    def test_inner_variable_bound_is_syntax_error(self):
        with pytest.raises(NestSyntaxError, match="outer"):
            parse_nest(
                """array A(1)
for i = j..N:
  for j = 1..N:
    S: A[i] = f(A[j])
"""
            )


class TestPropertyRandomDomains:
    """Domain enumeration vs brute-force product + constraint filtering
    over randomized triangular loop nests (>= 50 seeds)."""

    @pytest.mark.parametrize("seed", range(50))
    def test_enumeration_matches_brute_force(self, seed):
        rng = random.Random(seed)
        params = {"N": rng.randint(2, 4), "M": rng.randint(2, 4)}
        loops = [_loop("i", rng.randint(0, 1), "N")]
        # second loop: random triangular/trapezoidal shape over i
        style = rng.choice(("lower", "upper", "shifted", "rect"))
        if style == "lower":
            loops.append(_tri_loop("j", "i", "M"))
        elif style == "upper":
            loops.append(
                LoopDim(
                    var="j",
                    lower=Bound.of(0),
                    upper=Bound(coeffs=(("i", 1),)),
                )
            )
        elif style == "shifted":
            loops.append(
                LoopDim(
                    var="j",
                    lower=Bound(const=1, coeffs=(("i", 1),)),
                    upper=Bound(const=1, coeffs=(("M", 1),)),
                )
            )
        else:
            loops.append(_loop("j", 0, "M"))
        if rng.random() < 0.5:
            loops.append(_tri_loop("k", "j", "N"))
        dom = Domain.from_loops(loops)

        # brute force over a generous box, independent of Domain.box:
        # only the constraint system decides membership
        mx = 2 * max(params.values()) + 2
        brute = [
            p
            for p in product(range(-2, mx + 1), repeat=len(loops))
            if dom.contains(p, params)
        ]
        assert list(dom.enumerate_points(params)) == brute
        assert dom.size(params) == len(brute)
        assert dom.point_matrix(params).tolist() == [list(p) for p in brute]
