"""Tests for the schedule legality checker."""

import pytest

from repro.ir import (
    NestBuilder,
    infer_schedules,
    motivating_example,
    outer_sequential_schedules,
    schedule_is_legal,
    schedule_violations,
    trivial_schedules,
)

PARAMS = {"N": 3, "M": 3}


def _dependent_nest():
    b = NestBuilder("dep")
    b.array("x", 1)
    b.statement(
        "S",
        [("i", 1, 4)],
        writes=[("x", [[1]], [0])],
        reads=[("x", [[1]], [-1])],
    )
    return b.build()


class TestLegality:
    def test_motivating_example_trivial_schedule_legal(self):
        nest = motivating_example()
        assert schedule_is_legal(trivial_schedules(nest), PARAMS)

    def test_parallel_schedule_illegal_for_recurrence(self):
        nest = _dependent_nest()
        sn = trivial_schedules(nest)
        assert not schedule_is_legal(sn, {})
        violations = schedule_violations(sn, {})
        assert violations
        assert "x" in violations[0]

    def test_sequential_schedule_legal_for_recurrence(self):
        nest = _dependent_nest()
        sn = outer_sequential_schedules(nest, outer=1)
        assert schedule_is_legal(sn, {})

    def test_inferred_schedules_always_legal(self):
        for nest in (motivating_example(), _dependent_nest()):
            sn = infer_schedules(nest, PARAMS)
            assert schedule_is_legal(sn, PARAMS)

    def test_violation_limit(self):
        nest = _dependent_nest()
        sn = trivial_schedules(nest)
        assert len(schedule_violations(sn, {}, limit=2)) == 2
