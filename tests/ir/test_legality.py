"""Tests for the schedule legality checker."""

import pytest

from repro.ir import (
    NestBuilder,
    Schedule,
    ScheduledNest,
    infer_schedules,
    motivating_example,
    outer_sequential_schedules,
    parse_nest,
    schedule_is_legal,
    schedule_violations,
    schedule_violations_python,
    trivial_schedules,
)
from repro.linalg import IntMat

PARAMS = {"N": 3, "M": 3}


def _dependent_nest():
    b = NestBuilder("dep")
    b.array("x", 1)
    b.statement(
        "S",
        [("i", 1, 4)],
        writes=[("x", [[1]], [0])],
        reads=[("x", [[1]], [-1])],
    )
    return b.build()


class TestLegality:
    def test_motivating_example_trivial_schedule_legal(self):
        nest = motivating_example()
        assert schedule_is_legal(trivial_schedules(nest), PARAMS)

    def test_parallel_schedule_illegal_for_recurrence(self):
        nest = _dependent_nest()
        sn = trivial_schedules(nest)
        assert not schedule_is_legal(sn, {})
        violations = schedule_violations(sn, {})
        assert violations
        assert "x" in violations[0]

    def test_sequential_schedule_legal_for_recurrence(self):
        nest = _dependent_nest()
        sn = outer_sequential_schedules(nest, outer=1)
        assert schedule_is_legal(sn, {})

    def test_inferred_schedules_always_legal(self):
        for nest in (motivating_example(), _dependent_nest()):
            sn = infer_schedules(nest, PARAMS)
            assert schedule_is_legal(sn, PARAMS)

    def test_violation_limit(self):
        nest = _dependent_nest()
        sn = trivial_schedules(nest)
        assert len(schedule_violations(sn, {}, limit=2)) == 2


def _scheduled(nest, thetas):
    return ScheduledNest(
        nest=nest,
        schedules={name: Schedule(theta=IntMat(rows)) for name, rows in thetas.items()},
    )


class TestOrderViolations:
    """The semantics fix: a sink scheduled strictly *before* its source
    is illegal even though no two instances share a time step."""

    def test_reversed_time_recurrence_is_illegal(self):
        # x[i] = x[i-1] with theta = -i: every read runs before the
        # write that feeds it, and no two instances share a step.  The
        # old same-step-only checker called this legal.
        nest = _dependent_nest()
        sn = _scheduled(nest, {"S": [[-1]]})
        assert not schedule_is_legal(sn, {})
        v = schedule_violations(sn, {}, limit=10)
        assert v and all("before its source" in msg for msg in v)

    def test_forward_time_recurrence_is_legal(self):
        nest = _dependent_nest()
        sn = _scheduled(nest, {"S": [[1]]})
        assert schedule_is_legal(sn, {})

    def test_cross_statement_order(self):
        # S2 reads what S1 writes but is scheduled earlier
        b = NestBuilder("two")
        b.array("y", 1)
        b.statement("S1", [("i", 1, 3)], writes=[("y", [[1]], [0])])
        b.statement("S2", [("i", 1, 3)], reads=[("y", [[1]], [0])],
                    writes=[("y", [[1]], [5])])
        nest = b.build()
        bad = _scheduled(nest, {"S1": [[1]], "S2": [[0]]})
        v = schedule_violations(bad, {}, limit=10)
        assert v
        assert "S2" in v[0] and "source S1" in v[0]
        good = _scheduled(nest, {"S1": [[0]], "S2": [[1]]})
        assert schedule_is_legal(good, {})

    def test_same_step_still_flagged(self):
        nest = _dependent_nest()
        v = schedule_violations(trivial_schedules(nest), {}, limit=10)
        assert v and all("same time step" in msg for msg in v)


class TestVectorizedBitIdentity:
    """The vectorized witness enumeration must reproduce the Python
    reference exactly — message strings and order included."""

    def _assert_identical(self, sn, params, limit=100):
        assert schedule_violations(sn, params, limit) == \
            schedule_violations_python(sn, params, limit)

    def test_seed_nests(self):
        nest = motivating_example()
        for sched in (trivial_schedules(nest),
                      outer_sequential_schedules(nest, 1)):
            self._assert_identical(sched, PARAMS)

    def test_recurrence_all_schedules(self):
        nest = _dependent_nest()
        for rows in ([[1]], [[-1]], [[0]]):
            self._assert_identical(_scheduled(nest, {"S": rows}), {})

    def test_triangular_nest(self):
        nest = parse_nest(
            """array A(2)
for k = 1..N:
  for i = k..N:
    for j = k..N:
      S: A[i, j] = f(A[i, j], A[i, k], A[k, j])
"""
        )
        for sched in (trivial_schedules(nest),
                      outer_sequential_schedules(nest, 1),
                      outer_sequential_schedules(nest, 3)):
            self._assert_identical(sched, {"N": 3})

    def test_mixed_depth_statements(self):
        nest = motivating_example()
        # S1 depth 2, S2/S3 depth 3: pads time vectors of mixed widths
        sched = ScheduledNest(
            nest=nest,
            schedules={
                s.name: Schedule.sequential_outer(s.depth, outer=min(2, s.depth))
                for s in nest.statements
            },
        )
        self._assert_identical(sched, {"N": 2, "M": 2})

    def test_generated_corpus(self):
        from repro.campaign import generate_workloads

        for wl in generate_workloads(seed=11, count=5):
            nest = wl.resolve()
            params = dict(wl.params)
            sn = infer_schedules(nest, params)
            self._assert_identical(sn, params)
            self._assert_identical(trivial_schedules(nest), params)
