"""Coverage for the distribution helpers: ownership enumeration,
describe strings, and cross-scheme conservation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    GroupedDistribution,
    make_1d,
)

SCHEMES = [
    lambda n, p: BlockDistribution(n, p),
    lambda n, p: CyclicDistribution(n, p),
    lambda n, p: BlockCyclicDistribution(n, p, block=2),
    lambda n, p: GroupedDistribution(n, p, k=3),
]


class TestCells:
    def test_cells_partition(self):
        d = CyclicDistribution(10, 3)
        owned = [d.cells(p) for p in range(3)]
        flat = sorted(v for cells in owned for v in cells)
        assert flat == list(range(10))

    def test_cells_match_phys(self):
        d = GroupedDistribution(12, 4, k=3)
        for p in range(4):
            for v in d.cells(p):
                assert d.phys(v) == p

    @given(st.integers(1, 30), st.integers(1, 6), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_property_partition_all_schemes(self, n, p, scheme_idx):
        d = SCHEMES[scheme_idx](n, p)
        flat = sorted(v for proc in range(p) for v in d.cells(proc))
        assert flat == list(range(n))


class TestDescribe:
    def test_describe_strings(self):
        assert "BLOCK" in BlockDistribution(4, 2).describe()
        assert "CYCLIC(2)" in BlockCyclicDistribution(4, 2, 2).describe()
        assert "GROUPED(k=3)" in GroupedDistribution(6, 2, 3).describe()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BlockDistribution(0, 2)
        with pytest.raises(ValueError):
            GroupedDistribution(4, 2, k=0)


class TestBalance:
    @given(st.integers(4, 40), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_block_near_balanced(self, n, p):
        d = BlockDistribution(n, p)
        sizes = [len(d.cells(proc)) for proc in range(p)]
        # ceil-div blocks: all full blocks except possibly the tail
        assert max(sizes) - min(s for s in sizes if s > 0) <= max(sizes)

    @given(st.integers(4, 40), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_cyclic_perfectly_balanced(self, n, p):
        d = CyclicDistribution(n, p)
        sizes = [len(d.cells(proc)) for proc in range(p)]
        assert max(sizes) - min(sizes) <= 1
