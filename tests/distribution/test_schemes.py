"""Tests for the distribution schemes, including the exact Figure 6
layout of the grouped partition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    Distribution2D,
    GroupedDistribution,
    make_1d,
)


class TestBlock:
    def test_even(self):
        d = BlockDistribution(8, 4)
        assert [d.phys(v) for v in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven(self):
        d = BlockDistribution(7, 3)
        # ceil(7/3) = 3: blocks of 3, 3, 1
        assert [d.phys(v) for v in range(7)] == [0, 0, 0, 1, 1, 1, 2]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            BlockDistribution(4, 2).phys(4)


class TestCyclic:
    def test_round_robin(self):
        d = CyclicDistribution(6, 3)
        assert [d.phys(v) for v in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_block_cyclic(self):
        d = BlockCyclicDistribution(8, 2, block=2)
        assert [d.phys(v) for v in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_block_cyclic_rejects_bad_block(self):
        with pytest.raises(ValueError):
            BlockCyclicDistribution(8, 2, block=0)


class TestGrouped:
    def test_figure6_layout(self):
        """12 virtual indices, k=3, P=4: the paper's Figure 6."""
        d = GroupedDistribution(12, 4, k=3)
        order = sorted(range(12), key=d.position)
        assert order == [0, 3, 6, 9, 1, 4, 7, 10, 2, 5, 8, 11]
        owners = {p: [v for v in range(12) if d.phys(v) == p] for p in range(4)}
        assert owners[0] == [0, 3, 6]
        assert owners[1] == [1, 4, 9]  # positions 3,4,5 = virtuals 9,1,4
        assert owners[3] == [5, 8, 11]

    def test_positions_are_a_permutation(self):
        d = GroupedDistribution(12, 4, k=3)
        assert sorted(d.position(v) for v in range(12)) == list(range(12))

    def test_uneven_classes(self):
        d = GroupedDistribution(10, 2, k=3)
        assert sorted(d.position(v) for v in range(10)) == list(range(10))

    def test_k1_equals_block(self):
        g = GroupedDistribution(8, 4, k=1)
        b = BlockDistribution(8, 4)
        assert [g.phys(v) for v in range(8)] == [b.phys(v) for v in range(8)]

    def test_class_members_contiguous(self):
        """Members of one residue class occupy contiguous positions."""
        d = GroupedDistribution(12, 4, k=4)
        for c in range(4):
            pos = sorted(d.position(v) for v in range(12) if v % 4 == c)
            assert pos == list(range(pos[0], pos[0] + len(pos)))

    @given(
        st.integers(1, 40),
        st.integers(1, 8),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_total_and_balanced(self, n, p, k):
        d = GroupedDistribution(n, p, k=k)
        owners = [d.phys(v) for v in range(n)]
        assert all(0 <= o < p for o in owners)
        assert sorted(d.position(v) for v in range(n)) == list(range(n))


class TestProductAndFactory:
    def test_2d(self):
        d = Distribution2D(
            rows=BlockDistribution(4, 2), cols=CyclicDistribution(4, 2)
        )
        assert d.phys((0, 0)) == (0, 0)
        assert d.phys((3, 3)) == (1, 1)
        assert d.virtual_shape == (4, 4)
        assert d.phys_shape == (2, 2)

    def test_factory(self):
        assert make_1d("block", 4, 2).name == "BLOCK"
        assert make_1d("cyclic", 4, 2).name == "CYCLIC"
        assert make_1d("cyclic_block", 4, 2, block=2).block == 2
        assert make_1d("grouped", 4, 2, k=2).k == 2
        with pytest.raises(ValueError):
            make_1d("mystery", 4, 2)

    def test_describe(self):
        assert "GROUPED" in GroupedDistribution(4, 2, k=2).describe()
