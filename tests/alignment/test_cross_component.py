"""Cross-component residuals: when a residual communication links two
different branching components, the two components' rotation freedoms
are independent, so a unimodular data-flow matrix can be rotated away
entirely — the communication becomes a pure translation (the cheap
class of Table 1)."""

import pytest

from repro.alignment import stmt_node, two_step_heuristic, var_node
from repro.ir import NestBuilder
from repro.linalg import IntMat


def _two_component_nest():
    """Branching forms {z -> S1 -> y} and {S2 <-> x}; the flat read of
    x in S1 crosses the two components (S1's in-degree is spent on the
    heavier path through z)."""
    b = NestBuilder("cross")
    b.array("z", 2).array("x", 2).array("y", 3)
    b.statement(
        "S1",
        [("i", 0, 3), ("j", 0, 3), ("k", 0, 3)],
        writes=[("y", IntMat.identity(3).tolist(), None, "Fy")],
        reads=[
            ("z", [[1, 0, 0], [0, 1, 0]], None, "Fz"),
            ("x", [[0, 1, 0], [1, 0, 0]], None, "Fx"),
        ],
    )
    b.statement(
        "S2",
        [("i", 0, 3), ("j", 0, 3)],
        writes=[("x", IntMat.identity(2).tolist(), None, "Fw")],
    )
    return b.build()


class TestCrossComponent:
    def test_two_components_formed(self):
        nest = _two_component_nest()
        result = two_step_heuristic(nest, m=2)
        al = result.alignment
        comp_s1 = al.component_root_of[stmt_node("S1")]
        comp_s2 = al.component_root_of[stmt_node("S2")]
        assert comp_s1 != comp_s2
        assert al.component_root_of[var_node("x")] == comp_s2

    def test_cross_residual_becomes_translation(self):
        nest = _two_component_nest()
        result = two_step_heuristic(nest, m=2)
        fx = result.residual_by_label("Fx")
        assert fx.classification == "translation"
        assert fx.dataflow is not None and fx.dataflow.is_identity()

    def test_all_other_accesses_local(self):
        nest = _two_component_nest()
        result = two_step_heuristic(nest, m=2)
        assert {"Fy", "Fz", "Fw"} <= result.alignment.local_labels

    def test_rotation_recorded_for_stmt_component(self):
        nest = _two_component_nest()
        result = two_step_heuristic(nest, m=2)
        al = result.alignment
        comp_s1 = al.component_root_of[stmt_node("S1")]
        assert comp_s1 in result.rotations

    def test_baseline_no_rotation_spends_no_freedom(self):
        """With rotations disabled the classifier may still find the
        residual cheap (the default allocations can happen to align),
        but it must not left-multiply any component."""
        from repro.alignment import align, optimize_residuals
        from repro.ir import trivial_schedules

        nest = _two_component_nest()
        al = align(nest, 2)
        before = {k: v for k, v in al.allocations.items()}
        result = optimize_residuals(
            al, trivial_schedules(nest), allow_rotations=False
        )
        assert result.rotations == {}
        assert result.alignment.allocations == before
