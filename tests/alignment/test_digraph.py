"""Tests for the digraph and the from-scratch Edmonds maximum
branching, cross-checked against networkx as an oracle."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.digraph import (
    Digraph,
    branching_roots,
    connected_components,
    is_branching,
    maximum_branching,
)


def _nx_max_branching_weight(g: Digraph) -> int:
    nxg = nx.MultiDiGraph()
    for n in g.nodes:
        nxg.add_node(n)
    for e in g.edges():
        nxg.add_edge(e.src, e.dst, weight=e.weight)
    br = nx.algorithms.tree.branchings.maximum_branching(
        nxg, attr="weight", default=0
    )
    return sum(d["weight"] for _, _, d in br.edges(data=True))


class TestDigraph:
    def test_add_and_query(self):
        g = Digraph()
        e = g.add_edge("a", "b", 3)
        assert e.src == "a" and e.dst == "b"
        assert g.nodes == {"a", "b"}
        assert len(g) == 1
        assert g.edge(e.id) is e
        assert g.out_edges("a") == [e]
        assert g.in_edges("b") == [e]

    def test_parallel_edges(self):
        g = Digraph()
        g.add_edge("a", "b", 1)
        g.add_edge("a", "b", 2)
        assert len(g) == 2

    def test_total_weight(self):
        g = Digraph()
        e1 = g.add_edge("a", "b", 1)
        e2 = g.add_edge("b", "c", 2)
        assert g.total_weight([e1.id, e2.id]) == 3


class TestBranchingSimple:
    def test_chain(self):
        g = Digraph()
        g.add_edge("a", "b", 2)
        g.add_edge("b", "c", 3)
        chosen = maximum_branching(g)
        assert g.total_weight(chosen) == 5
        assert is_branching(g, chosen)
        assert branching_roots(g, chosen) == {"a"}

    def test_two_in_edges_picks_heavier(self):
        g = Digraph()
        g.add_edge("a", "c", 2)
        e = g.add_edge("b", "c", 5)
        chosen = maximum_branching(g)
        assert chosen == {e.id}

    def test_cycle_broken(self):
        g = Digraph()
        g.add_edge("a", "b", 5)
        g.add_edge("b", "a", 5)
        chosen = maximum_branching(g)
        assert len(chosen) == 1
        assert is_branching(g, chosen)

    def test_cycle_with_entry(self):
        g = Digraph()
        g.add_edge("a", "b", 5)
        g.add_edge("b", "a", 5)
        g.add_edge("r", "a", 1)
        chosen = maximum_branching(g)
        assert is_branching(g, chosen)
        assert g.total_weight(chosen) == _nx_max_branching_weight(g)

    def test_negative_and_zero_edges_ignored(self):
        g = Digraph()
        g.add_edge("a", "b", 0)
        g.add_edge("b", "c", -2)
        assert maximum_branching(g) == set()

    def test_self_loop_ignored(self):
        g = Digraph()
        g.add_edge("a", "a", 10)
        assert maximum_branching(g) == set()

    def test_three_cycle_contract(self):
        g = Digraph()
        g.add_edge("a", "b", 4)
        g.add_edge("b", "c", 4)
        g.add_edge("c", "a", 4)
        g.add_edge("x", "b", 3)
        chosen = maximum_branching(g)
        assert is_branching(g, chosen)
        assert g.total_weight(chosen) == _nx_max_branching_weight(g)

    def test_nested_cycles(self):
        g = Digraph()
        # two 2-cycles sharing a vertex, plus an external entry
        g.add_edge("a", "b", 5)
        g.add_edge("b", "a", 5)
        g.add_edge("b", "c", 4)
        g.add_edge("c", "b", 6)
        g.add_edge("r", "c", 1)
        chosen = maximum_branching(g)
        assert is_branching(g, chosen)
        assert g.total_weight(chosen) == _nx_max_branching_weight(g)


class TestBranchingRandomOracle:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_matches_networkx_weight(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 7)
        nodes = [f"v{i}" for i in range(n)]
        g = Digraph()
        for v in nodes:
            g.add_node(v)
        for _ in range(rng.randint(1, 14)):
            s, d = rng.sample(nodes, 2)
            g.add_edge(s, d, rng.randint(1, 9))
        chosen = maximum_branching(g)
        assert is_branching(g, chosen)
        assert g.total_weight(chosen) == _nx_max_branching_weight(g)


class TestComponents:
    def test_components_and_roots(self):
        g = Digraph()
        e1 = g.add_edge("a", "b", 1)
        g.add_node("z")
        comps = connected_components(g, {e1.id})
        comp_sets = sorted(tuple(sorted(c)) for c in comps)
        assert comp_sets == [("a", "b"), ("z",)]
        assert branching_roots(g, {e1.id}) == {"a", "z"}

    def test_is_branching_rejects_double_in(self):
        g = Digraph()
        e1 = g.add_edge("a", "c", 1)
        e2 = g.add_edge("b", "c", 1)
        assert not is_branching(g, {e1.id, e2.id})

    def test_is_branching_rejects_cycle(self):
        g = Digraph()
        e1 = g.add_edge("a", "b", 1)
        e2 = g.add_edge("b", "a", 1)
        assert not is_branching(g, {e1.id, e2.id})
