"""Property-based tests on the two-step heuristic: invariants that must
hold for *any* affine loop nest, exercised on a randomized family."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import (
    align,
    build_access_graph,
    is_branching,
    maximum_branching,
    stmt_node,
    two_step_heuristic,
    var_node,
)
from repro.decomp import verify_factors
from repro.ir import NestBuilder, trivial_schedules
from repro.linalg import FracMat, IntMat, full_rank, rank


def _random_full_rank(rng: random.Random, rows: int, cols: int) -> IntMat:
    for _ in range(60):
        cand = IntMat(
            [[rng.randint(-2, 2) for _ in range(cols)] for _ in range(rows)]
        )
        if rank(cand) == min(rows, cols):
            return cand
    return IntMat(
        [[1 if i == j else 0 for j in range(cols)] for i in range(rows)]
    )


def random_nest(seed: int):
    rng = random.Random(seed)
    b = NestBuilder(f"prop{seed}")
    arrays = {}
    for name in ("x", "y", "z"):
        arrays[name] = rng.choice([2, 3])
        b.array(name, arrays[name])
    n_stmts = rng.randint(1, 3)
    for si in range(n_stmts):
        depth = rng.choice([2, 3])
        loops = [("ijk"[d] + str(si), 0, "N") for d in range(depth)]
        target = rng.choice(list(arrays))
        reads = []
        for _ in range(rng.randint(1, 2)):
            src = rng.choice(list(arrays))
            reads.append(
                (src, _random_full_rank(rng, arrays[src], depth).tolist(), None)
            )
        b.statement(
            f"S{si}",
            loops,
            writes=[(target, _random_full_rank(rng, arrays[target], depth).tolist(), None)],
            reads=reads,
        )
    return b.build()


class TestAlignmentInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_allocations_full_rank_or_best(self, seed):
        nest = random_nest(seed)
        al = align(nest, 2)
        for node, m in al.allocations.items():
            # allocation rank is min(m, node dimension)
            assert rank(m) == min(m.shape)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_local_labels_satisfy_equation(self, seed):
        nest = random_nest(seed)
        al = align(nest, 2)
        for stmt, acc in nest.all_accesses():
            if (acc.label or "") in al.local_labels:
                ms = al.allocation_of_stmt(stmt.name)
                mx = al.allocation_of_array(acc.array)
                assert mx @ acc.F == ms

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_branching_valid_and_residual_partition(self, seed):
        nest = random_nest(seed)
        al = align(nest, 2)
        g = al.access_graph.graph
        assert is_branching(g, al.branching)
        labels = {acc.label for _s, acc in nest.all_accesses()}
        residual_labels = {r.ref.label for r in al.residuals}
        assert al.local_labels | residual_labels == labels
        assert not (al.local_labels & residual_labels)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_step2_decompositions_verify(self, seed):
        nest = random_nest(seed)
        result = two_step_heuristic(nest, m=2)
        for o in result.optimized:
            if o.decomposition is not None and o.dataflow is not None:
                t = o.dataflow
                if o.decomposition.conjugator is not None:
                    from repro.linalg import unimodular_inverse

                    m = o.decomposition.conjugator
                    t = m @ t @ unimodular_inverse(m)
                assert verify_factors(t, o.decomposition.factors)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_rotations_are_unimodular(self, seed):
        from repro.linalg import is_unimodular

        nest = random_nest(seed)
        result = two_step_heuristic(nest, m=2)
        for v in result.rotations.values():
            assert is_unimodular(v)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_rotation_never_loses_locality(self, seed):
        """Rotating a component preserves every local equation (the
        whole point of the unimodular freedom)."""
        nest = random_nest(seed)
        result = two_step_heuristic(nest, m=2)
        al = result.alignment
        for stmt, acc in nest.all_accesses():
            if (acc.label or "") in al.local_labels:
                assert al.allocation_of_array(acc.array) @ acc.F == \
                    al.allocation_of_stmt(stmt.name)


class TestStep1cInvariants:
    def test_deficient_rank_constraint_used(self):
        """A nest engineered so two parallel paths differ by a rank-1
        matrix: step 1c(ii) must zero out both."""
        b = NestBuilder("deficient")
        b.array("x", 3).array("y", 3)
        # S reads x twice with F and F' where F - F' has rank 1 and a
        # 2-dimensional left kernel
        f1 = [[1, 0], [0, 1], [0, 0]]
        f2 = [[1, 0], [0, 1], [1, 1]]
        b.statement(
            "S",
            [("i", 0, "N"), ("j", 0, "N")],
            writes=[("y", [[1, 0], [0, 1], [0, 0]], None, "W")],
            reads=[("x", f1, None, "R1"), ("x", f2, None, "R2")],
        )
        nest = b.build()
        al = align(nest, 2)
        # both reads can be local simultaneously: M_x rows in the left
        # kernel of (F1 - F2) = [[0,0],[0,0],[-1,-1]]
        assert {"R1", "R2"} <= al.local_labels
