"""Edge-case tests for access-graph construction: rank thresholds,
missing integer inverses, graph bookkeeping."""

import pytest

from repro.alignment import build_access_graph, stmt_node, var_node
from repro.ir import NestBuilder
from repro.linalg import IntMat


def _nest_with_access(array_dim, f_rows, depth=2):
    b = NestBuilder("edge")
    b.array("x", array_dim).array("out", depth)
    ident = [[1 if i == j else 0 for j in range(depth)] for i in range(depth)]
    b.statement(
        "S",
        [("ijk"[d], 0, "N") for d in range(depth)],
        writes=[("out", ident, None, "W")],
        reads=[("x", f_rows, None, "R")],
    )
    return b.build()


class TestRankThresholds:
    def test_rank_below_m_excluded(self):
        nest = _nest_with_access(2, [[1, 1], [1, 1]])  # rank 1 < m=2
        ag = build_access_graph(nest, m=2)
        assert "R" in {r.label for r in ag.excluded}

    def test_rank_equal_m_included(self):
        nest = _nest_with_access(2, [[1, 0], [0, 1]])
        ag = build_access_graph(nest, m=2)
        assert "R" not in {r.label for r in ag.excluded}

    def test_m1_admits_rank1_full_rank_only(self):
        # a 1-D array read via full-rank flat matrix: edge exists at m=1
        nest = _nest_with_access(1, [[1, 1]])
        ag = build_access_graph(nest, m=1)
        labels = {e.payload.ref.label for e in ag.graph.edges()}
        assert "R" in labels

    def test_not_full_rank_excluded_even_if_ge_m(self):
        # 3x3 access of rank 2: rank >= m = 2 but F is not full rank,
        # so the edge condition of Section 2.2.2 rejects it
        nest = _nest_with_access(
            3, [[1, 0, 0], [0, 1, 0], [1, 1, 0]], depth=3
        )
        ag = build_access_graph(nest, m=2)
        assert "R" in {r.label for r in ag.excluded}


class TestDirections:
    def test_flat_access_points_var_to_stmt(self):
        nest = _nest_with_access(2, [[1, 0, 0], [0, 1, 0]], depth=3)
        ag = build_access_graph(nest, m=2)
        edges = ag.edges_of_access("R")
        assert len(edges) == 1
        assert edges[0].src == var_node("x")
        assert edges[0].dst == stmt_node("S")

    def test_narrow_access_points_stmt_to_var(self):
        nest = _nest_with_access(3, [[1, 0], [0, 1], [1, 1]])
        ag = build_access_graph(nest, m=2)
        edges = ag.edges_of_access("R")
        assert len(edges) == 1
        assert edges[0].src == stmt_node("S")
        # the weight matrix is a left inverse of F
        info = edges[0].payload
        f = nest.statement("S").reads()[0].F
        assert info.matrix @ f == IntMat.identity(2)

    def test_square_unimodular_both_directions(self):
        nest = _nest_with_access(2, [[1, 1], [0, 1]])
        ag = build_access_graph(nest, m=2)
        assert len(ag.edges_of_access("R")) == 2

    def test_square_non_unimodular_one_direction(self):
        nest = _nest_with_access(2, [[2, 1], [1, 1]])  # det 1: unimodular!
        nest = _nest_with_access(2, [[2, 0], [0, 1]])  # det 2
        ag = build_access_graph(nest, m=2)
        edges = ag.edges_of_access("R")
        assert len(edges) == 1
        assert edges[0].payload.direction == "var_to_stmt"

    def test_narrow_without_integer_inverse_recorded(self):
        # F = [[2],[0]]: no integer G with G F = 1
        nest = _nest_with_access(2, [[2], [0]], depth=1)
        ag = build_access_graph(nest, m=1)
        assert "R" in {r.label for r in ag.no_integer_inverse}

    def test_describe_lists_excluded(self):
        nest = _nest_with_access(2, [[1, 1], [1, 1]])
        text = build_access_graph(nest, m=2).describe()
        assert "excluded" in text
