"""End-to-end validation of the paper's motivating example (Sections
2 and 3) on our reconstruction: access graph shape, maximum branching,
residual classification, broadcast rotation and 2-factor decomposition.
"""

import pytest

from repro.alignment import (
    build_access_graph,
    stmt_node,
    two_step_heuristic,
    var_node,
)
from repro.ir import motivating_example, trivial_schedules
from repro.ir.examples import F2, F6
from repro.linalg import IntMat
from repro.macrocomm import Extent, MacroKind


@pytest.fixture(scope="module")
def nest():
    return motivating_example()


@pytest.fixture(scope="module")
def result(nest):
    # the paper picks M_a freely; identity reproduces Section 3's walk
    return two_step_heuristic(
        nest, m=2, root_allocations={var_node("a"): IntMat.identity(2)}
    )


class TestAccessGraph:
    def test_seven_edges(self, nest):
        ag = build_access_graph(nest, m=2)
        # F2, F3 are square-unimodular (2 directed edges each), F5, F7
        # square unimodular (2 each), F1, F4 narrow (1 each), F6 flat
        # (1): 10 directed edges representing 7 paper edges.
        labels = {e.payload.ref.label for e in ag.graph.edges()}
        assert labels == {"F1", "F2", "F3", "F4", "F5", "F6", "F7"}

    def test_f8_excluded(self, nest):
        ag = build_access_graph(nest, m=2)
        assert [r.label for r in ag.excluded] == ["F8"]

    def test_weights_are_ranks(self, nest):
        ag = build_access_graph(nest, m=2)
        by_label = {}
        for e in ag.graph.edges():
            by_label.setdefault(e.payload.ref.label, set()).add(e.weight)
        assert by_label["F5"] == {3}
        assert by_label["F7"] == {3}
        for lab in ("F1", "F2", "F3", "F4", "F6"):
            assert by_label[lab] == {2}


class TestBranching:
    def test_five_edges_weight_12(self, result):
        g = result.alignment.access_graph.graph
        chosen = result.alignment.branching
        assert len(chosen) == 5
        assert g.total_weight(chosen) == 12

    def test_max_weight_edges_zeroed(self, result):
        # both weight-3 accesses (F5, F7) are local
        assert "F5" in result.alignment.local_labels
        assert "F7" in result.alignment.local_labels

    def test_five_local_two_graph_residuals(self, result):
        assert result.alignment.local_labels == {"F1", "F2", "F4", "F5", "F7"}
        labels = {r.ref.label for r in result.alignment.residuals}
        assert labels == {"F3", "F6", "F8"}

    def test_single_component_root(self, result):
        # the paper's Figure 3 roots the branching at vertex a; our
        # Edmonds implementation may pick the tied weight-12 branching
        # rooted at S1 (the paper itself says "a *possible* maximum
        # branching") — either way, the whole graph is one component
        # with a unique input vertex
        roots = {
            result.alignment.component_root_of[n]
            for n in result.alignment.component_root_of
        }
        assert len(roots) == 1
        assert roots <= {var_node("a"), stmt_node("S1")}


class TestStepTwo:
    def test_f6_becomes_axis_parallel_broadcast(self, result):
        opt = result.residual_by_label("F6")
        assert opt.classification == "macro"
        assert opt.macro.kind is MacroKind.BROADCAST
        assert opt.macro.extent is Extent.PARTIAL
        assert opt.macro.axis_parallel
        assert opt.macro.p == 1

    def test_component_was_rotated(self, result):
        # pre-rotation M_S2 v = (1,1)^T is not axis parallel, so the
        # heuristic must have spent the component rotation
        assert result.rotations, "expected a unimodular rotation"

    def test_f3_decomposes_into_two_elementary(self, result):
        opt = result.residual_by_label("F3")
        assert opt.classification == "decomposed"
        assert opt.decomposition is not None
        assert opt.decomposition.num_phases == 2

    def test_f8_lucky_broadcast(self, result):
        # the rank-deficient access also ends up an axis-parallel
        # partial broadcast after the same rotation (paper's footnote)
        opt = result.residual_by_label("F8")
        assert opt.macro is not None
        assert opt.macro.kind is MacroKind.BROADCAST
        assert opt.macro.extent is Extent.PARTIAL
        assert opt.macro.axis_parallel

    def test_summary_counts(self, result):
        counts = result.counts()
        assert counts["local"] == 5
        assert counts.get("macro", 0) >= 2
        assert counts.get("decomposed", 0) == 1

    def test_allocations_full_rank(self, result):
        from repro.linalg import full_rank

        for node, m in result.alignment.allocations.items():
            assert full_rank(m), f"allocation of {node} lost rank"

    def test_local_equations_hold(self, result, nest):
        al = result.alignment
        for stmt, acc in nest.all_accesses():
            if (acc.label or "") in al.local_labels:
                ms = al.allocation_of_stmt(stmt.name)
                mx = al.allocation_of_array(acc.array)
                assert mx @ acc.F == ms


class TestPreRotationGeometry:
    def test_f6_kernel_direction(self):
        from repro.linalg import integer_kernel_basis

        basis = integer_kernel_basis(F6)
        assert len(basis) == 1
        assert basis[0] == IntMat.col([0, 1, -1])

    def test_pre_rotation_some_direction_not_axis(self, nest):
        """Before step 2's rotation at least one residual broadcast
        direction is not parallel to an axis (Section 3's situation
        that forces the unimodular V), and after the rotation all of
        them are."""
        from repro.alignment import align
        from repro.alignment.heuristic import _detect_macro
        from repro.ir import trivial_schedules
        from repro.macrocomm import Extent

        al = align(nest, 2, root_allocations={var_node("a"): IntMat.identity(2)})
        sched = trivial_schedules(nest)
        partials = [
            _detect_macro(r, sched)
            for r in al.residuals
        ]
        partials = [
            p for p in partials if p is not None and p.extent is Extent.PARTIAL
        ]
        assert partials, "expected partial broadcasts among the residuals"
        assert any(not p.axis_parallel for p in partials)
