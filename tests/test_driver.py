"""Tests for the end-to-end compiler façade."""

import pytest

from repro import CompiledNest, compile_nest
from repro.ir import motivating_example, outer_sequential_schedules, trivial_schedules
from repro.machine import CM5Model, ParagonModel

EX1 = """
array a(2), b(3), c(3)
for i = 1..N:
  for j = 1..M:
    S1: b[i, j, 0] = g1(a[i+j, j+1], a[i-j, i+1], c[j, i, 0])
    for k = 1..N+M:
      S2: b[i, j, k] = g2(a[i+j+k+1, j+k])
      S3: c[i, j, j+k] = g3(a[i+j, i+j+1])
"""

RECURRENCE = """
array x(1)
for i = 1..5:
  S: x[i] = f(x[i-1])
"""


class TestCompileNest:
    def test_from_source(self):
        c = compile_nest(EX1, m=2)
        assert isinstance(c, CompiledNest)
        assert c.mapping.counts()["local"] == 5
        assert "on_processor" in c.spmd

    def test_from_ir(self):
        c = compile_nest(motivating_example(), m=2)
        assert c.mapping.counts()["local"] == 5

    def test_explicit_schedules(self):
        nest = motivating_example()
        c = compile_nest(nest, m=2, schedules=trivial_schedules(nest))
        assert c.schedules.schedule_of("S1").theta.is_zero()

    def test_inferred_schedule_sequentializes_recurrence(self):
        c = compile_nest(RECURRENCE, m=1)
        assert not c.schedules.schedule_of("S").theta.is_zero()

    def test_illegal_schedule_rejected(self):
        from repro.ir import parse_nest

        nest = parse_nest(RECURRENCE)
        with pytest.raises(ValueError):
            compile_nest(
                nest, m=1, schedules=trivial_schedules(nest)
            )

    def test_legality_check_skippable(self):
        from repro.ir import parse_nest

        nest = parse_nest(RECURRENCE)
        c = compile_nest(
            nest, m=1, schedules=trivial_schedules(nest), check_legality=False
        )
        assert c is not None

    def test_run_shortcut(self):
        c = compile_nest(EX1, m=2)
        machine = ParagonModel(2, 2)
        rep = c.run(machine, params={"N": 3, "M": 3})
        assert rep.total_time > 0

    def test_run_with_collectives(self):
        c = compile_nest(EX1, m=2)
        machine = ParagonModel(2, 2)
        rep = c.run(machine, params={"N": 3, "M": 3}, collectives=CM5Model())
        macro_stats = [
            s for s in rep.per_access.values() if s.classification == "macro"
        ]
        assert any(s.macro_ops > 0 for s in macro_stats)

    def test_summary(self):
        c = compile_nest(EX1, m=2)
        assert "5 local" in c.summary()


PERM3 = """array a(3), b(3)
for i = 0..7:
  for j = 0..7:
    for k = 0..7:
      S: a[i, j, k] = f(b[j, k, i])
"""


class TestMesh3DEndToEnd:
    """The m = 3 (T3D) case runs through the whole pipeline: compile,
    fold onto a cube, extract messages, price with PhaseReports."""

    def test_m3_smoke(self):
        from repro.machine import T3DModel
        from repro.runtime import CommReport

        c = compile_nest(PERM3, m=3)
        rep = c.run(T3DModel(2, 2, 2), params={})
        assert isinstance(rep, CommReport)
        assert rep.total_time >= 0
        # folded coordinates are 3-tuples
        program = c.program(T3DModel(2, 2, 2), params={})
        ev = program.comm_events()[0]
        assert len(ev.sender) == 3 and len(ev.receiver) == 3

    def test_m3_nonlocal_nest_prices_messages(self):
        src = """array a(3), b(3)
for i = 0..5:
  for j = 0..5:
    for k = 0..5:
      S: a[i, j, k] = f(b[i+1, j+2, k])
"""
        from repro.machine import T3DModel

        c = compile_nest(src, m=3)
        rep = c.run(T3DModel(2, 2, 2), params={})
        assert rep.total_time >= 0 and rep.total_messages >= 0

    def test_rank_mismatch_is_friendly(self):
        from repro.machine import T3DModel

        c = compile_nest(PERM3, m=2)
        with pytest.raises(ValueError, match="must match"):
            c.run(T3DModel(2, 2, 2), params={})
        c3 = compile_nest(PERM3, m=3)
        with pytest.raises(ValueError, match="must match"):
            c3.run(ParagonModel(2, 2), params={})

    def test_registry_machine_runs(self):
        from repro.machine import make_machine

        c = compile_nest(PERM3, m=3)
        rep = c.run(make_machine("t3d", (2, 2, 2)), params={})
        assert rep.total_time >= 0
