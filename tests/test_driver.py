"""Tests for the end-to-end compiler façade."""

import pytest

from repro import CompiledNest, compile_nest
from repro.ir import motivating_example, outer_sequential_schedules, trivial_schedules
from repro.machine import CM5Model, ParagonModel

EX1 = """
array a(2), b(3), c(3)
for i = 1..N:
  for j = 1..M:
    S1: b[i, j, 0] = g1(a[i+j, j+1], a[i-j, i+1], c[j, i, 0])
    for k = 1..N+M:
      S2: b[i, j, k] = g2(a[i+j+k+1, j+k])
      S3: c[i, j, j+k] = g3(a[i+j, i+j+1])
"""

RECURRENCE = """
array x(1)
for i = 1..5:
  S: x[i] = f(x[i-1])
"""


class TestCompileNest:
    def test_from_source(self):
        c = compile_nest(EX1, m=2)
        assert isinstance(c, CompiledNest)
        assert c.mapping.counts()["local"] == 5
        assert "on_processor" in c.spmd

    def test_from_ir(self):
        c = compile_nest(motivating_example(), m=2)
        assert c.mapping.counts()["local"] == 5

    def test_explicit_schedules(self):
        nest = motivating_example()
        c = compile_nest(nest, m=2, schedules=trivial_schedules(nest))
        assert c.schedules.schedule_of("S1").theta.is_zero()

    def test_inferred_schedule_sequentializes_recurrence(self):
        c = compile_nest(RECURRENCE, m=1)
        assert not c.schedules.schedule_of("S").theta.is_zero()

    def test_illegal_schedule_rejected(self):
        from repro.ir import parse_nest

        nest = parse_nest(RECURRENCE)
        with pytest.raises(ValueError):
            compile_nest(
                nest, m=1, schedules=trivial_schedules(nest)
            )

    def test_legality_check_skippable(self):
        from repro.ir import parse_nest

        nest = parse_nest(RECURRENCE)
        c = compile_nest(
            nest, m=1, schedules=trivial_schedules(nest), check_legality=False
        )
        assert c is not None

    def test_run_shortcut(self):
        c = compile_nest(EX1, m=2)
        machine = ParagonModel(2, 2)
        rep = c.run(machine, params={"N": 3, "M": 3})
        assert rep.total_time > 0

    def test_run_with_collectives(self):
        c = compile_nest(EX1, m=2)
        machine = ParagonModel(2, 2)
        rep = c.run(machine, params={"N": 3, "M": 3}, collectives=CM5Model())
        macro_stats = [
            s for s in rep.per_access.values() if s.classification == "macro"
        ]
        assert any(s.macro_ops > 0 for s in macro_stats)

    def test_summary(self):
        c = compile_nest(EX1, m=2)
        assert "5 local" in c.summary()
