"""Tests for the normal-form memoization layer and the IntMat fast
paths (NumPy ``int64`` matmul/det under the overflow bound)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    IntMat,
    NormalFormCache,
    cache_stats,
    clear_caches,
    get_cache,
    integer_left_inverse,
    memoize_normal_form,
    pseudoinverse,
    right_hermite,
    smith_normal_form,
)
from repro.linalg.cache import _REGISTRY


def small_mat(rng, m, n, lo=-6, hi=6):
    return IntMat([[rng.randint(lo, hi) for _ in range(n)] for _ in range(m)])


class TestNormalFormCache:
    def test_hits_return_identical_objects(self):
        clear_caches()
        a = IntMat([[2, 1], [1, 1]])
        assert right_hermite(a) is right_hermite(a)
        assert smith_normal_form(a) is smith_normal_form(a)
        assert pseudoinverse(a) is pseudoinverse(a)

    def test_counters(self):
        clear_caches()
        a = IntMat([[3, 1], [0, 2]])
        smith_normal_form(a)
        smith_normal_form(a)
        smith_normal_form(a)
        s = get_cache("smith_normal_form").stats()
        assert s["misses"] == 1 and s["hits"] == 2

    def test_equal_matrices_share_entries(self):
        clear_caches()
        smith_normal_form(IntMat([[5, 2], [1, 1]]))
        r = smith_normal_form(IntMat([[5, 2], [1, 1]]))  # equal, distinct object
        assert get_cache("smith_normal_form").hits == 1
        u, d, v = r
        assert u @ IntMat([[5, 2], [1, 1]]) @ v == d

    def test_lru_eviction_bound(self):
        cache = NormalFormCache("toy", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert "a" not in cache and "c" in cache

    def test_lru_recency(self):
        cache = NormalFormCache("toy2", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_memoize_decorator_eviction(self):
        calls = []

        @memoize_normal_form("toy_fn", maxsize=2)
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(1) == 2 and fn(2) == 4 and fn(1) == 2
        assert calls == [1, 2]
        fn(3)  # evicts 2
        fn(2)  # recomputes
        assert calls == [1, 2, 3, 2]
        del _REGISTRY["toy_fn"]

    def test_reregistration_replaces_cache(self):
        """Module reload re-executes decorators; the registry must
        accept the new cache instead of erroring at import time."""

        @memoize_normal_form("toy_reload", maxsize=4)
        def first(x):
            return x + 1

        @memoize_normal_form("toy_reload", maxsize=4)
        def second(x):
            return x + 2

        assert get_cache("toy_reload") is second.cache
        assert second(1) == 3
        del _REGISTRY["toy_reload"]

    def test_module_reload_safe(self):
        import importlib

        import repro.linalg.hermite as hermite_mod

        importlib.reload(hermite_mod)  # must not raise
        # and the reloaded function still works + caches
        a = IntMat([[2, 1], [1, 1]])
        assert hermite_mod.right_hermite(a) is hermite_mod.right_hermite(a)

    def test_cache_stats_registry(self):
        stats = cache_stats()
        for name in ("right_hermite", "smith_normal_form", "pseudoinverse"):
            assert name in stats
            assert set(stats[name]) == {"hits", "misses", "size", "maxsize"}

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_cached_results_bit_identical_to_uncached(self, seed):
        rng = random.Random(seed)
        a = small_mat(rng, 3, 3)
        cached = smith_normal_form(a)
        assert cached == smith_normal_form.__wrapped__(a)
        n = small_mat(rng, 3, 2)
        assert integer_left_inverse(n) == integer_left_inverse.__wrapped__(n)
        from repro.linalg import rank

        if rank(a) == 3:
            assert right_hermite(a) == right_hermite.__wrapped__(a)


class TestIntMatFastPaths:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_matmul_numpy_path_exact(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 12)  # big enough to trigger the NumPy path
        a = small_mat(rng, n, n, -80, 80)
        b = small_mat(rng, n, n, -80, 80)
        assert a.matmul(b) == a._matmul_python(b)

    def test_matmul_zero_operand_with_huge_other(self):
        """A zero operand makes the product bound 0, but the huge side
        still cannot round-trip through int64 — must fall back."""
        huge = IntMat([[2 ** 100] * 8 for _ in range(8)])
        zero = IntMat.zeros(8, 8)
        assert huge.matmul(zero) == zero
        assert zero.matmul(huge) == zero

    def test_matmul_overflow_falls_back_exactly(self):
        big = 10 ** 30
        a = IntMat([[big if i == j else 1 for j in range(8)] for i in range(8)])
        prod = a.matmul(a)
        assert prod == a._matmul_python(a)
        assert prod[0, 0] == big * big + 7  # exact, no int64 wraparound

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_det_fast_paths_exact(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 7)
        a = small_mat(rng, n, n, -9, 9)
        assert a.det() == a._det_bareiss_python()

    def test_det_singular_and_pivoting(self):
        z = IntMat([[0, 1, 2, 3], [0, 2, 4, 6], [1, 0, 0, 0], [0, 0, 1, 0]])
        assert z.det() == z._det_bareiss_python() == 0
        perm = IntMat(
            [[0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0]]
        )
        assert perm.det() == perm._det_bareiss_python() == -1

    def test_det_huge_entries_fall_back(self):
        big = 10 ** 30
        m = IntMat(
            [
                [big, 1, 0, 0],
                [2, big, 0, 0],
                [0, 0, 1, 0],
                [0, 0, 0, 1],
            ]
        )
        assert m.det() == big * big - 2

    def test_identity_and_scalar(self):
        assert IntMat.identity(5).det() == 1
        assert IntMat([[7]]).det() == 7


class TestFromNumpyValidation:
    def test_integer_and_bool_ok(self):
        import numpy as np

        assert IntMat.from_numpy(np.array([[1, 2], [3, 4]]))[1, 0] == 3
        assert IntMat.from_numpy(np.array([[True, False]]))[0, 0] == 1

    def test_integral_floats_ok(self):
        import numpy as np

        m = IntMat.from_numpy(np.array([[1.0, -2.0], [3.0, 0.0]]))
        assert m == IntMat([[1, -2], [3, 0]])

    def test_fractional_float_rejected_with_location(self):
        import numpy as np

        with pytest.raises(ValueError, match=r"non-integral entry .* \(1, 0\)"):
            IntMat.from_numpy(np.array([[1.0, 2.0], [2.5, 3.0]]))

    def test_nan_inf_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="non-finite"):
            IntMat.from_numpy(np.array([[np.nan, 1.0]]))
        with pytest.raises(ValueError, match="non-finite"):
            IntMat.from_numpy(np.array([[np.inf, 1.0]]))

    def test_complex_rejected(self):
        import numpy as np

        with pytest.raises(TypeError, match="unsupported dtype"):
            IntMat.from_numpy(np.array([[1 + 0j]]))

    def test_object_bigints_ok(self):
        import numpy as np

        m = IntMat.from_numpy(np.array([[10 ** 40, -1]], dtype=object))
        assert m[0, 0] == 10 ** 40

    def test_one_dimensional_promoted(self):
        import numpy as np

        assert IntMat.from_numpy(np.array([1, 2, 3])).shape == (1, 3)
