"""Tests for Hermite and Smith normal forms, including hypothesis
properties on random integer matrices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    IntMat,
    flat_hermite,
    invariant_factors,
    is_unimodular,
    rank,
    right_hermite,
    right_hermite_narrow,
    row_hnf,
    smith_normal_form,
    unimodular_inverse,
)


def int_matrices(max_dim=4, max_entry=6):
    """Strategy for small integer matrices as IntMat."""

    @st.composite
    def build(draw):
        m = draw(st.integers(1, max_dim))
        n = draw(st.integers(1, max_dim))
        rows = draw(
            st.lists(
                st.lists(st.integers(-max_entry, max_entry), min_size=n, max_size=n),
                min_size=m,
                max_size=m,
            )
        )
        return IntMat(rows)

    return build()


def full_col_rank_matrices(max_dim=4, max_entry=5):
    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_dim))
        m = draw(st.integers(n, max_dim))
        for _ in range(50):
            rows = draw(
                st.lists(
                    st.lists(
                        st.integers(-max_entry, max_entry), min_size=n, max_size=n
                    ),
                    min_size=m,
                    max_size=m,
                )
            )
            cand = IntMat(rows)
            if rank(cand) == n:
                return cand
        # fall back: identity padded with zeros always has full column rank
        rows = [[1 if i == j else 0 for j in range(n)] for i in range(m)]
        return IntMat(rows)

    return build()


class TestRowHNF:
    def test_identity(self):
        u, h = row_hnf(IntMat.identity(3))
        assert h == IntMat.identity(3)
        assert u == IntMat.identity(3)

    def test_reconstruction(self):
        a = IntMat([[2, 4, 4], [-6, 6, 12], [10, 4, 16]])
        u, h = row_hnf(a)
        assert is_unimodular(u)
        assert u @ a == h

    def test_echelon_shape(self):
        a = IntMat([[0, 2], [3, 1]])
        _, h = row_hnf(a)
        # pivots positive, entries above pivots reduced
        assert h[0, 0] > 0

    @given(int_matrices())
    @settings(max_examples=60, deadline=None)
    def test_property_reconstruction(self, a):
        u, h = row_hnf(a)
        assert is_unimodular(u)
        assert u @ a == h

    @given(int_matrices())
    @settings(max_examples=60, deadline=None)
    def test_property_canonical_pivots(self, a):
        _, h = row_hnf(a)
        # every pivot is positive; entries above a pivot lie in [0, pivot)
        m, n = h.shape
        r = 0
        for c in range(n):
            if r < m and h[r, c] != 0:
                piv = h[r, c]
                assert piv > 0
                for i in range(r):
                    assert 0 <= h[i, c] < piv
                r += 1


class TestRightHermite:
    def test_square_example(self):
        a = IntMat([[3, 1], [1, 2]])
        q, h = right_hermite(a)
        assert is_unimodular(q)
        assert q @ h == a
        assert h.is_lower_triangular()
        assert h[0, 0] > 0 and h[1, 1] > 0

    def test_narrow(self):
        d = IntMat([[2], [1]])
        q, h = right_hermite_narrow(d)
        assert is_unimodular(q)
        assert h.shape == (1, 1)
        # Q^{-1} D = [H ; 0]
        qinv = unimodular_inverse(q)
        prod = qinv @ d
        assert prod[0, 0] == h[0, 0]
        assert prod[1, 0] == 0

    def test_broadcast_rotation_use_case(self):
        # Section 3: M_S v = (1, 1)^T must be rotated onto an axis.
        d = IntMat([[1], [1]])
        q, h = right_hermite_narrow(d)
        qinv = unimodular_inverse(q)
        rotated = qinv @ d
        # axis-parallel: a single non-zero in the top block, zeros below
        assert rotated[1, 0] == 0
        assert rotated[0, 0] != 0

    def test_rank_deficient_rejected(self):
        with pytest.raises(ValueError):
            right_hermite(IntMat([[1, 2], [2, 4]]))

    @given(full_col_rank_matrices())
    @settings(max_examples=60, deadline=None)
    def test_property(self, a):
        q, h = right_hermite(a)
        assert is_unimodular(q)
        assert q @ h == a
        n = a.ncols
        # lower-triangular top block, zero bottom block
        for i in range(a.nrows):
            for j in range(n):
                if i < n and j > i:
                    assert h[i, j] == 0
                if i >= n:
                    assert h[i, j] == 0
        for j in range(n):
            assert h[j, j] > 0
            # sub-diagonal entries reduced modulo the column pivot
            for i in range(j + 1, n):
                assert 0 <= h[i, j] < h[j, j]


class TestFlatHermite:
    def test_example(self):
        f = IntMat([[1, 0, 1], [0, 1, 1]])
        h, q = flat_hermite(f)
        assert is_unimodular(q)
        a = f.nrows
        # F == [H | 0] @ Q
        h0 = h.hstack(IntMat.zeros(a, f.ncols - a))
        assert h0 @ q == f

    @given(int_matrices())
    @settings(max_examples=40, deadline=None)
    def test_property(self, m):
        # restrict to flat full-row-rank inputs
        if m.nrows > m.ncols or rank(m) != m.nrows:
            return
        h, q = flat_hermite(m)
        a = m.nrows
        pad = (
            h.hstack(IntMat.zeros(a, m.ncols - a)) if m.ncols > a else h
        )
        assert pad @ q == m
        assert is_unimodular(q)


class TestSmith:
    def test_identity(self):
        u, d, v = smith_normal_form(IntMat.identity(3))
        assert d == IntMat.identity(3)

    def test_classic(self):
        a = IntMat([[2, 4, 4], [-6, 6, 12], [10, 4, 16]])
        u, d, v = smith_normal_form(a)
        assert is_unimodular(u) and is_unimodular(v)
        assert u @ a @ v == d
        assert invariant_factors(a) == (2, 2, 156)

    def test_zero_matrix(self):
        u, d, v = smith_normal_form(IntMat.zeros(2, 3))
        assert d.is_zero()

    def test_rectangular(self):
        a = IntMat([[2, 0], [0, 3], [0, 0]])
        u, d, v = smith_normal_form(a)
        assert u @ a @ v == d
        assert invariant_factors(a) == (1, 6)

    @given(int_matrices())
    @settings(max_examples=80, deadline=None)
    def test_property(self, a):
        u, d, v = smith_normal_form(a)
        assert is_unimodular(u) and is_unimodular(v)
        assert u @ a @ v == d
        # diagonal with divisibility chain
        m, n = d.shape
        for i in range(m):
            for j in range(n):
                if i != j:
                    assert d[i, j] == 0
        diag = [d[k, k] for k in range(min(m, n))]
        assert all(x >= 0 for x in diag)
        for x, y in zip(diag, diag[1:]):
            if x != 0:
                assert y % x == 0
            else:
                assert y == 0


class TestUnimodularInverse:
    def test_round_trip(self):
        u = IntMat([[2, 1], [1, 1]])
        ui = unimodular_inverse(u)
        assert u @ ui == IntMat.identity(2)

    def test_rejects_non_unimodular(self):
        with pytest.raises(ValueError):
            unimodular_inverse(IntMat([[2, 0], [0, 1]]))
