"""Unit tests for the exact integer matrix type."""

import pytest

from repro.linalg import IntMat, matrix_product


class TestConstruction:
    def test_basic(self):
        m = IntMat([[1, 2], [3, 4]])
        assert m.shape == (2, 2)
        assert m[0, 1] == 2
        assert m[1] == (3, 4)

    def test_identity(self):
        assert IntMat.identity(3) == IntMat([[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_zeros(self):
        assert IntMat.zeros(2, 3).is_zero()

    def test_row_col(self):
        assert IntMat.row([1, 2, 3]).shape == (1, 3)
        assert IntMat.col([1, 2, 3]).shape == (3, 1)

    def test_diag(self):
        d = IntMat.diag([2, 3])
        assert d == IntMat([[2, 0], [0, 3]])

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            IntMat([[1, 2], [3]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IntMat([])

    def test_rejects_fractional_float(self):
        with pytest.raises(ValueError):
            IntMat([[1.5]])

    def test_accepts_integral_float(self):
        assert IntMat([[2.0]])[0, 0] == 2

    def test_from_numpy(self):
        import numpy as np

        m = IntMat.from_numpy(np.array([[1, 2], [3, 4]]))
        assert m == IntMat([[1, 2], [3, 4]])

    def test_from_numpy_1d(self):
        import numpy as np

        assert IntMat.from_numpy(np.array([1, 2])).shape == (1, 2)


class TestArithmetic:
    def test_add_sub(self):
        a = IntMat([[1, 2], [3, 4]])
        b = IntMat([[5, 6], [7, 8]])
        assert a + b == IntMat([[6, 8], [10, 12]])
        assert b - a == IntMat([[4, 4], [4, 4]])

    def test_neg(self):
        assert -IntMat([[1, -2]]) == IntMat([[-1, 2]])

    def test_matmul(self):
        a = IntMat([[1, 2], [3, 4]])
        b = IntMat([[0, 1], [1, 0]])
        assert a @ b == IntMat([[2, 1], [4, 3]])

    def test_matmul_rectangular(self):
        a = IntMat([[1, 0, 2]])  # 1x3
        b = IntMat([[1], [2], [3]])  # 3x1
        assert a @ b == IntMat([[7]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            IntMat([[1, 2]]) @ IntMat([[1, 2]])

    def test_scalar_mul(self):
        assert 2 * IntMat([[1, 2]]) == IntMat([[2, 4]])
        assert IntMat([[1, 2]]) * 3 == IntMat([[3, 6]])

    def test_transpose(self):
        assert IntMat([[1, 2, 3]]).T == IntMat([[1], [2], [3]])

    def test_big_integers_no_overflow(self):
        big = 10**30
        m = IntMat([[big]])
        assert (m @ m)[0, 0] == big * big

    def test_matrix_product(self):
        mats = [IntMat([[1, 1], [0, 1]])] * 3
        assert matrix_product(mats) == IntMat([[1, 3], [0, 1]])

    def test_matrix_product_empty(self):
        with pytest.raises(ValueError):
            matrix_product([])


class TestDeterminant:
    def test_2x2(self):
        assert IntMat([[1, 2], [3, 4]]).det() == -2

    def test_identity(self):
        assert IntMat.identity(4).det() == 1

    def test_singular(self):
        assert IntMat([[1, 2], [2, 4]]).det() == 0

    def test_needs_pivot_swap(self):
        assert IntMat([[0, 1], [1, 0]]).det() == -1

    def test_3x3(self):
        m = IntMat([[2, 0, 1], [1, 1, 0], [0, 3, 1]])
        assert m.det() == 2 * (1 * 1 - 0 * 3) - 0 + 1 * (1 * 3 - 0)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            IntMat([[1, 2]]).det()

    def test_bareiss_large(self):
        # Bareiss must stay exact on entries that overflow int64 products
        m = IntMat([[10**12, 1], [1, 10**12]])
        assert m.det() == 10**24 - 1


class TestStructure:
    def test_is_identity(self):
        assert IntMat.identity(2).is_identity()
        assert not IntMat([[1, 1], [0, 1]]).is_identity()
        assert not IntMat([[1, 0, 0], [0, 1, 0]]).is_identity()

    def test_triangular(self):
        assert IntMat([[1, 0], [5, 1]]).is_lower_triangular()
        assert IntMat([[1, 5], [0, 1]]).is_upper_triangular()
        assert not IntMat([[1, 5], [5, 1]]).is_lower_triangular()

    def test_stack(self):
        a = IntMat([[1], [2]])
        b = IntMat([[3], [4]])
        assert a.hstack(b) == IntMat([[1, 3], [2, 4]])
        assert a.vstack(b) == IntMat([[1], [2], [3], [4]])

    def test_submatrix(self):
        m = IntMat([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.submatrix([0, 2], [1, 2]) == IntMat([[2, 3], [8, 9]])

    def test_trace(self):
        assert IntMat([[1, 2], [3, 4]]).trace() == 5

    def test_gcd_content(self):
        assert IntMat([[4, 6], [8, 10]]).gcd_content() == 2
        assert IntMat.zeros(2, 2).gcd_content() == 0

    def test_max_abs(self):
        assert IntMat([[-7, 3]]).max_abs() == 7

    def test_hashable(self):
        s = {IntMat([[1]]), IntMat([[1]]), IntMat([[2]])}
        assert len(s) == 2

    def test_column_accessors(self):
        m = IntMat([[1, 2], [3, 4]])
        assert m.col_vector(1) == IntMat([[2], [4]])
        assert m.column_tuple(0) == (1, 3)
        assert m.row_vector(1) == IntMat([[3, 4]])

    def test_pretty(self):
        text = IntMat([[1, 22], [333, 4]]).pretty()
        assert "22" in text and "\n" in text

    def test_to_numpy_roundtrip(self):
        m = IntMat([[1, -2], [3, 4]])
        assert IntMat.from_numpy(m.to_numpy()) == m
