"""Tests for the exact rational matrix type."""

from fractions import Fraction

import pytest

from repro.linalg import FracMat, IntMat


class TestBasics:
    def test_from_int_round_trip(self):
        m = IntMat([[1, 2], [3, 4]])
        f = FracMat.from_int(m)
        assert f.to_int() == m

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            FracMat([[1.5]])

    def test_fraction_entries(self):
        f = FracMat([[Fraction(1, 2)]])
        assert f[0, 0] == Fraction(1, 2)
        assert not f.is_integral()

    def test_scale_to_int(self):
        f = FracMat([[Fraction(1, 2), Fraction(1, 3)]])
        a, s = f.scale_to_int()
        assert s == 6
        assert a == IntMat([[3, 2]])

    def test_matmul(self):
        a = FracMat([[Fraction(1, 2), 0], [0, 2]])
        b = FracMat([[2], [1]])
        assert (a @ b) == FracMat([[1], [2]])

    def test_eq_with_intmat(self):
        assert FracMat([[1, 0], [0, 1]]) == IntMat.identity(2)


class TestElimination:
    def test_rank(self):
        assert FracMat([[1, 2], [2, 4]]).rank() == 1
        assert FracMat([[1, 2], [3, 4]]).rank() == 2

    def test_rref_pivots(self):
        _, pivots = FracMat([[0, 1], [0, 0]]).rref()
        assert pivots == [1]

    def test_nullspace(self):
        ns = FracMat([[1, 2]]).nullspace()
        assert len(ns) == 1
        v = ns[0]
        assert v[0, 0] * 1 + v[1, 0] * 2 == 0

    def test_nullspace_trivial(self):
        assert FracMat([[1, 0], [0, 1]]).nullspace() == []

    def test_inverse(self):
        a = FracMat([[2, 1], [1, 1]])
        assert a @ a.inverse() == FracMat.identity(2)

    def test_inverse_singular(self):
        with pytest.raises(ValueError):
            FracMat([[1, 1], [1, 1]]).inverse()

    def test_solve_consistent(self):
        a = FracMat([[1, 0], [0, 2]])
        b = FracMat([[3], [4]])
        x = a.solve(b)
        assert a @ x == b

    def test_solve_inconsistent(self):
        a = FracMat([[1, 1], [1, 1]])
        b = FracMat([[0], [1]])
        assert a.solve(b) is None

    def test_solve_underdetermined(self):
        a = FracMat([[1, 1]])
        b = FracMat([[5]])
        x = a.solve(b)
        assert (a @ x) == b

    def test_solve_multi_column(self):
        a = FracMat([[2, 0], [0, 4]])
        b = FracMat([[2, 4], [4, 8]])
        x = a.solve(b)
        assert a @ x == b
