"""Hypothesis property tests on the Diophantine and pseudo-inverse
machinery: completeness and correctness of solution lattices, one-sided
inverse identities, compatibility conditions."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.linalg import (
    FracMat,
    IntMat,
    compatibility_condition,
    has_integer_solution,
    integer_kernel_basis,
    integer_left_inverse,
    integer_right_inverse,
    left_inverse_family,
    pseudoinverse,
    rank,
    solve_axb,
    solve_integer_xf_eq_s,
    solve_xf_eq_s,
)


def small_matrix(rows, cols, bound=4):
    return st.lists(
        st.lists(st.integers(-bound, bound), min_size=cols, max_size=cols),
        min_size=rows,
        max_size=rows,
    ).map(IntMat)


class TestSolveAxb:
    @given(small_matrix(2, 3), st.lists(st.integers(-5, 5), min_size=3, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_constructed_solutions_verify(self, a, xs):
        """b := A x is always solvable and the particular solution
        reproduces b."""
        x = IntMat.col(xs)
        b = a @ x
        sol = solve_axb(a, b)
        assert sol is not None
        assert a @ sol.particular == b
        for h in sol.homogeneous:
            assert (a @ h).is_zero()

    @given(small_matrix(2, 3), st.lists(st.integers(-3, 3), min_size=3, max_size=3),
           st.lists(st.integers(-2, 2), min_size=0, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_lattice_samples_are_solutions(self, a, xs, coeffs):
        x = IntMat.col(xs)
        b = a @ x
        sol = solve_axb(a, b)
        assume(sol is not None)
        cs = (coeffs + [0] * len(sol.homogeneous))[: len(sol.homogeneous)]
        y = sol.sample(cs)
        assert a @ y == b

    def test_unsolvable_detected(self):
        assert not has_integer_solution(IntMat([[2, 0], [0, 2]]), IntMat.col([1, 0]))


class TestOneSidedInverses:
    @given(small_matrix(2, 3))
    @settings(max_examples=60, deadline=None)
    def test_right_inverse_identity(self, f):
        assume(rank(f) == 2)
        r = integer_right_inverse(f)
        if r is not None:
            assert f @ r == IntMat.identity(2)

    @given(small_matrix(3, 2))
    @settings(max_examples=60, deadline=None)
    def test_left_inverse_identity(self, f):
        assume(rank(f) == 2)
        g = integer_left_inverse(f)
        if g is not None:
            assert g @ f == IntMat.identity(2)

    @given(small_matrix(3, 2), st.lists(st.integers(-3, 3), min_size=2, max_size=2))
    @settings(max_examples=40, deadline=None)
    def test_family_members_are_inverses(self, f, ys):
        assume(rank(f) == 2)
        fam = left_inverse_family(f)
        assume(fam is not None)
        g0, kernel = fam
        # every G = G0 + M K (rows of K span the left kernel) works
        g = g0
        for kb in kernel:
            g = g + IntMat([[ys[0]], [ys[1]]]) @ kb
        assert g @ f == IntMat.identity(2)

    @given(small_matrix(3, 2))
    @settings(max_examples=40, deadline=None)
    def test_moore_penrose_identity(self, f):
        assume(rank(f) == 2)
        fp = pseudoinverse(f)
        assert fp @ FracMat.from_int(f) == FracMat.identity(2)


class TestXFEqS:
    @given(small_matrix(2, 3), small_matrix(3, 2))
    @settings(max_examples=40, deadline=None)
    def test_constructed_xf_solvable(self, x, f):
        """S := X F is always compatible and the solver reproduces a
        valid solution."""
        assume(rank(f) == 2)
        # X (2x3) @ F (3x2) = S (2x2): compatible by construction
        s = x @ f
        assert compatibility_condition(s, f)
        sol = solve_xf_eq_s(s, f)
        assert sol is not None
        assert sol @ FracMat.from_int(f) == FracMat.from_int(s)

    @given(small_matrix(2, 3), small_matrix(3, 2))
    @settings(max_examples=40, deadline=None)
    def test_integer_solver_agrees(self, x, f):
        assume(rank(f) == 2)
        s = x @ f
        xi = solve_integer_xf_eq_s(s, f)
        assert xi is not None
        assert xi @ f == s


class TestKernelProperties:
    @given(small_matrix(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_kernel_dimension_theorem(self, a):
        basis = integer_kernel_basis(a)
        assert len(basis) == a.ncols - rank(a)
        for v in basis:
            assert (a @ v).is_zero()

    @given(small_matrix(3, 3))
    @settings(max_examples=40, deadline=None)
    def test_kernel_vectors_independent(self, a):
        basis = integer_kernel_basis(a)
        if len(basis) >= 2:
            cols = [v.column_tuple(0) for v in basis]
            stacked = FracMat(list(zip(*cols)))
            assert stacked.rank() == len(basis)
