"""Tests for the SPMD code generator and the reporting helpers."""

import pytest

from repro.alignment import two_step_heuristic
from repro.codegen import generate_spmd
from repro.ir import motivating_example, platonoff_example, outer_sequential_schedules
from repro.report import format_mapping_summary, format_series, format_table


@pytest.fixture(scope="module")
def result():
    return two_step_heuristic(motivating_example(), m=2)


class TestSpmd:
    def test_contains_all_statements_and_arrays(self, result):
        text = generate_spmd(result)
        for name in ("S1", "S2", "S3"):
            assert f"on_processor" in text
        for arr in ("a", "b", "c"):
            assert f"distribute {arr}[" in text

    def test_local_accesses_marked(self, result):
        text = generate_spmd(result)
        assert "local   F2" in text or "local   F1" in text
        assert "no communication" in text

    def test_macro_and_decomposed_marked(self, result):
        text = generate_spmd(result)
        assert "broadcast F6" in text
        assert "phase0=" in text  # F3's decomposition phases

    def test_communication_free_nest_has_no_comm_lines(self):
        nest = platonoff_example()
        schedules = outer_sequential_schedules(nest, outer=1)
        res = two_step_heuristic(nest, m=2, schedules=schedules)
        text = generate_spmd(res)
        assert "general affine" not in text
        assert "broadcast" not in text

    def test_matrix_expr_rendering(self, result):
        text = generate_spmd(result)
        # affine expressions use loop variable names
        assert "i" in text and "j" in text


class TestReport:
    def test_format_table(self):
        text = format_table(["x", "y"], [[1, 2.5], ["ab", 3]], title="T")
        assert "T" in text and "2.50" in text and "ab" in text

    def test_format_series_bars(self):
        text = format_series("lbl", [1, 2], [1.0, 2.0])
        assert "lbl" in text and "#" in text

    def test_format_series_empty(self):
        assert "(empty)" in format_series("lbl", [], [])

    def test_mapping_summary(self, result):
        text = format_mapping_summary(result)
        assert "5 local" in text
        assert "decomposed" in text
