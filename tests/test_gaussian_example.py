"""Integration test: the Gaussian-elimination kernel's communication
structure (the paper's introduction claim made checkable)."""

import pytest

from repro import compile_nest
from repro.ir import Schedule, ScheduledNest, parse_nest
from repro.linalg import IntMat
from repro.macrocomm import MacroKind

SOURCE = """
array A(2)
for k = 1..N:
  for i = 1..N:
    for j = 1..N:
      S: A[i, j] = f(A[i, j], A[i, k], A[k, j], A[k, k])
"""


@pytest.fixture(scope="module")
def compiled():
    nest = parse_nest(SOURCE, name="gauss")
    schedules = ScheduledNest(
        nest=nest, schedules={"S": Schedule(theta=IntMat([[1, 0, 0]]))}
    )
    return compile_nest(nest, m=2, schedules=schedules, check_legality=False)


class TestGaussStructure:
    def test_not_communication_free(self, compiled):
        """The paper's claim: GE cannot be mapped without residuals."""
        assert compiled.mapping.optimized, "GE must have residuals"

    def test_update_read_local(self, compiled):
        # the A[i,j] read aligns with the A[i,j] write
        assert "F1" in compiled.mapping.alignment.local_labels  # write
        assert "F2" in compiled.mapping.alignment.local_labels  # read A[i,j]

    def test_pivot_row_and_column_are_broadcasts(self, compiled):
        kinds = {}
        for o in compiled.mapping.optimized:
            if o.macro is not None:
                kinds[o.label] = (o.macro.kind, o.macro.extent.value)
        # F3 = A[i,k] (multiplier column), F4 = A[k,j] (pivot row):
        # both partial broadcasts on a 2-D grid
        assert kinds.get("F3", (None,))[0] is MacroKind.BROADCAST
        assert kinds.get("F4", (None,))[0] is MacroKind.BROADCAST
        assert kinds["F3"][1] == "partial"
        assert kinds["F4"][1] == "partial"

    def test_broadcast_directions_orthogonal(self, compiled):
        """Pivot row goes down columns, multiplier column across rows:
        the two broadcast directions span the grid."""
        dirs = []
        for label in ("F3", "F4"):
            o = compiled.mapping.residual_by_label(label)
            d = o.macro.direction_matrix()
            assert d is not None
            dirs.append(d)
        stacked = dirs[0].hstack(dirs[1])
        from repro.linalg import rank

        assert rank(stacked) == 2

    def test_pivot_scalar_feeds_everyone(self, compiled):
        o = compiled.mapping.residual_by_label("F5")  # A[k,k]
        assert o.macro is not None
        assert o.macro.kind is MacroKind.BROADCAST
        assert o.macro.extent.value in ("total", "partial")

    def test_execution_prices_collectives(self, compiled):
        from repro.machine import CM5Model, ParagonModel

        rep = compiled.run(
            ParagonModel(2, 2), params={"N": 4}, collectives=CM5Model()
        )
        macro_ops = sum(s.macro_ops for s in rep.per_access.values())
        assert macro_ops > 0
