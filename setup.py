from setuptools import setup

setup(install_requires=["numpy"])
