#!/usr/bin/env python
"""ADI-style alternating sweeps: the front end, the heuristic and the
SPMD generator working together.

An Alternating-Direction-Implicit kernel sweeps a 2-D field along rows
then along columns.  The two sweeps prefer transposed layouts, so one
of the two phases necessarily communicates — a classic instance of the
paper's premise that communication-free mappings do not exist.  This
example parses the nest from source, maps it, prints the SPMD
pseudo-program and shows how the residual communication is classified.

Run:  python examples/adi_stencil.py
"""

from repro.alignment import two_step_heuristic
from repro.codegen import generate_spmd
from repro.ir import parse_nest, outer_sequential_schedules
from repro.machine import ParagonModel
from repro.report import format_mapping_summary
from repro.runtime import Folding, MappedProgram, execute

SOURCE = """
array u(2), v(2)
for t = 1..T:
  for i = 1..N:
    for j = 1..N:
      Srow: v[i, j] = f(u[i, j], u[i, j-1], u[i, j+1])
  for i = 1..N:
    for j = 1..N:
      Scol: u[j, i] = g(v[j, i], v[j-1, i], v[j+1, i])
"""


def main() -> None:
    nest = parse_nest(SOURCE, name="adi")
    print(nest.describe())
    print()

    # the outer time loop is sequential; the sweeps are parallel
    schedules = outer_sequential_schedules(nest, outer=1)
    result = two_step_heuristic(nest, m=2, schedules=schedules)
    print(result.describe())
    print()
    print(format_mapping_summary(result))
    print()
    print(generate_spmd(result))

    machine = ParagonModel(4, 4)
    folding = Folding(mesh=machine.mesh, extent=8)
    program = MappedProgram(
        mapping=result, folding=folding, params={"T": 2, "N": 6}
    )
    report = execute(program, machine)
    print(report.describe())
    print()
    print(
        "The row sweep aligns u and v identically (all references local\n"
        "up to constant shifts); the residual cost concentrates in the\n"
        "transposed column sweep, exactly the phase ADI implementations\n"
        "pay as an explicit transpose."
    )


if __name__ == "__main__":
    main()
