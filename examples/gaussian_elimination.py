#!/usr/bin/env python
"""Gaussian elimination — the paper's second introductory kernel.

"Think of elementary kernels as simple as a matrix-matrix product or a
Gaussian elimination procedure: there is no way to map such kernels
onto 2-D or even 1-D grids without residual communications."

The update step of GE is

    for k = 1..N:                 (sequential)
      for i, j = 1..N:            (parallel, i > k, j > k)
        S: A[i, j] = A[i, j] - A[i, k] * A[k, j] / A[k, k]

(we keep the rectangular hull of the triangular domain — the alignment
analysis only depends on the access matrices).  Mapping it with the
two-step heuristic exposes the textbook communication structure:

* the write and the ``A[i, j]`` read align (local);
* ``A[k, j]`` — the pivot row — broadcasts along the grid's i-axis;
* ``A[i, k]`` — the multiplier column — broadcasts along the j-axis;
* ``A[k, k]`` — the pivot — is a rank-1 access feeding everybody.

Run:  python examples/gaussian_elimination.py
"""

from repro import compile_nest
from repro.ir import Schedule, ScheduledNest, parse_nest
from repro.linalg import IntMat
from repro.machine import CM5Model, ParagonModel

SOURCE = """
array A(2)
for k = 1..N:
  for i = 1..N:
    for j = 1..N:
      S: A[i, j] = f(A[i, j], A[i, k], A[k, j], A[k, k])
"""


def main() -> None:
    nest = parse_nest(SOURCE, name="gauss")
    print(nest.describe())
    print()

    # k is the elimination step: sequential; i, j parallel
    schedules = ScheduledNest(
        nest=nest, schedules={"S": Schedule(theta=IntMat([[1, 0, 0]]))}
    )
    compiled = compile_nest(nest, m=2, schedules=schedules, check_legality=False)
    print(compiled.mapping.describe())
    print()
    print(compiled.summary())
    print()

    for o in compiled.mapping.optimized:
        if o.macro is not None:
            d = o.macro.direction_matrix()
            print(
                f"  {o.label}: {o.macro.kind.value} ({o.macro.extent.value})"
                f"{' along ' + str(d.tolist()) if d is not None else ''}"
            )
    print()
    print(compiled.spmd)

    machine = ParagonModel(4, 4)
    rep = compiled.run(machine, params={"N": 6}, collectives=CM5Model())
    print(rep.describe())
    print()
    print(
        "The pivot-row and multiplier-column reads become the partial\n"
        "broadcasts every distributed GE implementation performs; with\n"
        "CM-5-style hardware collectives they are priced as macro ops."
    )


if __name__ == "__main__":
    main()
