#!/usr/bin/env python
"""Redistribution with decomposition and the grouped partition.

Implements the Section 5 pipeline on the paper's Figure 7 data-flow
matrix ``T = [[1, 3], [2, 7]] = L(2) . U(3)``:

1. price the *direct* general communication (element-wise messages — a
   compiler cannot vectorize an arbitrary affine pattern);
2. decompose ``T`` into elementary factors and price the two coalesced
   axis-parallel phases under a standard CYCLIC distribution (Table 2);
3. switch to the *grouped partition* matched to each factor's stride
   and price the phases again (Figure 8's improvement).

Run:  python examples/grouped_redistribution.py
"""

from repro.decomp import decompose_dataflow
from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    Distribution2D,
    GroupedDistribution,
)
from repro.linalg import IntMat
from repro.machine import ParagonModel


def main() -> None:
    t = IntMat([[1, 3], [2, 7]])
    plan = decompose_dataflow(t)
    print(f"T = {t.tolist()}")
    print(
        f"decomposition ({plan.strategy}): "
        + " @ ".join(str(f.tolist()) for f in plan.factors)
    )
    print()

    n = 24
    p, q = 4, 4
    machine = ParagonModel(p, q)
    size = 8

    def price(dist, label):
        direct = machine.time_general(dist, t, size=size)
        split = machine.time_decomposed(dist, plan.factors, size=size)
        print(
            f"{label:32s} direct={direct:9.1f}  decomposed={split:9.1f}  "
            f"speedup={direct / split:5.2f}x"
        )
        return direct, split

    block = Distribution2D(BlockDistribution(n, p), BlockDistribution(n, q))
    cyclic = Distribution2D(CyclicDistribution(n, p), CyclicDistribution(n, q))
    # grouped partition matched to the factor strides: L(2) moves along
    # rows with stride 2, U(3) along columns with stride 3
    grouped = Distribution2D(
        GroupedDistribution(n, p, k=2), GroupedDistribution(n, q, k=3)
    )

    print(f"virtual grid {n}x{n} on a {p}x{q} mesh, payload {size} per element")
    price(block, "BLOCK x BLOCK")
    price(cyclic, "CYCLIC x CYCLIC (Table 2 setup)")
    price(grouped, "GROUPED(2) x GROUPED(3)")

    print()
    print(
        "The decomposed schedule beats the direct general communication\n"
        "under every distribution, and the grouped partition shortens the\n"
        "axis-parallel phases further by keeping each residue class of\n"
        "the elementary strides on few physical processors."
    )


if __name__ == "__main__":
    main()
