#!/usr/bin/env python
"""Aligning a matrix-matrix product — the paper's introductory claim.

The introduction observes that kernels as simple as ``C = A x B``
cannot be mapped onto a 2-D grid without residual communications.
This example builds the triple loop

    for i, j, k:  S: c[i, j] += a[i, k] * b[k, j]

runs the two-step heuristic, and shows what the residuals become:
whichever array is aligned with the computation, the two others force
communications — which the heuristic turns into macro-communications
(broadcast along grid rows / columns, plus the reduction along k when
the accumulation is scheduled sequentially).

Run:  python examples/matmul_alignment.py
"""

from repro.alignment import two_step_heuristic
from repro.ir import NestBuilder, outer_sequential_schedules, trivial_schedules
from repro.machine import ParagonModel
from repro.runtime import Folding, MappedProgram, execute


def build_matmul():
    b = NestBuilder("matmul")
    b.array("a", 2).array("b", 2).array("c", 2)
    loops = [("i", 0, "N"), ("j", 0, "N"), ("k", 0, "N")]
    b.statement(
        "S",
        loops,
        writes=[("c", [[1, 0, 0], [0, 1, 0]], None, "Fc")],
        reads=[
            ("a", [[1, 0, 0], [0, 0, 1]], None, "Fa"),
            ("b", [[0, 0, 1], [0, 1, 0]], None, "Fb"),
            ("c", [[1, 0, 0], [0, 1, 0]], None, "FcR"),
        ],
    )
    return b.build()


def main() -> None:
    nest = build_matmul()
    print(nest.describe())
    print()

    # The accumulation c[i,j] += ... carries a dependence along k, so a
    # realistic schedule runs k sequentially (it is the time axis) and
    # (i, j) in parallel.  We express that directly: theta = e_k.
    from repro.ir import Schedule, ScheduledNest
    from repro.linalg import IntMat

    schedules = ScheduledNest(
        nest=nest,
        schedules={"S": Schedule(theta=IntMat([[0, 0, 1]]))},
    )

    result = two_step_heuristic(nest, m=2, schedules=schedules)
    print(result.describe())
    print()
    print("classification counts:", result.counts())
    print()
    print(
        "No communication-free 2-D mapping exists for matmul: aligning c\n"
        "with the computation leaves the reads of a and b non-local, and\n"
        "the heuristic recognizes them as macro-communications (the\n"
        "broadcast patterns of the classical SUMMA algorithm emerge)."
    )
    for o in result.optimized:
        if o.macro is not None:
            d = o.macro.direction_matrix()
            print(
                f"  {o.label}: {o.macro.kind.value} ({o.macro.extent.value}), "
                f"grid directions {d.tolist() if d else '—'}"
            )

    machine = ParagonModel(4, 4)
    folding = Folding(mesh=machine.mesh, extent=8)
    program = MappedProgram(mapping=result, folding=folding, params={"N": 7})
    report = execute(program, machine)
    print()
    print(report.describe())


if __name__ == "__main__":
    main()
