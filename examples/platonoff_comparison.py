#!/usr/bin/env python
"""Section 7.2: two-step heuristic vs. Platonoff's broadcast-first
strategy on Example 5.

    for t = 1 to n:              (sequential)
      for i, j, k = 1 to n:      (parallel)
        S: a[t, i, j, k] = b[t, i, j]

Platonoff detects the broadcast along ``k`` first and *preserves* it,
committing to a mapping that issues one partial broadcast per (i, j)
pair per time step.  The two-step heuristic zeroes communications
first — choosing ``M_b = [rows of the identity]`` and
``M_S = M_a = M_b F_b`` — and the nest becomes communication-free.

Run:  python examples/platonoff_comparison.py
"""

from repro.alignment import two_step_heuristic
from repro.baselines import platonoff_mapping
from repro.ir import outer_sequential_schedules, platonoff_example
from repro.machine import ParagonModel
from repro.runtime import Folding, MappedProgram, execute


def main() -> None:
    nest = platonoff_example()
    print(nest.describe())
    schedules = outer_sequential_schedules(nest, outer=1)
    machine = ParagonModel(3, 3)
    folding = Folding(mesh=machine.mesh, extent=9)
    n = 4
    params = {"n": n}

    print("\n=== two-step heuristic (this paper) ===")
    ours = two_step_heuristic(nest, m=2, schedules=schedules)
    print(ours.describe())
    rep = execute(
        MappedProgram(mapping=ours, folding=folding, params=params), machine
    )
    print(rep.describe())

    print("\n=== Platonoff's broadcast-first strategy ===")
    theirs = platonoff_mapping(nest, m=2, schedules=schedules)
    print(theirs.describe())
    rep_b = execute(
        MappedProgram(mapping=theirs, folding=folding, params=params), machine
    )
    print(rep_b.describe())

    print(
        f"\nn = {n}: ours moves {rep.total_messages} messages "
        f"(time {rep.total_time:.0f}), broadcast-first moves "
        f"{rep_b.total_messages} (time {rep_b.total_time:.0f}) — "
        "the gap grows with n."
    )


if __name__ == "__main__":
    main()
