#!/usr/bin/env python
"""Quickstart: map the paper's motivating example end-to-end.

Runs the complete two-step heuristic of Dion, Randriamaro & Robert on
the Example 1 loop nest, prints the access graph, the maximum
branching outcome, the residual classification (one axis-parallel
partial broadcast + one communication decomposed into two elementary
phases), then folds the virtual grid onto a 4x4 mesh and prices the
execution.

Run:  python examples/quickstart.py
"""

from repro.alignment import build_access_graph, two_step_heuristic, var_node
from repro.ir import motivating_example
from repro.linalg import IntMat
from repro.machine import ParagonModel
from repro.runtime import Folding, MappedProgram, execute


def main() -> None:
    nest = motivating_example()
    print(nest.describe())
    print()

    # --- step 0: the access graph --------------------------------------
    ag = build_access_graph(nest, m=2)
    print(ag.describe())
    print()

    # --- steps 1 + 2: the two-step heuristic ---------------------------
    result = two_step_heuristic(
        nest, m=2, root_allocations={var_node("a"): IntMat.identity(2)}
    )
    print(result.describe())
    print()
    counts = result.counts()
    print(
        f"summary: {counts.get('local', 0)} local, "
        f"{counts.get('macro', 0)} macro-communications, "
        f"{counts.get('decomposed', 0)} decomposed, "
        f"{counts.get('general', 0)} general"
    )
    f3 = result.residual_by_label("F3")
    print(
        "F3 data-flow matrix "
        f"{f3.dataflow.tolist()} decomposes into "
        f"{[f.tolist() for f in f3.decomposition.factors]}"
    )
    print()

    # --- execution on a mesh -------------------------------------------
    machine = ParagonModel(4, 4)
    folding = Folding(mesh=machine.mesh, extent=16)
    program = MappedProgram(
        mapping=result, folding=folding, params={"N": 6, "M": 6}
    )
    report = execute(program, machine)
    print(report.describe())


if __name__ == "__main__":
    main()
