#!/usr/bin/env python
"""Campaign quickstart: sweep generated + corpus nests over machines.

Builds the default campaign grid — seeded random loop nests plus the
repository's named kernels, crossed with Paragon and CM-5 machine
models — runs it through the parallel checkpoint/resume runner, then
aggregates the results: residual-communication counts, classification
histograms and heuristic-vs-baseline execution-time ratios.

The same flow is available from the command line::

    python -m repro campaign run --seed 0 --nests 12 --jobs 4 \
                                 --out runs/demo.jsonl
    python -m repro campaign summarize runs/demo.jsonl

Run:  python examples/campaign_sweep.py
"""

import os
import tempfile

from repro.campaign import (
    CampaignConfig,
    RunStore,
    default_spec,
    run_campaign,
    summarize_results,
)
from repro.report import format_campaign_summary


def main() -> None:
    spec = default_spec(seed=0, nests=12, meshes=((4, 4),))
    tasks = spec.expand()
    print(
        f"grid: {len(spec.workloads)} workloads x {len(spec.machines)} "
        f"machines -> {len(tasks)} tasks (digest {spec.digest()})"
    )

    out = os.path.join(tempfile.mkdtemp(prefix="repro-campaign-"), "sweep.jsonl")
    meta = {"spec_digest": spec.digest()}

    # simulate an interruption: cap the first invocation at 10 tasks...
    first = run_campaign(
        tasks, out, CampaignConfig(jobs=2, max_tasks=10), meta=meta
    )
    print(first.describe())

    # ...and resume from the JSONL checkpoint
    second = run_campaign(tasks, out, CampaignConfig(jobs=2), resume=True, meta=meta)
    print(second.describe())
    print()

    _, results = RunStore(out).load()
    print(format_campaign_summary(summarize_results(results.values())))
    print()

    ok = [r for r in results.values() if r.status == "ok"]
    wins = sum(1 for r in ok if r.total_time < r.baseline_time)
    print(
        f"two-step heuristic beats the greedy baseline on {wins}/{len(ok)} "
        f"task(s); results checkpointed in {out}"
    )


if __name__ == "__main__":
    main()
