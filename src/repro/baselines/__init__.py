"""Comparison baselines (Section 7).

* :func:`feautrier_align` — greedy volume-first edge zeroing (Feautrier
  style), same propagation machinery, no Edmonds optimality and no
  step-1c refinements;
* :func:`platonoff_mapping` — Platonoff's broadcast-first strategy:
  preserve the program's broadcasts (axis-parallel), then zero out what
  the constraints allow.
"""

from .feautrier import feautrier_align, greedy_edge_selection
from .platonoff import platonoff_mapping

__all__ = ["feautrier_align", "greedy_edge_selection", "platonoff_mapping"]
