"""Feautrier-style greedy placement baseline.

Feautrier's heuristic (Section 7.1) zeroes out edges of the
communication graph greedily in decreasing order of estimated
communication volume, without the global optimality of a maximum
branching.  We reproduce that control structure on our access graph:

* sort edges by volume weight descending;
* accept an edge when its destination vertex has no incoming accepted
  edge yet and accepting keeps the selection a forest;
* propagate allocations exactly as the branching solver does (the
  paper's step 1c refinements are deliberately *not* applied — this is
  the baseline the heuristic improves on).

The resulting :class:`~repro.alignment.allocation.Alignment` plugs into
the same step-2 machinery, making the comparison with Edmonds-based
step 1 an apples-to-apples ablation (benchmark A1 / the Section 7
discussion).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..alignment.access_graph import (
    AccessRef,
    build_access_graph,
    stmt_node,
    var_node,
)
from ..alignment.allocation import (
    Alignment,
    ResidualComm,
    _default_root_matrix,
    _node_dim,
)
from ..alignment.digraph import branching_roots, connected_components
from ..ir import LoopNest
from ..linalg import IntMat


def greedy_edge_selection(graph) -> Set[int]:
    """Greedy branching: heaviest edges first, keeping in-degree <= 1
    and acyclicity (union-find on the underlying undirected forest)."""
    parent: Dict[str, str] = {v: v for v in graph.nodes}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    chosen: Set[int] = set()
    has_incoming: Set[str] = set()
    for e in sorted(graph.edges(), key=lambda e: (-e.weight, e.id)):
        if e.weight <= 0 or e.src == e.dst:
            continue
        if e.dst in has_incoming:
            continue
        ra, rb = find(e.src), find(e.dst)
        if ra == rb:
            continue  # would close a cycle in the forest
        chosen.add(e.id)
        has_incoming.add(e.dst)
        parent[ra] = rb
    return chosen


def feautrier_align(
    nest: LoopNest,
    m: int,
    root_allocations: Optional[Dict[str, IntMat]] = None,
) -> Alignment:
    """Step-1 alignment using greedy selection instead of Edmonds."""
    ag = build_access_graph(nest, m)
    g = ag.graph
    chosen = greedy_edge_selection(g)

    components = connected_components(g, chosen)
    roots = branching_roots(g, chosen)
    allocations: Dict[str, IntMat] = {}
    component_root_of: Dict[str, str] = {}

    children: Dict[str, List] = {}
    for eid in chosen:
        e = g.edge(eid)
        children.setdefault(e.src, []).append(e)

    for comp in components:
        comp_roots = sorted(v for v in comp if v in roots)
        root = comp_roots[0]
        dim = _node_dim(nest, root)
        m_root = (root_allocations or {}).get(root)
        if m_root is None:
            m_root = _default_root_matrix(m, dim)
        stack = [(root, IntMat.identity(dim))]
        while stack:
            u, path = stack.pop()
            allocations[u] = m_root @ path
            component_root_of[u] = root
            for e in children.get(u, []):
                stack.append((e.dst, path @ e.payload.matrix))

    local_labels: Set[str] = set()
    residuals: List[ResidualComm] = []
    for stmt, acc in nest.all_accesses():
        ref = AccessRef(stmt=stmt.name, access=acc)
        ms = allocations[stmt_node(stmt.name)]
        mx = allocations[var_node(acc.array)]
        if mx @ acc.F == ms:
            local_labels.add(ref.label)
        else:
            residuals.append(
                ResidualComm(
                    ref=ref,
                    M_S=ms,
                    M_x=mx,
                    component_root=component_root_of[stmt_node(stmt.name)],
                )
            )

    return Alignment(
        nest=nest,
        m=m,
        access_graph=ag,
        branching=chosen,
        allocations=allocations,
        offsets={k: IntMat.zeros(m, 1) for k in allocations},
        local_labels=local_labels,
        residuals=residuals,
        component_root_of=component_root_of,
    )
