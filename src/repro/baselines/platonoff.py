"""Platonoff's broadcast-first mapping strategy (Section 7).

Platonoff's algorithm *first* locates the broadcasts of the initial
program (non-trivial ``ker(theta) ∩ ker(F)`` for a read access),
*preserves* them by constraining the statement allocation so that the
broadcast direction stays visible and parallel to a grid axis, and only
*then* zeroes out the remaining communications greedily.  The paper's
Section 7.2 shows this order of priorities can be arbitrarily worse
than theirs: on Example 5 the broadcast-preserving mapping pays a
partial broadcast per (i, j) pair per time step, while the
two-step heuristic finds a communication-free mapping.

The implementation mirrors that structure:

1. for every statement, find a broadcast direction ``v`` (a primitive
   vector of ``ker theta ∩ ker F`` for some read);
2. choose ``M_S`` with ``M_S v = e_m`` (axis-parallel broadcast) by
   completing ``v`` to a unimodular basis;
3. greedily allocate arrays to zero out what the constraints allow
   (writes first, then reads), defaulting otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..alignment.access_graph import AccessRef, build_access_graph, stmt_node, var_node
from ..alignment.allocation import Alignment, ResidualComm, _default_root_matrix
from ..alignment.heuristic import MappingResult, optimize_residuals
from ..ir import AccessKind, LoopNest, ScheduledNest
from ..linalg import (
    IntMat,
    integer_kernel_basis,
    kernel_intersection_basis,
    solve_integer_xf_eq_s,
    unimodular_completion,
    unimodular_inverse,
)


def _broadcast_direction(
    stmt, schedules: ScheduledNest
) -> Optional[IntMat]:
    """A primitive broadcast direction of the statement, if any: a
    vector of ``ker theta ∩ ker F`` for some read access."""
    theta = schedules.schedule_of(stmt.name).theta
    for acc in stmt.accesses:
        if acc.kind is not AccessKind.READ:
            continue
        basis = kernel_intersection_basis([theta, acc.F])
        if basis:
            return basis[0]
    return None


def _axis_preserving_allocation(m: int, v: IntMat) -> IntMat:
    """A full-rank ``m x d`` matrix with ``M v = e_m`` (broadcast kept,
    parallel to the last grid axis)."""
    d = v.nrows
    comp = unimodular_completion(v.T)  # d x d unimodular, first row v^T
    if comp is None:
        # v not primitive (cannot happen for kernel basis vectors, which
        # are reduced); fall back to a default allocation
        return _default_root_matrix(m, d)
    # comp^T has v as first column; W = (comp^T)^{-1} maps v to e_1.
    w = unimodular_inverse(comp.T)
    # select rows so that row m of M is the e_1-detector: M v = e_m
    rows = []
    for r in range(1, m):
        rows.append(list(w[r % d]))
    rows.append(list(w[0]))
    mat = IntMat(rows)
    return mat


def platonoff_mapping(
    nest: LoopNest, m: int, schedules: ScheduledNest
) -> MappingResult:
    """Run Platonoff's strategy and classify the resulting residual
    communications with the shared step-2 analyzers (no rotations — the
    broadcast-preserving constraints pin the allocations)."""
    ag = build_access_graph(nest, m)
    allocations: Dict[str, IntMat] = {}

    # 1-2: statements with broadcasts get broadcast-preserving layouts
    for stmt in nest.statements:
        v = _broadcast_direction(stmt, schedules)
        if v is not None:
            allocations[stmt_node(stmt.name)] = _axis_preserving_allocation(m, v)

    # 3a: greedy zero-out — writes first (owner-computes flavour)
    ordered = sorted(
        nest.all_accesses(),
        key=lambda sa: (sa[1].kind is not AccessKind.WRITE, -sa[1].rank),
    )
    for stmt, acc in ordered:
        s_key = stmt_node(stmt.name)
        x_key = var_node(acc.array)
        if s_key in allocations and x_key not in allocations:
            # M_x F = M_S
            mx = solve_integer_xf_eq_s(allocations[s_key], acc.F)
            if mx is not None:
                allocations[x_key] = mx
        elif x_key in allocations and s_key not in allocations:
            allocations[s_key] = allocations[x_key] @ acc.F

    # defaults for anything still unallocated
    for stmt in nest.statements:
        allocations.setdefault(
            stmt_node(stmt.name), _default_root_matrix(m, stmt.depth)
        )
    for arr in nest.arrays.values():
        allocations.setdefault(
            var_node(arr.name), _default_root_matrix(m, arr.dim)
        )

    local_labels: Set[str] = set()
    residuals: List[ResidualComm] = []
    for stmt, acc in nest.all_accesses():
        ref = AccessRef(stmt=stmt.name, access=acc)
        ms = allocations[stmt_node(stmt.name)]
        mx = allocations[var_node(acc.array)]
        if mx @ acc.F == ms:
            local_labels.add(ref.label)
        else:
            residuals.append(
                ResidualComm(
                    ref=ref,
                    M_S=ms,
                    M_x=mx,
                    component_root=stmt_node(stmt.name),
                )
            )

    alignment = Alignment(
        nest=nest,
        m=m,
        access_graph=ag,
        branching=set(),
        allocations=allocations,
        offsets={k: IntMat.zeros(m, 1) for k in allocations},
        local_labels=local_labels,
        residuals=residuals,
        component_root_of={k: k for k in allocations},
    )
    return optimize_residuals(alignment, schedules, allow_rotations=False)
