"""Allocation-matrix propagation over a branching (heuristic step 1).

Once the maximum branching is chosen, every connected component has a
unique root vertex; choosing a full-rank ``m x dim(root)`` allocation
matrix for the root determines every other allocation by propagating
along the branching edges (``M_v = M_u W_e``).  Step 1(c) then tries to
re-add the remaining edges:

* (i) an edge whose path-matrix difference ``P_u W_e - P_v`` is zero is
  local for *every* root allocation (the paper's identity cycles and
  equal-weight parallel paths);
* (ii) a non-zero difference ``D`` of deficient rank can still be
  zeroed by choosing the root allocation inside the left kernel of
  ``D`` — feasible iff the kernels of all chosen constraints intersect
  in dimension >= m.

The root allocation is otherwise free, which is precisely the
"determined up to left multiplication by a unimodular matrix" freedom
that Sections 4 and 5 spend on macro-communications and decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import AccessKind, LoopNest
from ..linalg import FracMat, IntMat, full_rank, left_kernel_basis
from ..obs import span
from .access_graph import (
    AccessGraph,
    AccessRef,
    EdgeInfo,
    build_access_graph,
    stmt_node,
    var_node,
)
from .digraph import Digraph, branching_roots, connected_components, maximum_branching


@dataclass
class ResidualComm:
    """A non-local communication left after step 1."""

    ref: AccessRef
    #: allocation of the statement (receiver for reads, sender for writes)
    M_S: IntMat
    #: allocation of the array
    M_x: IntMat
    #: name of the connected component root this comm belongs to (the
    #: unimodular rotation of Section 4/5 applies per component)
    component_root: str

    @property
    def is_read(self) -> bool:
        return self.ref.access.kind is AccessKind.READ


@dataclass
class Alignment:
    """Result of heuristic step 1 for one loop nest."""

    nest: LoopNest
    m: int
    access_graph: AccessGraph
    branching: Set[int]
    #: allocation per graph vertex name ("var:a" / "stmt:S1")
    allocations: Dict[str, IntMat]
    #: constant allocation offsets (the alpha vectors), m x 1 per vertex;
    #: chosen along the branching so the *local term* of every tree
    #: access vanishes too (the paper absorbs constants into the
    #: affine allocation functions)
    offsets: Dict[str, IntMat]
    #: labels of accesses whose communication is local
    local_labels: Set[str]
    #: all remaining non-local communications (graph residuals + the
    #: accesses excluded from the graph)
    residuals: List[ResidualComm]
    #: vertex -> its component root (for applying per-component rotations)
    component_root_of: Dict[str, str]
    #: edges re-added in step 1c (by original edge id)
    readded_edges: Set[int] = field(default_factory=set)

    def allocation_of_array(self, name: str) -> IntMat:
        return self.allocations[var_node(name)]

    def allocation_of_stmt(self, name: str) -> IntMat:
        return self.allocations[stmt_node(name)]

    def offset_of_array(self, name: str) -> IntMat:
        return self.offsets[var_node(name)]

    def offset_of_stmt(self, name: str) -> IntMat:
        return self.offsets[stmt_node(name)]

    @property
    def mutation_count(self) -> int:
        """Bumped by :meth:`rotate_component`; downstream caches keyed
        on allocations (the runtime's virtual-batch memo) include it so
        a rotation invalidates them."""
        return self.__dict__.get("_mutation_count", 0)

    def rotate_component(self, root: str, v: IntMat) -> None:
        """Left-multiply every allocation of the component rooted at
        ``root`` by the unimodular matrix ``v`` (Section 3 remark)."""
        self.__dict__["_mutation_count"] = self.mutation_count + 1
        for node, r in self.component_root_of.items():
            if r == root:
                self.allocations[node] = v @ self.allocations[node]
                self.offsets[node] = v @ self.offsets[node]
        for res in self.residuals:
            if res.component_root == root:
                res.M_S = self.allocations[stmt_node(res.ref.stmt)]
                res.M_x = self.allocations[var_node(res.ref.access.array)]

    def count_local(self) -> int:
        return len(self.local_labels)

    def describe(self) -> str:
        lines = [f"alignment onto a {self.m}-D virtual grid:"]
        for node in sorted(self.allocations):
            lines.append(f"  {node}: {self.allocations[node].tolist()}")
        lines.append(f"  local: {sorted(self.local_labels)}")
        lines.append(
            "  residual: " + ", ".join(r.ref.label for r in self.residuals)
        )
        return "\n".join(lines)


def _default_root_matrix(m: int, dim: int) -> IntMat:
    """``[Id_m | 0]`` (or a truncated identity when dim < m)."""
    return IntMat([[1 if i == j else 0 for j in range(dim)] for i in range(m)])


def _node_dim(nest: LoopNest, node: str) -> int:
    if node.startswith("var:"):
        return nest.arrays[node[4:]].dim
    return nest.statement(node[5:]).depth


def _score_root_candidate(
    nest: LoopNest,
    schedules,
    cand: IntMat,
    paths: Dict[str, IntMat],
) -> int:
    """Parallelism score of a root allocation: the ranks of the induced
    statement allocations restricted to the schedule kernels — higher
    means more processors active per time step."""
    from ..linalg import integer_kernel_basis, rank

    score = 0
    for node, path in paths.items():
        if not node.startswith("stmt:"):
            continue
        theta = schedules.schedule_of(node[5:]).theta
        kern = integer_kernel_basis(theta)
        if not kern:
            continue
        cols = [v.column_tuple(0) for v in kern]
        k_mat = IntMat(list(zip(*cols)))
        ms = cand @ path
        score += rank(ms @ k_mat)
    return score


from functools import lru_cache


@lru_cache(maxsize=None)
def _candidate_roots(m: int, dim: int) -> Tuple[IntMat, ...]:
    """Coordinate-projection candidates for a free root allocation.

    Memoized on ``(m, dim)``: the ``C(dim, m)`` projection matrices are
    the same for every component of every nest, and ``IntMat`` is
    immutable, so the shared instances are safe to hand out (campaigns
    call this thousands of times with a handful of distinct shapes).
    """
    from itertools import combinations

    if dim <= m:
        return (_default_root_matrix(m, dim),)
    return tuple(
        IntMat([[1 if j == r else 0 for j in range(dim)] for r in rows])
        for rows in combinations(range(dim), m)
    )


def align(
    nest: LoopNest,
    m: int,
    root_allocations: Optional[Dict[str, IntMat]] = None,
    use_rank_weights: bool = True,
    schedules=None,
) -> Alignment:
    """Run heuristic step 1 (Section 6, step 1) on a loop nest.

    Parameters
    ----------
    nest:
        The affine loop nest.
    m:
        Dimension of the target virtual processor grid.
    root_allocations:
        Optional preferred allocation matrix per component root vertex
        name (e.g. ``{"var:a": IntMat.identity(2)}``); ignored for roots
        constrained by step 1(c)(ii).
    use_rank_weights:
        When False, every edge gets integer weight 1 instead of the rank
        of its access matrix (the A1 ablation).
    """
    with span("align.graph"):
        ag = build_access_graph(nest, m)
    g = ag.graph
    with span("align.branching"):
        if not use_rank_weights:
            flat = Digraph()
            for n in g.nodes:
                flat.add_node(n)
            id_map = {}
            for e in g.edges():
                ne = flat.add_edge(e.src, e.dst, 1, payload=e.payload)
                id_map[ne.id] = e.id
            chosen_flat = maximum_branching(flat)
            chosen = {id_map[i] for i in chosen_flat}
        else:
            chosen = maximum_branching(g)

    components = connected_components(g, chosen)
    roots = branching_roots(g, chosen)

    allocations: Dict[str, IntMat] = {}
    offsets: Dict[str, IntMat] = {}
    component_root_of: Dict[str, str] = {}
    local_labels: Set[str] = set()
    readded: Set[int] = set()

    branching_children: Dict[str, List] = {}
    for eid in chosen:
        e = g.edge(eid)
        branching_children.setdefault(e.src, []).append(e)

    for comp in components:
        comp_roots = [v for v in comp if v in roots]
        # a branching component has exactly one root; isolated vertices
        # are their own (rootless) components
        root = sorted(comp_roots)[0]
        # path matrices from the root
        paths: Dict[str, IntMat] = {root: IntMat.identity(_node_dim(nest, root))}
        order = [root]
        queue = [root]
        while queue:
            u = queue.pop()
            for e in branching_children.get(u, []):
                info: EdgeInfo = e.payload
                paths[e.dst] = paths[u] @ info.matrix
                order.append(e.dst)
                queue.append(e.dst)

        # --- step 1c: try to re-add the non-branching edges -----------
        candidates: List[Tuple[int, IntMat]] = []  # (edge id, D)
        for e in g.edges():
            if e.id in chosen:
                continue
            if e.src not in paths or e.dst not in paths:
                continue  # other component (or unreachable)
            info = e.payload
            d_mat = paths[e.src] @ info.matrix - paths[e.dst]
            if d_mat.is_zero():
                # (i) identity cycle / equal parallel path: always local
                readded.add(e.id)
            else:
                candidates.append((e.id, d_mat))

        # (ii) deficient-rank differences: greedily accumulate
        # constraints while a rank-m root allocation still exists.
        constraints: List[IntMat] = []
        root_dim = _node_dim(nest, root)

        def kernel_rows(stack: List[IntMat]) -> Optional[IntMat]:
            if not stack:
                return None
            combined = stack[0]
            for s in stack[1:]:
                combined = combined.hstack(s)
            basis = left_kernel_basis(combined)
            if len(basis) < m:
                return None
            return IntMat([b[0] for b in basis[:m]])

        chosen_constraints: List[int] = []
        sorted_candidates = sorted(
            candidates, key=lambda t: -g.edge(t[0]).weight
        )
        # Rank-m root allocations in the joint left kernel exist iff
        # rank(stack) <= root_dim - m (the rational left kernel has
        # dimension root_dim - rank), so candidates are screened by an
        # incremental (memoized) rank computation — the full IntMat
        # stack + kernel basis is only built once, for the survivors.
        from ..linalg import rank as _rank

        max_rank = root_dim - m
        combined: Optional[IntMat] = None
        for eid, d_mat in sorted_candidates:
            if max_rank <= 0:
                break  # non-zero differences can never be absorbed
            trial = d_mat if combined is None else combined.hstack(d_mat)
            if _rank(trial) > max_rank:
                continue  # rejected by rank, no kernel basis needed
            constraints.append(d_mat)
            chosen_constraints.append(eid)
            combined = trial

        if constraints:
            m_root = kernel_rows(constraints)
            assert m_root is not None
            readded.update(chosen_constraints)
        else:
            m_root = None
        if m_root is None:
            preferred = (root_allocations or {}).get(root)
            if preferred is not None:
                if preferred.shape != (m, root_dim):
                    raise ValueError(
                        f"root allocation for {root} must be {m}x{root_dim}"
                    )
                m_root = preferred
            elif schedules is not None:
                # pick the coordinate projection that keeps the most
                # processors active per time step (avoid projecting the
                # grid onto the schedule's time dimensions)
                best = None
                best_score = -1
                for cand in _candidate_roots(m, root_dim):
                    s = _score_root_candidate(nest, schedules, cand, paths)
                    if s > best_score:
                        best, best_score = cand, s
                m_root = best if best is not None else _default_root_matrix(m, root_dim)
            else:
                m_root = _default_root_matrix(m, root_dim)

        for v in order:
            allocations[v] = m_root @ paths[v]
            component_root_of[v] = root
        for v in comp:
            if v not in allocations:
                # vertex in the component without a branching path (can
                # happen only for isolated vertices grouped by edges not
                # in `chosen`; give it a default allocation)
                allocations[v] = _default_root_matrix(m, _node_dim(nest, v))
                component_root_of[v] = root
        # offsets: absorb the constant (local) terms of tree accesses
        offsets[root] = IntMat.zeros(m, 1)
        queue2 = [root]
        while queue2:
            u = queue2.pop()
            for e in branching_children.get(u, []):
                info = e.payload
                c = info.ref.access.c
                if info.direction == "var_to_stmt":
                    mx = allocations[e.src]
                    offsets[e.dst] = mx @ c + offsets[u]
                else:  # stmt -> var
                    mx = allocations[e.dst]
                    offsets[e.dst] = offsets[u] - mx @ c
                queue2.append(e.dst)
        for v in comp:
            offsets.setdefault(v, IntMat.zeros(m, 1))

    # mark every access local / residual
    residuals: List[ResidualComm] = []
    for stmt, acc in nest.all_accesses():
        ref = AccessRef(stmt=stmt.name, access=acc)
        ms = allocations[stmt_node(stmt.name)]
        mx = allocations[var_node(acc.array)]
        if mx @ acc.F == ms:
            local_labels.add(ref.label)
        else:
            residuals.append(
                ResidualComm(
                    ref=ref,
                    M_S=ms,
                    M_x=mx,
                    component_root=component_root_of[stmt_node(stmt.name)],
                )
            )

    return Alignment(
        nest=nest,
        m=m,
        access_graph=ag,
        branching=chosen,
        allocations=allocations,
        offsets=offsets,
        local_labels=local_labels,
        residuals=residuals,
        component_root_of=component_root_of,
        readded_edges=readded,
    )
