"""Alignment core — the paper's primary contribution.

* :mod:`~repro.alignment.digraph` — directed multigraph + Edmonds'
  maximum branching (from scratch);
* :mod:`~repro.alignment.access_graph` — the weighted access graph
  ``G(V, E, m)`` of Section 2.2.2;
* :mod:`~repro.alignment.allocation` — heuristic step 1: branching,
  edge re-addition, deficient-rank constraints, allocation propagation;
* :mod:`~repro.alignment.heuristic` — the complete two-step heuristic
  of Section 6 (step 2 optimizes residuals via macro-communications,
  axis rotations and decompositions).
"""

from .access_graph import (
    AccessGraph,
    AccessRef,
    EdgeInfo,
    build_access_graph,
    stmt_node,
    var_node,
)
from .allocation import Alignment, ResidualComm, align
from .digraph import (
    Digraph,
    Edge,
    branching_roots,
    connected_components,
    is_branching,
    maximum_branching,
)
from .heuristic import (
    MappingResult,
    OptimizedResidual,
    optimize_residuals,
    two_step_heuristic,
)

__all__ = [
    "Digraph",
    "Edge",
    "maximum_branching",
    "branching_roots",
    "connected_components",
    "is_branching",
    "AccessGraph",
    "AccessRef",
    "EdgeInfo",
    "build_access_graph",
    "var_node",
    "stmt_node",
    "Alignment",
    "ResidualComm",
    "align",
    "MappingResult",
    "OptimizedResidual",
    "optimize_residuals",
    "two_step_heuristic",
]
