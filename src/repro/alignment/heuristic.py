"""The complete two-step mapping heuristic (Section 6).

Step 1 (:func:`~repro.alignment.allocation.align`) zeroes out as many
non-local communications as possible via the weighted access graph and
a maximum branching.  Step 2 — this module — optimizes what remains:

* detect macro-communications (broadcast / scatter / gather /
  reduction) among the residuals and, when a partial pattern is not
  parallel to the grid axes, left-multiply the whole connected
  component's allocations by the unimodular rotation obtained from the
  right Hermite form of the direction matrix;
* classify pure translations (``T = Id``);
* decompose remaining general affine communications into elementary /
  unirow axis-parallel phases, optionally spending the component's
  residual unimodular freedom on a similarity that shortens the
  product;
* record the message-vectorization opportunity of Section 4.5 for
  every residual.

The result object carries everything the runtime executor and the
benchmark harness need to cost the program on a machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..decomp import DecompositionPlan, decompose_dataflow
from ..ir import AccessKind, LoopNest, ScheduledNest, trivial_schedules
from ..linalg import (
    FracMat,
    IntMat,
    is_unimodular,
    rank,
    solve_integer_xf_eq_s,
    unimodular_inverse,
)
from ..macrocomm import (
    Extent,
    MacroComm,
    MacroKind,
    axis_alignment_rotation,
    axis_parallel,
    can_vectorize,
    detect_broadcast,
    detect_gather,
    detect_reduction,
    detect_scatter,
)
from ..obs import span, traced
from .allocation import Alignment, ResidualComm, align
from .access_graph import stmt_node, var_node


@dataclass
class OptimizedResidual:
    """One residual communication after step 2."""

    residual: ResidualComm
    #: "translation" | "macro" | "decomposed" | "general"
    classification: str
    macro: Optional[MacroComm] = None
    decomposition: Optional[DecompositionPlan] = None
    #: the data-flow matrix T (receiver = T . sender + const), if defined
    dataflow: Optional[IntMat] = None
    vectorizable: bool = False

    @property
    def label(self) -> str:
        return self.residual.ref.label


@dataclass
class MappingResult:
    """Full outcome of the two-step heuristic for one loop nest."""

    alignment: Alignment
    schedules: ScheduledNest
    optimized: List[OptimizedResidual]
    #: unimodular rotation applied per component root (identity if none)
    rotations: Dict[str, IntMat] = field(default_factory=dict)

    @property
    def local_count(self) -> int:
        return len(self.alignment.local_labels)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {"local": self.local_count}
        for o in self.optimized:
            out[o.classification] = out.get(o.classification, 0) + 1
        return out

    def residual_by_label(self, label: str) -> OptimizedResidual:
        for o in self.optimized:
            if o.label == label:
                return o
        raise KeyError(label)

    def describe(self) -> str:
        lines = [self.alignment.describe(), "step 2:"]
        for o in self.optimized:
            extra = ""
            if o.macro is not None:
                extra = (
                    f" {o.macro.kind.value}/{o.macro.extent.value}"
                    f" axis_parallel={o.macro.axis_parallel}"
                )
            if o.decomposition is not None:
                extra += f" phases={o.decomposition.num_phases}"
            lines.append(
                f"  {o.label}: {o.classification}{extra}"
                f" vectorizable={o.vectorizable}"
            )
        return "\n".join(lines)


def _detect_macro(
    res: ResidualComm, schedules: ScheduledNest
) -> Optional[MacroComm]:
    theta = schedules.schedule_of(res.ref.stmt).theta
    f = res.ref.access.F
    if res.is_read:
        bc = detect_broadcast(theta, f, res.M_S)
        if bc is not None and bc.extent is not Extent.HIDDEN:
            return bc
        sc = detect_scatter(theta, f, res.M_x, res.M_S)
        if sc is not None and sc.extent is not Extent.HIDDEN:
            return sc
        return bc or sc
    red = detect_reduction(theta, f, res.M_x, res.M_S)
    if red is not None and red.extent is not Extent.HIDDEN:
        return red
    ga = detect_gather(theta, f, res.M_x, res.M_S)
    if ga is not None and ga.extent is not Extent.HIDDEN:
        return ga
    return red or ga


def _dataflow_matrix(res: ResidualComm) -> Optional[IntMat]:
    """The integer data-flow matrix ``T`` with ``M_S = T (M_x F)``, i.e.
    receiver = T . sender (+ constant), or ``None`` when no integer ``T``
    exists (irregular residual)."""
    mf = res.M_x @ res.ref.access.F
    if rank(mf) < mf.nrows:
        return None
    return solve_integer_xf_eq_s(res.M_S, mf)


def _joint_axis_rotation(dirs: List[IntMat]) -> Optional[IntMat]:
    """A unimodular ``V`` sending every column in ``dirs`` (independent,
    primitive) onto a distinct grid axis, or a best-effort rotation for
    a prefix when the joint lattice is not unimodular-completable."""
    from ..linalg import unimodular_completion

    work = list(dirs)
    while work:
        stacked = work[0]
        for extra in work[1:]:
            stacked = stacked.hstack(extra)
        rows = stacked.T  # k x m
        comp = unimodular_completion(rows)
        if comp is not None:
            # comp is m x m unimodular with first k rows = dirs^T, so
            # comp^T has the dirs as its first k columns and
            # V = (comp^T)^{-1} maps them to unit axis vectors.
            return unimodular_inverse(comp.T)
        work.pop()  # drop the lowest-priority direction and retry
    return None


@traced("align.step2")
def optimize_residuals(
    alignment: Alignment,
    schedules: ScheduledNest,
    allow_rotations: bool = True,
) -> MappingResult:
    """Step 2 of the heuristic on an existing step-1 alignment.

    ``allow_rotations=False`` freezes the allocation matrices (used by
    the baselines, whose mappings are fixed by construction): residuals
    are classified and decomposed but never conjugated or rotated.
    """
    rotations: Dict[str, IntMat] = {}
    m = alignment.m

    # --- phase B: axis-align the partial macros of each component -----
    # All broadcast/scatter/gather directions of one component must be
    # made axis-parallel by a *single* unimodular rotation, so we
    # collect up to m independent direction columns per component and
    # align them jointly: if the collected columns extend to a
    # unimodular matrix C (Smith invariants 1), then V = (C^T)^{-1}
    # sends them onto distinct grid axes — this is the general form of
    # the paper's footnote where the rank-deficient access "luckily"
    # becomes axis-parallel under the same V.  When the joint
    # completion fails we drop the lowest-priority directions and
    # retry, degenerating to the single-direction Hermite rotation.
    if allow_rotations:
        comp_dirs: Dict[str, List[IntMat]] = {}
        comp_needs_fix: Dict[str, bool] = {}
        for res in alignment.residuals:
            comp = res.component_root
            macro = _detect_macro(res, schedules)
            if macro is None or macro.extent is not Extent.PARTIAL:
                continue
            comp_needs_fix.setdefault(comp, False)
            if not macro.axis_parallel:
                comp_needs_fix[comp] = True
            bucket = comp_dirs.setdefault(comp, [])
            for col in macro.grid_directions:
                if len(bucket) >= m:
                    break
                trial = bucket + [col]
                stacked = trial[0]
                for extra in trial[1:]:
                    stacked = stacked.hstack(extra)
                if rank(stacked) == len(trial):
                    bucket.append(col)
        for comp, dirs in comp_dirs.items():
            if not comp_needs_fix.get(comp) or not dirs:
                continue
            v = _joint_axis_rotation(dirs)
            if v is not None and not v.is_identity():
                alignment.rotate_component(comp, v)
                rotations[comp] = v

    # --- phase C: classify every residual ------------------------------
    optimized: List[OptimizedResidual] = []
    for res in alignment.residuals:
        comp = res.component_root
        macro = _detect_macro(res, schedules)
        vect = can_vectorize(res.M_S, res.M_x, res.ref.access.F)
        t = _dataflow_matrix(res)

        if t is not None and t.is_identity():
            optimized.append(
                OptimizedResidual(
                    residual=res,
                    classification="translation",
                    macro=macro,
                    dataflow=t,
                    vectorizable=vect,
                )
            )
            continue

        if (
            macro is not None
            and macro.extent is not Extent.HIDDEN
            and macro.axis_parallel
        ):
            optimized.append(
                OptimizedResidual(
                    residual=res,
                    classification="macro",
                    macro=macro,
                    dataflow=t,
                    vectorizable=vect,
                )
            )
            continue

        if t is not None:
            # cross-component residuals have independent rotation
            # freedom: a unimodular T can be rotated away entirely,
            # turning the communication into a translation.
            stmt_comp = alignment.component_root_of[stmt_node(res.ref.stmt)]
            var_comp = alignment.component_root_of[
                var_node(res.ref.access.array)
            ]
            if (
                allow_rotations
                and stmt_comp != var_comp
                and is_unimodular(t)
                and stmt_comp not in rotations
            ):
                v = unimodular_inverse(t)
                alignment.rotate_component(stmt_comp, v)
                rotations[stmt_comp] = v
                t2 = _dataflow_matrix(res)
                optimized.append(
                    OptimizedResidual(
                        residual=res,
                        classification="translation",
                        macro=_detect_macro(res, schedules),
                        dataflow=t2,
                        vectorizable=can_vectorize(
                            res.M_S, res.M_x, res.ref.access.F
                        ),
                    )
                )
                continue
            allow_conj = (
                allow_rotations
                and comp not in rotations
                and stmt_comp == var_comp
            )
            try:
                plan = decompose_dataflow(t, allow_conjugation=allow_conj)
            except ValueError:
                plan = None
            if plan is not None and plan.conjugator is not None:
                alignment.rotate_component(comp, plan.conjugator)
                rotations[comp] = plan.conjugator
            if plan is not None:
                optimized.append(
                    OptimizedResidual(
                        residual=res,
                        classification="decomposed",
                        macro=macro,
                        decomposition=plan,
                        dataflow=t,
                        vectorizable=vect,
                    )
                )
                continue

        optimized.append(
            OptimizedResidual(
                residual=res,
                classification="general",
                macro=macro,
                dataflow=t,
                vectorizable=vect,
            )
        )

    return MappingResult(
        alignment=alignment,
        schedules=schedules,
        optimized=optimized,
        rotations=rotations,
    )


def two_step_heuristic(
    nest: LoopNest,
    m: int,
    schedules: Optional[ScheduledNest] = None,
    root_allocations: Optional[Dict[str, IntMat]] = None,
    use_rank_weights: bool = True,
) -> MappingResult:
    """Run the complete heuristic of Section 6 on a loop nest.

    ``schedules`` defaults to the all-parallel trivial schedule (the
    motivating example's situation); pass
    :func:`~repro.ir.outer_sequential_schedules` output for nests with a
    sequential outer loop like Example 5.
    """
    if schedules is None:
        schedules = trivial_schedules(nest)
    schedules.validate_shapes()
    with span("align.step1"):
        alignment = align(
            nest,
            m,
            root_allocations=root_allocations,
            use_rank_weights=use_rank_weights,
            schedules=schedules,
        )
    return optimize_residuals(alignment, schedules)
