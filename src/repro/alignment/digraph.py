"""A small directed multigraph with weighted edges.

The access graph needs parallel edges (two reads of the same array in
the same statement give two ``x -> S`` edges), integer weights (the
Edmonds branching) and arbitrary payloads (the matrix weight and the
originating access).  ``networkx`` is deliberately not used here — the
branching algorithm is part of what the paper relies on, so we
implement the substrate from scratch (tests cross-check against
networkx as an oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Edge:
    """A directed edge ``src -> dst`` with an integer weight."""

    id: int
    src: str
    dst: str
    weight: int
    payload: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge#{self.id}({self.src}->{self.dst}, w={self.weight})"


class Digraph:
    """Directed multigraph keyed by string vertex names."""

    def __init__(self) -> None:
        self._nodes: Set[str] = set()
        self._edges: Dict[int, Edge] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        self._nodes.add(name)

    def add_edge(self, src: str, dst: str, weight: int, payload: Any = None) -> Edge:
        self.add_node(src)
        self.add_node(dst)
        e = Edge(id=self._next_id, src=src, dst=dst, weight=weight, payload=payload)
        self._edges[e.id] = e
        self._next_id += 1
        return e

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Set[str]:
        return set(self._nodes)

    def edges(self) -> List[Edge]:
        return list(self._edges.values())

    def edge(self, eid: int) -> Edge:
        return self._edges[eid]

    def out_edges(self, node: str) -> List[Edge]:
        return [e for e in self._edges.values() if e.src == node]

    def in_edges(self, node: str) -> List[Edge]:
        return [e for e in self._edges.values() if e.dst == node]

    def __len__(self) -> int:
        return len(self._edges)

    def total_weight(self, edge_ids: Iterable[int]) -> int:
        return sum(self._edges[i].weight for i in edge_ids)


# ---------------------------------------------------------------------------
# Edmonds' maximum branching
# ---------------------------------------------------------------------------

@dataclass
class _Problem:
    """One level of the contraction recursion."""

    nodes: Set[str]
    edges: List[Edge]  # weights already adjusted at this level
    # edge.id values are level-local; map back to parent-level edge ids
    parent_edge: Dict[int, int] = field(default_factory=dict)


def _best_incoming(edges: List[Edge]) -> Dict[str, Edge]:
    best: Dict[str, Edge] = {}
    for e in edges:
        if e.src == e.dst or e.weight <= 0:
            continue
        cur = best.get(e.dst)
        if cur is None or e.weight > cur.weight or (
            e.weight == cur.weight and e.id < cur.id
        ):
            best[e.dst] = e
    return best


def _find_cycle(best: Dict[str, Edge]) -> Optional[List[Edge]]:
    """A cycle in the functional graph of chosen incoming edges."""
    color: Dict[str, int] = {}
    for start in best:
        if color.get(start):
            continue
        path: List[str] = []
        node = start
        while node in best and color.get(node) is None:
            color[node] = 1  # on current path
            path.append(node)
            node = best[node].src
        if node in best and color.get(node) == 1:
            # found a cycle: unwind path from `node`
            idx = path.index(node)
            cyc_nodes = path[idx:]
            return [best[v] for v in cyc_nodes]
        for v in path:
            color[v] = 2
    return None


def maximum_branching(graph: Digraph) -> Set[int]:
    """Edmonds' algorithm for a maximum-weight branching.

    A branching is an edge set where every vertex has in-degree at most
    one and no cycle exists; maximality is over total weight (only
    positive-weight edges are ever useful).  Returns the set of selected
    edge ids of ``graph``.
    """
    root_problem = _Problem(
        nodes=graph.nodes,
        edges=list(graph.edges()),
        parent_edge={e.id: e.id for e in graph.edges()},
    )
    chosen_local = _solve(root_problem, next_id=[max((e.id for e in graph.edges()), default=0) + 1])
    return set(chosen_local)


def _solve(problem: _Problem, next_id: List[int]) -> Set[int]:
    """Recursive contraction.  Returns *original-level* edge ids."""
    best = _best_incoming(problem.edges)
    cycle = _find_cycle(best)
    if cycle is None:
        return {problem.parent_edge[e.id] for e in best.values()}

    cyc_nodes = {e.dst for e in cycle}
    cyc_weight_of: Dict[str, int] = {e.dst: e.weight for e in cycle}
    min_cycle_weight = min(e.weight for e in cycle)
    supernode = f"__contracted_{next_id[0]}"
    next_id[0] += 1

    new_edges: List[Edge] = []
    new_parent: Dict[int, int] = {}
    # map from contracted-level edge id to the cycle entry node it targets
    entry_point: Dict[int, str] = {}
    for e in problem.edges:
        if e.src in cyc_nodes and e.dst in cyc_nodes:
            continue
        if e.dst in cyc_nodes:
            w = e.weight - cyc_weight_of[e.dst] + min_cycle_weight
            ne = Edge(id=next_id[0], src=e.src, dst=supernode, weight=w, payload=None)
            next_id[0] += 1
            new_edges.append(ne)
            new_parent[ne.id] = problem.parent_edge[e.id]
            entry_point[ne.id] = e.dst
        elif e.src in cyc_nodes:
            ne = Edge(id=next_id[0], src=supernode, dst=e.dst, weight=e.weight, payload=None)
            next_id[0] += 1
            new_edges.append(ne)
            new_parent[ne.id] = problem.parent_edge[e.id]
        else:
            ne = Edge(id=next_id[0], src=e.src, dst=e.dst, weight=e.weight, payload=None)
            next_id[0] += 1
            new_edges.append(ne)
            new_parent[ne.id] = problem.parent_edge[e.id]

    sub = _Problem(
        nodes=(problem.nodes - cyc_nodes) | {supernode},
        edges=new_edges,
        parent_edge=new_parent,
    )
    chosen_original = _solve(sub, next_id)

    # Expansion: if the sub-solution chose an edge entering the
    # supernode, unroll the cycle dropping the cycle edge into that
    # entry point; otherwise drop the minimum-weight cycle edge.
    # `parent_edge` maps are injective, so the chosen entering edge is
    # recoverable from original-level ids.
    entering_by_original = {
        new_parent[eid]: entry for eid, entry in entry_point.items()
    }
    chosen_entering = [
        oid for oid in chosen_original if oid in entering_by_original
    ]
    if chosen_entering:
        entry = entering_by_original[chosen_entering[0]]
        keep = {problem.parent_edge[e.id] for e in cycle if e.dst != entry}
    else:
        drop = min(cycle, key=lambda e: (e.weight, e.id))
        keep = {problem.parent_edge[e.id] for e in cycle if e.id != drop.id}
    return chosen_original | keep


def branching_roots(graph: Digraph, chosen: Set[int]) -> Set[str]:
    """Vertices with no incoming branching edge (the forest roots)."""
    with_in = {graph.edge(eid).dst for eid in chosen}
    return graph.nodes - with_in


def connected_components(graph: Digraph, chosen: Set[int]) -> List[Set[str]]:
    """Weakly-connected components of the branching forest (isolated
    vertices are singleton components)."""
    parent: Dict[str, str] = {v: v for v in graph.nodes}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for eid in chosen:
        e = graph.edge(eid)
        union(e.src, e.dst)
    groups: Dict[str, Set[str]] = {}
    for v in graph.nodes:
        groups.setdefault(find(v), set()).add(v)
    return list(groups.values())


def is_branching(graph: Digraph, chosen: Set[int]) -> bool:
    """Validity check: in-degree <= 1 and acyclic."""
    indeg: Dict[str, int] = {}
    adj: Dict[str, List[str]] = {}
    for eid in chosen:
        e = graph.edge(eid)
        indeg[e.dst] = indeg.get(e.dst, 0) + 1
        if indeg[e.dst] > 1:
            return False
        adj.setdefault(e.src, []).append(e.dst)
    # cycle check by DFS
    state: Dict[str, int] = {}

    def dfs(v: str) -> bool:
        state[v] = 1
        for w in adj.get(v, []):
            if state.get(w) == 1:
                return False
            if state.get(w) is None and not dfs(w):
                return False
        state[v] = 2
        return True

    return all(state.get(v) is not None or dfs(v) for v in graph.nodes)
