"""The access graph of Section 2.2.2.

Vertices are array variables and statements.  For every full-rank
access ``x[F I + c]`` in statement ``S`` whose rank is at least the
target dimension ``m``:

* ``q_x <= d`` (``F`` flat or square): edge ``x -> S`` with matrix
  weight ``F`` — given ``M_x`` of rank ``m``, ``M_S = M_x F`` has rank
  ``m`` (Lemma 1);
* ``q_x >= d`` (``F`` narrow or square): edge ``S -> x`` with matrix
  weight ``G`` where ``G F = Id_d`` — given ``M_S``, ``M_x = M_S G``
  solves ``M_x F = M_S`` (Lemma 3).  Any such ``G`` works (remark in
  Section 2.2.2); we prefer a small *integer* one so allocation matrices
  stay integral, and fall back to omitting the edge if none exists.

Square non-singular ``F`` gives the paper's double-arrow edge — here two
directed edges sharing the same access.  The integer weight of every
edge is the **rank of the access matrix**, the paper's estimate of the
communication volume (dimension of the accessed data set), so Edmonds'
branching zeroes out the largest traffic first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import AffineAccess, LoopNest, Statement
from ..linalg import (
    IntMat,
    best_left_inverse,
    is_unimodular,
    rank,
    unimodular_inverse,
)
from .digraph import Digraph, Edge

#: Vertex-name prefixes keep array and statement namespaces disjoint.
VAR_PREFIX = "var:"
STMT_PREFIX = "stmt:"


def var_node(array: str) -> str:
    return VAR_PREFIX + array


def stmt_node(stmt: str) -> str:
    return STMT_PREFIX + stmt


@dataclass(frozen=True)
class AccessRef:
    """Identifies one access: which statement, which access object."""

    stmt: str
    access: AffineAccess

    @property
    def label(self) -> str:
        return self.access.label or f"{self.stmt}:{self.access.array}"


@dataclass(frozen=True)
class EdgeInfo:
    """Payload attached to each access-graph edge."""

    ref: AccessRef
    matrix: IntMat  # the weight: F (x->S) or G with G F = Id (S->x)
    direction: str  # "var_to_stmt" or "stmt_to_var"


@dataclass
class AccessGraph:
    """The weighted access graph ``G(V, E, m)`` plus bookkeeping about
    accesses that could not become edges."""

    m: int
    graph: Digraph
    #: accesses excluded because rank(F) < m or F not full rank
    excluded: List[AccessRef] = field(default_factory=list)
    #: narrow accesses skipped because no integer left inverse exists
    no_integer_inverse: List[AccessRef] = field(default_factory=list)

    def edges_of_access(self, label: str) -> List[Edge]:
        return [
            e
            for e in self.graph.edges()
            if e.payload is not None and e.payload.ref.label == label
        ]

    def edge_labels(self) -> List[str]:
        return sorted({e.payload.ref.label for e in self.graph.edges()})

    def describe(self) -> str:
        lines = [f"access graph (m={self.m}):"]
        for e in sorted(self.graph.edges(), key=lambda e: e.id):
            info: EdgeInfo = e.payload
            lines.append(
                f"  {e.src} -> {e.dst}  [{info.ref.label}]  weight={e.weight}"
            )
        if self.excluded:
            lines.append(
                "  excluded (rank-deficient or < m): "
                + ", ".join(r.label for r in self.excluded)
            )
        return "\n".join(lines)


def build_access_graph(nest: LoopNest, m: int) -> AccessGraph:
    """Construct ``G(V, E, m)`` for a loop nest.

    Only accesses with *full-rank* matrix of rank ``>= m`` become edges
    (the heuristic concentrates on the core of the computation, exactly
    as Section 2.2.3 prescribes); others are recorded in ``excluded``
    and handled later as residual communications.
    """
    g = Digraph()
    out = AccessGraph(m=m, graph=g)
    for stmt in nest.statements:
        g.add_node(stmt_node(stmt.name))
    for arr in nest.arrays.values():
        g.add_node(var_node(arr.name))

    for stmt, acc in nest.all_accesses():
        ref = AccessRef(stmt=stmt.name, access=acc)
        f = acc.F
        qx, d = f.shape
        r = rank(f)
        if r != min(qx, d) or r < m:
            out.excluded.append(ref)
            continue
        x = var_node(acc.array)
        s = stmt_node(stmt.name)
        int_weight = r
        if qx <= d:
            # flat (or square): x -> S with weight F
            g.add_edge(
                x, s, int_weight,
                payload=EdgeInfo(ref=ref, matrix=f, direction="var_to_stmt"),
            )
        if qx >= d:
            # narrow (or square): S -> x with weight G, G F = Id_d
            ginv = _left_inverse_weight(f)
            if ginv is None:
                if qx > d:
                    out.no_integer_inverse.append(ref)
                continue
            g.add_edge(
                s, x, int_weight,
                payload=EdgeInfo(ref=ref, matrix=ginv, direction="stmt_to_var"),
            )
    return out


def _left_inverse_weight(f: IntMat) -> Optional[IntMat]:
    """An integer ``G`` with ``G F = Id`` — exact inverse for unimodular
    square ``F``, a reduced integer left inverse for narrow ``F``."""
    qx, d = f.shape
    if qx == d:
        if is_unimodular(f):
            return unimodular_inverse(f)
        return None
    return best_left_inverse(f)
