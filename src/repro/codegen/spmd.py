"""SPMD node-program generation.

The compiler side of the paper ultimately emits a node program per
physical processor: local loop bounds (owner-computes over the
allocation), plus the communication schedule — translations,
macro-communication calls (``broadcast``/``reduce``), and the phase
sequence for decomposed residuals.  This module renders that program
as readable pseudo-code, which doubles as the human-auditable form of a
mapping and as documentation output for the examples.
"""

from __future__ import annotations

from typing import List

from ..alignment import MappingResult
from ..ir import AccessKind


def _matrix_expr(m, var_names: List[str]) -> str:
    """Render ``M @ I`` as a tuple of affine expressions."""
    rows = []
    for row in m.rows():
        terms = []
        for coef, var in zip(row, var_names):
            if coef == 0:
                continue
            if coef == 1:
                terms.append(var)
            elif coef == -1:
                terms.append(f"-{var}")
            else:
                terms.append(f"{coef}*{var}")
        rows.append(" + ".join(terms).replace("+ -", "- ") or "0")
    return "(" + ", ".join(rows) + ")"


def _classification(result: MappingResult, label: str) -> str:
    if label in result.alignment.local_labels:
        return "local"
    try:
        return result.residual_by_label(label).classification
    except KeyError:
        return "general"


def generate_spmd(result: MappingResult) -> str:
    """Emit the SPMD pseudo-program of a mapping."""
    nest = result.alignment.nest
    lines: List[str] = [
        f"// SPMD node program for nest {nest.name!r}",
        f"// virtual grid dimension m = {result.alignment.m}",
        "",
    ]
    for arr in nest.arrays.values():
        m = result.alignment.allocation_of_array(arr.name)
        lines.append(
            f"distribute {arr.name}[{arr.dim}D]  owner(idx) = "
            f"{_matrix_expr(m, [f'idx{t}' for t in range(arr.dim)])}"
        )
    lines.append("")

    for stmt in nest.statements:
        ms = result.alignment.allocation_of_stmt(stmt.name)
        vars_ = list(stmt.index_names)
        lines.append(f"on_processor p = {_matrix_expr(ms, vars_)}:")
        loop_txt = ", ".join(
            f"{l.var} in {l.lower.describe()}..{l.upper.describe()}"
            for l in stmt.loops
        )
        lines.append(f"  forall ({loop_txt}) owned by p:")
        for acc in stmt.accesses:
            label = acc.label or acc.array
            cls = _classification(result, label)
            verb = "recv" if acc.kind is AccessKind.READ else "send"
            target = f"{acc.array}{_matrix_expr(acc.F, vars_)}"
            if cls == "local":
                lines.append(f"    local   {label}: {target}  // no communication")
            elif cls == "translation":
                lines.append(f"    shift   {label}: {target}  // constant translation")
            elif cls == "macro":
                opt = result.residual_by_label(label)
                kind = opt.macro.kind.value if opt.macro else "broadcast"
                axis = ""
                if opt.macro is not None:
                    d = opt.macro.direction_matrix()
                    if d is not None:
                        axis = f" along {d.tolist()}"
                lines.append(f"    {kind:7s} {label}: {target}{axis}")
            elif cls == "decomposed":
                opt = result.residual_by_label(label)
                phases = " ; ".join(
                    f"phase{k}={f.tolist()}"
                    for k, f in enumerate(reversed(opt.decomposition.factors))
                )
                lines.append(f"    {verb}*   {label}: {target}  // {phases}")
            else:
                lines.append(f"    {verb}    {label}: {target}  // general affine")
        lines.append("")
    return "\n".join(lines)
