"""SPMD node-program generation from a mapping result."""

from .spmd import generate_spmd

__all__ = ["generate_spmd"]
