"""Mapped programs: loop nest + allocations + folding + machine.

The executor enumerates the (bounded) iteration space of a scheduled,
aligned loop nest and derives the concrete message sets between
*physical* processors, which a machine model then prices.  This is the
substitution for running the compiled HPF program on real hardware: the
paper's claims are about which messages exist, how they group into
macro-communications and how they collide — all of which the executor
reproduces exactly.

Folding is dimension-generic: the physical target may be any N-D mesh
(2-D Paragon, 3-D T3D, …) and one 1-D distribution scheme is applied
per physical dimension.  The virtual grid dimension ``m`` must equal
the mesh rank — a mismatch raises a friendly error instead of the old
silent collapse-by-summation of extra virtual dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..alignment import MappingResult
from ..distribution import Distribution1D, make_1d
from ..ir import AccessKind
from ..linalg import IntMat

Virtual = Tuple[int, ...]
Phys = Tuple[int, ...]


@dataclass
class Folding:
    """Folds the (unbounded) m-D virtual grid onto a physical mesh.

    The virtual coordinates produced by allocation matrices can be
    negative and unbounded; we first shift-and-clamp them into an
    ``extent``-sized window per dimension (modulo), then apply one 1-D
    distribution per physical mesh dimension.  ``mesh`` may be any
    mesh exposing ``dims`` (:class:`~repro.machine.Mesh2D`,
    :class:`~repro.machine.Mesh3D`, …); the virtual rank must equal the
    mesh rank — :meth:`fold` raises a friendly ``ValueError`` on
    mismatch (pick ``m = len(mesh.dims)`` when compiling).

    Schemes: ``schemes``/``scheme_kw`` give one 1-D scheme name (and
    keyword dict) per mesh dimension.  For 2-D meshes the historical
    ``row_scheme``/``col_scheme`` (+ ``row_kw``/``col_kw``) spelling is
    still accepted; when neither is given every dimension defaults to
    ``cyclic``.
    """

    mesh: object
    extent: int
    schemes: Optional[Sequence[str]] = None
    scheme_kw: Optional[Sequence[Dict]] = None
    row_scheme: str = "cyclic"
    col_scheme: str = "cyclic"
    row_kw: Dict = field(default_factory=dict)
    col_kw: Dict = field(default_factory=dict)

    def __post_init__(self):
        dims = tuple(self.mesh.dims)
        schemes = self.schemes
        kws = self.scheme_kw
        legacy = (
            self.row_scheme != "cyclic"
            or self.col_scheme != "cyclic"
            or bool(self.row_kw)
            or bool(self.col_kw)
        )
        if schemes is None:
            if len(dims) == 2:
                schemes = (self.row_scheme, self.col_scheme)
                if kws is None:
                    kws = (self.row_kw, self.col_kw)
            elif legacy:
                raise ValueError(
                    "row_scheme/col_scheme/row_kw/col_kw only apply to "
                    f"2-D meshes; this mesh is {len(dims)}-D — pass "
                    "schemes=(...) with one scheme per dimension"
                )
            else:
                schemes = ("cyclic",) * len(dims)
        elif legacy:
            raise ValueError(
                "pass either schemes=/scheme_kw= or the 2-D "
                "row_scheme/col_scheme spelling, not both"
            )
        if kws is None:
            kws = ({},) * len(dims)
        if len(schemes) != len(dims) or len(kws) != len(dims):
            raise ValueError(
                f"need one distribution scheme per mesh dimension: mesh "
                f"has {len(dims)} dimension(s), got {len(schemes)} "
                f"scheme(s) and {len(kws)} kwarg dict(s)"
            )
        self._dists: Tuple[Distribution1D, ...] = tuple(
            make_1d(s, self.extent, p, **kw)
            for s, p, kw in zip(schemes, dims, kws)
        )

    @property
    def rank(self) -> int:
        """Number of physical mesh dimensions."""
        return len(self._dists)

    def fold(self, virtual: Sequence[int]) -> Phys:
        if len(virtual) != self.rank:
            raise ValueError(
                f"cannot fold a {len(virtual)}-D virtual coordinate onto "
                f"a {self.rank}-D mesh: the virtual grid dimension m must "
                f"equal the mesh rank (compile with m={self.rank} or "
                f"target a {len(virtual)}-D mesh)"
            )
        return tuple(
            d.phys(v % self.extent) for d, v in zip(self._dists, virtual)
        )


@dataclass
class CommEvent:
    """One element-level communication produced by the executor."""

    access_label: str
    time: Tuple[int, ...]
    sender_virtual: Virtual
    receiver_virtual: Virtual
    sender: Phys
    receiver: Phys

    @property
    def is_local_phys(self) -> bool:
        return self.sender == self.receiver


@dataclass
class MappedProgram:
    """A fully mapped program ready for execution on a machine model."""

    mapping: MappingResult
    folding: Folding
    params: Dict[str, int]

    def __post_init__(self):
        m = self.mapping.alignment.m
        if m != self.folding.rank:
            raise ValueError(
                f"mapping targets an m={m} virtual grid but the folding "
                f"is onto a {self.folding.rank}-D mesh: the two ranks "
                f"must match (compile with m={self.folding.rank} or fold "
                f"onto a {m}-D mesh)"
            )

    def virtual_of_stmt(self, stmt: str, index: Sequence[int]) -> Virtual:
        al = self.mapping.alignment
        m = al.allocation_of_stmt(stmt)
        a = al.offset_of_stmt(stmt)
        return (m @ IntMat.col(list(index)) + a).column_tuple(0)

    def virtual_of_array(self, array: str, subscripts: Sequence[int]) -> Virtual:
        al = self.mapping.alignment
        m = al.allocation_of_array(array)
        a = al.offset_of_array(array)
        return (m @ IntMat.col(list(subscripts)) + a).column_tuple(0)

    def comm_events(self) -> List[CommEvent]:
        """Element-level communications of the whole execution.

        For a read, data flows array-owner -> statement processor; for
        a write, statement processor -> array owner.
        """
        out: List[CommEvent] = []
        nest = self.mapping.alignment.nest
        sched = self.mapping.schedules
        for stmt in nest.statements:
            theta = sched.schedule_of(stmt.name)
            for acc in stmt.accesses:
                label = acc.label or f"{stmt.name}:{acc.array}"
                for idx in stmt.iteration_domain(self.params):
                    subs = acc.apply(idx)
                    owner_v = self.virtual_of_array(acc.array, subs)
                    stmt_v = self.virtual_of_stmt(stmt.name, idx)
                    if acc.kind is AccessKind.READ:
                        sv, rv = owner_v, stmt_v
                    else:
                        sv, rv = stmt_v, owner_v
                    out.append(
                        CommEvent(
                            access_label=label,
                            time=theta.time_of(idx),
                            sender_virtual=sv,
                            receiver_virtual=rv,
                            sender=self.folding.fold(sv),
                            receiver=self.folding.fold(rv),
                        )
                    )
        return out
