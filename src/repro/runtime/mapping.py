"""Mapped programs: loop nest + allocations + folding + machine.

The executor enumerates the (bounded) iteration space of a scheduled,
aligned loop nest and derives the concrete message sets between
*physical* processors, which a machine model then prices.  This is the
substitution for running the compiled HPF program on real hardware: the
paper's claims are about which messages exist, how they group into
macro-communications and how they collide — all of which the executor
reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..alignment import MappingResult
from ..distribution import Distribution1D, make_1d
from ..ir import AccessKind
from ..linalg import IntMat
from ..machine import Mesh2D, Message

Virtual = Tuple[int, ...]
Phys = Tuple[int, int]


@dataclass
class Folding:
    """Folds the (unbounded) m-D virtual grid onto a physical mesh.

    The virtual coordinates produced by allocation matrices can be
    negative and unbounded; we first shift-and-clamp them into a
    ``extent x extent`` window per dimension (modulo), then apply one
    1-D distribution per dimension.  Only ``m = 2`` targets a mesh; the
    first two virtual dimensions are folded and any extra dimensions
    are collapsed by summation (the paper never uses m > 2 in its
    experiments).
    """

    mesh: Mesh2D
    extent: int
    row_scheme: str = "cyclic"
    col_scheme: str = "cyclic"
    row_kw: Dict = field(default_factory=dict)
    col_kw: Dict = field(default_factory=dict)

    def __post_init__(self):
        self._rows: Distribution1D = make_1d(
            self.row_scheme, self.extent, self.mesh.p, **self.row_kw
        )
        self._cols: Distribution1D = make_1d(
            self.col_scheme, self.extent, self.mesh.q, **self.col_kw
        )

    def fold(self, virtual: Sequence[int]) -> Phys:
        v0 = virtual[0] if len(virtual) >= 1 else 0
        v1 = virtual[1] if len(virtual) >= 2 else 0
        for extra in virtual[2:]:
            v1 += extra
        return (
            self._rows.phys(v0 % self.extent),
            self._cols.phys(v1 % self.extent),
        )


@dataclass
class CommEvent:
    """One element-level communication produced by the executor."""

    access_label: str
    time: Tuple[int, ...]
    sender_virtual: Virtual
    receiver_virtual: Virtual
    sender: Phys
    receiver: Phys

    @property
    def is_local_phys(self) -> bool:
        return self.sender == self.receiver


@dataclass
class MappedProgram:
    """A fully mapped program ready for execution on a machine model."""

    mapping: MappingResult
    folding: Folding
    params: Dict[str, int]

    def virtual_of_stmt(self, stmt: str, index: Sequence[int]) -> Virtual:
        al = self.mapping.alignment
        m = al.allocation_of_stmt(stmt)
        a = al.offset_of_stmt(stmt)
        return (m @ IntMat.col(list(index)) + a).column_tuple(0)

    def virtual_of_array(self, array: str, subscripts: Sequence[int]) -> Virtual:
        al = self.mapping.alignment
        m = al.allocation_of_array(array)
        a = al.offset_of_array(array)
        return (m @ IntMat.col(list(subscripts)) + a).column_tuple(0)

    def comm_events(self) -> List[CommEvent]:
        """Element-level communications of the whole execution.

        For a read, data flows array-owner -> statement processor; for
        a write, statement processor -> array owner.
        """
        out: List[CommEvent] = []
        nest = self.mapping.alignment.nest
        sched = self.mapping.schedules
        for stmt in nest.statements:
            theta = sched.schedule_of(stmt.name)
            for acc in stmt.accesses:
                label = acc.label or f"{stmt.name}:{acc.array}"
                for idx in stmt.iteration_domain(self.params):
                    subs = acc.apply(idx)
                    owner_v = self.virtual_of_array(acc.array, subs)
                    stmt_v = self.virtual_of_stmt(stmt.name, idx)
                    if acc.kind is AccessKind.READ:
                        sv, rv = owner_v, stmt_v
                    else:
                        sv, rv = stmt_v, owner_v
                    out.append(
                        CommEvent(
                            access_label=label,
                            time=theta.time_of(idx),
                            sender_virtual=sv,
                            receiver_virtual=rv,
                            sender=self.folding.fold(sv),
                            receiver=self.folding.fold(rv),
                        )
                    )
        return out
