"""Mapped programs: loop nest + allocations + folding + machine.

The executor enumerates the (bounded) iteration space of a scheduled,
aligned loop nest and derives the concrete message sets between
*physical* processors, which a machine model then prices.  This is the
substitution for running the compiled HPF program on real hardware: the
paper's claims are about which messages exist, how they group into
macro-communications and how they collide — all of which the executor
reproduces exactly.

Folding is dimension-generic: the physical target may be any N-D mesh
(2-D Paragon, 3-D T3D, …) and one 1-D distribution scheme is applied
per physical dimension.  The virtual grid dimension ``m`` must equal
the mesh rank — a mismatch raises a friendly error instead of the old
silent collapse-by-summation of extra virtual dimensions.

The communication extraction is **vectorized**: each statement's
polyhedral iteration domain becomes one dense integer index matrix —
the rectangular *bounding box* (``np.meshgrid`` over the bounds, points
in ``itertools.product`` order) filtered by the domain's vectorized
membership mask (one int64 matmul against the half-space system; see
:meth:`repro.ir.Domain.point_matrix`), so triangular/trapezoidal nests
ride the same dense path and rectangular nests skip the mask entirely.
Affine accesses and virtual placements are evaluated as single integer
matmuls over the whole domain, and :class:`Folding` applies its modular
arithmetic to whole coordinate columns at once
(:meth:`Folding.fold_array`).  The executor prices the pre-masked
batches directly — it never re-enumerates a domain.  The arrays — one :class:`CommBatch` per
access — feed the executor's group-by pricing directly; the original
per-element path is kept as :meth:`MappedProgram.comm_events_python`,
the measured baseline that the vectorized path is asserted bit-identical
against (same pattern as ``phase_time_python`` in the machine layer).
The virtual-grid stage (schedule times, sender/receiver virtual
coordinates) depends only on the mapping and the size bindings, so it is
cached **on the mapping** and shared by every folding of the same
compiled nest — the compile-once/price-many situation of the campaign
runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..alignment import MappingResult
from ..distribution import Distribution1D, make_1d
from ..ir import AccessKind
from ..linalg import IntMat
from ..machine.backend import unique_rows

Virtual = Tuple[int, ...]
Phys = Tuple[int, ...]

#: int64 safety bound shared with the IntMat fast paths: intermediate
#: products beyond this fall back to the exact per-element Python path
_INT64_SAFE = 2 ** 62


@dataclass
class Folding:
    """Folds the (unbounded) m-D virtual grid onto a physical mesh.

    The virtual coordinates produced by allocation matrices can be
    negative and unbounded; we first shift-and-clamp them into an
    ``extent``-sized window per dimension (modulo), then apply one 1-D
    distribution per physical mesh dimension.  ``mesh`` may be any
    mesh exposing ``dims`` (:class:`~repro.machine.Mesh2D`,
    :class:`~repro.machine.Mesh3D`, …); the virtual rank must equal the
    mesh rank — :meth:`fold` raises a friendly ``ValueError`` on
    mismatch (pick ``m = len(mesh.dims)`` when compiling).

    Schemes: ``schemes``/``scheme_kw`` give one 1-D scheme name (and
    keyword dict) per mesh dimension.  For 2-D meshes the historical
    ``row_scheme``/``col_scheme`` (+ ``row_kw``/``col_kw``) spelling is
    still accepted; when neither is given every dimension defaults to
    ``cyclic``.
    """

    mesh: object
    extent: int
    schemes: Optional[Sequence[str]] = None
    scheme_kw: Optional[Sequence[Dict]] = None
    row_scheme: str = "cyclic"
    col_scheme: str = "cyclic"
    row_kw: Dict = field(default_factory=dict)
    col_kw: Dict = field(default_factory=dict)

    def __post_init__(self):
        dims = tuple(self.mesh.dims)
        schemes = self.schemes
        kws = self.scheme_kw
        legacy = (
            self.row_scheme != "cyclic"
            or self.col_scheme != "cyclic"
            or bool(self.row_kw)
            or bool(self.col_kw)
        )
        if schemes is None:
            if len(dims) == 2:
                schemes = (self.row_scheme, self.col_scheme)
                if kws is None:
                    kws = (self.row_kw, self.col_kw)
            elif legacy:
                raise ValueError(
                    "row_scheme/col_scheme/row_kw/col_kw only apply to "
                    f"2-D meshes; this mesh is {len(dims)}-D — pass "
                    "schemes=(...) with one scheme per dimension"
                )
            else:
                schemes = ("cyclic",) * len(dims)
        elif legacy:
            raise ValueError(
                "pass either schemes=/scheme_kw= or the 2-D "
                "row_scheme/col_scheme spelling, not both"
            )
        if kws is None:
            kws = ({},) * len(dims)
        if len(schemes) != len(dims) or len(kws) != len(dims):
            raise ValueError(
                f"need one distribution scheme per mesh dimension: mesh "
                f"has {len(dims)} dimension(s), got {len(schemes)} "
                f"scheme(s) and {len(kws)} kwarg dict(s)"
            )
        self._dists: Tuple[Distribution1D, ...] = tuple(
            make_1d(s, self.extent, p, **kw)
            for s, p, kw in zip(schemes, dims, kws)
        )

    @property
    def rank(self) -> int:
        """Number of physical mesh dimensions."""
        return len(self._dists)

    def fold(self, virtual: Sequence[int]) -> Phys:
        if len(virtual) != self.rank:
            raise ValueError(
                f"cannot fold a {len(virtual)}-D virtual coordinate onto "
                f"a {self.rank}-D mesh: the virtual grid dimension m must "
                f"equal the mesh rank (compile with m={self.rank} or "
                f"target a {len(virtual)}-D mesh)"
            )
        return tuple(
            d.phys(v % self.extent) for d, v in zip(self._dists, virtual)
        )

    def fold_array(self, virtual: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fold` over an ``(n, rank)`` coordinate array.

        Applies the shift-and-clamp modulo and the per-dimension 1-D
        distribution to whole columns at once; bit-identical to the
        scalar path (``%`` floor-mod semantics match between Python ints
        and numpy int64).
        """
        if virtual.ndim != 2 or virtual.shape[1] != self.rank:
            raise ValueError(
                f"cannot fold a {virtual.shape}-shaped coordinate array "
                f"onto a {self.rank}-D mesh: expected (n, {self.rank})"
            )
        out = np.empty_like(virtual)
        for j, d in enumerate(self._dists):
            out[:, j] = d.phys_array(virtual[:, j] % self.extent)
        return out


@dataclass
class CommEvent:
    """One element-level communication produced by the executor."""

    access_label: str
    time: Tuple[int, ...]
    sender_virtual: Virtual
    receiver_virtual: Virtual
    sender: Phys
    receiver: Phys

    @property
    def is_local_phys(self) -> bool:
        return self.sender == self.receiver


@dataclass
class PhaseSegments:
    """Segment-id layout of one label's priced phases — the input of
    the fused segmented pricing kernel.

    The coalesced ``(sender | receiver)`` rows of **all** phases sit in
    one phase-major matrix; ``starts`` delimits the segments (phase
    ``i`` owns rows ``starts[i]:starts[i+1]``, in the same ascending
    time order — and with the same lex-sorted rows per phase — that the
    per-phase ``np.unique`` group-bys used to produce one sub-array at
    a time).  ``counts`` carries each unique pair's multiplicity,
    ``n_events`` each phase's pre-coalescing event count.
    """

    #: (U, 2*rank) unique coalesced pair rows of all phases, phase-major
    pairs: np.ndarray
    #: (U,) multiplicity of each unique pair within its phase
    counts: np.ndarray
    #: (S+1,) segment offsets into ``pairs``/``counts``
    starts: np.ndarray
    #: (S,) events per phase before pair coalescing
    n_events: np.ndarray

    @property
    def n_phases(self) -> int:
        return self.starts.shape[0] - 1

    def phase_ids(self) -> np.ndarray:
        """The ``(U,)`` int64 segment column (``pairs`` row -> phase id),
        memoized."""
        ids = self.__dict__.get("_phase_ids")
        if ids is None:
            ids = np.repeat(
                np.arange(self.n_phases, dtype=np.int64),
                np.diff(self.starts),
            )
            self.__dict__["_phase_ids"] = ids
        return ids


def build_phase_segments(
    pairs: np.ndarray, times: Optional[np.ndarray] = None
) -> PhaseSegments:
    """Group raw ``(sender | receiver)`` event rows into the
    :class:`PhaseSegments` layout with **one** ``unique_rows`` call.

    With ``times`` (one row per event), events group into one phase per
    distinct time vector: the combined ``[time | pair]`` unique sorts
    time-major, so segment boundaries are where the time prefix changes
    — phases come out in ascending time order with lex-sorted unique
    pairs and their multiplicities, exactly what a per-phase
    ``np.unique`` group-by produced.  Without ``times`` (vectorizable
    access, or a width-0 schedule) every event lands in one phase.
    """
    n = pairs.shape[0]
    if times is None or times.shape[1] == 0:
        upairs, counts = unique_rows(pairs)
        return PhaseSegments(
            pairs=upairs,
            counts=counts,
            starts=np.array([0, upairs.shape[0]], dtype=np.int64),
            n_events=np.array([n], dtype=np.int64),
        )
    tw = times.shape[1]
    stacked = np.concatenate((times, pairs), axis=1)
    uniq, counts = unique_rows(stacked)
    return segments_from_sorted_unique(uniq[:, tw:], counts, uniq[:, :tw])


def segments_from_sorted_unique(
    pairs: np.ndarray, counts: np.ndarray, prefix: np.ndarray
) -> PhaseSegments:
    """:class:`PhaseSegments` from already-uniqued rows: ``pairs`` and
    ``counts`` sorted so that equal ``prefix`` rows (the phase key) are
    contiguous.  Used directly by the batched group executor, which
    uniques one ``[cell | time | pair]`` tensor for all K cells and
    slices per-cell blocks out of it."""
    u = pairs.shape[0]
    if u == 0:
        return PhaseSegments(
            pairs=pairs,
            counts=counts,
            starts=np.zeros(1, dtype=np.int64),
            n_events=np.empty(0, dtype=np.int64),
        )
    if prefix.shape[1] == 0:
        starts = np.array([0, u], dtype=np.int64)
    else:
        change = np.nonzero(np.any(prefix[1:] != prefix[:-1], axis=1))[0]
        starts = np.concatenate(([0], change + 1, [u])).astype(np.int64)
    n_events = np.add.reduceat(counts, starts[:-1]).astype(np.int64)
    return PhaseSegments(
        pairs=pairs, counts=counts, starts=starts, n_events=n_events
    )


@dataclass
class CommBatch:
    """Dense array form of one access's element communications.

    One row per iteration-domain point, in ``itertools.product`` order
    (the exact order :meth:`MappedProgram.comm_events_python` emits
    events in).  All arrays are int64.

    The executor's group-by reductions over a batch — locality masks
    and the per-phase ``np.unique`` pair coalescing — are **memoized on
    the instance** (:meth:`locality_masks`, :meth:`phase_partition`):
    pricing the same program again (the heuristic-vs-baseline
    comparison, bench reruns, the batched group path) reuses one
    extraction instead of re-uniquing per call.  Batches are rebuilt
    whenever the mapping mutates (see
    :meth:`MappedProgram.comm_batches`), so the caches can never serve
    stale arrays.
    """

    access_label: str
    stmt: str
    #: (n, t) schedule time vectors
    times: np.ndarray
    #: (n, m) virtual coordinates
    sender_virtual: np.ndarray
    receiver_virtual: np.ndarray
    #: (n, rank) folded physical coordinates
    sender: np.ndarray
    receiver: np.ndarray

    @property
    def n(self) -> int:
        return self.sender_virtual.shape[0]

    def virtual_local_mask(self) -> np.ndarray:
        """Rows local on the *virtual* grid (folding-independent), so
        the batched group executor seeds it across the K cells of one
        compiled nest — their virtual arrays are the same objects."""
        mask = self.__dict__.get("_virt_local")
        if mask is None:
            mask = np.all(self.sender_virtual == self.receiver_virtual, axis=1)
            self.__dict__["_virt_local"] = mask
        return mask

    def locality_masks(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(virtual_local, phys_local, send)`` row masks, memoized.

        ``phys_local`` counts only rows *not* already virtual-local
        (matching the per-event path's early-continue order); ``send``
        is what survives both filters.
        """
        cached = self.__dict__.get("_locality")
        if cached is None:
            virt_local = self.virtual_local_mask()
            nonlocal_mask = ~virt_local
            phys_local = nonlocal_mask & np.all(
                self.sender == self.receiver, axis=1
            )
            send = nonlocal_mask & ~phys_local
            cached = (virt_local, phys_local, send)
            self.__dict__["_locality"] = cached
        return cached

    def send_pairs(self) -> np.ndarray:
        """``sender | receiver`` rows of the surviving (send) events,
        concatenated columns — the executor's phase group-by input."""
        pairs = self.__dict__.get("_send_pairs")
        if pairs is None:
            send = self.locality_masks()[2]
            pairs = np.concatenate(
                (self.sender[send], self.receiver[send]), axis=1
            )
            self.__dict__["_send_pairs"] = pairs
        return pairs

    def phase_partition(self, vectorizable: bool) -> PhaseSegments:
        """The batch's send events grouped into priced phases, in the
        segment-id layout (:class:`PhaseSegments`) the fused pricing
        kernel consumes — no per-phase sub-arrays are materialized.

        Vectorizable accesses merge every time step into one phase;
        otherwise phases follow ascending time order (matching the
        per-event path's sorted bucket keys), each phase's rows
        lex-sorted — exactly the per-phase ``np.unique`` outputs,
        concatenated.  One packed ``unique_rows`` call per batch,
        memoized per ``vectorizable`` flag.
        """
        cache = self.__dict__.setdefault("_phase_partition", {})
        hit = cache.get(vectorizable)
        if hit is not None:
            return hit
        pairs = self.send_pairs()
        if vectorizable:
            seg = build_phase_segments(pairs)
        else:
            send = self.locality_masks()[2]
            seg = build_phase_segments(pairs, self.times[send])
        cache[vectorizable] = seg
        return seg


def _domain_matrix(stmt, params: Dict[str, int]) -> np.ndarray:
    """The statement's iteration domain as an ``(n, d)`` int64 matrix,
    points in bounding-box ``itertools.product`` row-major order.

    Delegates to :meth:`repro.ir.Domain.point_matrix`: rectangular
    domains return the dense box unchanged (the historical layout);
    triangular/trapezoidal domains return the box rows that survive the
    vectorized membership mask — the exact rows (and order)
    ``Statement.iteration_domain`` enumerates."""
    return stmt.domain.point_matrix(params)


def _affine_rows(idx: np.ndarray, mat: IntMat, off: Optional[IntMat]) -> np.ndarray:
    """Evaluate ``mat @ I + off`` for every domain row of ``idx`` in one
    integer matmul: returns an ``(n, mat.nrows)`` array."""
    out = idx @ mat.to_numpy().T
    if off is not None:
        out = out + off.to_numpy().T
    return out


def _vector_bound_ok(idx: np.ndarray, *stages) -> bool:
    """Prove no int64 overflow is possible through the chained affine
    stages ``(mat, off)`` applied to ``idx`` (same style as the IntMat
    matmul fast-path bound).  Conservative: uses max-abs magnitudes."""
    bound = int(abs(idx).max()) if idx.size else 0
    for mat, off in stages:
        k = mat.ncols
        bound = k * mat.max_abs() * bound + (off.max_abs() if off is not None else 0)
        if bound >= _INT64_SAFE:
            return False
    return True


@dataclass
class MappedProgram:
    """A fully mapped program ready for execution on a machine model."""

    mapping: MappingResult
    folding: Folding
    params: Dict[str, int]

    def __post_init__(self):
        m = self.mapping.alignment.m
        if m != self.folding.rank:
            raise ValueError(
                f"mapping targets an m={m} virtual grid but the folding "
                f"is onto a {self.folding.rank}-D mesh: the two ranks "
                f"must match (compile with m={self.folding.rank} or fold "
                f"onto a {m}-D mesh)"
            )

    def virtual_of_stmt(self, stmt: str, index: Sequence[int]) -> Virtual:
        al = self.mapping.alignment
        m = al.allocation_of_stmt(stmt)
        a = al.offset_of_stmt(stmt)
        return (m @ IntMat.col(list(index)) + a).column_tuple(0)

    def virtual_of_array(self, array: str, subscripts: Sequence[int]) -> Virtual:
        al = self.mapping.alignment
        m = al.allocation_of_array(array)
        a = al.offset_of_array(array)
        return (m @ IntMat.col(list(subscripts)) + a).column_tuple(0)

    def comm_events_python(self) -> List[CommEvent]:
        """Element-level communications of the whole execution, one
        Python object per access per domain point.

        For a read, data flows array-owner -> statement processor; for
        a write, statement processor -> array owner.

        This is the pre-vectorization reference path — the measured
        baseline of ``bench_runtime_exec.py`` and the bit-identity
        cross-check for :meth:`comm_batches` (see
        ``tests/runtime/test_runtime_vectorized.py``).
        """
        out: List[CommEvent] = []
        nest = self.mapping.alignment.nest
        sched = self.mapping.schedules
        for stmt in nest.statements:
            theta = sched.schedule_of(stmt.name)
            for acc in stmt.accesses:
                label = acc.label or f"{stmt.name}:{acc.array}"
                for idx in stmt.iteration_domain(self.params):
                    subs = acc.apply(idx)
                    owner_v = self.virtual_of_array(acc.array, subs)
                    stmt_v = self.virtual_of_stmt(stmt.name, idx)
                    if acc.kind is AccessKind.READ:
                        sv, rv = owner_v, stmt_v
                    else:
                        sv, rv = stmt_v, owner_v
                    out.append(
                        CommEvent(
                            access_label=label,
                            time=theta.time_of(idx),
                            sender_virtual=sv,
                            receiver_virtual=rv,
                            sender=self.folding.fold(sv),
                            receiver=self.folding.fold(rv),
                        )
                    )
        return out

    # -- vectorized communication extraction ----------------------------

    def _virtual_batches(self) -> List[Tuple[str, str, np.ndarray, np.ndarray, np.ndarray]]:
        """Per access: ``(label, stmt, times, sender_v, receiver_v)``
        arrays over the whole iteration domain.

        Depends only on the mapping and the size bindings — not on the
        folding — so the result is cached **on the mapping object**,
        keyed by the bindings: every folding of the same compiled nest
        (the campaign's machine x mesh grid cells) reuses one
        evaluation.  The alignment's ``mutation_count`` is part of the
        key, so a later ``rotate_component`` naturally invalidates
        every entry cached before the rotation.
        """
        key = (
            tuple(sorted(self.params.items())),
            self.mapping.alignment.mutation_count,
        )
        cache = self.mapping.__dict__.setdefault("_virtual_batch_cache", {})
        hit = cache.get(key)
        if hit is not None:
            return hit
        al = self.mapping.alignment
        sched = self.mapping.schedules
        out = []
        for stmt in al.nest.statements:
            idx = _domain_matrix(stmt, self.params)
            theta = sched.schedule_of(stmt.name).theta
            m_s = al.allocation_of_stmt(stmt.name)
            a_s = al.offset_of_stmt(stmt.name)
            if not _vector_bound_ok(idx, (theta, None)) or not _vector_bound_ok(
                idx, (m_s, a_s)
            ):
                cache[key] = None  # poison: caller falls back per call
                return None
            times = _affine_rows(idx, theta, None)
            stmt_v = _affine_rows(idx, m_s, a_s)
            for acc in stmt.accesses:
                label = acc.label or f"{stmt.name}:{acc.array}"
                m_x = al.allocation_of_array(acc.array)
                a_x = al.offset_of_array(acc.array)
                if not _vector_bound_ok(idx, (acc.F, acc.c), (m_x, a_x)):
                    cache[key] = None
                    return None
                owner_v = _affine_rows(
                    _affine_rows(idx, acc.F, acc.c), m_x, a_x
                )
                if acc.kind is AccessKind.READ:
                    sv, rv = owner_v, stmt_v
                else:
                    sv, rv = stmt_v, owner_v
                out.append((label, stmt.name, times, sv, rv))
        cache[key] = out
        return out

    def comm_batches(self) -> List[CommBatch]:
        """The communications of :meth:`comm_events_python` as dense
        per-access arrays (one :class:`CommBatch` per access, rows in
        event order), memoized on the program instance.

        Falls back to building the batches from the per-element path in
        the (pathological) case where the int64 overflow bound cannot be
        proven for the affine stages.
        """
        gen = self.mapping.alignment.mutation_count
        cached = self.__dict__.get("_comm_batches")
        if cached is not None and cached[0] == gen:
            return cached[1]
        virtual = self._virtual_batches()
        if virtual is None:
            batches = self._batches_from_events(self.comm_events_python())
        else:
            batches = [
                CommBatch(
                    access_label=label,
                    stmt=stmt,
                    times=times,
                    sender_virtual=sv,
                    receiver_virtual=rv,
                    sender=self._fold_batch(sv),
                    receiver=self._fold_batch(rv),
                )
                for label, stmt, times, sv, rv in virtual
            ]
        self.__dict__["_comm_batches"] = (gen, batches)
        return batches

    def _fold_batch(self, virtual: np.ndarray) -> np.ndarray:
        if virtual.shape[0] == 0:
            return np.empty_like(virtual)
        return self.folding.fold_array(virtual)

    def _batches_from_events(self, events: List[CommEvent]) -> List[CommBatch]:
        """Exact-arithmetic fallback: regroup the per-element event
        stream (statement-major, ``itertools.product`` order — exactly
        how :meth:`comm_events_python` emits it) into the batch layout."""

        def rows(vals: List[Tuple[int, ...]], width: int) -> np.ndarray:
            return np.array(vals, dtype=np.int64).reshape(len(vals), width)

        m = self.mapping.alignment.m
        rank = self.folding.rank
        sched = self.mapping.schedules
        batches: List[CommBatch] = []
        pos = 0
        for stmt in self.mapping.alignment.nest.statements:
            n = stmt.domain_size(self.params)
            t_dims = sched.schedule_of(stmt.name).time_dims
            for acc in stmt.accesses:
                label = acc.label or f"{stmt.name}:{acc.array}"
                evs = events[pos : pos + n]
                pos += n
                batches.append(
                    CommBatch(
                        access_label=label,
                        stmt=stmt.name,
                        times=rows([e.time for e in evs], t_dims),
                        sender_virtual=rows(
                            [e.sender_virtual for e in evs], m
                        ),
                        receiver_virtual=rows(
                            [e.receiver_virtual for e in evs], m
                        ),
                        sender=rows([e.sender for e in evs], rank),
                        receiver=rows([e.receiver for e in evs], rank),
                    )
                )
        return batches

    def comm_events(self) -> List[CommEvent]:
        """Element-level communications of the whole execution (same
        list as :meth:`comm_events_python`), memoized on the instance —
        ``execute()`` and ``count_nonlocal_virtual()`` no longer
        re-enumerate the iteration domain on separate calls.

        Built from the vectorized :meth:`comm_batches` arrays; the
        object construction only happens when a caller actually wants
        per-element events.
        """
        gen = self.mapping.alignment.mutation_count
        cached = self.__dict__.get("_comm_events")
        if cached is not None and cached[0] == gen:
            return cached[1]
        out: List[CommEvent] = []
        for b in self.comm_batches():
            label = b.access_label
            times = [tuple(t) for t in b.times.tolist()]
            svs = [tuple(v) for v in b.sender_virtual.tolist()]
            rvs = [tuple(v) for v in b.receiver_virtual.tolist()]
            sps = [tuple(p) for p in b.sender.tolist()]
            rps = [tuple(p) for p in b.receiver.tolist()]
            for t, sv, rv, sp, rp in zip(times, svs, rvs, sps, rps):
                out.append(
                    CommEvent(
                        access_label=label,
                        time=t,
                        sender_virtual=sv,
                        receiver_virtual=rv,
                        sender=sp,
                        receiver=rp,
                    )
                )
        self.__dict__["_comm_events"] = (gen, out)
        return out
