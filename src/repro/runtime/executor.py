"""Communication extraction, vectorization and costing.

Turns the element-level :class:`~repro.runtime.mapping.CommEvent`
stream of a mapped program into per-time-step message sets, applies
message vectorization (Section 4.5) where the mapping allows it,
recognizes macro-communications (costed with the machine's collective
support when available) and prices everything on a machine model.

The report distinguishes, per access:

* ``local`` — sender == receiver on the *virtual* grid (the zeroed-out
  communications of step 1; they cost nothing);
* ``translation`` / ``macro`` / ``decomposed`` / ``general`` — as
  classified by step 2 of the heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine import CM5Model, MachineModel, Message
from .mapping import CommEvent, MappedProgram


@dataclass
class AccessCommStats:
    """Per-access communication statistics for one execution."""

    label: str
    classification: str
    events: int = 0
    virtual_local: int = 0
    phys_local: int = 0
    messages_before_vectorization: int = 0
    messages_after_vectorization: int = 0
    volume: int = 0
    macro_ops: int = 0  # number of collective operations issued
    time: float = 0.0


@dataclass
class CommReport:
    """Execution-wide communication report."""

    per_access: Dict[str, AccessCommStats]
    total_time: float
    total_messages: int
    total_volume: int

    def stats(self, label: str) -> AccessCommStats:
        return self.per_access[label]

    def describe(self) -> str:
        lines = [
            f"total: time={self.total_time:.1f} msgs={self.total_messages} "
            f"volume={self.total_volume}"
        ]
        for label in sorted(self.per_access):
            s = self.per_access[label]
            lines.append(
                f"  {label:6s} [{s.classification:11s}] events={s.events} "
                f"virt-local={s.virtual_local} msgs={s.messages_after_vectorization} "
                f"macro_ops={s.macro_ops} time={s.time:.1f}"
            )
        return "\n".join(lines)


def _classification_of(program: MappedProgram, label: str) -> str:
    al = program.mapping.alignment
    if label in al.local_labels:
        return "local"
    try:
        return program.mapping.residual_by_label(label).classification
    except KeyError:
        return "general"


def _vectorizable(program: MappedProgram, label: str) -> bool:
    try:
        return program.mapping.residual_by_label(label).vectorizable
    except KeyError:
        return False


def execute(
    program: MappedProgram,
    machine: MachineModel,
    collectives: Optional[CM5Model] = None,
    payload: int = 1,
) -> CommReport:
    """Execute the mapped program's communications on a machine model.

    ``machine`` is any registered :class:`~repro.machine.MachineModel`
    (Paragon-style 2-D, T3D-style 3-D, …) and prices point-to-point
    phases (per time step, one phase per access) — the program's folded
    coordinates are tuples of the machine's mesh rank; ``collectives``
    — when given — prices the accesses the heuristic classified as
    macro-communications with hardware collective costs instead (the
    CM-5 situation of Table 1).
    """
    events = program.comm_events()
    per_access: Dict[str, AccessCommStats] = {}
    # bucket: (label, time) -> events
    buckets: Dict[Tuple[str, Tuple[int, ...]], List[CommEvent]] = {}
    for ev in events:
        label = ev.access_label
        st = per_access.get(label)
        if st is None:
            st = AccessCommStats(
                label=label,
                classification=_classification_of(program, label),
            )
            per_access[label] = st
        st.events += 1
        if ev.sender_virtual == ev.receiver_virtual:
            st.virtual_local += 1
            continue
        if ev.is_local_phys:
            st.phys_local += 1
            continue
        buckets.setdefault((label, ev.time), []).append(ev)

    total_time = 0.0
    # vectorization merges the buckets of all time steps of one access
    merged: Dict[str, List[List[CommEvent]]] = {}
    for (label, _time), evs in sorted(buckets.items()):
        if _vectorizable(program, label):
            merged.setdefault(label, [[]])[0].extend(evs)
        else:
            merged.setdefault(label, []).append(evs)

    for label, phases in merged.items():
        st = per_access[label]
        for evs in phases:
            if not evs:
                continue
            # coalesce per (sender, receiver) pair into one message
            pair_sizes: Dict[Tuple, int] = {}
            for ev in evs:
                key = (ev.sender, ev.receiver)
                pair_sizes[key] = pair_sizes.get(key, 0) + payload
            msgs = [
                Message(src=s, dst=d, size=sz)
                for (s, d), sz in pair_sizes.items()
            ]
            st.messages_before_vectorization += len(evs)
            st.messages_after_vectorization += len(msgs)
            st.volume += sum(m.size for m in msgs)
            if collectives is not None and st.classification == "macro":
                opt = program.mapping.residual_by_label(label)
                kind = opt.macro.kind.value if opt.macro else "broadcast"
                size = max(pair_sizes.values())
                if kind == "reduction":
                    t = collectives.reduction_time(size)
                else:
                    t = collectives.broadcast_time(size)
                st.macro_ops += 1
                st.time += t
                total_time += t
            else:
                rep = machine.time_phase(msgs)
                st.time += rep.time
                total_time += rep.time

    total_messages = sum(
        s.messages_after_vectorization for s in per_access.values()
    )
    total_volume = sum(s.volume for s in per_access.values())
    return CommReport(
        per_access=per_access,
        total_time=total_time,
        total_messages=total_messages,
        total_volume=total_volume,
    )


def count_nonlocal_virtual(program: MappedProgram) -> Dict[str, int]:
    """Per-access count of element communications that are non-local on
    the *virtual* grid (mapping quality independent of folding)."""
    out: Dict[str, int] = {}
    for ev in program.comm_events():
        if ev.sender_virtual != ev.receiver_virtual:
            out[ev.access_label] = out.get(ev.access_label, 0) + 1
    return out
