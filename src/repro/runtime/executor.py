"""Communication extraction, vectorization and costing.

Turns the element-level communications of a mapped program into
per-time-step message sets, applies message vectorization (Section 4.5)
where the mapping allows it, recognizes macro-communications (costed
with the machine's collective support when available) and prices
everything on a machine model.

The report distinguishes, per access:

* ``local`` — sender == receiver on the *virtual* grid (the zeroed-out
  communications of step 1; they cost nothing);
* ``translation`` / ``macro`` / ``decomposed`` / ``general`` — as
  classified by step 2 of the heuristic.

:func:`execute` is **vectorized**: it consumes the dense per-access
arrays of :meth:`~repro.runtime.mapping.MappedProgram.comm_batches`
(one row per element communication; polyhedral domains arrive already
masked down to their in-domain rows, so the executor never
re-enumerates an iteration set) and replaces the per-event Python
bucketing with array reductions — virtual/physical locality masks are
whole-column comparisons, the per-time-step phase split and the
``(sender, receiver)`` pair coalescing are ``np.unique`` group-bys —
feeding the already-vectorized ``phase_time`` one deduplicated message
list per phase.  The original per-event implementation is kept as
:func:`execute_python`; the two are bit-identical (asserted on
randomized generated workloads and the paper's seed scenarios in
``tests/runtime/test_runtime_vectorized.py`` and measured against each
other in ``benchmarks/bench_runtime_exec.py`` — the same old-vs-new
pattern as ``phase_time_python`` in the machine layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._config import env_flag
from ..machine import CM5Model, MachineModel, Message
from ..machine.backend import unique_rows
from ..obs import span, traced
from .mapping import (
    CommBatch,
    CommEvent,
    MappedProgram,
    PhaseSegments,
    build_phase_segments,
    segments_from_sorted_unique,
)

#: environment knob: fused segmented pricing (default on); the
#: per-phase path is kept as the bit-identity baseline
SEGMENTED_ENV = "REPRO_SEGMENTED_PRICING"

_segmented = env_flag(SEGMENTED_ENV, True)


def set_segmented_pricing(on: bool) -> bool:
    """Toggle the fused segmented pricing path (returns the previous
    flag).  Off routes every label through the kept per-phase
    ``_price_phase`` baseline — the bit-identity twin the property
    suite and the ``fused_pricing`` benchmark compare against."""
    global _segmented
    prev = _segmented
    _segmented = bool(on)
    return prev


def segmented_pricing_enabled() -> bool:
    return _segmented


@dataclass
class AccessCommStats:
    """Per-access communication statistics for one execution."""

    label: str
    classification: str
    events: int = 0
    virtual_local: int = 0
    phys_local: int = 0
    messages_before_vectorization: int = 0
    messages_after_vectorization: int = 0
    volume: int = 0
    macro_ops: int = 0  # number of collective operations issued
    time: float = 0.0


@dataclass
class CommReport:
    """Execution-wide communication report."""

    per_access: Dict[str, AccessCommStats]
    total_time: float
    total_messages: int
    total_volume: int

    def stats(self, label: str) -> AccessCommStats:
        return self.per_access[label]

    def describe(self) -> str:
        lines = [
            f"total: time={self.total_time:.1f} msgs={self.total_messages} "
            f"volume={self.total_volume}"
        ]
        for label in sorted(self.per_access):
            s = self.per_access[label]
            lines.append(
                f"  {label:6s} [{s.classification:11s}] events={s.events} "
                f"virt-local={s.virtual_local} msgs={s.messages_after_vectorization} "
                f"macro_ops={s.macro_ops} time={s.time:.1f}"
            )
        return "\n".join(lines)


def _classification_of(program: MappedProgram, label: str) -> str:
    al = program.mapping.alignment
    if label in al.local_labels:
        return "local"
    try:
        return program.mapping.residual_by_label(label).classification
    except KeyError:
        return "general"


def _vectorizable(program: MappedProgram, label: str) -> bool:
    try:
        return program.mapping.residual_by_label(label).vectorizable
    except KeyError:
        return False


@traced("exec.phase")
def _price_phase(
    program: MappedProgram,
    machine: MachineModel,
    collectives: Optional[CM5Model],
    st: AccessCommStats,
    label: str,
    n_events: int,
    pairs: np.ndarray,
    counts: np.ndarray,
    payload: int,
    rank: int,
) -> float:
    """Price one phase given its coalesced ``(sender, receiver)`` pairs
    (rows of ``pairs``, multiplicities in ``counts``).  Returns the time
    added (mirrors the per-phase body of :func:`execute_python`).

    Array-native: machines exposing ``time_phase_arrays`` (the
    Paragon/T3D presets) price the coordinate matrices directly — no
    per-message ``Message`` object churn; anything else gets the
    classic ``Message`` list (duck-typed fallback, so custom registered
    models keep working).  Bit-identical either way (asserted in
    ``tests/machine/test_backend.py``)."""
    sizes = counts * payload
    st.messages_before_vectorization += n_events
    st.messages_after_vectorization += pairs.shape[0]
    st.volume += int(sizes.sum())
    if collectives is not None and st.classification == "macro":
        opt = program.mapping.residual_by_label(label)
        kind = opt.macro.kind.value if opt.macro else "broadcast"
        size = int(sizes.max())
        if kind == "reduction":
            t = collectives.reduction_time(size)
        else:
            t = collectives.broadcast_time(size)
        st.macro_ops += 1
        st.time += t
        return t
    fn = getattr(machine, "time_phase_arrays", None)
    if fn is not None:
        rep = fn(pairs[:, :rank], pairs[:, rank:], sizes)
    else:
        rep = machine.time_phase(
            [
                Message(src=tuple(row[:rank]), dst=tuple(row[rank:]), size=int(sz))
                for row, sz in zip(pairs.tolist(), sizes.tolist())
            ]
        )
    st.time += rep.time
    return rep.time


def _price_label_segmented(
    program: MappedProgram,
    machine: MachineModel,
    collectives: Optional[CM5Model],
    st: AccessCommStats,
    label: str,
    seg: PhaseSegments,
    payload: int,
    rank: int,
) -> List[float]:
    """Price every phase of one label in one fused call.

    ``seg`` holds all phases as one phase-major unique-pair matrix plus
    segment offsets; the machine's ``time_phases_segmented`` kernel
    (Paragon/T3D presets) prices all segments at once, macro labels go
    down the vectorized collective lane.  Returns the **per-phase**
    times in phase order — callers fold them into their running totals
    one phase at a time, preserving the exact float accumulation
    sequence of the per-phase path, so ``CommReport`` totals stay
    bit-identical.

    The per-phase ``_price_phase`` loop is kept as the bit-identity
    baseline (``set_segmented_pricing(False)``) and as the duck-typed
    fallback for custom registered models that only expose
    ``time_phase`` / ``time_phase_arrays``.
    """
    n_phases = seg.n_phases
    if n_phases == 0:
        return []
    is_macro = collectives is not None and st.classification == "macro"
    fn = getattr(machine, "time_phases_segmented", None)
    if not _segmented or (fn is None and not is_macro):
        starts = seg.starts
        return [
            _price_phase(
                program, machine, collectives, st, label,
                int(seg.n_events[i]),
                seg.pairs[int(starts[i]): int(starts[i + 1])],
                seg.counts[int(starts[i]): int(starts[i + 1])],
                payload, rank,
            )
            for i in range(n_phases)
        ]

    sizes = seg.counts * payload
    st.messages_before_vectorization += int(seg.n_events.sum())
    st.messages_after_vectorization += seg.pairs.shape[0]
    st.volume += int(sizes.sum())
    with span("exec.segmented", count=n_phases):
        if is_macro:
            opt = program.mapping.residual_by_label(label)
            kind = opt.macro.kind.value if opt.macro else "broadcast"
            seg_sizes = np.maximum.reduceat(sizes, seg.starts[:-1])
            vfn = getattr(collectives, "macro_times_segmented", None)
            if vfn is not None:
                times = vfn(kind, seg_sizes)
            elif kind == "reduction":
                times = np.array(
                    [collectives.reduction_time(int(s)) for s in seg_sizes]
                )
            else:
                times = np.array(
                    [collectives.broadcast_time(int(s)) for s in seg_sizes]
                )
            st.macro_ops += n_phases
        else:
            srep = fn(
                seg.pairs[:, :rank],
                seg.pairs[:, rank:],
                sizes,
                seg.phase_ids(),
                n_phases,
            )
            times = srep.times
    ts = times.tolist()
    for t in ts:
        st.time += t
    return ts


def _price_label_mixed(
    program: MappedProgram,
    machine: MachineModel,
    collectives: Optional[CM5Model],
    st: AccessCommStats,
    label: str,
    chunks: Sequence[Tuple[np.ndarray, np.ndarray]],
    payload: int,
    rank: int,
) -> List[float]:
    """One label spanning statements with different schedule
    dimensionalities: mixed-width time rows cannot concatenate, so
    bucket by time tuple like the python path — but normalize the
    phases to one int64 *bucket index* column so all phases still price
    through one segmented call.  Returns per-phase times like
    :func:`_price_label_segmented`."""
    buckets: Dict[Tuple[int, ...], List[List[int]]] = {}
    for t_arr, p_arr in chunks:
        for trow, prow in zip(t_arr.tolist(), p_arr.tolist()):
            buckets.setdefault(tuple(trow), []).append(prow)
    blocks = []
    for i, tkey in enumerate(sorted(buckets)):
        rows = np.array(buckets[tkey], dtype=np.int64)
        blocks.append(
            np.concatenate(
                (np.full((rows.shape[0], 1), i, dtype=np.int64), rows),
                axis=1,
            )
        )
    stacked = np.concatenate(blocks, axis=0)
    seg = build_phase_segments(stacked[:, 1:], stacked[:, :1])
    return _price_label_segmented(
        program, machine, collectives, st, label, seg, payload, rank
    )


def execute(
    program: MappedProgram,
    machine: MachineModel,
    collectives: Optional[CM5Model] = None,
    payload: int = 1,
) -> CommReport:
    """Execute the mapped program's communications on a machine model.

    ``machine`` is any registered :class:`~repro.machine.MachineModel`
    (Paragon-style 2-D, T3D-style 3-D, …) and prices point-to-point
    phases (per time step, one phase per access) — the program's folded
    coordinates are tuples of the machine's mesh rank; ``collectives``
    — when given — prices the accesses the heuristic classified as
    macro-communications with hardware collective costs instead (the
    CM-5 situation of Table 1).

    Vectorized over the program's :class:`CommBatch` arrays; the
    per-event reference implementation is :func:`execute_python`
    (bit-identical).
    """
    with span("exec.extract"):
        batches = program.comm_batches()
    rank = program.folding.rank
    per_access: Dict[str, AccessCommStats] = {}
    # per label: the batches whose events survive the locality filters
    # (group-by outputs are memoized on the batches, so re-pricing the
    # same program reuses one extraction)
    remaining: Dict[str, List[CommBatch]] = {}
    for b in batches:
        if b.n == 0:
            # no events -> no stats entry, exactly like the per-event
            # path (which only creates entries while iterating events)
            continue
        label = b.access_label
        st = per_access.get(label)
        if st is None:
            st = AccessCommStats(
                label=label,
                classification=_classification_of(program, label),
            )
            per_access[label] = st
        st.events += b.n
        virt_local, phys_local, send = b.locality_masks()
        st.virtual_local += int(virt_local.sum())
        st.phys_local += int(phys_local.sum())
        if send.any():
            remaining.setdefault(label, []).append(b)

    total_time = 0.0
    # phase pricing in the exact order of the python path: labels in
    # sorted order, phases in ascending time order (np.unique rows are
    # lexicographically sorted, matching tuple-sorted bucket keys)
    for label in sorted(remaining):
        st = per_access[label]
        blist = remaining[label]
        vec = _vectorizable(program, label)
        if len(blist) == 1:
            # one batch owns the label (the common case): price its
            # memoized phase partition in one fused call
            for t in _price_label_segmented(
                program, machine, collectives, st, label,
                blist[0].phase_partition(vec), payload, rank,
            ):
                total_time += t
            continue
        chunks = [
            (b.times[b.locality_masks()[2]], b.send_pairs()) for b in blist
        ]
        if not vec and len({t.shape[1] for t, _ in chunks}) > 1:
            for t in _price_label_mixed(
                program, machine, collectives, st, label,
                chunks, payload, rank,
            ):
                total_time += t
            continue
        pairs = np.concatenate([p for _, p in chunks], axis=0)
        if vec:
            # vectorization merges all time steps into one phase
            seg = build_phase_segments(pairs)
        else:
            times = np.concatenate([t for t, _ in chunks], axis=0)
            seg = build_phase_segments(pairs, times)
        for t in _price_label_segmented(
            program, machine, collectives, st, label, seg, payload, rank,
        ):
            total_time += t

    total_messages = sum(
        s.messages_after_vectorization for s in per_access.values()
    )
    total_volume = sum(s.volume for s in per_access.values())
    return CommReport(
        per_access=per_access,
        total_time=total_time,
        total_messages=total_messages,
        total_volume=total_volume,
    )


def execute_group(
    cells: Sequence[Tuple[MappedProgram, MachineModel, Optional[CM5Model]]],
    payload: int = 1,
) -> List[CommReport]:
    """Price all K machine x mesh cells of one compiled nest in one
    batched pass — bit-identical to ``[execute(p, m, collectives=c)
    for p, m, c in cells]`` (property-tested in
    ``tests/runtime/test_group_pricing.py``).

    Every cell must fold the **same mapping** with the **same size
    bindings** (the campaign's compile-key group invariant: domains,
    schedule times and virtual coordinates are shared arrays; only the
    folded physical coordinates differ per cell).  Instead of running
    the per-phase ``np.unique`` group-bys K times, the cells' surviving
    ``(sender, receiver)`` rows are stacked into one int64 tensor with
    a leading cell-id column and grouped **once** per label on the
    configured array backend (``REPRO_PRICE_BACKEND``); lexicographic
    unique order makes the per-(cell, time) segments come out exactly
    in each cell's own phase order, so float accumulation order — and
    therefore every total — matches the per-cell path bit for bit.
    """
    if not cells:
        return []
    programs = [c[0] for c in cells]
    base = programs[0]
    for p in programs[1:]:
        if p.mapping is not base.mapping:
            raise ValueError(
                "execute_group needs the cells of one compiled nest: "
                "all programs must share one mapping object"
            )
        if p.params != base.params:
            raise ValueError(
                "execute_group needs identical size bindings across "
                f"cells (got {base.params!r} vs {p.params!r})"
            )
    if len(cells) == 1:
        program, machine, coll = cells[0]
        return [execute(program, machine, collectives=coll, payload=payload)]

    K = len(cells)
    rank = base.folding.rank
    with span("exec.extract"):
        batch_lists = [p.comm_batches() for p in programs]

    per_access: List[Dict[str, AccessCommStats]] = [{} for _ in range(K)]
    totals = [0.0] * K
    # label -> per-cell lists of surviving batches
    remaining: Dict[str, List[List[CommBatch]]] = {}
    classifications: Dict[str, str] = {}
    for bi, b0 in enumerate(batch_lists[0]):
        if b0.n == 0:
            continue
        label = b0.access_label
        if label not in classifications:
            classifications[label] = _classification_of(base, label)
        # the virtual arrays are shared objects across cells, so the
        # virtual-locality mask is computed once and seeded into every
        # cell's batch before its (per-cell) physical masks
        virt_local = b0.virtual_local_mask()
        n_virt_local = int(virt_local.sum())
        for k in range(K):
            b = batch_lists[k][bi]
            st = per_access[k].get(label)
            if st is None:
                st = AccessCommStats(
                    label=label, classification=classifications[label]
                )
                per_access[k][label] = st
            st.events += b.n
            st.virtual_local += n_virt_local
            b.__dict__.setdefault("_virt_local", virt_local)
            _, phys_local, send = b.locality_masks()
            st.phys_local += int(phys_local.sum())
            if send.any():
                remaining.setdefault(
                    label, [[] for _ in range(K)]
                )[k].append(b)

    cell_ids = np.arange(K, dtype=np.int64)
    for label in sorted(remaining):
        per_cell = remaining[label]
        vec = _vectorizable(base, label)
        widths = {
            b.times.shape[1] for blist in per_cell for b in blist
        }
        if not vec and len(widths) > 1:
            # mixed schedule widths cannot stack; fall back to the
            # per-cell python bucketing (identical to execute())
            for k in range(K):
                if not per_cell[k]:
                    continue
                chunks = [
                    (b.times[b.locality_masks()[2]], b.send_pairs())
                    for b in per_cell[k]
                ]
                for t in _price_label_mixed(
                    programs[k], cells[k][1], cells[k][2],
                    per_access[k][label], label, chunks, payload, rank,
                ):
                    totals[k] += t
            continue

        # stack all cells' rows as [cell | (time) | sender | receiver]
        blocks: List[np.ndarray] = []
        n_events_cell = [0] * K
        tw = 0 if vec else widths.pop()
        for k in range(K):
            for b in per_cell[k]:
                pairs = b.send_pairs()
                cols = [np.full((pairs.shape[0], 1), cell_ids[k])]
                if not vec:
                    cols.append(b.times[b.locality_masks()[2]])
                cols.append(pairs)
                blocks.append(np.concatenate(cols, axis=1))
                n_events_cell[k] += pairs.shape[0]
        stacked = np.concatenate(blocks, axis=0)
        uniq, counts = unique_rows(stacked)
        if uniq.shape[0] == 0:
            continue

        # cell blocks are contiguous (the cell id is the sort-major
        # column); within a block the rows are ``[time | pair]``-sorted,
        # exactly the segment layout the fused kernel consumes — one
        # segmented pricing call per (cell, label)
        cell_col = uniq[:, 0]
        cell_change = np.nonzero(cell_col[1:] != cell_col[:-1])[0]
        cell_starts = np.concatenate(([0], cell_change + 1, [uniq.shape[0]]))
        for cs, ce in zip(cell_starts[:-1], cell_starts[1:]):
            k = int(cell_col[cs])
            if vec:
                # one phase per cell: vectorization merged all times
                seg = PhaseSegments(
                    pairs=uniq[cs:ce, 1:],
                    counts=counts[cs:ce],
                    starts=np.array([0, ce - cs], dtype=np.int64),
                    n_events=np.array([n_events_cell[k]], dtype=np.int64),
                )
            else:
                seg = segments_from_sorted_unique(
                    uniq[cs:ce, 1 + tw:],
                    counts[cs:ce],
                    uniq[cs:ce, 1: 1 + tw],
                )
            for t in _price_label_segmented(
                programs[k], cells[k][1], cells[k][2],
                per_access[k][label], label, seg, payload, rank,
            ):
                totals[k] += t

    reports: List[CommReport] = []
    for k in range(K):
        pa = per_access[k]
        reports.append(
            CommReport(
                per_access=pa,
                total_time=totals[k],
                total_messages=sum(
                    s.messages_after_vectorization for s in pa.values()
                ),
                total_volume=sum(s.volume for s in pa.values()),
            )
        )
    return reports


def execute_python(
    program: MappedProgram,
    machine: MachineModel,
    collectives: Optional[CM5Model] = None,
    payload: int = 1,
) -> CommReport:
    """Pure-Python reference implementation of :func:`execute`.

    Builds one :class:`CommEvent` per access per domain point and
    re-buckets them with Python dicts — the pre-vectorization behaviour,
    kept as the measured baseline and bit-identity cross-check (same
    pattern as ``phase_time_python``).
    """
    events = program.comm_events_python()
    per_access: Dict[str, AccessCommStats] = {}
    # bucket: (label, time) -> events
    buckets: Dict[Tuple[str, Tuple[int, ...]], List[CommEvent]] = {}
    for ev in events:
        label = ev.access_label
        st = per_access.get(label)
        if st is None:
            st = AccessCommStats(
                label=label,
                classification=_classification_of(program, label),
            )
            per_access[label] = st
        st.events += 1
        if ev.sender_virtual == ev.receiver_virtual:
            st.virtual_local += 1
            continue
        if ev.is_local_phys:
            st.phys_local += 1
            continue
        buckets.setdefault((label, ev.time), []).append(ev)

    total_time = 0.0
    # vectorization merges the buckets of all time steps of one access
    merged: Dict[str, List[List[CommEvent]]] = {}
    for (label, _time), evs in sorted(buckets.items()):
        if _vectorizable(program, label):
            merged.setdefault(label, [[]])[0].extend(evs)
        else:
            merged.setdefault(label, []).append(evs)

    for label, phases in merged.items():
        st = per_access[label]
        for evs in phases:
            if not evs:
                continue
            # coalesce per (sender, receiver) pair into one message
            pair_sizes: Dict[Tuple, int] = {}
            for ev in evs:
                key = (ev.sender, ev.receiver)
                pair_sizes[key] = pair_sizes.get(key, 0) + payload
            msgs = [
                Message(src=s, dst=d, size=sz)
                for (s, d), sz in pair_sizes.items()
            ]
            st.messages_before_vectorization += len(evs)
            st.messages_after_vectorization += len(msgs)
            st.volume += sum(m.size for m in msgs)
            if collectives is not None and st.classification == "macro":
                opt = program.mapping.residual_by_label(label)
                kind = opt.macro.kind.value if opt.macro else "broadcast"
                size = max(pair_sizes.values())
                if kind == "reduction":
                    t = collectives.reduction_time(size)
                else:
                    t = collectives.broadcast_time(size)
                st.macro_ops += 1
                st.time += t
                total_time += t
            else:
                rep = machine.time_phase(msgs)
                st.time += rep.time
                total_time += rep.time

    total_messages = sum(
        s.messages_after_vectorization for s in per_access.values()
    )
    total_volume = sum(s.volume for s in per_access.values())
    return CommReport(
        per_access=per_access,
        total_time=total_time,
        total_messages=total_messages,
        total_volume=total_volume,
    )


def count_nonlocal_virtual(program: MappedProgram) -> Dict[str, int]:
    """Per-access count of element communications that are non-local on
    the *virtual* grid (mapping quality independent of folding).

    Vectorized over the program's (memoized) batches, so calling this
    next to :func:`execute` costs no extra domain enumeration.
    """
    out: Dict[str, int] = {}
    for b in program.comm_batches():
        if b.n == 0:
            continue
        moved = int(
            np.any(b.sender_virtual != b.receiver_virtual, axis=1).sum()
        )
        if moved:
            out[b.access_label] = out.get(b.access_label, 0) + moved
    return out
