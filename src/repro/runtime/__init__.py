"""Runtime executor: map, fold, extract messages, vectorize, cost.

This package substitutes for running a compiled HPF program on real
hardware — it reproduces exactly which messages exist between physical
processors, how they group into macro-communications and how message
vectorization coalesces them, then prices the result on a machine
model.
"""

from .executor import (
    SEGMENTED_ENV,
    AccessCommStats,
    CommReport,
    count_nonlocal_virtual,
    execute,
    execute_group,
    execute_python,
    segmented_pricing_enabled,
    set_segmented_pricing,
)
from .mapping import (
    CommBatch,
    CommEvent,
    Folding,
    MappedProgram,
    PhaseSegments,
    build_phase_segments,
)

__all__ = [
    "Folding",
    "MappedProgram",
    "CommBatch",
    "CommEvent",
    "CommReport",
    "AccessCommStats",
    "PhaseSegments",
    "build_phase_segments",
    "execute",
    "execute_group",
    "execute_python",
    "count_nonlocal_virtual",
    "SEGMENTED_ENV",
    "segmented_pricing_enabled",
    "set_segmented_pricing",
]
