"""Precomputed integer link ids and cached NumPy route arrays.

The per-element simulators in :mod:`repro.machine.contention` and
:mod:`repro.machine.eventsim` used to rebuild every XY route as a list
of tuple-keyed links and probe a Python dict once per link per message.
This module replaces both costs:

* every directed link of a mesh gets a dense **integer id** computed by
  closed-form arithmetic (no enumeration, no dict of tuples);
* every ``(src, dst)`` pair maps to a **read-only NumPy array of link
  ids** along the dimension-order route, built by slice arithmetic and
  memoized in an LRU-bounded cache (one cache per mesh).

With ids in hand the analytic contention bound becomes one
``np.bincount`` over all messages of a phase, and the event simulator's
per-link dict probes become array ``max`` / assignment over id slices.

Link-id layout for a ``p x q`` :class:`~repro.machine.topology.Mesh2D`
(``N = p*q`` nodes, ``H = p*(q-1)`` horizontal and ``V = (p-1)*q``
vertical mesh channels per direction):

======================  =======================  =====================
link                    id                       range
======================  =======================  =====================
``("inj", (i,j))``      ``i*q + j``              ``[0, N)``
``("eje", (i,j))``      ``N + i*q + j``          ``[N, 2N)``
east  ``(i,j)->(i,j+1)``  ``2N + i*(q-1) + j``   ``[2N, 2N+H)``
west  ``(i,j)->(i,j-1)``  ``2N + H + i*(q-1) + (j-1)``  next ``H``
south ``(i,j)->(i+1,j)``  ``2N + 2H + i*q + j``  next ``V``
north ``(i,j)->(i-1,j)``  ``2N + 2H + V + (i-1)*q + j``  next ``V``
======================  =======================  =====================

The 3-D layout (:class:`RouteCache3D`) is the natural extension with
the dimension-order of :meth:`~repro.machine.topology3d.Mesh3D.xyz_route`
(last axis first).

Cache knobs (also constructor arguments):

* ``REPRO_ROUTE_CACHE_SIZE`` — max ``(src, dst)`` entries per mesh
  cache (default 65536);
* ``REPRO_ROUTE_CACHE_MESHES`` — max meshes with a live cache in the
  module-level registry used by :func:`route_cache_for` (default 8).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from .._config import env_int
from ..obs.metrics import Counter as _Counter
from ..obs.metrics import register_provider as _register_provider

DEFAULT_ROUTE_CACHE_SIZE = env_int("REPRO_ROUTE_CACHE_SIZE", 65536)
DEFAULT_MESH_CACHES = env_int("REPRO_ROUTE_CACHE_MESHES", 8)


class _BaseRouteCache:
    """Shared LRU machinery; subclasses supply ``_build`` and link ids.

    Hit/miss accounting uses per-instance observability counters
    (:class:`repro.obs.metrics.Counter`); caches are per-mesh objects
    that tests construct freshly, so the counters are instance-local
    and the module-level registry is exported to metric snapshots
    through a provider (``machine.routecache``) instead of global
    counter names.
    """

    __slots__ = ("mesh", "maxsize", "_hits", "_misses", "_routes")

    def __init__(self, mesh, maxsize: Optional[int] = None):
        self.mesh = mesh
        self.maxsize = DEFAULT_ROUTE_CACHE_SIZE if maxsize is None else int(maxsize)
        if self.maxsize <= 0:
            raise ValueError("route cache size must be positive")
        self._hits = _Counter("machine.routecache.hits")
        self._misses = _Counter("machine.routecache.misses")
        self._routes: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def link_ids(self, src, dst) -> np.ndarray:
        """Read-only int64 array of link ids along the route; empty for
        a local message."""
        key = (src, dst)
        routes = self._routes
        ids = routes.get(key)
        if ids is not None:
            self._hits.inc()
            routes.move_to_end(key)
            return ids
        self._misses.inc()
        ids = self._build(src, dst)
        ids.flags.writeable = False
        routes[key] = ids
        if len(routes) > self.maxsize:
            routes.popitem(last=False)
        return ids

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, key) -> bool:
        return tuple(key) in self._routes

    def clear(self) -> None:
        self._routes.clear()
        self._hits.reset()
        self._misses.reset()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._routes),
            "maxsize": self.maxsize,
            "num_links": self.num_links,
        }

    # subclasses -------------------------------------------------------
    num_links: int

    def _build(self, src, dst) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class RouteCache(_BaseRouteCache):
    """Integer link ids + cached XY route-id arrays for a 2-D mesh."""

    __slots__ = ("_n", "_h", "_v")

    def __init__(self, mesh, maxsize: Optional[int] = None):
        super().__init__(mesh, maxsize)
        p, q = mesh.p, mesh.q
        self._n = p * q
        self._h = p * (q - 1)
        self._v = (p - 1) * q

    @property
    def num_links(self) -> int:
        return 2 * self._n + 2 * self._h + 2 * self._v

    def link_id(self, link) -> int:
        """Id of an explicit :data:`~repro.machine.topology.Link` tuple
        (the inverse of the closed-form layout; used for verification)."""
        q = self.mesh.q
        n, h, v = self._n, self._h, self._v
        kind = link[0]
        if kind == "inj":
            (i, j) = link[1]
            return i * q + j
        if kind == "eje":
            (i, j) = link[1]
            return n + i * q + j
        (si, sj), (di, dj) = link[1], link[2]
        if di == si and dj == sj + 1:  # east
            return 2 * n + si * (q - 1) + sj
        if di == si and dj == sj - 1:  # west
            return 2 * n + h + si * (q - 1) + (sj - 1)
        if dj == sj and di == si + 1:  # south
            return 2 * n + 2 * h + si * q + sj
        if dj == sj and di == si - 1:  # north
            return 2 * n + 2 * h + v + (si - 1) * q + sj
        raise ValueError(f"not a mesh link: {link!r}")

    def _build(self, src, dst) -> np.ndarray:
        mesh = self.mesh
        if not (mesh.contains(src) and mesh.contains(dst)):
            raise ValueError("endpoint outside the mesh")
        si, sj = src
        di, dj = dst
        if src == dst:
            return np.empty(0, dtype=np.int64)
        q = mesh.q
        n, h, v = self._n, self._h, self._v
        nh = abs(dj - sj)
        nv = abs(di - si)
        out = np.empty(nh + nv + 2, dtype=np.int64)
        out[0] = si * q + sj
        if dj > sj:  # east links (si, j) -> (si, j+1), j = sj .. dj-1
            out[1 : 1 + nh] = 2 * n + si * (q - 1) + np.arange(sj, dj)
        elif dj < sj:  # west links (si, j) -> (si, j-1), j = sj .. dj+1
            out[1 : 1 + nh] = 2 * n + h + si * (q - 1) + np.arange(sj - 1, dj - 1, -1)
        if di > si:  # south links (i, dj) -> (i+1, dj), i = si .. di-1
            out[1 + nh : 1 + nh + nv] = 2 * n + 2 * h + np.arange(si, di) * q + dj
        elif di < si:  # north links (i, dj) -> (i-1, dj), i = si .. di+1
            out[1 + nh : 1 + nh + nv] = (
                2 * n + 2 * h + v + np.arange(si - 1, di - 1, -1) * q + dj
            )
        out[-1] = n + di * q + dj
        return out


class RouteCache3D(_BaseRouteCache):
    """Integer link ids + cached XYZ route-id arrays for a 3-D mesh.

    Dimension order matches
    :meth:`~repro.machine.topology3d.Mesh3D.xyz_route`: the last axis
    moves first.
    """

    __slots__ = ("_n", "_hz", "_hy", "_hx")

    def __init__(self, mesh, maxsize: Optional[int] = None):
        super().__init__(mesh, maxsize)
        p, q, r = mesh.p, mesh.q, mesh.r
        self._n = p * q * r
        self._hz = p * q * (r - 1)
        self._hy = p * (q - 1) * r
        self._hx = (p - 1) * q * r

    @property
    def num_links(self) -> int:
        return 2 * (self._n + self._hz + self._hy + self._hx)

    def link_id(self, link) -> int:
        q, r = self.mesh.q, self.mesh.r
        n, hz, hy, hx = self._n, self._hz, self._hy, self._hx
        kind = link[0]
        if kind == "inj":
            i, j, k = link[1]
            return (i * q + j) * r + k
        if kind == "eje":
            i, j, k = link[1]
            return n + (i * q + j) * r + k
        (si, sj, sk), (di, dj, dk) = link[1], link[2]
        if (di, dj) == (si, sj) and dk == sk + 1:  # z+
            return 2 * n + (si * q + sj) * (r - 1) + sk
        if (di, dj) == (si, sj) and dk == sk - 1:  # z-
            return 2 * n + hz + (si * q + sj) * (r - 1) + (sk - 1)
        if (di, dk) == (si, sk) and dj == sj + 1:  # y+
            return 2 * n + 2 * hz + (si * (q - 1) + sj) * r + sk
        if (di, dk) == (si, sk) and dj == sj - 1:  # y-
            return 2 * n + 2 * hz + hy + (si * (q - 1) + (sj - 1)) * r + sk
        if (dj, dk) == (sj, sk) and di == si + 1:  # x+
            return 2 * n + 2 * (hz + hy) + (si * q + sj) * r + sk
        if (dj, dk) == (sj, sk) and di == si - 1:  # x-
            return 2 * n + 2 * (hz + hy) + hx + ((si - 1) * q + sj) * r + sk
        raise ValueError(f"not a mesh link: {link!r}")

    def _build(self, src, dst) -> np.ndarray:
        mesh = self.mesh
        if not (mesh.contains(src) and mesh.contains(dst)):
            raise ValueError("endpoint outside the mesh")
        if src == dst:
            return np.empty(0, dtype=np.int64)
        si, sj, sk = src
        di, dj, dk = dst
        q, r = mesh.q, mesh.r
        n, hz, hy, hx = self._n, self._hz, self._hy, self._hx
        nz, ny, nx = abs(dk - sk), abs(dj - sj), abs(di - si)
        out = np.empty(nz + ny + nx + 2, dtype=np.int64)
        out[0] = (si * q + sj) * r + sk
        pos = 1
        if dk > sk:  # z+ at (si, sj, k), k = sk .. dk-1
            out[pos : pos + nz] = 2 * n + (si * q + sj) * (r - 1) + np.arange(sk, dk)
        elif dk < sk:  # z-
            out[pos : pos + nz] = (
                2 * n + hz + (si * q + sj) * (r - 1) + np.arange(sk - 1, dk - 1, -1)
            )
        pos += nz
        if dj > sj:  # y+ at (si, j, dk), j = sj .. dj-1
            out[pos : pos + ny] = (
                2 * n + 2 * hz + (si * (q - 1) + np.arange(sj, dj)) * r + dk
            )
        elif dj < sj:  # y-
            out[pos : pos + ny] = (
                2 * n
                + 2 * hz
                + hy
                + (si * (q - 1) + np.arange(sj - 1, dj - 1, -1)) * r
                + dk
            )
        pos += ny
        if di > si:  # x+ at (i, dj, dk), i = si .. di-1
            out[pos : pos + nx] = (
                2 * n + 2 * (hz + hy) + (np.arange(si, di) * q + dj) * r + dk
            )
        elif di < si:  # x-
            out[pos : pos + nx] = (
                2 * n
                + 2 * (hz + hy)
                + hx
                + (np.arange(si - 1, di - 1, -1) * q + dj) * r
                + dk
            )
        out[-1] = n + (di * q + dj) * r + dk
        return out


def max_link_load(cache: _BaseRouteCache, id_arrays, sizes) -> int:
    """Bottleneck link load of one phase: each message's size is added
    to every link of its id array, vectorized over all messages at once.

    Uses a float64-weighted ``np.bincount`` (the fast path) whenever the
    total volume bounds every partial sum below ``2**53``, where float64
    integer arithmetic is exact; beyond that it falls back to exact
    per-link accumulation so the result stays bit-identical to the
    pure-Python dict sums at any magnitude.
    """
    if not id_arrays:
        return 0
    lens = [a.shape[0] for a in id_arrays]
    # exact arbitrary-precision bound on every partial sum
    total = sum(s * n for s, n in zip(sizes, lens))
    if total <= 2 ** 53:
        all_ids = np.concatenate(id_arrays)
        weights = np.repeat(
            np.asarray(sizes, dtype=np.int64), np.asarray(lens, dtype=np.int64)
        )
        loads = np.bincount(all_ids, weights=weights, minlength=cache.num_links)
        return int(loads.max())
    # pathological magnitudes: exact Python accumulation
    acc: Dict[int, int] = {}
    for ids, size in zip(id_arrays, sizes):
        for i in ids.tolist():
            acc[i] = acc.get(i, 0) + size
    return max(acc.values(), default=0)


def gather_route_ids(
    cache: _BaseRouteCache, senders: np.ndarray, receivers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Link ids of every ``(senders[i], receivers[i])`` route as one
    ragged gather: ``(flat_ids, lens)`` where ``lens[i]`` is route ``i``'s
    length and ``flat_ids`` is the concatenation of all routes in
    message order.

    The fused pricing kernel's route lookup: instead of probing the
    cache once per message (the per-phase Python loop this replaces),
    the endpoint pairs are deduplicated once — ``unique_rows`` on the
    packed int64 fast path — the cache is probed once per *unique*
    pair, and each message's id slice is materialized by one vectorized
    gather over the unique routes.
    """
    from .backend import unique_rows

    n = senders.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    rank = senders.shape[1]
    pairs = np.concatenate((senders, receivers), axis=1)
    upairs, _counts, inverse = unique_rows(pairs, return_inverse=True)
    routes = [
        cache.link_ids(tuple(row[:rank]), tuple(row[rank:]))
        for row in upairs.tolist()
    ]
    ulens = np.array([r.shape[0] for r in routes], dtype=np.int64)
    ustarts = np.concatenate(([0], np.cumsum(ulens)))
    uflat = (
        np.concatenate(routes) if routes else np.empty(0, dtype=np.int64)
    )
    lens = ulens[inverse]
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lens
    # ragged gather: for message i, rows ustarts[inverse[i]] ..+ lens[i]
    offsets = np.repeat(ustarts[inverse], lens)
    ends = np.cumsum(lens)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - lens, lens)
    return uflat[offsets + within], lens


# ---------------------------------------------------------------------------
# per-mesh registry
# ---------------------------------------------------------------------------

_MESH_CACHES: "OrderedDict[object, _BaseRouteCache]" = OrderedDict()


def route_cache_for(mesh, maxsize: Optional[int] = None) -> _BaseRouteCache:
    """The (shared, LRU-registered) route cache of ``mesh``.

    Meshes are hashable frozen dataclasses, so equal meshes share one
    cache; at most ``REPRO_ROUTE_CACHE_MESHES`` mesh caches are kept
    alive.  ``maxsize`` only applies when this call creates the cache —
    an already-registered cache is returned as-is, whatever its bound.
    Pass an explicit ``RouteCache(mesh, maxsize=...)`` to the
    simulators instead when isolation or a guaranteed bound is needed
    (tests do).
    """
    cache = _MESH_CACHES.get(mesh)
    if cache is not None:
        _MESH_CACHES.move_to_end(mesh)
        return cache
    if hasattr(mesh, "r"):
        cache = RouteCache3D(mesh, maxsize)
    else:
        cache = RouteCache(mesh, maxsize)
    _MESH_CACHES[mesh] = cache
    if DEFAULT_MESH_CACHES <= 0:
        raise ValueError(
            "route cache registry size must be positive "
            "(REPRO_ROUTE_CACHE_MESHES)"
        )
    while len(_MESH_CACHES) > DEFAULT_MESH_CACHES:
        _MESH_CACHES.popitem(last=False)
    return cache


def clear_route_caches() -> None:
    """Drop every registered mesh cache (tests / memory pressure)."""
    _MESH_CACHES.clear()


def route_cache_stats() -> Dict[str, Dict[str, int]]:
    """Stats of all live registry caches, keyed by mesh repr."""
    return {repr(mesh): cache.stats() for mesh, cache in _MESH_CACHES.items()}


# live registry stats ride along in obs snapshots
_register_provider("machine.routecache", route_cache_stats)
