"""3-D mesh topology (Cray T3D-style) and dimension-order routing.

Section 5.1 notes that "some current-generation machines have a 2-D
topology (Intel Paragon) or 3-D topology (Cray T3D), hence the cases
m = 2 and m = 3 are of particular practical interest", and the
elementary-matrix machinery is stated for arbitrary dimension.  This
module provides the 3-D substrate: XYZ dimension-order routing with
injection/ejection links, mirroring :class:`~repro.machine.topology.Mesh2D`.

The analytic timing surface is shared with the 2-D mesh: the generic
:func:`~repro.machine.contention.phase_time` works on any mesh with a
route cache, so :func:`phase_time_3d` is its 3-D entry point and
returns the same :class:`~repro.machine.contention.PhaseReport`
(time plus per-link utilization breakdown), not a bare float.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .topology import Message

Node3 = Tuple[int, int, int]
Link = Tuple

#: Point-to-point messages are rank-generic: a 3-D "message" is the
#: same record as a 2-D one, with 3-tuple endpoints.  The historical
#: name is kept for callers of the 3-D pattern generators.
Message3 = Message


@dataclass(frozen=True)
class Mesh3D:
    """A ``P x Q x R`` mesh of physical processors."""

    p: int
    q: int
    r: int

    def __post_init__(self):
        if min(self.p, self.q, self.r) <= 0:
            raise ValueError("mesh dimensions must be positive")

    @property
    def size(self) -> int:
        return self.p * self.q * self.r

    @property
    def dims(self) -> Tuple[int, int, int]:
        """Side lengths, one per physical dimension (the common mesh
        surface shared with :class:`~repro.machine.topology.Mesh2D`)."""
        return (self.p, self.q, self.r)

    @property
    def ndim(self) -> int:
        return 3

    def nodes(self) -> Iterator[Node3]:
        for i in range(self.p):
            for j in range(self.q):
                for k in range(self.r):
                    yield (i, j, k)

    def contains(self, n: Node3) -> bool:
        return (
            0 <= n[0] < self.p and 0 <= n[1] < self.q and 0 <= n[2] < self.r
        )

    def hops(self, src: Node3, dst: Node3) -> int:
        return sum(abs(a - b) for a, b in zip(src, dst))

    @staticmethod
    def route_hops(route: Sequence[Link]) -> int:
        """Network hops of a route from :meth:`xyz_route`; equals
        ``len(route) - 2`` for remote pairs and agrees with
        :meth:`hops` (same invariant as
        :meth:`~repro.machine.topology.Mesh2D.route_hops`)."""
        return 0 if not route else len(route) - 2

    def xyz_route(self, src: Node3, dst: Node3) -> List[Link]:
        """Dimension-order route (last axis first, matching XY order on
        2-D meshes), with injection/ejection links."""
        if not (self.contains(src) and self.contains(dst)):
            raise ValueError("endpoint outside the mesh")
        if src == dst:
            return []
        links: List[Link] = [("inj", src)]
        cur = list(src)
        for axis in (2, 1, 0):
            while cur[axis] != dst[axis]:
                step = 1 if dst[axis] > cur[axis] else -1
                nxt = list(cur)
                nxt[axis] += step
                links.append(("net", tuple(cur), tuple(nxt)))
                cur = nxt
        links.append(("eje", dst))
        return links

    def route(self, src: Node3, dst: Node3) -> List[Link]:
        """Dimension-order route — the rank-generic name every mesh
        exposes (here an alias for :meth:`xyz_route`)."""
        return self.xyz_route(src, dst)


def phase_time_3d(mesh: Mesh3D, messages, params, cache=None):
    """Analytic link-contention bound on a 3-D mesh.

    Same structure — and same implementation — as the 2-D model: the
    generic :func:`~repro.machine.contention.phase_time` consumes cached
    integer link-id arrays and accumulates loads through the shared
    :func:`~repro.machine.routecache.max_link_load` helper; this
    function is the 3-D-named entry point.  Returns a full
    :class:`~repro.machine.contention.PhaseReport`.
    """
    from .contention import phase_time

    return phase_time(mesh, messages, params, cache=cache)


def phase_time_3d_python(mesh: Mesh3D, messages, params):
    """Pure-Python reference implementation of :func:`phase_time_3d`
    (per-link dict probes) — baseline and bit-identity cross-check."""
    link_load = {}
    sender_msgs = {}
    max_hops = 0
    total_volume = 0
    local = 0
    remote = 0
    for m in messages:
        if m.src == m.dst:
            local += 1
            continue
        remote += 1
        total_volume += m.size
        sender_msgs[m.src] = sender_msgs.get(m.src, 0) + 1
        max_hops = max(max_hops, mesh.hops(m.src, m.dst))
        for link in mesh.xyz_route(m.src, m.dst):
            link_load[link] = link_load.get(link, 0) + m.size
    max_load = max(link_load.values(), default=0)
    max_fanout = max(sender_msgs.values(), default=0)
    from .contention import PhaseReport

    return PhaseReport(
        time=(
            params.alpha * max_fanout
            + params.beta * max_load
            + params.gamma * max_hops
        ),
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=remote,
        total_volume=total_volume,
        local_messages=local,
    )


def affine_pattern_3d(
    dists, t_mat, size: int = 1, wrap: bool = True, merge: bool = True
):
    """3-D analogue of :func:`~repro.machine.patterns.affine_pattern`:
    ``dists`` is a triple of 1-D distributions, ``t_mat`` a 3x3 integer
    matrix; every virtual processor ``v`` sends to ``T v``."""
    if t_mat.shape != (3, 3):
        raise ValueError("affine_pattern_3d expects a 3x3 matrix")
    d0, d1, d2 = dists
    n0, n1, n2 = d0.n, d1.n, d2.n
    sizes = {}
    out = []
    for i in range(n0):
        for j in range(n1):
            for k in range(n2):
                di = t_mat[0, 0] * i + t_mat[0, 1] * j + t_mat[0, 2] * k
                dj = t_mat[1, 0] * i + t_mat[1, 1] * j + t_mat[1, 2] * k
                dk = t_mat[2, 0] * i + t_mat[2, 1] * j + t_mat[2, 2] * k
                if wrap:
                    di, dj, dk = di % n0, dj % n1, dk % n2
                elif not (0 <= di < n0 and 0 <= dj < n1 and 0 <= dk < n2):
                    continue
                src = (d0.phys(i), d1.phys(j), d2.phys(k))
                dst = (d0.phys(di), d1.phys(dj), d2.phys(dk))
                if merge:
                    key = (src, dst)
                    sizes[key] = sizes.get(key, 0) + size
                else:
                    out.append(Message(src=src, dst=dst, size=size))
    if merge:
        return [
            Message(src=s, dst=d, size=sz)
            for (s, d), sz in sorted(sizes.items())
        ]
    return out
