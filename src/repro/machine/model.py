"""The machine-model abstraction: one protocol, one name registry.

Every mesh machine the pipeline can price — Paragon-style 2-D, Cray
T3D-style 3-D, and any future backend — implements the same
:class:`MachineModel` surface:

* ``mesh`` — the physical topology (anything with ``dims``/``route``);
* ``params`` — the :class:`~repro.machine.contention.CostParams`;
* ``time_phase(messages) -> PhaseReport`` — price one phase of
  simultaneous point-to-point messages;
* ``time_phases(phases) -> float`` — price a sequence of phases;
* ``time_general(dists, t_mat, size) -> float`` — direct element-wise
  execution of a data-flow matrix;
* ``time_decomposed(dists, factors, size) -> float`` — the factored
  axis-parallel schedule.

The **registry** maps the machine names the CLI and the campaign layer
speak (``paragon``, ``cm5``, ``t3d``) to a :class:`MachineSpec`: the
expected mesh rank, a point-to-point model factory and an optional
hardware-collectives factory (the CM-5 situation of Table 1 is "Paragon
point-to-point pricing plus fat-tree collectives", so ``cm5`` shares
Paragon's factory).  New backends register once and are immediately
reachable from ``python -m repro`` and ``repro.campaign`` — the
extension point for every multi-backend direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..report import format_mesh
from .contention import CostParams, PhaseReport


@runtime_checkable
class MachineModel(Protocol):
    """Structural interface every mesh machine model implements."""

    mesh: object
    params: CostParams

    def time_phase(self, messages) -> PhaseReport:
        ...

    def time_phases(self, phases) -> float:
        ...

    def time_general(self, dists, t_mat, size: int = 1) -> float:
        ...

    def time_decomposed(self, dists, factors, size: int = 1) -> float:
        ...


@dataclass(frozen=True)
class MachineSpec:
    """One registry entry: how to build a named machine for a mesh.

    ``factory`` receives the mesh side lengths as positional arguments
    (``factory(p, q)`` / ``factory(p, q, r)``); ``collectives`` — when
    set — receives the node count and returns the hardware-collectives
    model priced alongside the point-to-point machine.
    """

    name: str
    mesh_rank: int
    factory: Callable[..., MachineModel]
    collectives: Optional[Callable[[int], object]] = None
    description: str = ""

    def make(self, mesh: Sequence[int]) -> MachineModel:
        """Instantiate the model, validating the mesh rank."""
        dims = tuple(int(d) for d in mesh)
        if len(dims) != self.mesh_rank:
            raise ValueError(
                f"machine {self.name!r} needs a {self.mesh_rank}-D mesh, "
                f"got {format_mesh(dims)} ({len(dims)}-D)"
            )
        if any(d <= 0 for d in dims):
            raise ValueError(
                f"machine {self.name!r}: mesh sides must be positive, "
                f"got {format_mesh(dims)}"
            )
        return self.factory(*dims)

    def make_collectives(self, mesh: Sequence[int]):
        """The hardware-collectives model for this mesh, or ``None``."""
        if self.collectives is None:
            return None
        nodes = 1
        for d in mesh:
            nodes *= int(d)
        return self.collectives(nodes)


_REGISTRY: "Dict[str, MachineSpec]" = {}


def register_machine(spec: MachineSpec) -> MachineSpec:
    """Register (or replace) a named machine model; returns ``spec``."""
    _REGISTRY[spec.name] = spec
    return spec


def machine_names() -> Tuple[str, ...]:
    """All registered machine names, in registration order."""
    return tuple(_REGISTRY)


def machine_spec(name: str) -> MachineSpec:
    """Look up a registered machine by name (friendly error)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r} (choose from {machine_names()})"
        ) from None


def make_machine(name: str, mesh: Sequence[int]) -> MachineModel:
    """Build the named machine on ``mesh`` (shorthand for
    ``machine_spec(name).make(mesh)``)."""
    return machine_spec(name).make(mesh)


def machine_for_mesh(mesh: Sequence[int]) -> MachineSpec:
    """The default point-to-point machine of a mesh rank (the first
    registered spec without a collectives factory whose rank matches:
    ``paragon`` for 2-D, ``t3d`` for 3-D)."""
    rank = len(tuple(mesh))
    for spec in _REGISTRY.values():
        if spec.mesh_rank == rank and spec.collectives is None:
            return spec
    ranks = sorted({s.mesh_rank for s in _REGISTRY.values()})
    raise ValueError(
        f"no machine model for a {rank}-D mesh {format_mesh(mesh)} "
        f"(registered mesh ranks: {ranks})"
    )
