"""Analytic link-contention timing for a mesh (the Paragon-style
model).

All messages of one communication *phase* start simultaneously.  Each
message loads every link of its XY route with its size; links serve
traffic at one size-unit per time-unit, so a phase cannot finish before
its most loaded link has drained.  Adding the per-message start-up cost
(paid serially by each sender for each of its messages) and the pipeline
latency of the longest route gives

    ``T = alpha * max_msgs_per_sender + beta * max_link_load
         + gamma * max_hops``

This is the standard LogGP-flavoured bottleneck bound; it reproduces
the phenomena the paper measures — serial conflicts on shared links —
without modelling flit-level detail (the event-driven simulator in
:mod:`repro.machine.eventsim` cross-checks it).

:func:`phase_time` is vectorized: routes come from the per-mesh
:class:`~repro.machine.routecache.RouteCache` as integer link-id
arrays and the link-load accumulation is a single ``np.bincount`` over
all messages of the phase.  The original per-element implementation is
kept as :func:`phase_time_python` — it is the baseline the perf-core
benchmark measures against, and a cross-check that vectorization
changed nothing (the two are bit-identical; see
``tests/machine/test_routecache.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .routecache import max_link_load, route_cache_for
from .topology import Link, Mesh2D, Message


@dataclass(frozen=True)
class CostParams:
    """Machine constants (arbitrary but consistent time units)."""

    alpha: float = 20.0  # per-message start-up at the sender
    beta: float = 1.0  # per size-unit per bottleneck link
    gamma: float = 0.5  # per hop pipeline latency

    def scaled(self, **kw) -> "CostParams":
        vals = {"alpha": self.alpha, "beta": self.beta, "gamma": self.gamma}
        vals.update(kw)
        return CostParams(**vals)


@dataclass
class PhaseReport:
    """Timing breakdown of one communication phase."""

    time: float
    max_link_load: int
    max_hops: int
    max_msgs_per_sender: int
    total_messages: int
    total_volume: int
    local_messages: int

    def describe(self) -> str:
        return (
            f"time={self.time:.1f} (link_load={self.max_link_load}, "
            f"hops={self.max_hops}, sender_fanout={self.max_msgs_per_sender}, "
            f"msgs={self.total_messages}, volume={self.total_volume})"
        )


def phase_time(
    mesh,
    messages: Sequence[Message],
    params: CostParams,
    cache=None,
) -> PhaseReport:
    """Time for one phase of simultaneous messages on the mesh.

    Rank-generic: ``mesh`` may be any mesh with a route cache
    (:class:`~repro.machine.topology.Mesh2D`,
    :class:`~repro.machine.topology3d.Mesh3D`); message endpoints are
    coordinate tuples of the matching rank.  Vectorized: link loads
    accumulate by ``np.bincount`` over the cached link-id arrays of all
    routes at once.  ``cache`` defaults to the shared per-mesh
    :func:`~repro.machine.routecache.route_cache_for` cache; pass an
    explicit one for isolation.
    """
    if cache is None:
        cache = route_cache_for(mesh)
    sender_msgs: Dict = {}
    max_hops = 0
    total_volume = 0
    local = 0
    remote = 0
    id_arrays: List = []
    sizes: List[int] = []
    for m in messages:
        if m.src == m.dst:
            local += 1
            continue
        remote += 1
        total_volume += m.size
        sender_msgs[m.src] = sender_msgs.get(m.src, 0) + 1
        ids = cache.link_ids(m.src, m.dst)
        n = ids.shape[0]
        if n - 2 > max_hops:
            max_hops = n - 2  # == mesh.hops(m.src, m.dst) by construction
        id_arrays.append(ids)
        sizes.append(m.size)
    max_load = max_link_load(cache, id_arrays, sizes)
    max_fanout = max(sender_msgs.values(), default=0)
    time = (
        params.alpha * max_fanout
        + params.beta * max_load
        + params.gamma * max_hops
    )
    return PhaseReport(
        time=time,
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=remote,
        total_volume=total_volume,
        local_messages=local,
    )


def phase_time_arrays(
    mesh,
    senders: np.ndarray,
    receivers: np.ndarray,
    sizes: np.ndarray,
    params: CostParams,
    cache=None,
) -> PhaseReport:
    """Array-native :func:`phase_time`: one phase given endpoint
    coordinate matrices instead of :class:`Message` objects.

    ``senders``/``receivers`` are ``(n, rank)`` int64 coordinate rows,
    ``sizes`` the ``(n,)`` message sizes.  Bit-identical to building
    the equivalent ``Message`` list and calling :func:`phase_time`
    (asserted in ``tests/machine/test_backend.py``): fanout and hop
    counts come from array reductions — max hops equals the Manhattan
    distance, which is exactly ``route length - 2`` for the caches'
    dimension-order routes — while the per-link load accumulation and
    the final cost formula reuse the same :func:`max_link_load` /
    ``CostParams`` arithmetic on the same Python ints.
    """
    if cache is None:
        cache = route_cache_for(mesh)
    senders = np.asarray(senders, dtype=np.int64)
    receivers = np.asarray(receivers, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    nonlocal_mask = np.any(senders != receivers, axis=1)
    local = int(senders.shape[0] - nonlocal_mask.sum())
    if local:
        senders = senders[nonlocal_mask]
        receivers = receivers[nonlocal_mask]
        sizes = sizes[nonlocal_mask]
    remote = senders.shape[0]
    if remote:
        _, fan_counts = np.unique(senders, axis=0, return_counts=True)
        max_fanout = int(fan_counts.max())
        max_hops = int(np.abs(receivers - senders).sum(axis=1).max())
    else:
        max_fanout = 0
        max_hops = 0
    size_list = sizes.tolist()
    id_arrays = [
        cache.link_ids(tuple(s), tuple(d))
        for s, d in zip(senders.tolist(), receivers.tolist())
    ]
    max_load = max_link_load(cache, id_arrays, size_list)
    time = (
        params.alpha * max_fanout
        + params.beta * max_load
        + params.gamma * max_hops
    )
    return PhaseReport(
        time=time,
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=remote,
        total_volume=sum(size_list),
        local_messages=local,
    )


def phase_time_python(
    mesh: Mesh2D, messages: Sequence[Message], params: CostParams
) -> PhaseReport:
    """Pure-Python reference implementation of :func:`phase_time`.

    Rebuilds every route as tuple links and probes a dict per link —
    the pre-vectorization behaviour, kept as the perf-core baseline and
    bit-identity cross-check.
    """
    link_load: Dict[Link, int] = {}
    sender_msgs: Dict = {}
    max_hops = 0
    total_volume = 0
    local = 0
    remote = 0
    for m in messages:
        if m.is_local:
            local += 1
            continue
        remote += 1
        total_volume += m.size
        sender_msgs[m.src] = sender_msgs.get(m.src, 0) + 1
        max_hops = max(max_hops, mesh.hops(m.src, m.dst))
        for link in mesh.xy_route(m.src, m.dst):
            link_load[link] = link_load.get(link, 0) + m.size
    max_load = max(link_load.values(), default=0)
    max_fanout = max(sender_msgs.values(), default=0)
    time = (
        params.alpha * max_fanout
        + params.beta * max_load
        + params.gamma * max_hops
    )
    return PhaseReport(
        time=time,
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=remote,
        total_volume=total_volume,
        local_messages=local,
    )


def phased_time(
    mesh,
    phases: Iterable[Sequence[Message]],
    params: CostParams,
) -> List[PhaseReport]:
    """Time a sequence of phases executed one after the other (the
    decomposed-communication schedule: L then U, not in parallel).
    Rank-generic like :func:`phase_time`."""
    return [phase_time(mesh, msgs, params) for msgs in phases]


def total_time(reports: Iterable[PhaseReport]) -> float:
    return sum(r.time for r in reports)
