"""Analytic link-contention timing for a mesh (the Paragon-style
model).

All messages of one communication *phase* start simultaneously.  Each
message loads every link of its XY route with its size; links serve
traffic at one size-unit per time-unit, so a phase cannot finish before
its most loaded link has drained.  Adding the per-message start-up cost
(paid serially by each sender for each of its messages) and the pipeline
latency of the longest route gives

    ``T = alpha * max_msgs_per_sender + beta * max_link_load
         + gamma * max_hops``

This is the standard LogGP-flavoured bottleneck bound; it reproduces
the phenomena the paper measures — serial conflicts on shared links —
without modelling flit-level detail (the event-driven simulator in
:mod:`repro.machine.eventsim` cross-checks it).

:func:`phase_time` is vectorized: routes come from the per-mesh
:class:`~repro.machine.routecache.RouteCache` as integer link-id
arrays and the link-load accumulation is a single ``np.bincount`` over
all messages of the phase.  The original per-element implementation is
kept as :func:`phase_time_python` — it is the baseline the perf-core
benchmark measures against, and a cross-check that vectorization
changed nothing (the two are bit-identical; see
``tests/machine/test_routecache.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .backend import segment_max, unique_rows, weighted_bincount
from .routecache import gather_route_ids, max_link_load, route_cache_for
from .topology import Link, Mesh2D, Message


@dataclass(frozen=True)
class CostParams:
    """Machine constants (arbitrary but consistent time units)."""

    alpha: float = 20.0  # per-message start-up at the sender
    beta: float = 1.0  # per size-unit per bottleneck link
    gamma: float = 0.5  # per hop pipeline latency

    def scaled(self, **kw) -> "CostParams":
        vals = {"alpha": self.alpha, "beta": self.beta, "gamma": self.gamma}
        vals.update(kw)
        return CostParams(**vals)


@dataclass
class PhaseReport:
    """Timing breakdown of one communication phase."""

    time: float
    max_link_load: int
    max_hops: int
    max_msgs_per_sender: int
    total_messages: int
    total_volume: int
    local_messages: int

    def describe(self) -> str:
        return (
            f"time={self.time:.1f} (link_load={self.max_link_load}, "
            f"hops={self.max_hops}, sender_fanout={self.max_msgs_per_sender}, "
            f"msgs={self.total_messages}, volume={self.total_volume})"
        )


def phase_time(
    mesh,
    messages: Sequence[Message],
    params: CostParams,
    cache=None,
) -> PhaseReport:
    """Time for one phase of simultaneous messages on the mesh.

    Rank-generic: ``mesh`` may be any mesh with a route cache
    (:class:`~repro.machine.topology.Mesh2D`,
    :class:`~repro.machine.topology3d.Mesh3D`); message endpoints are
    coordinate tuples of the matching rank.  Vectorized: link loads
    accumulate by ``np.bincount`` over the cached link-id arrays of all
    routes at once.  ``cache`` defaults to the shared per-mesh
    :func:`~repro.machine.routecache.route_cache_for` cache; pass an
    explicit one for isolation.
    """
    if cache is None:
        cache = route_cache_for(mesh)
    sender_msgs: Dict = {}
    max_hops = 0
    total_volume = 0
    local = 0
    remote = 0
    id_arrays: List = []
    sizes: List[int] = []
    for m in messages:
        if m.src == m.dst:
            local += 1
            continue
        remote += 1
        total_volume += m.size
        sender_msgs[m.src] = sender_msgs.get(m.src, 0) + 1
        ids = cache.link_ids(m.src, m.dst)
        n = ids.shape[0]
        if n - 2 > max_hops:
            max_hops = n - 2  # == mesh.hops(m.src, m.dst) by construction
        id_arrays.append(ids)
        sizes.append(m.size)
    max_load = max_link_load(cache, id_arrays, sizes)
    max_fanout = max(sender_msgs.values(), default=0)
    time = (
        params.alpha * max_fanout
        + params.beta * max_load
        + params.gamma * max_hops
    )
    return PhaseReport(
        time=time,
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=remote,
        total_volume=total_volume,
        local_messages=local,
    )


def phase_time_arrays(
    mesh,
    senders: np.ndarray,
    receivers: np.ndarray,
    sizes: np.ndarray,
    params: CostParams,
    cache=None,
) -> PhaseReport:
    """Array-native :func:`phase_time`: one phase given endpoint
    coordinate matrices instead of :class:`Message` objects.

    ``senders``/``receivers`` are ``(n, rank)`` int64 coordinate rows,
    ``sizes`` the ``(n,)`` message sizes.  Bit-identical to building
    the equivalent ``Message`` list and calling :func:`phase_time`
    (asserted in ``tests/machine/test_backend.py``): fanout and hop
    counts come from array reductions — max hops equals the Manhattan
    distance, which is exactly ``route length - 2`` for the caches'
    dimension-order routes — while the per-link load accumulation and
    the final cost formula reuse the same :func:`max_link_load` /
    ``CostParams`` arithmetic on the same Python ints.
    """
    if cache is None:
        cache = route_cache_for(mesh)
    senders = np.asarray(senders, dtype=np.int64)
    receivers = np.asarray(receivers, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    nonlocal_mask = np.any(senders != receivers, axis=1)
    local = int(senders.shape[0] - nonlocal_mask.sum())
    if local:
        senders = senders[nonlocal_mask]
        receivers = receivers[nonlocal_mask]
        sizes = sizes[nonlocal_mask]
    remote = senders.shape[0]
    if remote:
        _, fan_counts = unique_rows(senders)
        max_fanout = int(fan_counts.max())
        max_hops = int(np.abs(receivers - senders).sum(axis=1).max())
    else:
        max_fanout = 0
        max_hops = 0
    size_list = sizes.tolist()
    id_arrays = [
        cache.link_ids(tuple(s), tuple(d))
        for s, d in zip(senders.tolist(), receivers.tolist())
    ]
    max_load = max_link_load(cache, id_arrays, size_list)
    time = (
        params.alpha * max_fanout
        + params.beta * max_load
        + params.gamma * max_hops
    )
    return PhaseReport(
        time=time,
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=remote,
        total_volume=sum(size_list),
        local_messages=local,
    )


@dataclass
class SegmentedPhaseReport:
    """Per-segment timing breakdown of a fused multi-phase pricing
    call: every field is an ``(S,)`` array, one entry per phase segment
    (:func:`phase_times_segmented`).  :meth:`report` rebuilds the exact
    :class:`PhaseReport` of one segment — the surface the bit-identity
    property suite compares against the per-phase path."""

    times: np.ndarray
    max_link_load: np.ndarray
    max_hops: np.ndarray
    max_msgs_per_sender: np.ndarray
    total_messages: np.ndarray
    total_volume: np.ndarray
    local_messages: np.ndarray

    def __len__(self) -> int:
        return self.times.shape[0]

    def report(self, i: int) -> PhaseReport:
        return PhaseReport(
            time=float(self.times[i]),
            max_link_load=int(self.max_link_load[i]),
            max_hops=int(self.max_hops[i]),
            max_msgs_per_sender=int(self.max_msgs_per_sender[i]),
            total_messages=int(self.total_messages[i]),
            total_volume=int(self.total_volume[i]),
            local_messages=int(self.local_messages[i]),
        )


#: dense per-(phase, link) load matrices are capped at this many cells;
#: larger phase x link products take the compressed-key path instead
_DENSE_LOAD_CELLS = 1 << 22

#: float64 integer arithmetic is exact below this (same bound as
#: :func:`~repro.machine.routecache.max_link_load`)
_EXACT_F64 = 2 ** 53


def _segmented_exact_fallback(
    mesh, senders, receivers, sizes, phase_ids, params, cache, n_phases
) -> "SegmentedPhaseReport":
    """Pathological-magnitude fallback: price each segment through the
    per-phase :func:`phase_time_arrays` exact path and stack the
    reports (bit-identical at any magnitude, never fast)."""
    reports = []
    for s in range(n_phases):
        m = phase_ids == s
        reports.append(
            phase_time_arrays(
                mesh, senders[m], receivers[m], sizes[m], params, cache
            )
        )
    return SegmentedPhaseReport(
        times=np.array([r.time for r in reports], dtype=np.float64),
        max_link_load=np.array([r.max_link_load for r in reports], dtype=np.int64),
        max_hops=np.array([r.max_hops for r in reports], dtype=np.int64),
        max_msgs_per_sender=np.array(
            [r.max_msgs_per_sender for r in reports], dtype=np.int64
        ),
        total_messages=np.array([r.total_messages for r in reports], dtype=np.int64),
        total_volume=np.array([r.total_volume for r in reports], dtype=np.int64),
        local_messages=np.array([r.local_messages for r in reports], dtype=np.int64),
    )


def phase_times_segmented(
    mesh,
    senders: np.ndarray,
    receivers: np.ndarray,
    sizes: np.ndarray,
    phase_ids: np.ndarray,
    params: CostParams,
    cache=None,
    n_phases: Optional[int] = None,
) -> SegmentedPhaseReport:
    """Fused :func:`phase_time_arrays` over many phases in one call.

    All messages of all phases enter together: ``senders``/``receivers``
    are ``(n, rank)`` int64 coordinate rows, ``sizes`` the message
    sizes, and ``phase_ids`` an int64 segment column assigning each row
    to its phase (ids in ``[0, n_phases)``; segments may be empty).
    One kernel prices every segment:

    * per-link loads come from a single weighted ``bincount`` over the
      combined key ``phase_id * num_links + link_id``, with the link
      ids of all routes gathered at once from the route cache
      (:func:`~repro.machine.routecache.gather_route_ids`);
    * per-segment max-fanout / max-hops / max-load are scatter-max
      (``np.maximum.at``-style) reductions;
    * the :class:`CostParams` cost formula evaluates vectorized across
      all segments.

    Bit-identical to calling :func:`phase_time_arrays` once per segment
    (property-tested in ``tests/runtime/test_segmented_pricing.py``):
    every sum stays in exact float64 integer range — the conservative
    magnitude guard falls back to the per-phase exact path otherwise —
    and the final ``alpha*fanout + beta*load + gamma*hops`` arithmetic
    performs the same IEEE operations in the same order.  The group-by
    and scatter reductions route through the
    ``REPRO_PRICE_BACKEND`` array namespace
    (:mod:`repro.machine.backend`), so the CuPy knob covers this hot
    path too.
    """
    if cache is None:
        cache = route_cache_for(mesh)
    senders = np.asarray(senders, dtype=np.int64)
    receivers = np.asarray(receivers, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    phase_ids = np.asarray(phase_ids, dtype=np.int64)
    n = senders.shape[0]
    if n_phases is None:
        n_phases = int(phase_ids.max()) + 1 if n else 0
    zeros_i = np.zeros(n_phases, dtype=np.int64)
    if n == 0 or n_phases == 0:
        return SegmentedPhaseReport(
            times=np.zeros(n_phases, dtype=np.float64),
            max_link_load=zeros_i,
            max_hops=zeros_i.copy(),
            max_msgs_per_sender=zeros_i.copy(),
            total_messages=zeros_i.copy(),
            total_volume=zeros_i.copy(),
            local_messages=zeros_i.copy(),
        )

    nonlocal_mask = np.any(senders != receivers, axis=1)
    local_messages = np.bincount(
        phase_ids[~nonlocal_mask], minlength=n_phases
    ).astype(np.int64)
    if not nonlocal_mask.all():
        senders = senders[nonlocal_mask]
        receivers = receivers[nonlocal_mask]
        sizes = sizes[nonlocal_mask]
        phase_ids = phase_ids[nonlocal_mask]
    remote = senders.shape[0]
    if remote == 0:
        return SegmentedPhaseReport(
            times=np.zeros(n_phases, dtype=np.float64),
            max_link_load=zeros_i,
            max_hops=zeros_i.copy(),
            max_msgs_per_sender=zeros_i.copy(),
            total_messages=zeros_i.copy(),
            total_volume=zeros_i.copy(),
            local_messages=local_messages,
        )

    hops = np.abs(receivers - senders).sum(axis=1)
    # conservative exactness bound on every float64 partial sum (per
    # (phase, link) load, per-phase volume); the max possible hop count
    # bounds the route lengths without materializing them first
    max_size = int(sizes.max())
    max_route = int(hops.max()) + 2
    if max_size < 0 or max_size * max_route * remote > _EXACT_F64:
        return _segmented_exact_fallback(
            mesh, senders, receivers, sizes, phase_ids, params, cache, n_phases
        )

    total_messages = np.bincount(phase_ids, minlength=n_phases).astype(np.int64)
    total_volume = weighted_bincount(
        phase_ids, sizes.astype(np.float64), n_phases
    ).astype(np.int64)
    max_hops = segment_max(hops, phase_ids, n_phases)

    # max messages per sender, per segment: one group-by over the
    # (phase, sender) key, then a scatter-max of the group counts
    fan_rows = np.concatenate((phase_ids[:, None], senders), axis=1)
    ufan, fan_counts = unique_rows(fan_rows)
    max_fanout = segment_max(fan_counts.astype(np.int64), ufan[:, 0], n_phases)

    # bottleneck link load per segment: one weighted bincount over the
    # combined (phase, link) key
    flat_ids, lens = gather_route_ids(cache, senders, receivers)
    num_links = cache.num_links
    keys = np.repeat(phase_ids, lens) * num_links + flat_ids
    weights = np.repeat(sizes, lens).astype(np.float64)
    if n_phases * num_links <= _DENSE_LOAD_CELLS:
        loads = weighted_bincount(keys, weights, n_phases * num_links)
        max_load = (
            loads.reshape(n_phases, num_links).max(axis=1).astype(np.int64)
        )
    else:
        ukeys, inv = np.unique(keys, return_inverse=True)
        sums = weighted_bincount(
            np.asarray(inv).ravel(), weights, ukeys.shape[0]
        )
        max_load = segment_max(
            sums.astype(np.int64), ukeys // num_links, n_phases
        )

    times = (
        params.alpha * max_fanout.astype(np.float64)
        + params.beta * max_load.astype(np.float64)
        + params.gamma * max_hops.astype(np.float64)
    )
    return SegmentedPhaseReport(
        times=times,
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=total_messages,
        total_volume=total_volume,
        local_messages=local_messages,
    )


def phase_time_python(
    mesh: Mesh2D, messages: Sequence[Message], params: CostParams
) -> PhaseReport:
    """Pure-Python reference implementation of :func:`phase_time`.

    Rebuilds every route as tuple links and probes a dict per link —
    the pre-vectorization behaviour, kept as the perf-core baseline and
    bit-identity cross-check.
    """
    link_load: Dict[Link, int] = {}
    sender_msgs: Dict = {}
    max_hops = 0
    total_volume = 0
    local = 0
    remote = 0
    for m in messages:
        if m.is_local:
            local += 1
            continue
        remote += 1
        total_volume += m.size
        sender_msgs[m.src] = sender_msgs.get(m.src, 0) + 1
        max_hops = max(max_hops, mesh.hops(m.src, m.dst))
        for link in mesh.xy_route(m.src, m.dst):
            link_load[link] = link_load.get(link, 0) + m.size
    max_load = max(link_load.values(), default=0)
    max_fanout = max(sender_msgs.values(), default=0)
    time = (
        params.alpha * max_fanout
        + params.beta * max_load
        + params.gamma * max_hops
    )
    return PhaseReport(
        time=time,
        max_link_load=max_load,
        max_hops=max_hops,
        max_msgs_per_sender=max_fanout,
        total_messages=remote,
        total_volume=total_volume,
        local_messages=local,
    )


def phased_time(
    mesh,
    phases: Iterable[Sequence[Message]],
    params: CostParams,
) -> List[PhaseReport]:
    """Time a sequence of phases executed one after the other (the
    decomposed-communication schedule: L then U, not in parallel).
    Rank-generic like :func:`phase_time`."""
    return [phase_time(mesh, msgs, params) for msgs in phases]


def total_time(reports: Iterable[PhaseReport]) -> float:
    return sum(r.time for r in reports)
