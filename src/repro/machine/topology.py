"""Mesh topology and XY dimension-order routing.

The Intel Paragon (Table 2, Figure 8) is a 2-D mesh with wormhole
routing; what matters for the paper's experiments is that simultaneous
messages sharing a link serialize.  We model the mesh with explicit
directed links — including *injection* and *ejection* links between
each node and the network, so several messages leaving (or entering)
one node also serialize, which is exactly the effect that makes a
non-decomposed affine communication slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

Node = Tuple[int, int]
#: A directed link: ("inj", node), ("eje", node) or ("net", a, b).
Link = Tuple


@dataclass(frozen=True)
class Mesh2D:
    """A ``P x Q`` mesh of physical processors."""

    p: int
    q: int

    def __post_init__(self):
        if self.p <= 0 or self.q <= 0:
            raise ValueError("mesh dimensions must be positive")

    @property
    def size(self) -> int:
        return self.p * self.q

    @property
    def dims(self) -> Tuple[int, int]:
        """Side lengths, one per physical dimension (the common mesh
        surface shared with :class:`~repro.machine.topology3d.Mesh3D`)."""
        return (self.p, self.q)

    @property
    def ndim(self) -> int:
        return 2

    def nodes(self) -> Iterator[Node]:
        for i in range(self.p):
            for j in range(self.q):
                yield (i, j)

    def contains(self, n: Node) -> bool:
        return 0 <= n[0] < self.p and 0 <= n[1] < self.q

    def xy_route(self, src: Node, dst: Node) -> List[Link]:
        """Links of the XY (row-first) route from ``src`` to ``dst``,
        including the injection and ejection links.

        A local message (``src == dst``) uses no links at all — it is a
        memory copy.
        """
        if not (self.contains(src) and self.contains(dst)):
            raise ValueError("endpoint outside the mesh")
        if src == dst:
            return []
        links: List[Link] = [("inj", src)]
        cur = src
        # move along X (columns of the grid: second coordinate) first —
        # "XY" order; the choice is conventional and symmetric.
        while cur[1] != dst[1]:
            step = 1 if dst[1] > cur[1] else -1
            nxt = (cur[0], cur[1] + step)
            links.append(("net", cur, nxt))
            cur = nxt
        while cur[0] != dst[0]:
            step = 1 if dst[0] > cur[0] else -1
            nxt = (cur[0] + step, cur[1])
            links.append(("net", cur, nxt))
            cur = nxt
        links.append(("eje", dst))
        return links

    def route(self, src: Node, dst: Node) -> List[Link]:
        """Dimension-order route — the rank-generic name every mesh
        exposes (here an alias for :meth:`xy_route`)."""
        return self.xy_route(src, dst)

    def hops(self, src: Node, dst: Node) -> int:
        """Manhattan distance."""
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    @staticmethod
    def route_hops(route: List[Link]) -> int:
        """Network hops of a route produced by :meth:`xy_route`.

        Every remote route is injection + one ``net`` link per hop +
        ejection, so this is ``len(route) - 2`` and always agrees with
        :meth:`hops`; a local route (empty) has zero hops.  The
        simulators rely on this invariant (it is asserted in the tests)
        instead of clamping route lengths defensively.
        """
        return 0 if not route else len(route) - 2


@dataclass(frozen=True)
class Message:
    """One point-to-point message between physical processors."""

    src: Node
    dst: Node
    size: int = 1

    @property
    def is_local(self) -> bool:
        return self.src == self.dst
