"""Machine model presets: Paragon-style 2-D mesh, T3D-style 3-D mesh
and the CM-5-style fat tree — all behind one
:class:`~repro.machine.model.MachineModel` interface.

**Paragon model** — a 2-D mesh with per-link serialization; costs come
from the analytic contention model (cross-checked by the event-driven
simulator).  Used for Table 2, Figure 7 and Figure 8.

**T3D model** — the same cost structure one dimension up (the paper's
m = 3 case): same ``PhaseReport`` timing surface, same event-driven
cross-check, over XYZ dimension-order routes.

**CM-5 model** — what Table 1 needs is the *structure* of the CM-5:

* a control network with hardware combine/broadcast: collectives cost a
  few hardware cycles per tree level plus a tiny per-element cost;
* a fat-tree data network where a translation is a contention-free
  permutation paid at software message overhead + bandwidth;
* general affine communication additionally pays per-element software
  address generation and fat-tree contention.

The constants below encode plausible magnitude *relationships* (a
hardware tree cycle is much cheaper than a software message dispatch;
per-element software handling costs a few bandwidth units); Table 1's
qualitative ordering — reduction ≈ broadcast ≪ translation ≪ general —
follows from the structure, not from fitting the paper's numbers.

The name→factory **registry** lives in :mod:`repro.machine.model`; the
presets register themselves at import: ``paragon`` (2-D), ``cm5``
(2-D point-to-point + fat-tree collectives) and ``t3d`` (3-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .contention import (
    CostParams,
    PhaseReport,
    SegmentedPhaseReport,
    phase_time,
    phase_time_arrays,
    phase_times_segmented,
    phased_time,
    total_time,
)
from .eventsim import EventSimulator
from .model import MachineSpec, register_machine
from .topology import Mesh2D, Message


@dataclass
class ParagonModel:
    """2-D mesh machine with link contention (Paragon-like)."""

    p: int
    q: int
    params: CostParams = field(default_factory=CostParams)

    def __post_init__(self):
        self.mesh = Mesh2D(self.p, self.q)

    def time_phase(self, messages: Sequence[Message]) -> PhaseReport:
        return phase_time(self.mesh, messages, self.params)

    def time_phase_arrays(self, senders, receivers, sizes) -> PhaseReport:
        """Array-native :meth:`time_phase` (endpoint coordinate
        matrices, no ``Message`` objects) — the surface the batched
        group executor probes for (duck-typed; bit-identical)."""
        return phase_time_arrays(
            self.mesh, senders, receivers, sizes, self.params
        )

    def time_phases_segmented(
        self, senders, receivers, sizes, phase_ids, n_phases=None
    ) -> SegmentedPhaseReport:
        """Fused multi-phase :meth:`time_phase_arrays`: all phases of a
        pricing call enter as one coordinate matrix plus an int64
        segment column and are priced by one kernel
        (:func:`~repro.machine.contention.phase_times_segmented`) —
        the surface the segmented executor probes for (duck-typed;
        bit-identical to per-phase pricing)."""
        return phase_times_segmented(
            self.mesh, senders, receivers, sizes, phase_ids, self.params,
            n_phases=n_phases,
        )

    def time_phases(self, phases: Sequence[Sequence[Message]]) -> float:
        return total_time(phased_time(self.mesh, phases, self.params))

    def time_event_driven(self, phases: Sequence[Sequence[Message]]) -> float:
        sim = EventSimulator(self.mesh, self.params)
        return sim.run_phases(phases)

    # -- compiler-level communication costing ---------------------------
    #
    # A *general* affine communication has no compile-time regular
    # structure: the runtime sends one message per element (this is the
    # situation the paper describes — "letting all processors send
    # their messages simultaneously" — and the reason decomposition
    # helps).  An *elementary* (axis-parallel) phase has regular
    # strides, so all elements for one destination coalesce into a
    # single vectorized message.

    def time_general(self, dist, t_mat, size: int = 1) -> float:
        """Direct execution of data-flow matrix ``t_mat``: element-wise
        messages (not vectorizable by the compiler)."""
        from .patterns import affine_pattern

        msgs = affine_pattern(dist, t_mat, size=size, merge=False)
        return self.time_phase(msgs).time

    def time_decomposed(self, dist, factors, size: int = 1) -> float:
        """Execution of ``t = f1 @ f2 @ ...`` as coalesced axis-parallel
        phases."""
        from .patterns import decomposed_phases

        return self.time_phases(decomposed_phases(dist, factors, size=size))


@dataclass
class T3DModel:
    """3-D mesh machine (Cray T3D-like) — the paper's m = 3 case.

    Same cost structure and same interface as the Paragon model, one
    more dimension: ``time_phase`` returns the full
    :class:`~repro.machine.contention.PhaseReport` (time plus per-link
    utilization) and the event-driven simulator cross-checks the
    analytic bound, exactly as in 2-D.
    """

    p: int
    q: int
    r: int
    params: CostParams = field(default_factory=CostParams)

    def __post_init__(self):
        from .topology3d import Mesh3D

        self.mesh = Mesh3D(self.p, self.q, self.r)

    def time_phase(self, messages) -> PhaseReport:
        return phase_time(self.mesh, messages, self.params)

    def time_phase_arrays(self, senders, receivers, sizes) -> PhaseReport:
        """Array-native :meth:`time_phase`, as on the 2-D model."""
        return phase_time_arrays(
            self.mesh, senders, receivers, sizes, self.params
        )

    def time_phases_segmented(
        self, senders, receivers, sizes, phase_ids, n_phases=None
    ) -> SegmentedPhaseReport:
        """Fused multi-phase pricing on the cube, as on the 2-D model."""
        return phase_times_segmented(
            self.mesh, senders, receivers, sizes, phase_ids, self.params,
            n_phases=n_phases,
        )

    def time_phases(self, phases) -> float:
        return total_time(phased_time(self.mesh, phases, self.params))

    def time_event_driven(self, phases) -> float:
        sim = EventSimulator(self.mesh, self.params)
        return sim.run_phases(phases)

    def time_general(self, dists, t_mat, size: int = 1) -> float:
        """Direct element-wise execution of a 3x3 data-flow matrix;
        ``dists`` is a triple of 1-D distributions."""
        from .topology3d import affine_pattern_3d

        return self.time_phase(
            affine_pattern_3d(dists, t_mat, size=size, merge=False)
        ).time

    def time_decomposed(self, dists, factors, size: int = 1) -> float:
        """Execution of ``t = f1 @ f2 @ ...`` as coalesced axis-parallel
        phases on the cube."""
        from .topology3d import affine_pattern_3d

        return self.time_phases(
            affine_pattern_3d(dists, f, size=size)
            for f in reversed(list(factors))
        )


@dataclass
class CM5Model:
    """Fat-tree machine with hardware collectives (CM-5-like).

    Parameters (time units are arbitrary but shared):

    * ``hw_cycle`` — control-network cost per tree level;
    * ``ctl_per_elem`` — per-element cost on the control network
      (combine/broadcast bandwidth);
    * ``sw_overhead`` — software cost of posting one message on the
      data network;
    * ``data_per_elem`` — data-network bandwidth cost per element;
    * ``addr_per_elem`` — per-element software address generation for
      irregular (general affine) patterns;
    * ``contention`` — fat-tree slowdown factor for non-permutation /
      irregular traffic.
    """

    nodes: int = 32
    hw_cycle: float = 1.0
    ctl_per_elem: float = 0.25
    sw_overhead: float = 25.0
    data_per_elem: float = 1.0
    addr_per_elem: float = 3.0
    contention: float = 2.0

    @property
    def tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(self.nodes)))

    def reduction_time(self, size: int = 100) -> float:
        """Hardware combine on the control network."""
        return self.hw_cycle * self.tree_depth + self.ctl_per_elem * size

    def broadcast_time(self, size: int = 100) -> float:
        """Hardware broadcast: same tree, slightly more per-element
        traffic (every node receives the payload)."""
        return self.hw_cycle * self.tree_depth + 1.2 * self.ctl_per_elem * size

    def macro_times_segmented(self, kind: str, sizes) -> np.ndarray:
        """Vectorized collective pricing: the time of one ``kind``
        collective per entry of ``sizes`` (the macro/collective segment
        lane of the fused pricing path).  Performs the same IEEE float
        operations in the same order as :meth:`reduction_time` /
        :meth:`broadcast_time`, so each entry is bit-identical to the
        scalar call."""
        sizes = np.asarray(sizes, dtype=np.int64).astype(np.float64)
        if kind == "reduction":
            return self.hw_cycle * self.tree_depth + self.ctl_per_elem * sizes
        return (
            self.hw_cycle * self.tree_depth
            + 1.2 * self.ctl_per_elem * sizes
        )

    def translation_time(self, size: int = 100) -> float:
        """Uniform shift: a contention-free permutation on the data
        network, one software message per node."""
        return self.sw_overhead + self.data_per_elem * size

    def general_time(self, size: int = 100) -> float:
        """General affine pattern: software address generation per
        element plus contended fat-tree traffic."""
        return self.sw_overhead + size * (
            self.data_per_elem * self.contention + self.addr_per_elem
        )

    def table1_ratios(self, size: int = 100) -> List[float]:
        """Execution-time ratios normalised to the reduction (the
        paper's Table 1 row)."""
        base = self.reduction_time(size)
        return [
            1.0,
            self.broadcast_time(size) / base,
            self.translation_time(size) / base,
            self.general_time(size) / base,
        ]


# ---------------------------------------------------------------------------
# registry entries — the names the CLI and the campaign layer speak
# ---------------------------------------------------------------------------

register_machine(
    MachineSpec(
        name="paragon",
        mesh_rank=2,
        factory=ParagonModel,
        description="2-D mesh, analytic link contention (Paragon-like)",
    )
)
register_machine(
    MachineSpec(
        name="cm5",
        mesh_rank=2,
        factory=ParagonModel,
        collectives=lambda nodes: CM5Model(nodes=nodes),
        description=(
            "2-D mesh point-to-point pricing + fat-tree hardware "
            "collectives (CM-5-like)"
        ),
    )
)
register_machine(
    MachineSpec(
        name="t3d",
        mesh_rank=3,
        factory=T3DModel,
        description="3-D mesh, analytic link contention (Cray T3D-like)",
    )
)
