"""Pluggable array backend for the batched pricing path.

The batched group executor (:func:`repro.runtime.executor.execute_group`)
is written against a small duck-typed slice of the array API —
``asarray`` / ``concatenate`` / ``unique`` over int64 matrices — so the
same code can run its group-by reductions on a GPU.  This module owns
the selection knob:

* ``REPRO_PRICE_BACKEND`` — environment default (``numpy`` when unset);
* :func:`set_price_backend` / :func:`price_backend` — process-local
  override, passed through executor worker init so spawn-context
  workers honour a parent's choice (see
  :class:`repro.campaign.executors.ExecutorConfig`);
* :func:`array_namespace` — the live module (``numpy`` or ``cupy``).

``cupy`` is **optional and never imported eagerly**: selecting it on a
box without the package raises a friendly error naming the knob, and
the numpy path never pays an import attempt.  Results are bit-identical
across backends by construction — the backend only executes the stacked
``unique`` group-bys; all float cost arithmetic stays in the Python/
NumPy scalar path (:func:`repro.machine.contention.phase_time_arrays`).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from ..obs.metrics import register_provider as _register_provider

#: the environment knob read once at first use
BACKEND_ENV = "REPRO_PRICE_BACKEND"

#: selectable backends (``cupy`` is gated on the package being present)
KNOWN_BACKENDS = ("numpy", "cupy")

#: current backend name; ``None`` = not resolved from the env yet
_backend_name: Optional[str] = None
#: imported array modules by backend name
_modules: Dict[str, object] = {"numpy": np}


def _import_backend(name: str):
    """Import (and cache) the array module of a known backend name.

    Raises a friendly error for an unknown name or a missing optional
    package — the message names the knob so a misconfigured campaign
    fails actionably instead of with a bare ``ModuleNotFoundError``.
    """
    if name not in KNOWN_BACKENDS:
        raise ValueError(
            f"unknown price backend {name!r} (known: "
            f"{', '.join(KNOWN_BACKENDS)}; set {BACKEND_ENV} or call "
            "set_price_backend)"
        )
    mod = _modules.get(name)
    if mod is not None:
        return mod
    try:
        import cupy as mod  # the only backend not imported eagerly
    except ImportError as exc:
        raise RuntimeError(
            f"price backend {name!r} selected (via {BACKEND_ENV} or "
            "set_price_backend) but the cupy package is not installed: "
            "install cupy matching your CUDA toolkit, or select the "
            "'numpy' backend"
        ) from exc
    _modules[name] = mod
    return mod


def price_backend() -> str:
    """The active backend name (resolving ``REPRO_PRICE_BACKEND`` on
    first use; an unknown/unavailable env value fails at first pricing
    rather than at import)."""
    global _backend_name
    if _backend_name is None:
        _backend_name = os.environ.get(BACKEND_ENV, "numpy").strip() or "numpy"
    return _backend_name


def set_price_backend(name: str) -> str:
    """Select the array backend for this process; returns the previous
    name.  Validates eagerly — selecting ``cupy`` without the package
    raises immediately, not mid-campaign."""
    global _backend_name
    _import_backend(name)
    prev = price_backend()
    _backend_name = name
    return prev


def array_namespace():
    """The live array module of the active backend (duck-typed: numpy
    or cupy, both expose ``asarray``/``concatenate``/``unique``)."""
    return _import_backend(price_backend())


def to_host(arr) -> np.ndarray:
    """Bring a backend array to host memory as ``np.ndarray`` (identity
    for numpy; ``.get()`` for device arrays, duck-typed)."""
    if isinstance(arr, np.ndarray):
        return arr
    get = getattr(arr, "get", None)
    if get is not None:
        return np.asarray(get())
    return np.asarray(arr)


def unique_rows(stacked: np.ndarray, return_inverse: bool = False):
    """``np.unique(stacked, axis=0, return_counts=True)`` on the active
    backend, results on host.  With ``return_inverse`` the row -> unique
    index map rides along (packed keys sort exactly like the rows, so
    the inverse is the same one the axis unique would return).

    ``np.unique(..., axis=0)`` compares rows as opaque byte strings,
    which makes its sort the single hottest call of a batched pricing
    run.  Rows here are small ints (cell ids, phase times, mesh
    coordinates — and the Fourier–Motzkin kernel's signed inequality
    rows), so after shifting each column by its minimum every row packs
    into one int64 key whose scalar order equals the row's
    lexicographic order — a 1-D unique over the keys returns the same
    rows in the same order and the same counts, roughly an order of
    magnitude faster.  Rows that cannot pack (> 63 key bits of
    per-column span) fall back to the axis unique.

    This is the one group-by the batched pricing path runs per label —
    routing it (and only it) through the backend keeps every float cost
    computation on the exact scalar path while letting the heavy int64
    sort/dedup run on a device when ``cupy`` is selected.
    """
    xp = array_namespace()
    arr = xp.asarray(stacked)
    n, ncols = arr.shape
    if n and ncols and np.issubdtype(np.dtype(arr.dtype), np.integer):
        mins = to_host(arr.min(axis=0))
        maxs = to_host(arr.max(axis=0))
        # per-column spans as exact Python ints: the shifted values are
        # non-negative and the bit-width check can't itself overflow
        spans = [int(hi) - int(lo) for lo, hi in zip(mins, maxs)]
        bits = [max(s.bit_length(), 1) for s in spans]
        if sum(bits) <= 63:
            shifted = arr - xp.asarray(mins.astype(np.int64))
            keys = shifted[:, 0].astype(xp.int64)
            for j in range(1, ncols):
                keys = (keys << bits[j]) | shifted[:, j]
            if return_inverse:
                ukeys, inverse, counts = xp.unique(
                    keys, return_inverse=True, return_counts=True
                )
            else:
                ukeys, counts = xp.unique(keys, return_counts=True)
            cols = []
            for j in range(ncols - 1, 0, -1):
                cols.append(ukeys & ((1 << bits[j]) - 1))
                ukeys = ukeys >> bits[j]
            cols.append(ukeys)
            uniq = xp.stack(cols[::-1], axis=1) + xp.asarray(
                mins.astype(np.int64)
            )
            if return_inverse:
                return (
                    to_host(uniq),
                    to_host(counts),
                    np.asarray(to_host(inverse)).ravel(),
                )
            return to_host(uniq), to_host(counts)
    if xp is np:
        if return_inverse:
            uniq, inverse, counts = np.unique(
                stacked, axis=0, return_inverse=True, return_counts=True
            )
            return uniq, counts, np.asarray(inverse).ravel()
        return np.unique(stacked, axis=0, return_counts=True)
    if return_inverse:
        uniq, inverse, counts = xp.unique(
            arr, axis=0, return_inverse=True, return_counts=True
        )
        return to_host(uniq), to_host(counts), np.asarray(to_host(inverse)).ravel()
    uniq, counts = xp.unique(arr, axis=0, return_counts=True)
    return to_host(uniq), to_host(counts)


def segment_max(values: np.ndarray, segment_ids: np.ndarray, n_segments: int):
    """Per-segment maximum of ``values`` grouped by ``segment_ids``
    (dense ``(n_segments,)`` output, ``0`` for empty segments — the
    identity of every quantity the contention kernel reduces: link
    loads, hop counts, sender fanouts are all non-negative).

    The scatter-max of the fused pricing kernel: numpy uses
    ``np.maximum.at``; a device backend uses ``cupyx.scatter_max``
    (duck-typed, imported lazily alongside cupy) with a host fallback.
    """
    xp = array_namespace()
    if xp is np:
        out = np.zeros(n_segments, dtype=np.asarray(values).dtype)
        np.maximum.at(out, segment_ids, values)
        return out
    try:  # pragma: no cover - exercised only with cupy installed
        import cupyx

        out = xp.zeros(n_segments, dtype=xp.asarray(values).dtype)
        cupyx.scatter_max(out, xp.asarray(segment_ids), xp.asarray(values))
        return to_host(out)
    except Exception:  # pragma: no cover
        vals = to_host(values)
        out = np.zeros(n_segments, dtype=np.asarray(vals).dtype)
        np.maximum.at(out, to_host(segment_ids), vals)
        return out


def weighted_bincount(
    keys: np.ndarray, weights: np.ndarray, minlength: int
) -> np.ndarray:
    """``np.bincount(keys, weights, minlength)`` on the active backend,
    result on host — the load-accumulation primitive of the fused
    segmented pricing kernel (float64 sums; callers guard exactness)."""
    xp = array_namespace()
    if xp is np:
        return np.bincount(keys, weights=weights, minlength=minlength)
    out = xp.bincount(  # pragma: no cover - device backends only
        xp.asarray(keys), weights=xp.asarray(weights), minlength=minlength
    )
    return to_host(out)  # pragma: no cover


def backend_stats() -> Dict[str, object]:
    """Snapshot row for the obs metrics registry."""
    return {"backend": price_backend()}


_register_provider("machine.price_backend", backend_stats)
