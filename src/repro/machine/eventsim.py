"""Event-driven wormhole-style network simulator.

The analytic contention model of :mod:`repro.machine.contention` is a
bottleneck bound; this simulator executes the same message set with
explicit resource reservation and measures the actual makespan,
providing the A2 ablation (how tight is the analytic model?) and an
independent check of the orderings the benchmarks rely on.

Model: wormhole / circuit-switched semantics, as on the Paragon.  A
message needs *all* links of its XY route at once; it starts when every
link is free (and its sender has finished the per-message start-up of
its earlier messages), holds the whole path for ``beta * size +
gamma * hops`` time units, then releases it.  Conflicting messages thus
serialize path-wise — including the head-of-line blocking that makes
irregular affine patterns slow on real wormhole meshes.

Scheduling is greedy in (ready time, message order): a simple but
deterministic arbitration, adequate for ordering comparisons.

Hop count: ``hops`` is :meth:`~repro.machine.topology.Mesh2D.hops`
(Manhattan distance), which for every remote pair equals
``len(route) - 2`` — the route is exactly injection + one network link
per hop + ejection.  An earlier revision derived hops from the route
length with a defensive ``max(0, ...)`` clamp that could silently
disagree with the mesh's definition; the two are now reconciled and
asserted equal in ``tests/machine/test_routecache.py``.

:meth:`EventSimulator.run` is vectorized: routes come from the
per-mesh :class:`~repro.machine.routecache.RouteCache` as integer
link-id arrays, and the per-link dict probes of the original become
one array ``max`` plus one slice assignment per message over a dense
``link_free`` vector.  The original is kept as
:meth:`EventSimulator.run_python` — the perf-core baseline and a
bit-identity cross-check.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .contention import CostParams
from .routecache import route_cache_for
from .topology import Link, Message


class EventSimulator:
    """Simulate one communication phase; returns the makespan.

    Rank-generic: ``mesh`` may be any mesh with a route cache
    (:class:`~repro.machine.topology.Mesh2D` or
    :class:`~repro.machine.topology3d.Mesh3D`); the vectorized path
    works off integer link-id arrays and :meth:`run_python` off the
    mesh's dimension-order ``route``.
    """

    def __init__(self, mesh, params: CostParams, cache=None):
        self.mesh = mesh
        self.params = params
        self._cache = cache

    def _route_cache(self):
        if self._cache is None:
            self._cache = route_cache_for(self.mesh)
        return self._cache

    def run(self, messages: Sequence[Message]) -> float:
        cache = self._route_cache()
        per_sender: Dict = {}
        pending: List[Tuple[float, int, int, np.ndarray]] = []
        alpha = self.params.alpha
        for order, m in enumerate(messages):
            if m.is_local:
                continue
            ids = cache.link_ids(m.src, m.dst)
            k = per_sender.get(m.src, 0)
            per_sender[m.src] = k + 1
            pending.append((alpha * k, order, m.size, ids))
        pending.sort(key=lambda t: (t[0], t[1]))
        link_free = np.zeros(cache.num_links)
        beta = self.params.beta
        gamma = self.params.gamma
        finish = 0.0
        for ready, _order, size, ids in pending:
            start = float(link_free[ids].max())
            if ready > start:
                start = ready
            done = start + beta * size + gamma * (ids.shape[0] - 2)
            link_free[ids] = done
            if done > finish:
                finish = done
        return finish

    def run_python(self, messages: Sequence[Message]) -> float:
        """Pure-Python reference implementation of :meth:`run`
        (per-link dict probes, routes rebuilt per message) — the
        perf-core baseline; bit-identical to :meth:`run`."""
        link_free: Dict[Link, float] = {}
        per_sender: Dict = {}
        pending: List[Tuple[float, int, Message, Tuple[Link, ...]]] = []
        for order, m in enumerate(messages):
            if m.is_local:
                continue
            route = tuple(self.mesh.route(m.src, m.dst))
            k = per_sender.get(m.src, 0)
            per_sender[m.src] = k + 1
            ready = self.params.alpha * k
            pending.append((ready, order, m, route))
        pending.sort(key=lambda t: (t[0], t[1]))
        finish = 0.0
        for ready, _order, m, route in pending:
            start = ready
            for link in route:
                start = max(start, link_free.get(link, 0.0))
            hops = self.mesh.hops(m.src, m.dst)  # == len(route) - 2
            done = start + self.params.beta * m.size + self.params.gamma * hops
            for link in route:
                link_free[link] = done
            finish = max(finish, done)
        return finish

    def run_phases(self, phases: Sequence[Sequence[Message]]) -> float:
        return sum(self.run(msgs) for msgs in phases)
