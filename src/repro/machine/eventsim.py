"""Event-driven wormhole-style network simulator.

The analytic contention model of :mod:`repro.machine.contention` is a
bottleneck bound; this simulator executes the same message set with
explicit resource reservation and measures the actual makespan,
providing the A2 ablation (how tight is the analytic model?) and an
independent check of the orderings the benchmarks rely on.

Model: wormhole / circuit-switched semantics, as on the Paragon.  A
message needs *all* links of its XY route at once; it starts when every
link is free (and its sender has finished the per-message start-up of
its earlier messages), holds the whole path for ``beta * size +
gamma * hops`` time units, then releases it.  Conflicting messages thus
serialize path-wise — including the head-of-line blocking that makes
irregular affine patterns slow on real wormhole meshes.

Scheduling is greedy in (ready time, message order): a simple but
deterministic arbitration, adequate for ordering comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .contention import CostParams
from .topology import Link, Mesh2D, Message


class EventSimulator:
    """Simulate one communication phase; returns the makespan."""

    def __init__(self, mesh: Mesh2D, params: CostParams):
        self.mesh = mesh
        self.params = params

    def run(self, messages: Sequence[Message]) -> float:
        link_free: Dict[Link, float] = {}
        per_sender: Dict = {}
        pending: List[Tuple[float, int, Message, Tuple[Link, ...]]] = []
        for order, m in enumerate(messages):
            if m.is_local:
                continue
            route = tuple(self.mesh.xy_route(m.src, m.dst))
            k = per_sender.get(m.src, 0)
            per_sender[m.src] = k + 1
            ready = self.params.alpha * k
            pending.append((ready, order, m, route))
        pending.sort()
        finish = 0.0
        for ready, _order, m, route in pending:
            start = ready
            for link in route:
                start = max(start, link_free.get(link, 0.0))
            hops = max(0, len(route) - 2)  # exclude inj/eje
            done = start + self.params.beta * m.size + self.params.gamma * hops
            for link in route:
                link_free[link] = done
            finish = max(finish, done)
        return finish

    def run_phases(self, phases: Sequence[Sequence[Message]]) -> float:
        return sum(self.run(msgs) for msgs in phases)
