"""Communication-pattern generators.

Build concrete :class:`~repro.machine.topology.Message` sets for the
patterns the paper measures: translations, general affine
redistributions, elementary ``L``/``U`` phases, and software
broadcast / reduction trees.  A pattern is produced against a 2-D
virtual grid folded onto the physical mesh by a
:class:`~repro.distribution.Distribution2D`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..distribution import Distribution2D
from ..linalg import IntMat
from .topology import Mesh2D, Message

Virtual = Tuple[int, int]


def _virtuals(dist: Distribution2D):
    n1, n2 = dist.virtual_shape
    for i in range(n1):
        for j in range(n2):
            yield (i, j)


def coalesce(messages: Sequence[Message]) -> List[Message]:
    """Merge all element messages sharing (src, dst) into one message
    whose size is the element total — what a real message-passing
    runtime does before touching the network.  Local pairs are kept
    (size-aggregated) so statistics remain exact."""
    sizes: Dict[Tuple, int] = {}
    for m in messages:
        key = (m.src, m.dst)
        sizes[key] = sizes.get(key, 0) + m.size
    return [Message(src=s, dst=d, size=sz) for (s, d), sz in sorted(sizes.items())]


def translation_pattern(
    dist: Distribution2D,
    offset: Virtual,
    size: int = 1,
    wrap: bool = True,
    merge: bool = True,
) -> List[Message]:
    """Every virtual processor sends to ``v + offset``."""
    n1, n2 = dist.virtual_shape
    out: List[Message] = []
    for i, j in _virtuals(dist):
        di, dj = i + offset[0], j + offset[1]
        if wrap:
            di, dj = di % n1, dj % n2
        elif not (0 <= di < n1 and 0 <= dj < n2):
            continue
        out.append(Message(src=dist.phys((i, j)), dst=dist.phys((di, dj)), size=size))
    return coalesce(out) if merge else out


def affine_pattern(
    dist: Distribution2D,
    t_mat: IntMat,
    offset: Virtual = (0, 0),
    size: int = 1,
    wrap: bool = True,
    merge: bool = True,
) -> List[Message]:
    """Every virtual processor ``v`` sends to ``T v + offset`` (taken
    modulo the virtual grid when ``wrap``).  This is the pattern of a
    residual general communication with data-flow matrix ``T``."""
    if t_mat.shape != (2, 2):
        raise ValueError("affine_pattern expects a 2x2 data-flow matrix")
    n1, n2 = dist.virtual_shape
    out: List[Message] = []
    for i, j in _virtuals(dist):
        di = t_mat[0, 0] * i + t_mat[0, 1] * j + offset[0]
        dj = t_mat[1, 0] * i + t_mat[1, 1] * j + offset[1]
        if wrap:
            di, dj = di % n1, dj % n2
        elif not (0 <= di < n1 and 0 <= dj < n2):
            continue
        out.append(Message(src=dist.phys((i, j)), dst=dist.phys((di, dj)), size=size))
    return coalesce(out) if merge else out


def decomposed_phases(
    dist: Distribution2D,
    factors: Sequence[IntMat],
    size: int = 1,
    wrap: bool = True,
) -> List[List[Message]]:
    """Phases implementing ``T = F_1 @ F_2 @ ... @ F_k``: data moves
    through the factors right-to-left (``p_1 = F_k p_0``, then
    ``p_2 = F_{k-1} p_1``...), each phase an affine pattern of its own
    factor — horizontal/vertical when the factors are elementary."""
    return [
        affine_pattern(dist, f, size=size, wrap=wrap)
        for f in reversed(list(factors))
    ]


def broadcast_tree_phases(
    mesh: Mesh2D, root, size: int = 1
) -> List[List[Message]]:
    """Software binomial broadcast over all mesh nodes: log2(P) phases
    of doubling coverage (what a Paragon pays without hardware
    support)."""
    nodes = list(mesh.nodes())
    order = sorted(nodes, key=lambda n: (n != root, n))
    have = [order[0]]
    rest = order[1:]
    phases: List[List[Message]] = []
    while rest:
        phase: List[Message] = []
        senders = list(have)
        for s in senders:
            if not rest:
                break
            nxt = rest.pop(0)
            phase.append(Message(src=s, dst=nxt, size=size))
            have.append(nxt)
        phases.append(phase)
    return phases


def partial_broadcast_row_phases(
    mesh: Mesh2D, axis: int, size: int = 1
) -> List[List[Message]]:
    """Axis-parallel partial broadcast: each node forwards along one
    mesh axis (a pipeline of neighbour hops — the cheap pattern the
    paper's rotation enables).  One phase per hop along the axis."""
    length = mesh.p if axis == 0 else mesh.q
    phases: List[List[Message]] = []
    for step in range(length - 1):
        phase: List[Message] = []
        for n in mesh.nodes():
            coord = n[axis]
            if coord == step:
                dst = (n[0] + 1, n[1]) if axis == 0 else (n[0], n[1] + 1)
                if mesh.contains(dst):
                    phase.append(Message(src=n, dst=dst, size=size))
        phases.append(phase)
    return phases


def reduction_tree_phases(
    mesh: Mesh2D, root, size: int = 1
) -> List[List[Message]]:
    """Software binomial reduction: the reverse of the broadcast tree."""
    return [
        [Message(src=m.dst, dst=m.src, size=m.size) for m in phase]
        for phase in reversed(broadcast_tree_phases(mesh, root, size))
    ]


def message_counts(messages: Sequence[Message]) -> Dict[str, int]:
    """Summary statistics used by tests and reports."""
    remote = [m for m in messages if not m.is_local]
    return {
        "total": len(messages),
        "remote": len(remote),
        "local": len(messages) - len(remote),
        "volume": sum(m.size for m in remote),
    }
