"""DMPC machine models.

* :mod:`~repro.machine.topology` / :mod:`~repro.machine.topology3d` —
  2-D and 3-D meshes, dimension-order routing, messages (endpoints are
  coordinate tuples of the mesh rank);
* :mod:`~repro.machine.routecache` — integer link ids and LRU-cached
  NumPy route arrays (the vectorized core; see PERFORMANCE.md);
* :mod:`~repro.machine.contention` — analytic link-contention timing,
  rank-generic over the route caches;
* :mod:`~repro.machine.eventsim` — event-driven store-and-forward
  simulator (cross-validation), rank-generic;
* :mod:`~repro.machine.patterns` — translation / affine / decomposed /
  broadcast / reduction message generators;
* :mod:`~repro.machine.model` — the :class:`MachineModel` protocol and
  the name→factory registry (``paragon`` / ``cm5`` / ``t3d``);
* :mod:`~repro.machine.machines` — :class:`ParagonModel`,
  :class:`T3DModel` and :class:`CM5Model` presets.
"""

from .backend import (
    BACKEND_ENV,
    array_namespace,
    price_backend,
    set_price_backend,
)
from .contention import (
    CostParams,
    PhaseReport,
    SegmentedPhaseReport,
    phase_time,
    phase_time_arrays,
    phase_time_python,
    phase_times_segmented,
    phased_time,
    total_time,
)
from .eventsim import EventSimulator
from .model import (
    MachineModel,
    MachineSpec,
    machine_for_mesh,
    machine_names,
    machine_spec,
    make_machine,
    register_machine,
)
from .machines import CM5Model, ParagonModel, T3DModel
from .routecache import (
    RouteCache,
    RouteCache3D,
    clear_route_caches,
    route_cache_for,
    route_cache_stats,
)
from .topology3d import (
    Mesh3D,
    Message3,
    affine_pattern_3d,
    phase_time_3d,
    phase_time_3d_python,
)
from .patterns import (
    affine_pattern,
    broadcast_tree_phases,
    coalesce,
    decomposed_phases,
    message_counts,
    partial_broadcast_row_phases,
    reduction_tree_phases,
    translation_pattern,
)
from .topology import Mesh2D, Message

__all__ = [
    "Mesh2D",
    "Message",
    "CostParams",
    "PhaseReport",
    "SegmentedPhaseReport",
    "phase_time",
    "phase_time_arrays",
    "phase_time_python",
    "phase_times_segmented",
    "phased_time",
    "total_time",
    "BACKEND_ENV",
    "array_namespace",
    "price_backend",
    "set_price_backend",
    "EventSimulator",
    "MachineModel",
    "MachineSpec",
    "machine_for_mesh",
    "machine_names",
    "machine_spec",
    "make_machine",
    "register_machine",
    "RouteCache",
    "RouteCache3D",
    "route_cache_for",
    "route_cache_stats",
    "clear_route_caches",
    "ParagonModel",
    "CM5Model",
    "T3DModel",
    "Mesh3D",
    "Message3",
    "affine_pattern_3d",
    "phase_time_3d",
    "phase_time_3d_python",
    "translation_pattern",
    "affine_pattern",
    "coalesce",
    "decomposed_phases",
    "broadcast_tree_phases",
    "partial_broadcast_row_phases",
    "reduction_tree_phases",
    "message_counts",
]
