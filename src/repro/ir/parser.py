"""A small textual front end for affine loop nests.

The paper's input is Fortran/HPF-style source; this module accepts a
compact, whitespace-tolerant notation and produces the
:class:`~repro.ir.loopnest.LoopNest` IR, so examples and tests can be
written the way the paper writes them::

    array a(2), b(3), c(3)
    for i = 1..N:
      for j = 1..M:
        S1: b[i, j, 0] = g1(a[i+j, j+1], a[i-j, i+1], c[j, i, 0])
        for k = 1..N+M:
          S2: b[i, j, k] = g2(a[i+j+k+1, j+k])
          S3: c[i, j, j+k] = g3(a[i+j, i+j+1])

Rules
-----
* ``array NAME(dim)`` declares arrays (comma-separated allowed);
* ``for var = lo..hi:`` opens a loop (``lo``/``hi`` are affine forms
  over integers, parameters and *outer loop variables* — sums like
  ``N+M``, scaled terms like ``2*i``; indentation gives nesting).
  Bounds referencing outer loop variables produce triangular/
  trapezoidal iteration domains (``for j = i..N`` — LU, Cholesky,
  back-substitution), represented exactly by the statement's
  :class:`~repro.ir.domain.Domain`; a bound referencing the loop's own
  variable or an inner one raises :class:`NestSyntaxError`;
* a statement line is ``NAME: lhs = rhs`` where every array reference
  ``x[e1, ..., eq]`` uses affine expressions in the loop variables;
* the LHS reference is the write; every reference on the RHS is a read
  (function symbols like ``g1(...)`` are transparent).

The parser extracts each reference's ``F`` matrix and ``c`` vector
exactly; non-affine subscripts raise :class:`NestSyntaxError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..linalg import IntMat
from .access import AccessKind, AffineAccess
from .loopnest import Bound, LoopDim, LoopNest, Statement


class NestSyntaxError(ValueError):
    """Raised on malformed nest source."""


_ARRAY_DECL = re.compile(r"^array\s+(.+)$")
_ARRAY_ITEM = re.compile(r"^\s*([A-Za-z_]\w*)\s*\(\s*(\d+)\s*\)\s*$")
_FOR = re.compile(
    r"^for\s+([A-Za-z_]\w*)\s*=\s*([^.]+)\.\.([^:]+):$"
)
_STMT = re.compile(r"^([A-Za-z_]\w*)\s*:\s*(.+)$")
_REF = re.compile(r"([A-Za-z_]\w*)\s*\[([^\]]*)\]")


def _parse_linear(expr: str, variables: Tuple[str, ...]) -> Tuple[Dict[str, int], int]:
    """Parse an affine expression over ``variables`` into coefficient
    map + constant.  Supports ``2*i``, ``-j``, ``i + 3``, ``i - j + k``.
    """
    coeffs: Dict[str, int] = {v: 0 for v in variables}
    const = 0
    expr = expr.replace(" ", "")
    if not expr:
        raise NestSyntaxError("empty subscript expression")
    # tokenize into signed terms
    terms = re.findall(r"[+-]?[^+-]+", expr)
    for term in terms:
        sign = 1
        body = term
        if body.startswith("+"):
            body = body[1:]
        elif body.startswith("-"):
            sign = -1
            body = body[1:]
        if not body:
            raise NestSyntaxError(f"dangling sign in {expr!r}")
        m = re.fullmatch(r"(\d+)\*([A-Za-z_]\w*)", body)
        if m:
            k, var = int(m.group(1)), m.group(2)
        elif re.fullmatch(r"\d+", body):
            const += sign * int(body)
            continue
        elif re.fullmatch(r"[A-Za-z_]\w*", body):
            k, var = 1, body
        else:
            m2 = re.fullmatch(r"([A-Za-z_]\w*)\*(\d+)", body)
            if m2:
                var, k = m2.group(1), int(m2.group(2))
            else:
                raise NestSyntaxError(f"non-affine subscript term {term!r}")
        if var not in coeffs:
            raise NestSyntaxError(
                f"unknown loop variable {var!r} in {expr!r} "
                f"(in scope: {', '.join(variables)})"
            )
        coeffs[var] += sign * k
    return coeffs, const


def _parse_bound(text: str) -> Bound:
    """Affine bound over integers, parameters and outer loop variables
    (``1``, ``N``, ``N+M-1``, ``i``, ``2*i+1``)."""
    text = text.replace(" ", "")
    coeffs, const = {}, 0
    for term in re.findall(r"[+-]?[^+-]+", text):
        sign = 1
        body = term
        if body.startswith("+"):
            body = body[1:]
        elif body.startswith("-"):
            sign, body = -1, body[1:]
        m = re.fullmatch(r"(\d+)\*([A-Za-z_]\w*)", body)
        if m:
            coeffs[m.group(2)] = coeffs.get(m.group(2), 0) + sign * int(m.group(1))
        elif re.fullmatch(r"\d+", body):
            const += sign * int(body)
        elif re.fullmatch(r"[A-Za-z_]\w*", body):
            coeffs[body] = coeffs.get(body, 0) + sign
        else:
            raise NestSyntaxError(f"bad bound term {term!r}")
    return Bound(
        const=const,
        coeffs=tuple(sorted((n, k) for n, k in coeffs.items() if k != 0)),
    )


def _make_access(
    array: str,
    subs: str,
    variables: Tuple[str, ...],
    kind: AccessKind,
    label: str,
) -> AffineAccess:
    rows: List[List[int]] = []
    consts: List[int] = []
    parts = [p for p in subs.split(",")] if subs.strip() else []
    if not parts:
        raise NestSyntaxError(f"reference to {array!r} has no subscripts")
    for p in parts:
        coeffs, const = _parse_linear(p, variables)
        rows.append([coeffs[v] for v in variables])
        consts.append(const)
    return AffineAccess(
        array=array,
        F=IntMat(rows),
        c=IntMat.col(consts),
        kind=kind,
        label=label,
    )


@dataclass
class _Frame:
    indent: int
    loop: LoopDim


def parse_nest(source: str, name: str = "parsed") -> LoopNest:
    """Parse nest source text into a :class:`LoopNest`.

    Array dimensions are validated against every reference; access
    labels are assigned ``F1, F2, ...`` in source order (matching the
    paper's numbering convention).
    """
    nest = LoopNest(name=name)
    stack: List[_Frame] = []
    access_counter = 0

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip() or line.strip().startswith("#"):
            continue
        indent = len(line) - len(line.lstrip())
        body = line.strip()

        m = _ARRAY_DECL.match(body)
        if m:
            for item in m.group(1).split(","):
                mi = _ARRAY_ITEM.match(item)
                if not mi:
                    raise NestSyntaxError(
                        f"line {lineno}: bad array declaration {item!r}"
                    )
                nest.declare_array(mi.group(1), int(mi.group(2)))
            continue

        # pop frames that this line's indentation closes
        while stack and indent <= stack[-1].indent:
            stack.pop()

        m = _FOR.match(body)
        if m:
            var, lo, hi = m.group(1), m.group(2), m.group(3)
            if any(f.loop.var == var for f in stack):
                raise NestSyntaxError(
                    f"line {lineno}: loop variable {var!r} shadows an outer loop"
                )
            stack.append(
                _Frame(
                    indent=indent,
                    loop=LoopDim(
                        var=var, lower=_parse_bound(lo), upper=_parse_bound(hi)
                    ),
                )
            )
            continue

        m = _STMT.match(body)
        if m:
            stmt_name, text = m.group(1), m.group(2)
            if "=" not in text:
                raise NestSyntaxError(f"line {lineno}: statement has no '='")
            lhs, rhs = text.split("=", 1)
            variables = tuple(f.loop.var for f in stack)
            if not variables:
                raise NestSyntaxError(
                    f"line {lineno}: statement outside any loop"
                )
            refs_lhs = _REF.findall(lhs)
            if len(refs_lhs) != 1:
                raise NestSyntaxError(
                    f"line {lineno}: expected exactly one array reference "
                    f"on the left-hand side"
                )
            accesses: List[AffineAccess] = []
            arr, subs = refs_lhs[0]
            access_counter += 1
            accesses.append(
                _make_access(arr, subs, variables, AccessKind.WRITE, f"F{access_counter}")
            )
            for arr, subs in _REF.findall(rhs):
                access_counter += 1
                accesses.append(
                    _make_access(arr, subs, variables, AccessKind.READ, f"F{access_counter}")
                )
            try:
                nest.add_statement(
                    Statement(
                        name=stmt_name,
                        loops=[f.loop for f in stack],
                        accesses=accesses,
                    )
                )
            except NestSyntaxError:
                raise
            except ValueError as exc:
                # e.g. a loop bound referencing an inner variable — the
                # Domain construction inside validate() rejects it
                raise NestSyntaxError(f"line {lineno}: {exc}") from None
            continue

        raise NestSyntaxError(f"line {lineno}: cannot parse {body!r}")

    nest.validate()
    return nest
