"""Linear multidimensional schedules.

Section 4 of the paper assumes "the computation time steps for S(I) are
given by a linear multidimensional schedule": statement ``S`` executes
instance ``I`` at (vector) time ``theta_S I``.  The macro-communication
conditions are kernel conditions on ``theta_S``; the space-time
transformation of Section 4.5 stacks ``theta_S`` on top of ``M_S``.

A fully-parallel nest (all DOALL, the motivating example) has the
*trivial* schedule ``theta_S = 0`` of dimension 0, conventionally
represented by a ``1 x d`` zero matrix so that kernels are the whole
iteration space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..linalg import FracMat, IntMat
from ..linalg.cache import _MISSING
from ..obs import span
from .dependence import (
    _params_key,
    _schedule_cache,
    dependence_cache_enabled,
    find_dependences,
)
from .loopnest import LoopNest, Statement


@dataclass(frozen=True)
class Schedule:
    """A linear multidimensional schedule ``I -> theta I`` for one
    statement (``theta`` has one row per time dimension)."""

    theta: IntMat

    @property
    def time_dims(self) -> int:
        return self.theta.nrows

    @property
    def depth(self) -> int:
        return self.theta.ncols

    def time_of(self, index: Sequence[int]) -> Tuple[int, ...]:
        col = IntMat.col(list(index))
        return (self.theta @ col).column_tuple(0)

    @staticmethod
    def trivial(depth: int) -> "Schedule":
        """The all-parallel schedule (every instance at time 0)."""
        return Schedule(theta=IntMat.zeros(1, depth))

    @staticmethod
    def sequential_outer(depth: int, outer: int = 1) -> "Schedule":
        """Schedule where the first ``outer`` loops are time dimensions
        (sequential) and the inner loops are all parallel.

        This matches Example 5 of the paper: ``t`` sequential, the inner
        ``i, j, k`` loops parallel, i.e. ``theta = e_1^T``.
        """
        rows = [[1 if j == i else 0 for j in range(depth)] for i in range(outer)]
        return Schedule(theta=IntMat(rows))

    def is_parallel_direction(self, v: IntMat) -> bool:
        """True iff moving along ``v`` keeps the time step unchanged."""
        return (self.theta @ v).is_zero()


@dataclass
class ScheduledNest:
    """A loop nest together with one schedule per statement."""

    nest: LoopNest
    schedules: Dict[str, Schedule]

    def schedule_of(self, stmt: str) -> Schedule:
        return self.schedules[stmt]

    def validate_shapes(self) -> None:
        for s in self.nest.statements:
            th = self.schedules.get(s.name)
            if th is None:
                raise ValueError(f"statement {s.name} has no schedule")
            if th.depth != s.depth:
                raise ValueError(
                    f"schedule of {s.name} has depth {th.depth}, statement "
                    f"has depth {s.depth}"
                )


def trivial_schedules(nest: LoopNest) -> ScheduledNest:
    """All-parallel schedules for every statement."""
    return ScheduledNest(
        nest=nest,
        schedules={s.name: Schedule.trivial(s.depth) for s in nest.statements},
    )


def outer_sequential_schedules(nest: LoopNest, outer: int = 1) -> ScheduledNest:
    """Schedules making the first ``outer`` loops of each statement the
    time dimensions."""
    return ScheduledNest(
        nest=nest,
        schedules={
            s.name: Schedule.sequential_outer(s.depth, outer) for s in nest.statements
        },
    )


def infer_schedules(nest: LoopNest, params: Dict[str, int]) -> ScheduledNest:
    """Pick the cheapest valid schedule the library knows how to verify.

    Strategy: if the nest is dependence-free, everything runs at time 0
    (trivial schedule).  Otherwise, sequentialize outer loops one at a
    time until the remaining inner loops carry no dependence; this is a
    deliberately simple scheduler — the paper takes the schedule as an
    input of the mapping problem, not as its contribution.
    """
    deps = find_dependences(nest, params)
    if not deps:
        return trivial_schedules(nest)
    max_depth = max(s.depth for s in nest.statements)
    for outer in range(1, max_depth + 1):
        if _inner_loops_parallel(nest, params, outer):
            return outer_sequential_schedules(nest, outer)
    # fully sequential fallback
    return outer_sequential_schedules(nest, max_depth)


def _nest_key(nest: LoopNest):
    """Canonical hashable key of a nest's dependence-relevant content:
    per-statement depth, domain constraints and access list (order
    preserved — the self-pair identity checks are positional).
    Statement names don't enter any verdict."""
    return tuple(
        (s.depth, s.domain.constraints, tuple(s.accesses))
        for s in nest.statements
    )


def _inner_loops_parallel(nest: LoopNest, params: Dict[str, int], outer: int) -> bool:
    """Memoized per ``(nest, params, level)`` through the dependence
    memo framework (``ir.dependence.cache.inner_loops_parallel.*``
    counters): :func:`infer_schedules` probes levels 1..depth of the
    same nest, and campaign grids re-infer identical nests once per
    knob value."""
    if not dependence_cache_enabled():
        return _inner_loops_parallel_uncached(nest, params, outer)
    key = (_nest_key(nest), _params_key(params), outer)
    value = _schedule_cache.get(key)
    if value is _MISSING:
        value = _inner_loops_parallel_uncached(nest, params, outer)
        _schedule_cache.put(key, value)
    return value


def _inner_loops_parallel_uncached(
    nest: LoopNest, params: Dict[str, int], outer: int
) -> bool:
    """Check that all dependences are carried by (or preserved within)
    the first ``outer`` loops: for each dependence witness lattice,
    require equal outer indices => equal full indices would be exact;
    we approximate conservatively by testing that no dependence exists
    between instances sharing the same outer-index values.

    Approximation: we strengthen the dependence system with
    ``I1[k] == I2[k]`` for the outer dims and re-run the lattice and
    bounds tests.
    """
    from ..linalg import solve_axb
    from .dependence import domain_feasible

    pairs = nest.all_accesses()
    with span("compile.dependence"):
        for i, (s1, a1) in enumerate(pairs):
            for s2, a2 in pairs[i:]:
                if a1.array != a2.array:
                    continue
                from .access import AccessKind

                if a1.kind is AccessKind.READ and a2.kind is AccessKind.READ:
                    continue
                k = min(outer, s1.depth, s2.depth)
                # stacked system: F1 I1 - F2 I2 = c2 - c1, I1[j] = I2[j]
                f1, f2 = a1.F, a2.F
                eq_rows = []
                for j in range(k):
                    row = [0] * (s1.depth + s2.depth)
                    row[j] = 1
                    row[s1.depth + j] = -1
                    eq_rows.append(row)
                a = f1.hstack(-1 * f2)
                full = IntMat(a.tolist() + eq_rows)
                rhs_entries = [
                    (a2.c - a1.c)[r, 0] for r in range(a1.F.nrows)
                ] + [0] * k
                sol = solve_axb(full, IntMat.col(rhs_entries))
                if sol is None:
                    continue
                if not domain_feasible(sol, s1, s2, params):
                    continue
                # same-instance solutions of a single access aren't deps
                if s1 is s2 and a1 is a2:
                    from .dependence import _has_distinct_solution

                    if not _has_distinct_solution(sol, s1.depth):
                        continue
                return False
    return True
