"""Affine dependence analysis.

The paper assumes the motivating loop nest is fully parallel ("check
with Tiny"); this module is the substrate that performs that check.  A
dependence exists between access ``(S1, F1, c1)`` and ``(S2, F2, c2)``
on the same array (at least one a write) iff the linear system

    ``F1 I1 + c1 = F2 I2 + c2``

has an integer solution with both ``I1`` and ``I2`` inside their
iteration domains.  We combine three classical tests, each exact in the
direction it reports:

1. **GCD test** — necessary condition for integer solvability of each
   subscript equation; a failure disproves the dependence.
2. **Exact lattice test** — integer solvability of the whole stacked
   system via the Smith form (no approximation).
3. **Domain test** — Fourier–Motzkin elimination over the rationals on
   the solution lattice restricted to both statements' polyhedral
   iteration domains (:func:`domain_feasible`; triangular constraints
   enter exactly, rectangular ones reduce to the classical box bounds);
   exactness holds for the rational relaxation and is conservative (may
   report a dependence that only rational points realize, which is
   safe).

Two performance layers sit under the classical tests:

* **Integer Fourier–Motzkin kernel** — every system the lattice-domain
  tests build has integer entries, so elimination runs over int64 NumPy
  rows (:func:`_fourier_motzkin_int`): one vectorized integer
  cross-multiplication per round instead of a ``Fraction`` object per
  coefficient, per-row GCD normalization to keep magnitudes small, and
  the packed-key :func:`~repro.machine.backend.unique_rows` dedupe to
  damp the combination blow-up.  A per-round overflow guard falls back
  to the kept ``Fraction`` twin (:func:`_fourier_motzkin_fraction`),
  which remains the bit-identity baseline for the property tests.
  Systems of up to :data:`_SCALAR_FM_MAX_ROWS` rows — the common case
  for loop-nest domains — instead run the same integer elimination on
  plain Python ints (:func:`_fourier_motzkin_scalar`), which beats the
  ufunc launch overhead at that size and is exact at any magnitude.
* **Memoization** — :func:`test_dependence` is cached on a canonical
  ``(F, c, kind, domain, params)`` key through the linalg-cache
  framework (counters under ``ir.dependence.cache.*``), so schedule
  inference and legality checking stop re-running identical FM systems
  within one compile.  Knob: ``REPRO_DEPENDENCE_CACHE`` (entries,
  default 4096, ``0`` disables); :func:`set_dependence_cache_size` is
  the process-local override.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._config import env_int
from ..linalg import IntMat, solve_axb
from ..linalg.cache import _MISSING, NormalFormCache
from ..machine.backend import unique_rows
from ..obs import span
from ..obs.metrics import register_provider
from .access import AccessKind, AffineAccess
from .loopnest import LoopNest, Statement


@dataclass(frozen=True)
class Dependence:
    """A (possibly conservative) dependence between two accesses."""

    array: str
    source: str  # statement name
    sink: str
    kind: str  # "flow", "anti", "output", "input"
    proven: bool  # True if an explicit witness was found


# ---------------------------------------------------------------------------
# test 1: GCD
# ---------------------------------------------------------------------------

def gcd_test(f1: IntMat, c1: IntMat, f2: IntMat, c2: IntMat) -> bool:
    """Return False when the GCD test *disproves* any integer solution
    of ``F1 I1 - F2 I2 = c2 - c1`` (row by row); True otherwise."""
    rows = f1.nrows
    for r in range(rows):
        coeffs = list(f1[r]) + [-x for x in f2[r]]
        rhs = c2[r, 0] - c1[r, 0]
        g = 0
        for x in coeffs:
            g = gcd(g, abs(x))
        if g == 0:
            if rhs != 0:
                return False
            continue
        if rhs % g != 0:
            return False
    return True


# ---------------------------------------------------------------------------
# test 2: exact integer solvability of the stacked system
# ---------------------------------------------------------------------------

def lattice_test(f1: IntMat, c1: IntMat, f2: IntMat, c2: IntMat):
    """Solve ``[F1 | -F2] (I1; I2) = c2 - c1`` over the integers.

    Returns the :class:`~repro.linalg.DiophantineSolution` or ``None``
    when no integer solution exists (dependence disproved).
    """
    a = f1.hstack(-1 * f2)
    b = c2 - c1
    return solve_axb(a, b)


# ---------------------------------------------------------------------------
# test 3: Fourier–Motzkin on the solution lattice within loop bounds
# ---------------------------------------------------------------------------

Ineq = Tuple[Tuple[Fraction, ...], Fraction]  # coeffs . y <= rhs

#: magnitude bound for the int64 kernel: pivots are entries, so a
#: combination row entry is at most ``2 * max|entry| ** 2``; past this
#: the exact ``Fraction`` twin takes over
_INT64_SAFE = 2 ** 62


class _FMOverflow(Exception):
    """The int64 kernel's next round could overflow; retry exactly."""


def _normalize_fm_rows(rows: np.ndarray) -> np.ndarray:
    """Divide each row ``[coeffs | rhs]`` by the GCD of its entries —
    equivalence-preserving (the GCD is positive) and the only thing
    keeping cross-multiplied magnitudes from compounding per round."""
    g = np.gcd.reduce(np.abs(rows), axis=1)
    np.maximum(g, 1, out=g)
    return rows // g[:, None]


def _fourier_motzkin_int(rows: np.ndarray, nvars: int) -> bool:
    """Integer twin of :func:`_fourier_motzkin_fraction`: rational
    feasibility of ``A y <= b`` over int64 rows ``[coeffs | rhs]``.

    Eliminating ``var`` combines each positive row ``p`` (pivot ``a``)
    with each negative row ``n`` (pivot ``-b``) as ``p * b + n * a`` —
    the same inequality ``p/a + n/b`` scaled by the positive ``a * b``,
    so feasibility verdicts are identical to the ``Fraction`` kernel.
    Raises :class:`_FMOverflow` when a round's products could leave
    int64 range.
    """
    # one-time dead-row sweep: a row with no variables demanding
    # ``0 <= negative`` proves infeasibility outright.  Afterwards every
    # system row provably has a nonzero coefficient in a not-yet
    # eliminated column — combination rows are alive-filtered (and
    # negativity-checked) at creation, carried-over rows by definition —
    # so no per-round re-check is ever needed.
    dead = ~rows[:, :nvars].any(axis=1)
    if bool(dead.any()):
        if bool((rows[dead, -1] < 0).any()):
            return False
        rows = rows[~dead]
    system = rows
    for var in range(nvars):
        if system.shape[0] <= 1:
            return True  # zero or one live inequality: always feasible
        col = system[:, var]
        pos_mask = col > 0
        neg_mask = col < 0
        if bool(pos_mask.any()) and bool(neg_mask.any()):
            pos = system[pos_mask]
            neg = system[neg_mask]
            a = pos[:, var]
            b = -neg[:, var]
            m = int(np.abs(system).max())
            if 2 * m * m >= _INT64_SAFE:
                raise _FMOverflow()
            combined = (
                pos[:, None, :] * b[None, :, None]
                + neg[None, :, :] * a[:, None, None]
            ).reshape(-1, system.shape[1])
            combined[:, var] = 0
            alive = combined[:, :nvars].any(axis=1)
            if not bool(alive.all()):
                # early-exit: a fully-eliminated combination demanding
                # ``0 <= negative`` settles the verdict immediately
                # (including infeasibility created by the last round)
                if bool((combined[~alive, -1] < 0).any()):
                    return False
                combined = combined[alive]
            # normalize and dedupe: combinations breed duplicate
            # inequalities quadratically per round (tiny sets skip the
            # dedupe — its fixed cost exceeds the saving)
            combined = _normalize_fm_rows(combined)
            if combined.shape[0] > 4:
                combined = unique_rows(combined)[0]
            rest = system[~(pos_mask | neg_mask)]
            system = (
                np.concatenate([rest, combined], axis=0)
                if rest.shape[0]
                else combined
            )
        else:
            # no opposing pair: var is unbounded on one side, every row
            # mentioning it is satisfiable and projects out
            system = system[~(pos_mask | neg_mask)]
    if not system.shape[0]:
        return True
    return not bool((system[:, -1] < 0).any())


#: below this many rows the vectorized kernel loses to ufunc launch
#: overhead; the scalar integer twin takes over (Python ints are
#: arbitrary precision, so it needs no overflow guard at all)
_SCALAR_FM_MAX_ROWS = 32


def _fourier_motzkin_scalar(rows: Sequence[Sequence[int]], nvars: int) -> bool:
    """Scalar twin of :func:`_fourier_motzkin_int` on Python ints.

    Same combination rule (``p * b + n * a``), same per-row GCD
    normalization, same early exits — but no NumPy, which on systems of
    a dozen rows costs more in per-call overhead than the arithmetic it
    vectorizes.  Exact at any magnitude, so unlike the int64 kernel it
    never defers to the ``Fraction`` baseline.
    """
    system = []
    for r in rows:
        if any(r[:nvars]):
            system.append(tuple(r))
        elif r[nvars] < 0:
            return False  # 0 <= negative: contradictory from the start
    for var in range(nvars):
        if len(system) <= 1:
            return True  # zero or one live inequality: always feasible
        pos, neg, rest = [], [], []
        for r in system:
            c = r[var]
            if c > 0:
                pos.append(r)
            elif c < 0:
                neg.append(r)
            else:
                rest.append(r)
        if pos and neg:
            new = rest
            for p in pos:
                a = p[var]
                for n in neg:
                    b = -n[var]
                    row = [x * b + y * a for x, y in zip(p, n)]
                    row[var] = 0
                    if any(row[:nvars]):
                        g = 0
                        for x in row:
                            g = gcd(g, x)
                        if g > 1:
                            row = [x // g for x in row]
                        new.append(tuple(row))
                    elif row[nvars] < 0:
                        # fully eliminated and contradictory: settled
                        return False
            # dedupe to damp the quadratic blow-up (tiny sets skip it)
            system = list(dict.fromkeys(new)) if len(new) > 4 else new
        else:
            # no opposing pair: var is unbounded on one side, every row
            # mentioning it is satisfiable and projects out
            system = rest
    # every surviving row was alive-filtered, so nothing contradictory
    # can remain once all variables are gone
    return True


def _fourier_motzkin_fraction(ineqs: List[Ineq], nvars: int) -> bool:
    """Rational feasibility of ``A y <= b`` by eliminating variables
    with exact ``Fraction`` arithmetic — the bit-identity baseline the
    int64 kernel is property-tested against, and the fallback when the
    overflow guard trips.
    """
    system = [([Fraction(x) for x in coeffs], Fraction(rhs)) for coeffs, rhs in ineqs]
    for var in range(nvars):
        # early-exit before combining: an already-contradictory row
        # (no variables, negative rhs) ends the search — this also
        # covers infeasibility present before the *last* round, which
        # the historical kernel only checked after combining
        if any(all(x == 0 for x in c) and r < 0 for c, r in system):
            return False
        pos, neg, rest = [], [], []
        for coeffs, rhs in system:
            c = coeffs[var]
            if c > 0:
                pos.append((coeffs, rhs))
            elif c < 0:
                neg.append((coeffs, rhs))
            else:
                rest.append((coeffs, rhs))
        new = rest
        for pc, pr in pos:
            for nc, nr in neg:
                # combine to eliminate var: pc/|pc| + nc/|nc|
                a = pc[var]
                b = -nc[var]
                coeffs = [x / a + y / b for x, y in zip(pc, nc)]
                rhs = pr / a + nr / b
                coeffs[var] = Fraction(0)
                new.append((coeffs, rhs))
        system = new
        # prune trivially true rows to keep the blow-up in check
        system = [
            (c, r)
            for c, r in system
            if any(x != 0 for x in c) or r < 0
        ]
        if any(all(x == 0 for x in c) and r < 0 for c, r in system):
            return False
    # all variables eliminated: feasible iff no 0 <= negative row remains
    return not any(r < 0 for _, r in system)


def _fm_feasible(rows: Sequence[Sequence[int]], nvars: int) -> bool:
    """Rational feasibility of the integer system ``A y <= b`` given as
    ``[coeffs..., rhs]`` rows: the scalar integer kernel below the
    row-count threshold, the vectorized int64 kernel when every entry
    fits, the exact ``Fraction`` twin otherwise (or when the int64
    kernel's per-round overflow guard trips mid-elimination)."""
    if not rows:
        return True
    if len(rows) <= _SCALAR_FM_MAX_ROWS:
        return _fourier_motzkin_scalar(rows, nvars)
    try:
        arr = np.array(rows, dtype=np.int64)
    except OverflowError:  # an entry beyond int64 entirely
        arr = None
    if (
        arr is not None
        and int(arr.max()) < _INT64_SAFE
        and int(arr.min()) > -_INT64_SAFE
    ):
        try:
            return _fourier_motzkin_int(arr, nvars)
        except _FMOverflow:
            pass
    return _fourier_motzkin_fraction(
        [(tuple(row[:nvars]), row[nvars]) for row in rows], nvars
    )


def _fourier_motzkin(ineqs: List[Ineq], nvars: int) -> bool:
    """Rational feasibility of ``A y <= b`` (historical entry point).

    Integer systems — which is everything the lattice-domain tests
    build — dispatch to the int64 kernel; genuinely fractional input
    keeps the exact ``Fraction`` path.
    """
    rows: List[List[int]] = []
    for coeffs, rhs in ineqs:
        row = list(coeffs) + [rhs]
        if not all(
            isinstance(x, int)
            or (isinstance(x, Fraction) and x.denominator == 1)
            for x in row
        ):
            return _fourier_motzkin_fraction(ineqs, nvars)
        rows.append([int(x) for x in row])
    return _fm_feasible(rows, nvars)


def _lattice_rows(
    part: Sequence[int],
    hom_cols: Sequence[Sequence[int]],
    point_ineqs: Sequence[Tuple[Sequence[int], int]],
) -> List[List[int]]:
    """Shared system builder for the lattice-domain tests.

    ``point_ineqs`` constrain the *stacked point dimensions*: each
    ``(coeffs, off)`` means ``coeffs . point + off >= 0``.  Substituting
    ``point = part + H y`` turns it into the integer FM row
    ``(-coeffs . H) y <= coeffs . part + off``.
    """
    rows: List[List[int]] = []
    for coeffs, off in point_ineqs:
        row = [
            -sum(a * h[i] for i, a in enumerate(coeffs) if a)
            for h in hom_cols
        ]
        row.append(sum(a * p for a, p in zip(coeffs, part) if a) + off)
        rows.append(row)
    return rows


def bounds_test(
    sol,
    depth1: int,
    depth2: int,
    bounds1: Sequence[Tuple[int, int]],
    bounds2: Sequence[Tuple[int, int]],
) -> bool:
    """Check whether some lattice point of ``sol`` satisfies rectangular
    loop bounds (rational relaxation — conservative).

    The rectangular-box special case of :func:`domain_feasible`, kept
    for callers that carry explicit ``(lo, hi)`` intervals.
    """
    # point = particular + H y, with bounds lo <= point_i <= hi
    part = sol.particular.column_tuple(0)
    hom_cols = [h.column_tuple(0) for h in sol.homogeneous]
    nvars = len(hom_cols)
    all_bounds = list(bounds1) + list(bounds2)
    assert len(part) == depth1 + depth2 == len(all_bounds)
    if nvars == 0:
        return all(lo <= p <= hi for p, (lo, hi) in zip(part, all_bounds))
    ndims = len(all_bounds)
    point_ineqs: List[Tuple[List[int], int]] = []
    for i, (lo, hi) in enumerate(all_bounds):
        hi_row = [0] * ndims
        hi_row[i] = -1  # hi - point_i >= 0
        point_ineqs.append((hi_row, hi))
        lo_row = [0] * ndims
        lo_row[i] = 1  # point_i - lo >= 0
        point_ineqs.append((lo_row, -lo))
    return _fm_feasible(_lattice_rows(part, hom_cols, point_ineqs), nvars)


def domain_feasible(sol, s1: Statement, s2: Statement, params: Dict[str, int]) -> bool:
    """Check whether some lattice point of ``sol`` lies inside both
    statements' polyhedral iteration domains (rational relaxation —
    conservative, exactly like :func:`bounds_test`).

    For rectangular domains the inequality system is the same box the
    historical bounds test built; triangular/trapezoidal constraints
    (``for j = i..N``) enter the Fourier–Motzkin system exactly instead
    of being widened to their rectangular hull.
    """
    part = sol.particular.column_tuple(0)
    hom_cols = [h.column_tuple(0) for h in sol.homogeneous]
    nvars = len(hom_cols)
    d1 = s1.depth
    assert len(part) == d1 + s2.depth
    if nvars == 0:
        return s1.domain.contains(part[:d1], params) and s2.domain.contains(
            part[d1:], params
        )
    ndims = len(part)
    point_ineqs: List[Tuple[List[int], int]] = []
    for dom, offset in ((s1.domain, 0), (s2.domain, d1)):
        for con in dom.constraints:
            # a . I + off >= 0 over this statement's slice of the point
            coeffs = [0] * ndims
            for i, a in enumerate(con.var_coeffs):
                coeffs[offset + i] = a
            point_ineqs.append((coeffs, con.offset(params)))
    return _fm_feasible(_lattice_rows(part, hom_cols, point_ineqs), nvars)


# ---------------------------------------------------------------------------
# memo caches — test_dependence and schedule inference
# ---------------------------------------------------------------------------

DEFAULT_DEPENDENCE_CACHE_SIZE = env_int("REPRO_DEPENDENCE_CACHE", 4096)

_dependence_cache_size: int = DEFAULT_DEPENDENCE_CACHE_SIZE
#: counters live under ``ir.dependence.cache.<name>.{hits,misses}``
_dep_cache = NormalFormCache(
    "test_dependence",
    maxsize=max(DEFAULT_DEPENDENCE_CACHE_SIZE, 1),
    namespace="ir.dependence.cache",
)
#: the ``_inner_loops_parallel`` memo (owned here so one knob governs
#: both; filled by :mod:`repro.ir.schedule`)
_schedule_cache = NormalFormCache(
    "inner_loops_parallel",
    maxsize=max(DEFAULT_DEPENDENCE_CACHE_SIZE, 1),
    namespace="ir.dependence.cache",
)


def dependence_cache_enabled() -> bool:
    return _dependence_cache_size > 0


def set_dependence_cache_size(size: int) -> int:
    """Resize (``0`` disables) the dependence/schedule memo caches;
    returns the previous size.  Resizing clears both caches, so results
    can never be served across a semantics-affecting reconfiguration."""
    global _dependence_cache_size
    prev = _dependence_cache_size
    _dependence_cache_size = int(size)
    for cache in (_dep_cache, _schedule_cache):
        cache.clear()
        if _dependence_cache_size > 0:
            cache.maxsize = _dependence_cache_size
    return prev


def clear_dependence_caches() -> None:
    """Empty both memo caches and reset their counters."""
    _dep_cache.clear()
    _schedule_cache.clear()


def dependence_cache_stats() -> Dict[str, Dict[str, int]]:
    """``{cache name: {hits, misses, size, maxsize}}`` for the
    dependence-analysis memo caches of this process."""
    return {
        "test_dependence": _dep_cache.stats(),
        "inner_loops_parallel": _schedule_cache.stats(),
    }


register_provider("ir.dependence.cache", dependence_cache_stats)


def _domain_key(s: Statement):
    """Canonical hashable key of a statement's iteration domain — the
    constraint tuple (frozen dataclasses) plus depth; names don't enter
    the dependence verdict."""
    return (s.depth, s.domain.constraints)


def _params_key(params: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(params.items()))


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def _dep_kind(kind1: AccessKind, kind2: AccessKind) -> str:
    if kind1 is AccessKind.WRITE and kind2 is AccessKind.READ:
        return "flow"
    if kind1 is AccessKind.READ and kind2 is AccessKind.WRITE:
        return "anti"
    if kind1 is AccessKind.WRITE and kind2 is AccessKind.WRITE:
        return "output"
    return "input"


def test_dependence(
    s1: Statement,
    a1: AffineAccess,
    s2: Statement,
    a2: AffineAccess,
    params: Dict[str, int],
    same_statement_distinct: bool = True,
) -> Optional[str]:
    """Full dependence test between two accesses to the same array.

    Returns the dependence kind string when a dependence may exist, or
    ``None`` when it is disproved.  ``params`` binds symbolic sizes for
    the bounds test.

    The verdict is a pure function of the access matrices, kinds, the
    two domains and the parameter binding, so it is memoized on that
    canonical key (see the module docstring) — schedule inference and
    legality checks re-ask the same questions many times per compile.
    """
    if a1.array != a2.array:
        return None
    if a1.kind is AccessKind.READ and a2.kind is AccessKind.READ:
        return None  # input "dependences" don't constrain parallelism
    if not dependence_cache_enabled():
        return _test_dependence_uncached(
            s1, a1, s2, a2, params, same_statement_distinct
        )
    key = (
        a1.F,
        a1.c,
        a1.kind,
        a2.F,
        a2.c,
        a2.kind,
        _domain_key(s1),
        _domain_key(s2),
        s1 is s2 and a1 is a2,
        same_statement_distinct,
        _params_key(params),
    )
    value = _dep_cache.get(key)
    if value is _MISSING:
        value = _test_dependence_uncached(
            s1, a1, s2, a2, params, same_statement_distinct
        )
        _dep_cache.put(key, value)
    return value


def _test_dependence_uncached(
    s1: Statement,
    a1: AffineAccess,
    s2: Statement,
    a2: AffineAccess,
    params: Dict[str, int],
    same_statement_distinct: bool = True,
) -> Optional[str]:
    """The memo-free dependence test (the bit-identity baseline the
    memoized entry is tested against)."""
    if a1.array != a2.array:
        return None
    if a1.kind is AccessKind.READ and a2.kind is AccessKind.READ:
        return None
    if not gcd_test(a1.F, a1.c, a2.F, a2.c):
        return None
    sol = lattice_test(a1.F, a1.c, a2.F, a2.c)
    if sol is None:
        return None
    if not domain_feasible(sol, s1, s2, params):
        return None
    if s1 is s2 and a1 is a2 and same_statement_distinct:
        # self-dependence of a single access needs I1 != I2; a lattice
        # with only the trivial diagonal solution is not a dependence.
        if not _has_distinct_solution(sol, s1.depth):
            return None
    return _dep_kind(a1.kind, a2.kind)


def _has_distinct_solution(sol, depth: int) -> bool:
    """True when the solution lattice contains a point with I1 != I2."""
    part = sol.particular.column_tuple(0)
    if part[:depth] != part[depth:]:
        return True
    for h in sol.homogeneous:
        col = h.column_tuple(0)
        if col[:depth] != col[depth:]:
            return True
    return False


def find_dependences(nest: LoopNest, params: Dict[str, int]) -> List[Dependence]:
    """All (conservatively) existing non-input dependences of the nest."""
    out: List[Dependence] = []
    with span("compile.dependence"):
        pairs = nest.all_accesses()
        for i, (s1, a1) in enumerate(pairs):
            for s2, a2 in pairs[i:]:
                kind = test_dependence(s1, a1, s2, a2, params)
                if kind is not None:
                    out.append(
                        Dependence(
                            array=a1.array,
                            source=s1.name,
                            sink=s2.name,
                            kind=kind,
                            proven=False,
                        )
                    )
    return out


def is_fully_parallel(nest: LoopNest, params: Dict[str, int]) -> bool:
    """True when no flow/anti/output dependence exists: every statement
    instance may execute at the same time step (all loops DOALL)."""
    return not find_dependences(nest, params)
