"""Affine dependence analysis.

The paper assumes the motivating loop nest is fully parallel ("check
with Tiny"); this module is the substrate that performs that check.  A
dependence exists between access ``(S1, F1, c1)`` and ``(S2, F2, c2)``
on the same array (at least one a write) iff the linear system

    ``F1 I1 + c1 = F2 I2 + c2``

has an integer solution with both ``I1`` and ``I2`` inside their
iteration domains.  We combine three classical tests, each exact in the
direction it reports:

1. **GCD test** — necessary condition for integer solvability of each
   subscript equation; a failure disproves the dependence.
2. **Exact lattice test** — integer solvability of the whole stacked
   system via the Smith form (no approximation).
3. **Domain test** — Fourier–Motzkin elimination over the rationals on
   the solution lattice restricted to both statements' polyhedral
   iteration domains (:func:`domain_feasible`; triangular constraints
   enter exactly, rectangular ones reduce to the classical box bounds);
   exactness holds for the rational relaxation and is conservative (may
   report a dependence that only rational points realize, which is
   safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from ..linalg import IntMat, solve_axb
from .access import AccessKind, AffineAccess
from .loopnest import LoopNest, Statement


@dataclass(frozen=True)
class Dependence:
    """A (possibly conservative) dependence between two accesses."""

    array: str
    source: str  # statement name
    sink: str
    kind: str  # "flow", "anti", "output", "input"
    proven: bool  # True if an explicit witness was found


# ---------------------------------------------------------------------------
# test 1: GCD
# ---------------------------------------------------------------------------

def gcd_test(f1: IntMat, c1: IntMat, f2: IntMat, c2: IntMat) -> bool:
    """Return False when the GCD test *disproves* any integer solution
    of ``F1 I1 - F2 I2 = c2 - c1`` (row by row); True otherwise."""
    rows = f1.nrows
    for r in range(rows):
        coeffs = list(f1[r]) + [-x for x in f2[r]]
        rhs = c2[r, 0] - c1[r, 0]
        g = 0
        for x in coeffs:
            g = gcd(g, abs(x))
        if g == 0:
            if rhs != 0:
                return False
            continue
        if rhs % g != 0:
            return False
    return True


# ---------------------------------------------------------------------------
# test 2: exact integer solvability of the stacked system
# ---------------------------------------------------------------------------

def lattice_test(f1: IntMat, c1: IntMat, f2: IntMat, c2: IntMat):
    """Solve ``[F1 | -F2] (I1; I2) = c2 - c1`` over the integers.

    Returns the :class:`~repro.linalg.DiophantineSolution` or ``None``
    when no integer solution exists (dependence disproved).
    """
    a = f1.hstack(-1 * f2)
    b = c2 - c1
    return solve_axb(a, b)


# ---------------------------------------------------------------------------
# test 3: Fourier–Motzkin on the solution lattice within loop bounds
# ---------------------------------------------------------------------------

Ineq = Tuple[Tuple[Fraction, ...], Fraction]  # coeffs . y <= rhs


def _fourier_motzkin(ineqs: List[Ineq], nvars: int) -> bool:
    """Rational feasibility of ``A y <= b`` by eliminating variables.

    Returns True iff the polyhedron is non-empty (over Q).
    """
    system = [([Fraction(x) for x in coeffs], Fraction(rhs)) for coeffs, rhs in ineqs]
    for var in range(nvars):
        pos, neg, rest = [], [], []
        for coeffs, rhs in system:
            c = coeffs[var]
            if c > 0:
                pos.append((coeffs, rhs))
            elif c < 0:
                neg.append((coeffs, rhs))
            else:
                rest.append((coeffs, rhs))
        new = rest
        for pc, pr in pos:
            for nc, nr in neg:
                # combine to eliminate var: pc/|pc| + nc/|nc|
                a = pc[var]
                b = -nc[var]
                coeffs = [x / a + y / b for x, y in zip(pc, nc)]
                rhs = pr / a + nr / b
                coeffs[var] = Fraction(0)
                new.append((coeffs, rhs))
        system = new
        # prune trivially true rows to keep the blow-up in check
        system = [
            (c, r)
            for c, r in system
            if any(x != 0 for x in c) or r < 0
        ]
        if any(all(x == 0 for x in c) and r < 0 for c, r in system):
            return False
    # all variables eliminated: feasible iff no 0 <= negative row remains
    return not any(r < 0 for _, r in system if True)


def bounds_test(
    sol,
    depth1: int,
    depth2: int,
    bounds1: Sequence[Tuple[int, int]],
    bounds2: Sequence[Tuple[int, int]],
) -> bool:
    """Check whether some lattice point of ``sol`` satisfies rectangular
    loop bounds (rational relaxation — conservative).

    The rectangular-box special case of :func:`domain_feasible`, kept
    for callers that carry explicit ``(lo, hi)`` intervals.
    """
    # point = particular + H y, with bounds lo <= point_i <= hi
    part = sol.particular.column_tuple(0)
    hom_cols = [h.column_tuple(0) for h in sol.homogeneous]
    nvars = len(hom_cols)
    all_bounds = list(bounds1) + list(bounds2)
    assert len(part) == depth1 + depth2 == len(all_bounds)
    if nvars == 0:
        return all(lo <= p <= hi for p, (lo, hi) in zip(part, all_bounds))
    ineqs: List[Ineq] = []
    for i, (lo, hi) in enumerate(all_bounds):
        row = [Fraction(h[i]) for h in hom_cols]
        # part_i + row . y <= hi
        ineqs.append((tuple(row), Fraction(hi - part[i])))
        # -(part_i + row . y) <= -lo
        ineqs.append((tuple(-x for x in row), Fraction(part[i] - lo)))
    return _fourier_motzkin(ineqs, nvars)


def domain_feasible(sol, s1: Statement, s2: Statement, params: Dict[str, int]) -> bool:
    """Check whether some lattice point of ``sol`` lies inside both
    statements' polyhedral iteration domains (rational relaxation —
    conservative, exactly like :func:`bounds_test`).

    For rectangular domains the inequality system is the same box the
    historical bounds test built; triangular/trapezoidal constraints
    (``for j = i..N``) enter the Fourier–Motzkin system exactly instead
    of being widened to their rectangular hull.
    """
    part = sol.particular.column_tuple(0)
    hom_cols = [h.column_tuple(0) for h in sol.homogeneous]
    nvars = len(hom_cols)
    d1 = s1.depth
    assert len(part) == d1 + s2.depth
    if nvars == 0:
        return s1.domain.contains(part[:d1], params) and s2.domain.contains(
            part[d1:], params
        )
    ineqs: List[Ineq] = []
    for dom, offset in ((s1.domain, 0), (s2.domain, d1)):
        for con in dom.constraints:
            # a . I + off >= 0 with I = part_slice + H_slice y
            # =>  (-a . H_slice) y <= a . part_slice + off
            rhs = Fraction(
                sum(
                    a * part[offset + i]
                    for i, a in enumerate(con.var_coeffs)
                )
                + con.offset(params)
            )
            coeffs = tuple(
                Fraction(
                    -sum(
                        a * h[offset + i]
                        for i, a in enumerate(con.var_coeffs)
                    )
                )
                for h in hom_cols
            )
            ineqs.append((coeffs, rhs))
    return _fourier_motzkin(ineqs, nvars)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def _dep_kind(kind1: AccessKind, kind2: AccessKind) -> str:
    if kind1 is AccessKind.WRITE and kind2 is AccessKind.READ:
        return "flow"
    if kind1 is AccessKind.READ and kind2 is AccessKind.WRITE:
        return "anti"
    if kind1 is AccessKind.WRITE and kind2 is AccessKind.WRITE:
        return "output"
    return "input"


def test_dependence(
    s1: Statement,
    a1: AffineAccess,
    s2: Statement,
    a2: AffineAccess,
    params: Dict[str, int],
    same_statement_distinct: bool = True,
) -> Optional[str]:
    """Full dependence test between two accesses to the same array.

    Returns the dependence kind string when a dependence may exist, or
    ``None`` when it is disproved.  ``params`` binds symbolic sizes for
    the bounds test.
    """
    if a1.array != a2.array:
        return None
    if a1.kind is AccessKind.READ and a2.kind is AccessKind.READ:
        return None  # input "dependences" don't constrain parallelism
    if not gcd_test(a1.F, a1.c, a2.F, a2.c):
        return None
    sol = lattice_test(a1.F, a1.c, a2.F, a2.c)
    if sol is None:
        return None
    if not domain_feasible(sol, s1, s2, params):
        return None
    if s1 is s2 and a1 is a2 and same_statement_distinct:
        # self-dependence of a single access needs I1 != I2; a lattice
        # with only the trivial diagonal solution is not a dependence.
        if not _has_distinct_solution(sol, s1.depth):
            return None
    return _dep_kind(a1.kind, a2.kind)


def _has_distinct_solution(sol, depth: int) -> bool:
    """True when the solution lattice contains a point with I1 != I2."""
    part = sol.particular.column_tuple(0)
    if part[:depth] != part[depth:]:
        return True
    for h in sol.homogeneous:
        col = h.column_tuple(0)
        if col[:depth] != col[depth:]:
            return True
    return False


def find_dependences(nest: LoopNest, params: Dict[str, int]) -> List[Dependence]:
    """All (conservatively) existing non-input dependences of the nest."""
    out: List[Dependence] = []
    pairs = nest.all_accesses()
    for i, (s1, a1) in enumerate(pairs):
        for s2, a2 in pairs[i:]:
            kind = test_dependence(s1, a1, s2, a2, params)
            if kind is not None:
                out.append(
                    Dependence(
                        array=a1.array,
                        source=s1.name,
                        sink=s2.name,
                        kind=kind,
                        proven=False,
                    )
                )
    return out


def is_fully_parallel(nest: LoopNest, params: Dict[str, int]) -> bool:
    """True when no flow/anti/output dependence exists: every statement
    instance may execute at the same time step (all loops DOALL)."""
    return not find_dependences(nest, params)
