"""Loop nest intermediate representation.

The paper's computations are *non-perfect affine loop nests*: several
statements at possibly different depths, each with a polyhedral
iteration domain and a list of affine accesses.  The IR below captures
exactly what the alignment algorithms consume:

* per statement: depth ``d``, loop-variable names, domain bounds,
  accesses (one write at most, any number of reads);
* per array: symbolic name and dimension ``q_x``;
* symbolic sizes are supported through simple bound expressions
  evaluated against a parameter binding (``N``, ``M``...).

A loop bound may reference the *outer* loop variables as well as the
size parameters (``for j = i..N`` — the triangular/trapezoidal kernels:
LU, Cholesky, back-substitution), in which case the statement's
iteration set is the polyhedral :class:`~repro.ir.domain.Domain` built
from the constraints; rectangular bounds remain the trivial special
case and keep their historical fast paths bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .access import AccessKind, AffineAccess
from .domain import Domain


@dataclass(frozen=True)
class Bound:
    """An affine bound ``const + sum coeff[name] * name``.

    Names are symbolic sizes such as ``N`` and ``M`` — or outer loop
    variables, which makes the surrounding domain non-rectangular
    (triangular ``for j = i..N``).  :meth:`evaluate` binds *parameters*
    only and is the rectangular-path entry point; bounds referencing
    loop variables are resolved through the statement's
    :class:`~repro.ir.domain.Domain` instead.
    """

    const: int = 0
    coeffs: Tuple[Tuple[str, int], ...] = ()

    def evaluate(self, params: Dict[str, int]) -> int:
        total = self.const
        for name, k in self.coeffs:
            if name not in params:
                raise KeyError(f"unbound size parameter {name!r}")
            total += k * params[name]
        return total

    @staticmethod
    def of(value) -> "Bound":
        """Coerce ``int`` or ``str`` (a bare parameter) or Bound."""
        if isinstance(value, Bound):
            return value
        if isinstance(value, int):
            return Bound(const=value)
        if isinstance(value, str):
            return Bound(coeffs=((value, 1),))
        raise TypeError(f"cannot interpret bound {value!r}")

    def __add__(self, other) -> "Bound":
        o = Bound.of(other)
        merged = dict(self.coeffs)
        for name, k in o.coeffs:
            merged[name] = merged.get(name, 0) + k
        return Bound(
            const=self.const + o.const,
            coeffs=tuple(sorted((n, k) for n, k in merged.items() if k != 0)),
        )

    def describe(self) -> str:
        parts = [f"{k}*{n}" if k != 1 else n for n, k in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class LoopDim:
    """One loop of the nest: ``for var = lower to upper``."""

    var: str
    lower: Bound
    upper: Bound

    def range(self, params: Dict[str, int]) -> range:
        return range(self.lower.evaluate(params), self.upper.evaluate(params) + 1)


@dataclass
class Statement:
    """A statement of the nest with its surrounding loops and accesses."""

    name: str
    loops: List[LoopDim]
    accesses: List[AffineAccess] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def index_names(self) -> Tuple[str, ...]:
        return tuple(l.var for l in self.loops)

    def reads(self) -> List[AffineAccess]:
        return [a for a in self.accesses if a.kind is AccessKind.READ]

    def writes(self) -> List[AffineAccess]:
        return [a for a in self.accesses if a.kind is AccessKind.WRITE]

    @property
    def domain(self) -> Domain:
        """The statement's polyhedral iteration domain (cached).

        Rectangular nests get the trivial two-constraints-per-loop
        domain; triangular bounds (outer-variable references) make it a
        genuine polyhedron.
        """
        cached = self.__dict__.get("_domain")
        if cached is None:
            cached = Domain.from_loops(self.loops)
            self.__dict__["_domain"] = cached
        return cached

    @property
    def is_rectangular(self) -> bool:
        return self.domain.is_rectangular

    def iteration_domain(self, params: Dict[str, int]) -> Iterator[Tuple[int, ...]]:
        """Enumerate the iteration domain (bounding-box product order;
        for rectangular domains exactly the historical
        ``itertools.product`` of the per-loop ranges)."""
        if self.is_rectangular:
            ranges = [l.range(params) for l in self.loops]
            return product(*ranges)
        return self.domain.enumerate_points(params)

    def domain_size(self, params: Dict[str, int]) -> int:
        if self.is_rectangular:
            total = 1
            for l in self.loops:
                total *= max(0, len(l.range(params)))
            return total
        return self.domain.size(params)

    def validate(self) -> None:
        self.domain  # constructing it rejects malformed (inward) bounds
        for a in self.accesses:
            if a.depth != self.depth:
                raise ValueError(
                    f"access {a.describe()} has depth {a.depth} but statement "
                    f"{self.name} has depth {self.depth}"
                )


@dataclass
class ArrayDecl:
    """A declared array with its dimensionality."""

    name: str
    dim: int


@dataclass
class LoopNest:
    """A (possibly non-perfect) affine loop nest.

    The nest is a *list of statements*, each carrying its own loop
    structure; common outer loops are simply repeated in each
    statement's ``loops`` (with identical variable names), which is all
    the alignment analysis needs.
    """

    name: str
    arrays: Dict[str, ArrayDecl] = field(default_factory=dict)
    statements: List[Statement] = field(default_factory=list)

    def declare_array(self, name: str, dim: int) -> ArrayDecl:
        if name in self.arrays:
            raise ValueError(f"array {name!r} already declared")
        decl = ArrayDecl(name=name, dim=dim)
        self.arrays[name] = decl
        return decl

    def add_statement(self, stmt: Statement) -> Statement:
        if any(s.name == stmt.name for s in self.statements):
            raise ValueError(f"statement {stmt.name!r} already present")
        stmt.validate()
        for a in stmt.accesses:
            if a.array not in self.arrays:
                raise ValueError(f"access to undeclared array {a.array!r}")
            if self.arrays[a.array].dim != a.array_dim:
                raise ValueError(
                    f"array {a.array!r} has dim {self.arrays[a.array].dim} but "
                    f"access {a.describe()} has {a.array_dim} subscripts"
                )
        self.statements.append(stmt)
        return stmt

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(f"no statement named {name!r}")

    def all_accesses(self) -> List[Tuple[Statement, AffineAccess]]:
        return [(s, a) for s in self.statements for a in s.accesses]

    def validate(self) -> None:
        for s in self.statements:
            s.validate()

    def describe(self) -> str:
        lines = [f"loop nest {self.name!r}:"]
        for ad in self.arrays.values():
            lines.append(f"  array {ad.name}[{ad.dim}D]")
        for s in self.statements:
            loops = ", ".join(
                f"{l.var}={l.lower.describe()}..{l.upper.describe()}" for l in s.loops
            )
            lines.append(f"  {s.name} ({loops}):")
            for a in s.accesses:
                lines.append(f"    {a.kind.value:5s} {a.describe()}")
        return "\n".join(lines)


class NestBuilder:
    """Small fluent DSL for building loop nests in examples and tests.

    Example
    -------
    >>> b = NestBuilder("ex")
    >>> b.array("a", 3).array("b", 2)
    >>> with_loops = [("i", 0, "N"), ("j", 0, "M")]
    >>> b.statement("S1", with_loops,
    ...             writes=[("b", [[1, 0], [0, 1]], [0, 1])],
    ...             reads=[("a", [[1, 0], [0, 1], [1, 1]], None)])
    >>> nest = b.build()
    """

    def __init__(self, name: str):
        self._nest = LoopNest(name=name)
        self._access_counter = 0

    def array(self, name: str, dim: int) -> "NestBuilder":
        self._nest.declare_array(name, dim)
        return self

    def statement(
        self,
        name: str,
        loops: Sequence[Tuple[str, object, object]],
        writes: Sequence[Tuple] = (),
        reads: Sequence[Tuple] = (),
    ) -> "NestBuilder":
        loop_dims = [
            LoopDim(var=v, lower=Bound.of(lo), upper=Bound.of(hi))
            for (v, lo, hi) in loops
        ]
        accesses: List[AffineAccess] = []
        from ..linalg import IntMat

        def mk(spec, kind: AccessKind) -> AffineAccess:
            self._access_counter += 1
            if len(spec) == 2:
                arr, f_rows = spec
                c = None
                label = None
            elif len(spec) == 3:
                arr, f_rows, c = spec
                label = None
            else:
                arr, f_rows, c, label = spec
            return AffineAccess(
                array=arr,
                F=IntMat(f_rows),
                c=IntMat.col(list(c)) if c is not None else None,
                kind=kind,
                label=label or f"F{self._access_counter}",
            )

        for spec in writes:
            accesses.append(mk(spec, AccessKind.WRITE))
        for spec in reads:
            accesses.append(mk(spec, AccessKind.READ))
        self._nest.add_statement(Statement(name=name, loops=loop_dims, accesses=accesses))
        return self

    def build(self) -> LoopNest:
        self._nest.validate()
        return self._nest
