"""Schedule legality checking.

A linear multidimensional schedule is *legal* when every dependence is
respected: if instance ``I2`` of ``S2`` depends on instance ``I1`` of
``S1`` (flow/anti/output), then ``theta_{S1} I1`` must precede
``theta_{S2} I2`` lexicographically (strictly).  The paper takes
schedules as given inputs of the mapping problem; this checker keeps
the library's example schedules honest and guards the executor against
meaningless time bucketing.

The check enumerates dependence witnesses over the *bounded* polyhedral
iteration domains (parameters bound to small values) — exact for the
instance, exponential in principle, and exactly what a test harness
wants.  Two kinds of violation are reported:

* **same-step conflict** — two dependent instances share a time vector
  (they cannot execute simultaneously when one writes);
* **order violation** — the *sink* of a dependence is scheduled
  strictly before its *source*.  The source/sink roles come from the
  original sequential execution order of the nest: instances compare
  lexicographically on their common outer loops, ties broken by
  statement order in the nest (and by full lexicographic order inside
  one statement).

:func:`schedule_violations` is **vectorized** — statement domains
become dense int64 point matrices (the same
:meth:`~repro.ir.domain.Domain.point_matrix` arrays the runtime layer
consumes), schedule times and access subscripts are single matmuls over
whole domains, and subscript collisions are found with one
``np.unique`` label intersection per access pair instead of the
quadratic per-element scan.  The per-element implementation is kept as
:func:`schedule_violations_python`, the measured baseline the
vectorized path is asserted bit-identical against (messages and order
included) — the same old-vs-new pattern as ``phase_time_python`` and
``execute_python``; ``benchmarks/bench_legality.py`` gates both the
bit-identity and the speedup floor.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..obs import traced
from .access import AccessKind
from .loopnest import LoopNest
from .schedule import ScheduledNest

#: int64 safety bound shared with the runtime layer's affine stages
_INT64_SAFE = 2 ** 62


def _lex_lt(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Lexicographic a < b with implicit zero-padding."""
    n = max(len(a), len(b))
    ap = tuple(a) + (0,) * (n - len(a))
    bp = tuple(b) + (0,) * (n - len(b))
    return ap < bp


def _lex_cmp(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    """-1/0/1 lexicographic comparison with implicit zero-padding."""
    if _lex_lt(a, b):
        return -1
    if _lex_lt(b, a):
        return 1
    return 0


def _common_prefix(names1: Sequence[str], names2: Sequence[str]) -> int:
    """Number of leading loops the two statements share (by variable
    name and position) — the loops that interleave their instances in
    the original source."""
    k = 0
    for a, b in zip(names1, names2):
        if a != b:
            break
        k += 1
    return k


def _original_order(
    idx1: Tuple[int, ...],
    idx2: Tuple[int, ...],
    prefix: int,
    pos1: int,
    pos2: int,
) -> int:
    """-1 when instance 1 executes first in the original nest, +1 when
    instance 2 does, 0 only for the same instance of one statement."""
    a, b = tuple(idx1[:prefix]), tuple(idx2[:prefix])
    if a != b:
        return -1 if a < b else 1
    if pos1 != pos2:
        return -1 if pos1 < pos2 else 1
    if tuple(idx1) != tuple(idx2):
        return -1 if tuple(idx1) < tuple(idx2) else 1
    return 0


def _same_step_message(s1, idx1, s2, idx2, array, cell, t1) -> str:
    return (
        f"{s1}{idx1} and {s2}{idx2} touch "
        f"{array}{cell} at the same time step {t1}"
    )


def _order_message(snk_s, snk_idx, t_snk, src_s, src_idx, t_src, array, cell) -> str:
    return (
        f"{snk_s}{snk_idx} at time {t_snk} is scheduled before its "
        f"source {src_s}{src_idx} at time {t_src} on {array}{cell}"
    )


def schedule_violations_python(
    scheduled: ScheduledNest, params: Dict[str, int], limit: int = 10
) -> List[str]:
    """Per-element reference implementation of
    :func:`schedule_violations` — one witness pair at a time, exactly
    the messages (and order) of the vectorized path.  Kept as the
    measured baseline and bit-identity cross-check."""
    nest = scheduled.nest
    pos = {s.name: p for p, s in enumerate(nest.statements)}
    out: List[str] = []
    pairs = nest.all_accesses()
    for i, (s1, a1) in enumerate(pairs):
        for j in range(i, len(pairs)):
            s2, a2 = pairs[j]
            if a1.array != a2.array:
                continue
            if a1.kind is AccessKind.READ and a2.kind is AccessKind.READ:
                continue
            th1 = scheduled.schedule_of(s1.name)
            th2 = scheduled.schedule_of(s2.name)
            prefix = _common_prefix(s1.index_names, s2.index_names)
            p1, p2 = pos[s1.name], pos[s2.name]
            for idx1 in s1.iteration_domain(params):
                cell1 = a1.apply(idx1)
                for idx2 in s2.iteration_domain(params):
                    if s1 is s2 and idx1 == idx2:
                        continue
                    if a2.apply(idx2) != cell1:
                        continue
                    d = _original_order(idx1, idx2, prefix, p1, p2)
                    if i == j and d >= 0:
                        # a self-paired access sees each unordered
                        # instance pair twice; keep the source-first one
                        continue
                    t1 = th1.time_of(idx1)
                    t2 = th2.time_of(idx2)
                    tc = _lex_cmp(t1, t2)
                    if tc == 0:
                        out.append(
                            _same_step_message(
                                s1.name, idx1, s2.name, idx2,
                                a1.array, cell1, t1,
                            )
                        )
                    elif (d < 0) == (tc > 0):
                        # the sink is scheduled strictly before the
                        # source: an order violation
                        if d < 0:
                            src = (s1.name, idx1, t1)
                            snk = (s2.name, idx2, t2)
                        else:
                            src = (s2.name, idx2, t2)
                            snk = (s1.name, idx1, t1)
                        out.append(
                            _order_message(
                                snk[0], snk[1], snk[2],
                                src[0], src[1], src[2],
                                a1.array, cell1,
                            )
                        )
                    else:
                        continue
                    if len(out) >= limit:
                        return out
    return out


# ---------------------------------------------------------------------------
# vectorized witness enumeration
# ---------------------------------------------------------------------------


def _lex_cmp_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise -1/0/1 lexicographic comparison of two equal-shape
    integer matrices."""
    n = a.shape[0]
    if n == 0 or a.shape[1] == 0:
        return np.zeros(n, dtype=np.int64)
    diff = np.sign(a - b)
    nz = diff != 0
    first = np.argmax(nz, axis=1)
    out = diff[np.arange(n), first]
    out[~nz.any(axis=1)] = 0
    return out


def _pad_cols(t: np.ndarray, width: int) -> np.ndarray:
    if t.shape[1] == width:
        return t
    pad = np.zeros((t.shape[0], width - t.shape[1]), dtype=np.int64)
    return np.concatenate((t, pad), axis=1)


def _vector_safe(points: np.ndarray, *mats) -> bool:
    """Conservative int64-overflow proof for ``points @ mat.T + off``
    chains (max-abs magnitudes, same style as the runtime layer)."""
    bound = int(abs(points).max()) if points.size else 0
    for mat, off in mats:
        b = mat.ncols * mat.max_abs() * bound + (
            off.max_abs() if off is not None else 0
        )
        if b >= _INT64_SAFE:
            return False
    return True


@traced("legality.violations")
def schedule_violations(
    scheduled: ScheduledNest, params: Dict[str, int], limit: int = 10
) -> List[str]:
    """Concrete dependence violations of a schedule (up to ``limit``).

    Enumerates pairs of accesses to the same array (at least one write)
    whose subscripts collide inside the bounded polyhedral domains and
    whose time stamps do not respect the source-before-sink order of
    the original nest — same-step conflicts *and* order violations
    (sink strictly before source).  Returns human-readable
    descriptions; an empty list means the schedule is legal on these
    bounds.

    Vectorized over dense domain point matrices; bit-identical (message
    strings and order) to :func:`schedule_violations_python`.
    """
    nest = scheduled.nest
    if any(s.depth == 0 for s in nest.statements):
        return schedule_violations_python(scheduled, params, limit)

    # per-statement point/time matrices, per-access subscript matrices
    points: Dict[str, np.ndarray] = {}
    times: Dict[str, np.ndarray] = {}
    subs: List[np.ndarray] = []
    pairs = nest.all_accesses()
    pos = {s.name: p for p, s in enumerate(nest.statements)}
    for stmt in nest.statements:
        pts = stmt.domain.point_matrix(params)
        theta = scheduled.schedule_of(stmt.name).theta
        if not _vector_safe(pts, (theta, None)):
            return schedule_violations_python(scheduled, params, limit)
        points[stmt.name] = pts
        times[stmt.name] = pts @ theta.to_numpy().T
    for stmt, acc in pairs:
        pts = points[stmt.name]
        if not _vector_safe(pts, (acc.F, acc.c)):
            return schedule_violations_python(scheduled, params, limit)
        subs.append(pts @ acc.F.to_numpy().T + acc.c.to_numpy().T)

    out: List[str] = []
    for i, (s1, a1) in enumerate(pairs):
        for j in range(i, len(pairs)):
            s2, a2 = pairs[j]
            if a1.array != a2.array:
                continue
            if a1.kind is AccessKind.READ and a2.kind is AccessKind.READ:
                continue
            sub1, sub2 = subs[i], subs[j]
            n1, n2 = sub1.shape[0], sub2.shape[0]
            if n1 == 0 or n2 == 0:
                continue
            # label every distinct subscript cell, intersect the labels
            _, inv = np.unique(
                np.concatenate((sub1, sub2), axis=0),
                axis=0,
                return_inverse=True,
            )
            inv = np.asarray(inv).ravel()
            l1, l2 = inv[:n1], inv[n1:]
            shared = np.intersect1d(l1, l2)
            if shared.size == 0:
                continue
            # cross product of the colliding instances per shared label,
            # built without a per-label Python loop: stable argsorts
            # group equal labels contiguously (positions stay ascending
            # inside a group), vectorized searchsorted finds each
            # group's span, and integer div/mod unrolls the products
            o1 = np.argsort(l1, kind="stable")
            o2 = np.argsort(l2, kind="stable")
            sl1, sl2 = l1[o1], l2[o2]
            st1 = np.searchsorted(sl1, shared, side="left")
            st2 = np.searchsorted(sl2, shared, side="left")
            cnt1 = np.searchsorted(sl1, shared, side="right") - st1
            cnt2 = np.searchsorted(sl2, shared, side="right") - st2
            per_label = cnt1 * cnt2
            total = int(per_label.sum())
            if total == 0:
                continue
            lab = np.repeat(np.arange(shared.size), per_label)
            offs = np.concatenate(([0], np.cumsum(per_label)[:-1]))
            q = np.arange(total) - offs[lab]
            r1 = o1[st1[lab] + q // cnt2[lab]]
            r2 = o2[st2[lab] + q % cnt2[lab]]
            if s1 is s2:
                keep = r1 != r2  # same instance is never a witness
                r1, r2 = r1[keep], r2[keep]
            if r1.size == 0:
                continue

            p1_pts, p2_pts = points[s1.name], points[s2.name]
            i1, i2 = p1_pts[r1], p2_pts[r2]
            prefix = _common_prefix(s1.index_names, s2.index_names)
            d = _lex_cmp_rows(i1[:, :prefix], i2[:, :prefix])
            tie = d == 0
            if tie.any():
                if pos[s1.name] != pos[s2.name]:
                    d[tie] = -1 if pos[s1.name] < pos[s2.name] else 1
                else:
                    d[tie] = _lex_cmp_rows(i1[tie], i2[tie])
            if i == j:
                keep = d < 0  # drop the mirrored duplicate witnesses
                r1, r2, i1, i2, d = r1[keep], r2[keep], i1[keep], i2[keep], d[keep]
                if r1.size == 0:
                    continue

            t1_all, t2_all = times[s1.name], times[s2.name]
            width = max(t1_all.shape[1], t2_all.shape[1])
            t1 = _pad_cols(t1_all, width)[r1]
            t2 = _pad_cols(t2_all, width)[r2]
            tc = _lex_cmp_rows(t1, t2)
            bad = (tc == 0) | ((d < 0) == (tc > 0))
            if not bad.any():
                continue
            # report in the reference path's emission order: idx1-major
            order = np.lexsort((r2[bad], r1[bad]))
            b_r1, b_r2 = r1[bad][order], r2[bad][order]
            b_d, b_tc = d[bad][order], tc[bad][order]
            th1 = scheduled.schedule_of(s1.name)
            th2 = scheduled.schedule_of(s2.name)
            for k in range(b_r1.size):
                idx1 = tuple(p1_pts[b_r1[k]].tolist())
                idx2 = tuple(p2_pts[b_r2[k]].tolist())
                cell1 = a1.apply(idx1)
                tt1 = th1.time_of(idx1)
                tt2 = th2.time_of(idx2)
                if b_tc[k] == 0:
                    out.append(
                        _same_step_message(
                            s1.name, idx1, s2.name, idx2,
                            a1.array, cell1, tt1,
                        )
                    )
                else:
                    if b_d[k] < 0:
                        src = (s1.name, idx1, tt1)
                        snk = (s2.name, idx2, tt2)
                    else:
                        src = (s2.name, idx2, tt2)
                        snk = (s1.name, idx1, tt1)
                    out.append(
                        _order_message(
                            snk[0], snk[1], snk[2],
                            src[0], src[1], src[2],
                            a1.array, cell1,
                        )
                    )
                if len(out) >= limit:
                    return out
    return out


def schedule_is_legal(
    scheduled: ScheduledNest, params: Dict[str, int]
) -> bool:
    """True iff no conflicting or misordered dependent pair exists on
    these bounds."""
    return not schedule_violations(scheduled, params, limit=1)
