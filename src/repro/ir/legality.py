"""Schedule legality checking.

A linear multidimensional schedule is *legal* when every dependence is
respected: if instance ``I2`` of ``S2`` depends on instance ``I1`` of
``S1`` (flow/anti/output), then ``theta_{S1} I1`` must precede
``theta_{S2} I2`` lexicographically (strictly, unless they are the same
instance).  The paper takes schedules as given inputs of the mapping
problem; this checker keeps the library's example schedules honest and
guards the executor against meaningless time bucketing.

The check enumerates dependence witnesses over the *bounded* iteration
domains (parameters bound to small values) — exact for the instance,
exponential in principle, and exactly what a test harness wants.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .access import AccessKind
from .loopnest import LoopNest
from .schedule import ScheduledNest


def _lex_lt(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Lexicographic a < b with implicit zero-padding."""
    n = max(len(a), len(b))
    ap = tuple(a) + (0,) * (n - len(a))
    bp = tuple(b) + (0,) * (n - len(b))
    return ap < bp


def schedule_violations(
    scheduled: ScheduledNest, params: Dict[str, int], limit: int = 10
) -> List[str]:
    """Concrete dependence violations of a schedule (up to ``limit``).

    Enumerates pairs of accesses to the same array (at least one write)
    whose subscripts collide inside the bounded domains and whose time
    stamps do not respect the source-before-sink order.  Returns
    human-readable descriptions; an empty list means the schedule is
    legal on these bounds.
    """
    nest = scheduled.nest
    out: List[str] = []
    pairs = nest.all_accesses()
    # precompute per-statement instance -> time
    for i, (s1, a1) in enumerate(pairs):
        for s2, a2 in pairs:
            if a1.array != a2.array:
                continue
            if a1.kind is AccessKind.READ and a2.kind is AccessKind.READ:
                continue
            th1 = scheduled.schedule_of(s1.name)
            th2 = scheduled.schedule_of(s2.name)
            for idx1 in s1.iteration_domain(params):
                cell1 = a1.apply(idx1)
                for idx2 in s2.iteration_domain(params):
                    if s1 is s2 and idx1 == idx2:
                        continue
                    if a2.apply(idx2) != cell1:
                        continue
                    t1 = th1.time_of(idx1)
                    t2 = th2.time_of(idx2)
                    # a true dependence needs an order: writer before
                    # reader (flow), reader before writer (anti),
                    # writers ordered (output).  With linear schedules
                    # the source must be scheduled strictly earlier —
                    # equality means a same-step conflict.
                    if t1 == t2:
                        out.append(
                            f"{s1.name}{idx1} and {s2.name}{idx2} touch "
                            f"{a1.array}{cell1} at the same time step {t1}"
                        )
                    if len(out) >= limit:
                        return out
    return out


def schedule_is_legal(
    scheduled: ScheduledNest, params: Dict[str, int]
) -> bool:
    """True iff no same-time conflicting pair exists on these bounds."""
    return not schedule_violations(scheduled, params, limit=1)
