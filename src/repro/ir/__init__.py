"""Loop-nest intermediate representation and analysis substrate.

* :mod:`repro.ir.access` — affine accesses ``x[F I + c]``;
* :mod:`repro.ir.domain` — polyhedral iteration domains ``A i + B p + c >= 0``;
* :mod:`repro.ir.loopnest` — statements, arrays, bounds, builder DSL;
* :mod:`repro.ir.dependence` — GCD / lattice / Fourier–Motzkin tests;
* :mod:`repro.ir.schedule` — linear multidimensional schedules;
* :mod:`repro.ir.examples` — the paper's Example 1 and Example 5 nests.
"""

from .access import AccessKind, AffineAccess, read, write
from .dependence import (
    Dependence,
    clear_dependence_caches,
    dependence_cache_stats,
    domain_feasible,
    find_dependences,
    gcd_test,
    is_fully_parallel,
    lattice_test,
    set_dependence_cache_size,
    test_dependence,
)
from .domain import Constraint, Domain
from .examples import (
    broadcast_example,
    gather_example,
    motivating_example,
    platonoff_example,
    reduction_example,
)
from .loopnest import ArrayDecl, Bound, LoopDim, LoopNest, NestBuilder, Statement
from .legality import (
    schedule_is_legal,
    schedule_violations,
    schedule_violations_python,
)
from .parser import NestSyntaxError, parse_nest
from .schedule import (
    Schedule,
    ScheduledNest,
    infer_schedules,
    outer_sequential_schedules,
    trivial_schedules,
)

__all__ = [
    "AccessKind",
    "AffineAccess",
    "read",
    "write",
    "ArrayDecl",
    "Bound",
    "LoopDim",
    "LoopNest",
    "NestBuilder",
    "Statement",
    "Constraint",
    "Domain",
    "Dependence",
    "clear_dependence_caches",
    "dependence_cache_stats",
    "set_dependence_cache_size",
    "domain_feasible",
    "find_dependences",
    "is_fully_parallel",
    "test_dependence",
    "gcd_test",
    "lattice_test",
    "Schedule",
    "ScheduledNest",
    "trivial_schedules",
    "outer_sequential_schedules",
    "infer_schedules",
    "motivating_example",
    "broadcast_example",
    "gather_example",
    "reduction_example",
    "platonoff_example",
    "parse_nest",
    "NestSyntaxError",
    "schedule_is_legal",
    "schedule_violations",
    "schedule_violations_python",
]
