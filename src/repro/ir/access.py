"""Affine array accesses ``I -> F I + c``.

Every array reference in an affine loop nest is described by an access
matrix ``F`` (``q_x`` rows — the array dimension — and ``d`` columns —
the statement depth) and a constant offset vector ``c``.  The alignment
equations of the paper only involve ``F`` (the non-local term); ``c``
contributes the local, fixed-size translation term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence, Tuple

from ..linalg import IntMat, rank


class AccessKind(Enum):
    """Whether the reference reads or writes the array."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class AffineAccess:
    """One affine array reference ``x[F I + c]`` inside a statement.

    Attributes
    ----------
    array:
        Name of the accessed array.
    F:
        The ``q_x x d`` access matrix.
    c:
        The ``q_x x 1`` constant offset (defaults to zero).
    kind:
        Read or write.
    label:
        Optional identifier (the paper numbers accesses F1..F9).
    """

    array: str
    F: IntMat
    c: IntMat = field(default=None)  # type: ignore[assignment]
    kind: AccessKind = AccessKind.READ
    label: Optional[str] = None

    def __post_init__(self):
        if self.c is None:
            object.__setattr__(self, "c", IntMat.zeros(self.F.nrows, 1))
        if self.c.shape != (self.F.nrows, 1):
            raise ValueError(
                f"offset shape {self.c.shape} incompatible with access matrix "
                f"{self.F.shape}"
            )

    @property
    def array_dim(self) -> int:
        """``q_x``: dimension of the accessed array region."""
        return self.F.nrows

    @property
    def depth(self) -> int:
        """``d``: depth of the surrounding statement."""
        return self.F.ncols

    @property
    def rank(self) -> int:
        return rank(self.F)

    @property
    def is_full_rank(self) -> bool:
        """True iff ``rank(F) == min(q_x, d)``."""
        return self.rank == min(self.F.shape)

    def apply(self, index: Sequence[int]) -> Tuple[int, ...]:
        """Evaluate ``F I + c`` on a concrete iteration vector."""
        if len(index) != self.depth:
            raise ValueError(
                f"iteration vector length {len(index)} != depth {self.depth}"
            )
        col = IntMat.col(list(index))
        out = self.F @ col + self.c
        return out.column_tuple(0)

    def describe(self) -> str:
        tag = self.label or f"{self.array}[{self.kind.value}]"
        return f"{tag}: {self.array}, F={self.F.tolist()}, c={self.c.column_tuple(0)}"


def read(array: str, f_rows: Sequence[Sequence[int]], c: Optional[Sequence[int]] = None,
         label: Optional[str] = None) -> AffineAccess:
    """Convenience constructor for a read access."""
    f = IntMat(f_rows)
    cc = IntMat.col(list(c)) if c is not None else None
    return AffineAccess(array=array, F=f, c=cc, kind=AccessKind.READ, label=label)


def write(array: str, f_rows: Sequence[Sequence[int]], c: Optional[Sequence[int]] = None,
          label: Optional[str] = None) -> AffineAccess:
    """Convenience constructor for a write access."""
    f = IntMat(f_rows)
    cc = IntMat.col(list(c)) if c is not None else None
    return AffineAccess(array=array, F=f, c=cc, kind=AccessKind.WRITE, label=label)
