"""The paper's example loop nests.

**A note on reconstruction.**  The available text of the paper is a
scanned research report whose OCR lost the numeric entries of the
Example 1 access matrices.  The nest below is a *reconstruction* that
satisfies every structural fact the prose states:

* non-perfect nest: ``S1`` at depth 2 (loops ``i, j``), ``S2``/``S3`` at
  depth 3 (extra loop ``k``); array ``a`` is 2-D, ``b`` and ``c`` 3-D;
* 8 accesses ``F1..F8``; ``F8`` is rank-deficient (rank 1) and therefore
  not represented in the access graph, which has exactly **7 edges**;
* edge integer weights are access ranks: ``F5`` and ``F7`` (the square
  depth-3 writes) have the maximum weight 3, all others weight 2;
* a maximum branching has **5 edges** — ``a -> S1`` (``F2``),
  ``S1 -> b`` (``F1``), ``S1 -> c`` (``F4``), ``b -> S2`` (``F5``),
  ``c -> S3`` (``F7``) — so both weight-3 edges are zeroed out and
  vertex ``a`` is the unique root;
* the two residual communications are the reads of ``a`` through ``F3``
  (in ``S1``) and ``F6`` (in ``S2``);
* ``F6`` has the non-null kernel ``v = (0, 1, -1)^T`` with
  ``M_S2 v = (1, 1)^T``: a partial broadcast *not* parallel to an axis,
  fixed by the unimodular rotation ``V`` with ``V M_S2 v = (1, 0)^T``;
* the rank-deficient ``F8`` also becomes a broadcast parallel to an
  axis after the same rotation (the paper's "lucky coincidence");
* the ``F3`` residual has data-flow matrix
  ``T = V M_S1 (M_a F3)^{-1} V^{-1}`` equal to a product of exactly two
  elementary matrices (one horizontal, one vertical communication);
* the nest carries no dependence (all loops DOALL): the constant third
  subscripts keep the ``S1``/``S2`` writes to ``b`` and the
  ``S1``-reads / ``S3``-writes of ``c`` disjoint.

Example 5 (Section 7.2) is reconstructed the same way:
``S(I): a[t,i,j,k] = b[t,i,j]`` with the outer ``t`` loop sequential;
``ker(theta) ∩ ker(F_b)`` is spanned by ``e4``, and with
``M_b = [[0,1,0],[0,0,1]]``, ``M_S = M_a = M_b F_b`` the nest is
communication-free, whereas a broadcast-preserving mapping pays a
partial broadcast per (i, j) pair per time step.
"""

from __future__ import annotations

from ..linalg import IntMat
from .loopnest import LoopNest, NestBuilder

# ---------------------------------------------------------------------------
# Example 1 access matrices (reconstructed, see module docstring)
# ---------------------------------------------------------------------------

F1 = IntMat([[1, 0], [0, 1], [0, 0]])  # write b in S1 (3x2, rank 2)
C1 = [0, 0, 0]
F2 = IntMat([[1, 1], [0, 1]])  # read a in S1 (square unimodular)
C2 = [0, 1]
F3 = IntMat([[1, -1], [1, 0]])  # read a in S1 (square, det 1) — residual
C3 = [0, 1]
F4 = IntMat([[0, 1], [1, 0], [0, 0]])  # read c in S1 (3x2, rank 2)
C4 = [0, 0, 0]
F5 = IntMat.identity(3)  # write b in S2 (3x3, the paper's F5 = Id)
C5 = [0, 0, 0]
F6 = IntMat([[1, 1, 1], [0, 1, 1]])  # read a in S2 (flat, ker = <(0,1,-1)>) — residual
C6 = [1, 0]
F7 = IntMat([[1, 0, 0], [0, 1, 0], [0, 1, 1]])  # write c in S3 (square, det 1)
C7 = [0, 0, 0]
F8 = IntMat([[1, 1, 0], [1, 1, 0]])  # read a in S3 (rank 1: excluded from graph)
C8 = [0, 1]

#: The paper's suggested left inverses ("F-tilde" weight matrices).
F1_TILDE = IntMat([[1, 0, 0], [0, 1, 0]])
F4_TILDE = IntMat([[0, 1, 0], [1, 0, 0]])


def motivating_example() -> LoopNest:
    """The reconstructed Example 1 of Section 2.

    ::

        for i = 1 to N:
          for j = 1 to M:
            S1: b[i, j, 0]       = g1(a[i+j, j+1], a[i-j, i+1], c[j, i, 0])
            for k = 1 to N+M:
              S2: b[i, j, k]     = g2(a[i+j+k+1, j+k])
              S3: c[i, j, j+k]   = g3(a[i+j, i+j+1])
    """
    b = NestBuilder("example1")
    b.array("a", 2).array("b", 3).array("c", 3)
    loops2 = [("i", 1, "N"), ("j", 1, "M")]
    loops3 = loops2 + [("k", 1, Nplus("N", "M"))]
    b.statement(
        "S1",
        loops2,
        writes=[("b", F1.tolist(), C1, "F1")],
        reads=[
            ("a", F2.tolist(), C2, "F2"),
            ("a", F3.tolist(), C3, "F3"),
            ("c", F4.tolist(), C4, "F4"),
        ],
    )
    b.statement(
        "S2",
        loops3,
        writes=[("b", F5.tolist(), C5, "F5")],
        reads=[("a", F6.tolist(), C6, "F6")],
    )
    b.statement(
        "S3",
        loops3,
        writes=[("c", F7.tolist(), C7, "F7")],
        reads=[("a", F8.tolist(), C8, "F8")],
    )
    return b.build()


def Nplus(*names: str):
    """Bound expression ``N + M + ...`` used for the inner loop."""
    from .loopnest import Bound

    total = Bound()
    for n in names:
        total = total + Bound.of(n)
    return total


# ---------------------------------------------------------------------------
# Example 2/3/4 style micro-nests (Section 4 macro-communication shapes)
# ---------------------------------------------------------------------------

def broadcast_example() -> LoopNest:
    """Example 2 shape: ``S(I): ... = a[F_a I + c_a]`` where ``F_a`` has a
    non-trivial kernel — a broadcast candidate."""
    b = NestBuilder("example2-broadcast")
    b.array("a", 2).array("out", 3)
    loops = [("i", 0, "N"), ("j", 0, "N"), ("k", 0, "N")]
    b.statement(
        "S",
        loops,
        writes=[("out", [[1, 0, 0], [0, 1, 0], [0, 0, 1]], None, "Fw")],
        reads=[("a", [[1, 0, 0], [0, 1, 0]], None, "Fa")],
    )
    return b.build()


def gather_example() -> LoopNest:
    """Example 3 shape: ``S(I): a[F_a I + c_a] = ...`` (a write with
    rank-deficient subscript would collapse values — treated as gather
    candidates when the *allocation* kernels align)."""
    b = NestBuilder("example3-gather")
    b.array("a", 2).array("src", 3)
    loops = [("i", 0, "N"), ("j", 0, "N"), ("k", 0, "N")]
    b.statement(
        "S",
        loops,
        writes=[("a", [[1, 0, 0], [0, 1, 0]], None, "Fa")],
        reads=[("src", [[1, 0, 0], [0, 1, 0], [0, 0, 1]], None, "Fr")],
    )
    return b.build()


def reduction_example() -> LoopNest:
    """Example 4 shape: ``S(I): s = s + b[F_b I + c_b]`` — represented
    with a 1-D accumulator array indexed by a rank-deficient access."""
    b = NestBuilder("example4-reduction")
    b.array("s", 1).array("b", 2)
    loops = [("i", 0, "N"), ("j", 0, "N")]
    b.statement(
        "S",
        loops,
        writes=[("s", [[1, 0]], None, "Fs")],
        reads=[("b", [[1, 0], [0, 1]], None, "Fb"), ("s", [[1, 0]], None, "FsR")],
    )
    return b.build()


# ---------------------------------------------------------------------------
# Example 5 (Section 7.2): comparison with Platonoff's strategy
# ---------------------------------------------------------------------------

FB_EX5 = IntMat([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0]])
FA_EX5 = IntMat.identity(4)


def platonoff_example() -> LoopNest:
    """Example 5::

        for t = 1 to n:              (sequential)
          for i, j, k = 1 to n:      (parallel)
            S: a[t, i, j, k] = b[t, i, j]
    """
    b = NestBuilder("example5")
    b.array("a", 4).array("b", 3)
    loops = [("t", 1, "n"), ("i", 1, "n"), ("j", 1, "n"), ("k", 1, "n")]
    b.statement(
        "S",
        loops,
        writes=[("a", FA_EX5.tolist(), None, "Fa")],
        reads=[("b", FB_EX5.tolist(), None, "Fb")],
    )
    return b.build()
