"""Polyhedral iteration domains ``A·i + B·p + c >= 0``.

The paper states the mapping problem for general affine loop nests, but
until this layer existed the repository hard-coded *rectangular*
iteration domains: every :class:`~repro.ir.loopnest.LoopDim` bound was
an affine form over the symbolic size parameters only.  A
:class:`Domain` is a statement's iteration set as a conjunction of
affine inequality constraints over the loop variables ``i`` *and* the
size parameters ``p``:

    ``a_1·i_1 + ... + a_d·i_d + b_1·p_1 + ... + b_k·p_k + c >= 0``

which admits the classic triangular/trapezoidal kernels (LU, Cholesky,
back-substitution: ``for j = i..N``) while keeping rectangular nests as
the trivial special case — a rectangular loop contributes exactly the
two one-variable constraints ``i - lo >= 0`` and ``hi - i >= 0``, so
every pre-existing nest is representable unchanged.

The two consumers shape the API:

* **analysis** (dependence, legality) wants the constraint system —
  :meth:`Domain.halfspaces` returns the ``(A, off)`` pair that turns
  membership of a dense ``(n, d)`` int64 point matrix into one matmul
  plus a comparison (:meth:`Domain.mask`);
* **enumeration** (runtime extraction, bounded legality witnesses)
  wants the points — :meth:`Domain.point_matrix` materializes the
  rectangular *bounding box* (``np.meshgrid``, ``itertools.product``
  row order — the PR-4 dense path) and filters it with the vectorized
  membership mask, so the int64-matmul pipeline downstream survives
  intact.  :meth:`Domain.enumerate_points` is the scalar twin with the
  same point order.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Constraint:
    """One affine half-space ``var_coeffs·i + param_coeffs·p + const >= 0``.

    ``var_coeffs`` has one entry per domain variable (in domain order);
    ``param_coeffs`` names the symbolic size parameters it involves.
    """

    var_coeffs: Tuple[int, ...]
    param_coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    def offset(self, params: Dict[str, int]) -> int:
        """The constant part ``param_coeffs·p + const`` under a binding."""
        total = self.const
        for name, k in self.param_coeffs:
            if name not in params:
                raise KeyError(f"unbound size parameter {name!r}")
            total += k * params[name]
        return total

    def holds(self, point: Sequence[int], params: Dict[str, int]) -> bool:
        return (
            sum(a * x for a, x in zip(self.var_coeffs, point))
            + self.offset(params)
            >= 0
        )

    def describe(self, variables: Sequence[str]) -> str:
        terms: List[str] = []
        for name, k in list(zip(variables, self.var_coeffs)) + list(
            self.param_coeffs
        ):
            if k == 0:
                continue
            if k == 1:
                terms.append(name)
            elif k == -1:
                terms.append(f"-{name}")
            else:
                terms.append(f"{k}*{name}")
        if self.const or not terms:
            terms.append(str(self.const))
        expr = terms[0]
        for t in terms[1:]:
            expr += t if t.startswith("-") else "+" + t
        return f"{expr} >= 0"


class Domain:
    """A statement's iteration set as affine inequality constraints.

    Built from the statement's loop structure by :meth:`from_loops`:
    each loop bound may reference size parameters *and outer loop
    variables*, which is how triangular/trapezoidal nests enter the IR.
    The loop structure is retained so the rectangular bounding box (and
    the exact ``itertools.product`` enumeration order of the
    rectangular special case) can be derived without a general
    projection step.
    """

    def __init__(
        self,
        variables: Sequence[str],
        constraints: Sequence[Constraint],
        loops: Sequence = (),
    ):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        self._loops = tuple(loops)
        for con in self.constraints:
            if len(con.var_coeffs) != len(self.variables):
                raise ValueError(
                    f"constraint {con} has {len(con.var_coeffs)} variable "
                    f"coefficient(s), domain has {len(self.variables)} "
                    "variable(s)"
                )

    # -- construction ---------------------------------------------------

    @staticmethod
    def from_loops(loops: Sequence) -> "Domain":
        """The domain of a loop nest: ``lower_k <= i_k <= upper_k`` where
        each bound is affine in the size parameters and the *outer* loop
        variables ``i_1 .. i_{k-1}``.

        A bound referencing the loop's own variable or an inner one is
        rejected — that is not an affine iteration domain.
        """
        variables = tuple(l.var for l in loops)
        index = {v: k for k, v in enumerate(variables)}
        constraints: List[Constraint] = []
        for k, loop in enumerate(loops):
            for bound, sign in ((loop.lower, -1), (loop.upper, 1)):
                # sign=-1: i_k - lower >= 0 ; sign=+1: upper - i_k >= 0
                var_coeffs = [0] * len(variables)
                var_coeffs[k] = -sign
                param_coeffs: List[Tuple[str, int]] = []
                for name, coeff in bound.coeffs:
                    pos = index.get(name)
                    if pos is None:
                        param_coeffs.append((name, sign * coeff))
                    elif pos < k:
                        var_coeffs[pos] += sign * coeff
                    else:
                        raise ValueError(
                            f"bound of loop {loop.var!r} references "
                            f"{name!r}, which is not an outer loop "
                            "variable (affine domains may only look "
                            "outward)"
                        )
                constraints.append(
                    Constraint(
                        var_coeffs=tuple(var_coeffs),
                        param_coeffs=tuple(sorted(param_coeffs)),
                        const=sign * bound.const,
                    )
                )
        return Domain(variables, constraints, loops)

    # -- shape ----------------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.variables)

    @property
    def is_rectangular(self) -> bool:
        """True when no constraint couples two loop variables — every
        bound is a pure parameter/constant form (the pre-domain-layer
        special case, kept on the historical fast paths)."""
        return all(
            sum(1 for a in con.var_coeffs if a != 0) <= 1
            for con in self.constraints
        )

    # -- bounding box ---------------------------------------------------

    def box(self, params: Dict[str, int]) -> List[Tuple[int, int]]:
        """Per-variable ``(lo, hi)`` rectangular hull under a binding.

        Computed by interval arithmetic over the loop structure, outer
        to inner: a triangular bound like ``j = i..N`` widens to the
        extreme values its outer intervals allow.  Exact (tight) for
        rectangular domains; a conservative hull otherwise.  An empty
        dimension is returned as an inverted interval ``(lo, lo - 1)``.
        """
        index = {v: k for k, v in enumerate(self.variables)}
        box: List[Tuple[int, int]] = []

        def interval(bound) -> Tuple[int, int]:
            lo = hi = bound.const
            for name, coeff in bound.coeffs:
                pos = index.get(name)
                if pos is None:
                    v = coeff * _param(params, name)
                    lo += v
                    hi += v
                else:
                    a, b = box[pos]
                    lo += coeff * (a if coeff > 0 else b)
                    hi += coeff * (b if coeff > 0 else a)
            return lo, hi

        for loop in self._loops:
            lo = interval(loop.lower)[0]
            hi = interval(loop.upper)[1]
            # an empty dimension is kept as an inverted interval, which
            # enumerates to nothing (any such dimension empties the box)
            box.append((lo, hi) if hi >= lo else (lo, lo - 1))
        return box

    # -- membership -----------------------------------------------------

    def halfspaces(self, params: Dict[str, int]) -> Tuple[np.ndarray, np.ndarray]:
        """The constraint system as ``(A, off)`` int64 arrays: a point
        matrix ``P`` of shape ``(n, d)`` is inside where
        ``P @ A.T + off >= 0`` holds along every row."""
        if not self.constraints:
            return (
                np.empty((0, self.dim), dtype=np.int64),
                np.empty((0,), dtype=np.int64),
            )
        a = np.array([c.var_coeffs for c in self.constraints], dtype=np.int64)
        off = np.array(
            [c.offset(params) for c in self.constraints], dtype=np.int64
        )
        return a, off

    def contains(self, point: Sequence[int], params: Dict[str, int]) -> bool:
        if len(point) != self.dim:
            raise ValueError(
                f"point of length {len(point)} in a {self.dim}-D domain"
            )
        return all(c.holds(point, params) for c in self.constraints)

    def mask(self, points: np.ndarray, params: Dict[str, int]) -> np.ndarray:
        """Vectorized membership of an ``(n, d)`` point matrix: one int64
        matmul against the half-space system plus a row-wise ``all``."""
        a, off = self.halfspaces(params)
        if a.shape[0] == 0:
            return np.ones(points.shape[0], dtype=bool)
        return np.all(points @ a.T + off >= 0, axis=1)

    # -- enumeration ----------------------------------------------------

    def _ranges(self, params: Dict[str, int]) -> List[range]:
        return [range(lo, hi + 1) for lo, hi in self.box(params)]

    def enumerate_points(self, params: Dict[str, int]) -> Iterator[Tuple[int, ...]]:
        """Domain points in bounding-box ``itertools.product`` order —
        for rectangular domains, exactly the historical enumeration."""
        ranges = self._ranges(params)
        if self.is_rectangular:
            return product(*ranges)
        return (
            pt for pt in product(*ranges) if self.contains(pt, params)
        )

    def size(self, params: Dict[str, int]) -> int:
        """Number of iteration points under a binding."""
        if self.is_rectangular:
            total = 1
            for r in self._ranges(params):
                total *= max(0, len(r))
            return total
        return int(self.mask(self._box_matrix(params), params).sum())

    def _box_matrix(self, params: Dict[str, int]) -> np.ndarray:
        """The bounding box as a dense ``(n, d)`` int64 matrix, rows in
        ``itertools.product`` order."""
        ranges = self._ranges(params)
        if not ranges:
            return np.empty((1, 0), dtype=np.int64)
        if any(len(r) == 0 for r in ranges):
            return np.empty((0, len(ranges)), dtype=np.int64)
        axes = [np.arange(r.start, r.stop, dtype=np.int64) for r in ranges]
        grids = np.meshgrid(*axes, indexing="ij")
        return np.stack([g.ravel() for g in grids], axis=1)

    def point_matrix(self, params: Dict[str, int]) -> np.ndarray:
        """The domain as a dense ``(n, d)`` int64 matrix, rows in
        :meth:`enumerate_points` order.

        Rectangular domains return the full box (no filtering work);
        non-rectangular ones apply the vectorized membership mask to the
        box, preserving the box's row order — the dense int64 matmul
        pipeline of the runtime layer consumes either unchanged.
        """
        pts = self._box_matrix(params)
        if self.is_rectangular or pts.shape[0] == 0:
            return pts
        return pts[self.mask(pts, params)]

    # -- misc -----------------------------------------------------------

    def describe(self) -> str:
        cons = "; ".join(c.describe(self.variables) for c in self.constraints)
        shape = "rectangular" if self.is_rectangular else "polyhedral"
        return f"{shape} domain ({', '.join(self.variables)}): {cons}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self.describe()})"


def _param(params: Dict[str, int], name: str) -> int:
    if name not in params:
        raise KeyError(f"unbound size parameter {name!r}")
    return params[name]
