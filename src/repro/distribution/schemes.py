"""Data-distribution schemes: BLOCK, CYCLIC, CYCLIC(B) and the paper's
grouped partition (Section 5.3).

A 1-D scheme folds ``n`` virtual processor indices onto ``P`` physical
processors.  The *grouped partition* is tailored to an elementary
communication ``U(k)``: virtual processor ``(i, j)`` sends to
``(i + k j, j)``, which splits each row into ``k`` independent residue
classes modulo ``k``.  Grouping the members of each class contiguously
(class-major order) and block-partitioning the result keeps every
class-internal translation within few physical processors, eliminating
the link conflicts that BLOCK and CYCLIC(B) suffer.

Figure 6 of the paper (12 virtual, k = 3, P = 4)::

    virtual order   0 3 6 9 | 1 4 7 10 | 2 5 8 11
    physical        p0: 0 3 6   p1: 9 1 4   p2: 7 10 2   p3: 5 8 11
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class Distribution1D:
    """Base class: a map from ``n`` virtual indices onto ``P`` physical
    processors."""

    name = "abstract"

    def __init__(self, n: int, p: int):
        if n <= 0 or p <= 0:
            raise ValueError("sizes must be positive")
        self.n = n
        self.p = p

    def phys(self, v: int) -> int:
        """Physical processor owning virtual index ``v``."""
        raise NotImplementedError

    def phys_array(self, v):
        """Vectorized :meth:`phys` over a numpy integer array.

        The built-in schemes override this with closed-form array
        arithmetic; the fallback loops so third-party subclasses only
        have to implement the scalar map.
        """
        import numpy as np

        self.check_array(v)
        return np.array([self.phys(int(x)) for x in np.ravel(v)]).reshape(
            np.shape(v)
        )

    def check(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise IndexError(f"virtual index {v} out of range [0, {self.n})")

    def check_array(self, v) -> None:
        if v.size and (int(v.min()) < 0 or int(v.max()) >= self.n):
            bad = int(v.min()) if int(v.min()) < 0 else int(v.max())
            raise IndexError(f"virtual index {bad} out of range [0, {self.n})")

    def cells(self, proc: int) -> List[int]:
        """All virtual indices owned by ``proc`` (ascending)."""
        return [v for v in range(self.n) if self.phys(v) == proc]

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, P={self.p})"


class BlockDistribution(Distribution1D):
    """Contiguous blocks of size ``ceil(n / P)`` (HPF ``BLOCK``)."""

    name = "BLOCK"

    def phys(self, v: int) -> int:
        self.check(v)
        return min(v // _ceil_div(self.n, self.p), self.p - 1)

    def phys_array(self, v):
        import numpy as np

        self.check_array(v)
        return np.minimum(v // _ceil_div(self.n, self.p), self.p - 1)


class CyclicDistribution(Distribution1D):
    """Round-robin (HPF ``CYCLIC`` = ``CYCLIC(1)``)."""

    name = "CYCLIC"

    def phys(self, v: int) -> int:
        self.check(v)
        return v % self.p

    def phys_array(self, v):
        self.check_array(v)
        return v % self.p


class BlockCyclicDistribution(Distribution1D):
    """Blocks of size ``B`` dealt round-robin (HPF ``CYCLIC(B)``)."""

    name = "CYCLIC(B)"

    def __init__(self, n: int, p: int, block: int):
        super().__init__(n, p)
        if block <= 0:
            raise ValueError("block size must be positive")
        self.block = block

    def phys(self, v: int) -> int:
        self.check(v)
        return (v // self.block) % self.p

    def phys_array(self, v):
        self.check_array(v)
        return (v // self.block) % self.p

    def describe(self) -> str:
        return f"CYCLIC({self.block})(n={self.n}, P={self.p})"


class GroupedDistribution(Distribution1D):
    """The paper's grouped partition for a ``U(k)``/``L(k)`` pattern.

    Virtual indices are re-ordered class-major (class = ``v mod k``,
    position within class = ``v div k``), then block-partitioned.
    With ``k = 1`` this degenerates to ``BLOCK``; the paper notes that
    plain ``CYCLIC`` behaves like the grouped partition of its own
    stride, which is why CYCLIC is competitive in Figure 8.
    """

    name = "GROUPED"

    def __init__(self, n: int, p: int, k: int):
        super().__init__(n, p)
        if k <= 0:
            raise ValueError("class modulus k must be positive")
        self.k = k

    def position(self, v: int) -> int:
        """Rank of ``v`` in the class-major order."""
        self.check(v)
        c = v % self.k
        # class sizes differ by at most one when k does not divide n
        full = self.n // self.k
        extra = self.n % self.k
        before = c * full + min(c, extra)
        return before + v // self.k

    def phys(self, v: int) -> int:
        pos = self.position(v)
        return min(pos // _ceil_div(self.n, self.p), self.p - 1)

    def phys_array(self, v):
        import numpy as np

        self.check_array(v)
        c = v % self.k
        full = self.n // self.k
        extra = self.n % self.k
        pos = c * full + np.minimum(c, extra) + v // self.k
        return np.minimum(pos // _ceil_div(self.n, self.p), self.p - 1)

    def describe(self) -> str:
        return f"GROUPED(k={self.k})(n={self.n}, P={self.p})"


@dataclass
class Distribution2D:
    """Product distribution mapping a 2-D virtual grid onto a 2-D
    physical mesh; rows and columns fold independently, matching the
    paper's use (Figure 7 partitions the two dimensions with the two
    factors ``L`` and ``U`` of the data-flow matrix)."""

    rows: Distribution1D
    cols: Distribution1D

    @property
    def virtual_shape(self) -> Tuple[int, int]:
        return (self.rows.n, self.cols.n)

    @property
    def phys_shape(self) -> Tuple[int, int]:
        return (self.rows.p, self.cols.p)

    def phys(self, v: Tuple[int, int]) -> Tuple[int, int]:
        return (self.rows.phys(v[0]), self.cols.phys(v[1]))

    def describe(self) -> str:
        return f"{self.rows.describe()} x {self.cols.describe()}"


def make_1d(scheme: str, n: int, p: int, **kw) -> Distribution1D:
    """Factory: ``"block" | "cyclic" | "cyclic_block" | "grouped"``."""
    scheme = scheme.lower()
    if scheme == "block":
        return BlockDistribution(n, p)
    if scheme == "cyclic":
        return CyclicDistribution(n, p)
    if scheme in ("cyclic_block", "block_cyclic"):
        return BlockCyclicDistribution(n, p, kw.get("block", 1))
    if scheme == "grouped":
        return GroupedDistribution(n, p, kw.get("k", 1))
    raise ValueError(f"unknown scheme {scheme!r}")
