"""Virtual-to-physical data distributions (Section 5.3).

BLOCK / CYCLIC / CYCLIC(B) as in HPF, plus the paper's grouped
partition tuned to elementary ``L``/``U`` communications, and 2-D
product distributions for mesh machines.
"""

from .schemes import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    Distribution1D,
    Distribution2D,
    GroupedDistribution,
    make_1d,
)

__all__ = [
    "Distribution1D",
    "Distribution2D",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "GroupedDistribution",
    "make_1d",
]
