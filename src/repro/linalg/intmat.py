"""Arbitrary-precision integer matrices.

The whole alignment machinery of the paper works over :math:`\\mathbb{Z}`
(access matrices, allocation matrices, unimodular transforms) or over
:math:`\\mathbb{Q}` (pseudo-inverses).  Fixed-width dtypes are unsafe for
Hermite/Smith eliminations, whose intermediate entries can grow quickly,
so :class:`IntMat` stores Python ints in an immutable tuple-of-tuples.

Matrices in this code base are small (the paper's examples are at most
3x4), so clarity and exactness win over raw speed; conversion helpers to
``numpy`` are provided for the simulator side, which *is* numeric.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence, Tuple, Union

Scalar = Union[int, Fraction]


def _as_int(x: object) -> int:
    """Coerce ``x`` to a Python int, rejecting non-integral values."""
    if isinstance(x, bool):
        return int(x)
    if isinstance(x, int):
        return x
    if isinstance(x, Fraction):
        if x.denominator != 1:
            raise ValueError(f"non-integral entry {x!r} in integer matrix")
        return x.numerator
    if isinstance(x, float):
        if not x.is_integer():
            raise ValueError(f"non-integral entry {x!r} in integer matrix")
        return int(x)
    # numpy integer scalars and the like
    try:
        ix = int(x)  # type: ignore[call-overload]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"cannot coerce {x!r} to int") from exc
    if ix != x:
        raise ValueError(f"non-integral entry {x!r} in integer matrix")
    return ix


class IntMat:
    """An immutable matrix of Python integers.

    Supports the exact operations the alignment algorithms need:
    multiplication, addition, transpose, determinant (Bareiss), equality
    and hashing (so matrices can be graph-edge weights and dict keys).
    """

    __slots__ = ("_rows", "_shape")

    def __init__(self, rows: Iterable[Iterable[object]]):
        data = tuple(tuple(_as_int(x) for x in row) for row in rows)
        if not data:
            raise ValueError("IntMat must have at least one row")
        ncols = len(data[0])
        if ncols == 0:
            raise ValueError("IntMat must have at least one column")
        if any(len(r) != ncols for r in data):
            raise ValueError("ragged rows in IntMat")
        self._rows: Tuple[Tuple[int, ...], ...] = data
        self._shape = (len(data), ncols)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "IntMat":
        """The ``n`` x ``n`` identity matrix."""
        if n <= 0:
            raise ValueError("identity size must be positive")
        return IntMat([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def zeros(m: int, n: int) -> "IntMat":
        """The ``m`` x ``n`` zero matrix."""
        if m <= 0 or n <= 0:
            raise ValueError("matrix dimensions must be positive")
        return IntMat([[0] * n for _ in range(m)])

    @staticmethod
    def row(entries: Sequence[object]) -> "IntMat":
        """A 1 x n row vector."""
        return IntMat([list(entries)])

    @staticmethod
    def col(entries: Sequence[object]) -> "IntMat":
        """An n x 1 column vector."""
        return IntMat([[e] for e in entries])

    @staticmethod
    def diag(entries: Sequence[object]) -> "IntMat":
        """A square diagonal matrix."""
        n = len(entries)
        return IntMat(
            [[entries[i] if i == j else 0 for j in range(n)] for i in range(n)]
        )

    @staticmethod
    def from_numpy(arr) -> "IntMat":
        """Build from a 2-D numpy array of integral values."""
        import numpy as np

        a = np.asarray(arr)
        if a.ndim == 1:
            a = a.reshape(1, -1)
        if a.ndim != 2:
            raise ValueError("expected a 2-D array")
        return IntMat([[int(x) for x in row] for row in a.tolist()])

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def rows(self) -> Tuple[Tuple[int, ...], ...]:
        """The tuple-of-tuples payload (immutable)."""
        return self._rows

    def tolist(self):
        """A fresh list-of-lists copy of the entries."""
        return [list(r) for r in self._rows]

    def to_numpy(self, dtype=None):
        """Convert to a numpy array (default dtype ``int64``)."""
        import numpy as np

        return np.array(self.tolist(), dtype=dtype if dtype is not None else np.int64)

    def __getitem__(self, idx):
        if isinstance(idx, tuple):
            i, j = idx
            return self._rows[i][j]
        return self._rows[idx]

    def row_vector(self, i: int) -> "IntMat":
        """Row ``i`` as a 1 x n matrix."""
        return IntMat([self._rows[i]])

    def col_vector(self, j: int) -> "IntMat":
        """Column ``j`` as an m x 1 matrix."""
        return IntMat([[r[j]] for r in self._rows])

    def column_tuple(self, j: int) -> Tuple[int, ...]:
        """Column ``j`` as a plain tuple of ints."""
        return tuple(r[j] for r in self._rows)

    # ------------------------------------------------------------------
    # structure predicates
    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        return all(x == 0 for r in self._rows for x in r)

    def is_identity(self) -> bool:
        if not self.is_square:
            return False
        return all(
            self._rows[i][j] == (1 if i == j else 0)
            for i in range(self.nrows)
            for j in range(self.ncols)
        )

    def is_lower_triangular(self) -> bool:
        return all(
            self._rows[i][j] == 0
            for i in range(self.nrows)
            for j in range(i + 1, self.ncols)
        )

    def is_upper_triangular(self) -> bool:
        return all(
            self._rows[i][j] == 0 for i in range(self.nrows) for j in range(min(i, self.ncols))
        )

    def max_abs(self) -> int:
        """The largest absolute value of any entry."""
        return max(abs(x) for r in self._rows for x in r)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "IntMat") -> "IntMat":
        self._check_same_shape(other)
        return IntMat(
            [
                [a + b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def __sub__(self, other: "IntMat") -> "IntMat":
        self._check_same_shape(other)
        return IntMat(
            [
                [a - b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def __neg__(self) -> "IntMat":
        return IntMat([[-x for x in r] for r in self._rows])

    def __mul__(self, other):
        if isinstance(other, IntMat):
            return self.matmul(other)
        if isinstance(other, int):
            return IntMat([[x * other for x in r] for r in self._rows])
        return NotImplemented

    def __rmul__(self, other):
        if isinstance(other, int):
            return IntMat([[other * x for x in r] for r in self._rows])
        return NotImplemented

    def __matmul__(self, other: "IntMat") -> "IntMat":
        return self.matmul(other)

    def matmul(self, other: "IntMat") -> "IntMat":
        """Exact matrix product ``self @ other``."""
        if self.ncols != other.nrows:
            raise ValueError(
                f"shape mismatch for matmul: {self.shape} @ {other.shape}"
            )
        ot = list(zip(*other._rows))  # columns of other
        return IntMat(
            [[sum(a * b for a, b in zip(row, col)) for col in ot] for row in self._rows]
        )

    def transpose(self) -> "IntMat":
        return IntMat(list(zip(*self._rows)))

    @property
    def T(self) -> "IntMat":
        return self.transpose()

    def hstack(self, other: "IntMat") -> "IntMat":
        """Concatenate columns: ``[self | other]``."""
        if self.nrows != other.nrows:
            raise ValueError("hstack requires matching row counts")
        return IntMat([ra + rb for ra, rb in zip(self._rows, other._rows)])

    def vstack(self, other: "IntMat") -> "IntMat":
        """Concatenate rows: ``[self ; other]``."""
        if self.ncols != other.ncols:
            raise ValueError("vstack requires matching column counts")
        return IntMat(self._rows + other._rows)

    def submatrix(self, rows: Sequence[int], cols: Sequence[int]) -> "IntMat":
        """Select the given rows and columns, in order."""
        return IntMat([[self._rows[i][j] for j in cols] for i in rows])

    def det(self) -> int:
        """Exact determinant via the Bareiss fraction-free algorithm."""
        if not self.is_square:
            raise ValueError("determinant of a non-square matrix")
        n = self.nrows
        a = [list(r) for r in self._rows]
        sign = 1
        prev = 1
        for k in range(n - 1):
            if a[k][k] == 0:
                pivot_row = next((i for i in range(k + 1, n) if a[i][k] != 0), None)
                if pivot_row is None:
                    return 0
                a[k], a[pivot_row] = a[pivot_row], a[k]
                sign = -sign
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) // prev
                a[i][k] = 0
            prev = a[k][k]
        return sign * a[n - 1][n - 1]

    def trace(self) -> int:
        if not self.is_square:
            raise ValueError("trace of a non-square matrix")
        return sum(self._rows[i][i] for i in range(self.nrows))

    def gcd_content(self) -> int:
        """GCD of all entries (0 for the zero matrix)."""
        from math import gcd

        g = 0
        for r in self._rows:
            for x in r:
                g = gcd(g, abs(x))
        return g

    # ------------------------------------------------------------------
    # comparisons / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, IntMat):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = ", ".join(repr(list(r)) for r in self._rows)
        return f"IntMat([{body}])"

    def pretty(self, indent: str = "") -> str:
        """Aligned multi-line rendering, for reports and error messages."""
        cells = [[str(x) for x in r] for r in self._rows]
        widths = [max(len(cells[i][j]) for i in range(self.nrows)) for j in range(self.ncols)]
        lines = []
        for r in cells:
            padded = "  ".join(s.rjust(w) for s, w in zip(r, widths))
            lines.append(f"{indent}[ {padded} ]")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _check_same_shape(self, other: "IntMat") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")


def matrix_product(factors: Sequence[IntMat]) -> IntMat:
    """Product ``factors[0] @ factors[1] @ ...`` (identity for empty input
    is ill-defined without a size, so at least one factor is required)."""
    if not factors:
        raise ValueError("matrix_product needs at least one factor")
    acc = factors[0]
    for f in factors[1:]:
        acc = acc @ f
    return acc
