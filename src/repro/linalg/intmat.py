"""Arbitrary-precision integer matrices.

The whole alignment machinery of the paper works over :math:`\\mathbb{Z}`
(access matrices, allocation matrices, unimodular transforms) or over
:math:`\\mathbb{Q}` (pseudo-inverses).  Fixed-width dtypes are unsafe for
Hermite/Smith eliminations, whose intermediate entries can grow quickly,
so :class:`IntMat` stores Python ints in an immutable tuple-of-tuples.

Matrices in the paper's examples are small (at most 3x4), so clarity
and exactness come first; conversion helpers to ``numpy`` are provided
for the simulator side, which *is* numeric.  For the larger matrices
the scaling benchmarks build, :meth:`IntMat.matmul` and
:meth:`IntMat.det` drop to NumPy ``int64`` arithmetic whenever a cheap
:meth:`IntMat.max_abs` bound proves no intermediate can overflow —
the results are still exact integers, bit-identical to the pure-Python
path (which remains the fallback whenever the bound cannot exclude
overflow).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence, Tuple, Union

Scalar = Union[int, Fraction]

#: Products below this many scalar multiply-adds stay in pure Python —
#: for tiny matrices the NumPy round-trip costs more than it saves.
_NUMPY_MATMUL_MIN_OPS = 192

#: Guard bound for int64 fast paths: every intermediate (and every
#: pairwise product of intermediates, for Bareiss) must stay below this.
_INT64_SAFE = 2 ** 62


def _as_int(x: object) -> int:
    """Coerce ``x`` to a Python int, rejecting non-integral values."""
    if isinstance(x, bool):
        return int(x)
    if isinstance(x, int):
        return x
    if isinstance(x, Fraction):
        if x.denominator != 1:
            raise ValueError(f"non-integral entry {x!r} in integer matrix")
        return x.numerator
    if isinstance(x, float):
        if not x.is_integer():
            raise ValueError(f"non-integral entry {x!r} in integer matrix")
        return int(x)
    # numpy integer scalars and the like
    try:
        ix = int(x)  # type: ignore[call-overload]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"cannot coerce {x!r} to int") from exc
    if ix != x:
        raise ValueError(f"non-integral entry {x!r} in integer matrix")
    return ix


class IntMat:
    """An immutable matrix of Python integers.

    Supports the exact operations the alignment algorithms need:
    multiplication, addition, transpose, determinant (Bareiss), equality
    and hashing (so matrices can be graph-edge weights and dict keys).
    """

    __slots__ = ("_rows", "_shape")

    def __init__(self, rows: Iterable[Iterable[object]]):
        data = tuple(tuple(_as_int(x) for x in row) for row in rows)
        if not data:
            raise ValueError("IntMat must have at least one row")
        ncols = len(data[0])
        if ncols == 0:
            raise ValueError("IntMat must have at least one column")
        if any(len(r) != ncols for r in data):
            raise ValueError("ragged rows in IntMat")
        self._rows: Tuple[Tuple[int, ...], ...] = data
        self._shape = (len(data), ncols)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "IntMat":
        """The ``n`` x ``n`` identity matrix."""
        if n <= 0:
            raise ValueError("identity size must be positive")
        return IntMat([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def zeros(m: int, n: int) -> "IntMat":
        """The ``m`` x ``n`` zero matrix."""
        if m <= 0 or n <= 0:
            raise ValueError("matrix dimensions must be positive")
        return IntMat([[0] * n for _ in range(m)])

    @staticmethod
    def row(entries: Sequence[object]) -> "IntMat":
        """A 1 x n row vector."""
        return IntMat([list(entries)])

    @staticmethod
    def col(entries: Sequence[object]) -> "IntMat":
        """An n x 1 column vector."""
        return IntMat([[e] for e in entries])

    @staticmethod
    def diag(entries: Sequence[object]) -> "IntMat":
        """A square diagonal matrix."""
        n = len(entries)
        return IntMat(
            [[entries[i] if i == j else 0 for j in range(n)] for i in range(n)]
        )

    @staticmethod
    def from_numpy(arr) -> "IntMat":
        """Build from a 2-D numpy array of integral values.

        Accepts integer, boolean and object dtypes directly, and float
        arrays only when every entry is finite and exactly integral;
        anything else (complex, strings, NaN/inf, fractional floats) is
        rejected with an explicit error instead of being silently
        truncated entry-by-entry.
        """
        import numpy as np

        a = np.asarray(arr)
        if a.ndim == 1:
            a = a.reshape(1, -1)
        if a.ndim != 2:
            raise ValueError("expected a 2-D array")
        kind = a.dtype.kind
        if kind == "f":
            if not np.all(np.isfinite(a)):
                raise ValueError(
                    "from_numpy: float array contains non-finite entries "
                    "(NaN or inf); an integer matrix cannot represent them"
                )
            frac = a != np.floor(a)
            if np.any(frac):
                i, j = (int(x) for x in np.argwhere(frac)[0])
                raise ValueError(
                    f"from_numpy: non-integral entry {a[i, j]!r} at "
                    f"({i}, {j}); pass an exactly-integral array or round "
                    "explicitly before converting"
                )
        elif kind not in "iubO":
            raise TypeError(
                f"from_numpy: unsupported dtype {a.dtype!r}; expected an "
                "integer, boolean, integral-float or object array"
            )
        # __init__ runs every entry through _as_int, which validates
        # object-dtype payloads (Fractions, numpy scalars) exactly.
        return IntMat(a.tolist())

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def rows(self) -> Tuple[Tuple[int, ...], ...]:
        """The tuple-of-tuples payload (immutable)."""
        return self._rows

    def tolist(self):
        """A fresh list-of-lists copy of the entries."""
        return [list(r) for r in self._rows]

    def to_numpy(self, dtype=None):
        """Convert to a numpy array (default dtype ``int64``)."""
        import numpy as np

        return np.array(self.tolist(), dtype=dtype if dtype is not None else np.int64)

    def __getitem__(self, idx):
        if isinstance(idx, tuple):
            i, j = idx
            return self._rows[i][j]
        return self._rows[idx]

    def row_vector(self, i: int) -> "IntMat":
        """Row ``i`` as a 1 x n matrix."""
        return IntMat([self._rows[i]])

    def col_vector(self, j: int) -> "IntMat":
        """Column ``j`` as an m x 1 matrix."""
        return IntMat([[r[j]] for r in self._rows])

    def column_tuple(self, j: int) -> Tuple[int, ...]:
        """Column ``j`` as a plain tuple of ints."""
        return tuple(r[j] for r in self._rows)

    # ------------------------------------------------------------------
    # structure predicates
    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        return all(x == 0 for r in self._rows for x in r)

    def is_identity(self) -> bool:
        if not self.is_square:
            return False
        return all(
            self._rows[i][j] == (1 if i == j else 0)
            for i in range(self.nrows)
            for j in range(self.ncols)
        )

    def is_lower_triangular(self) -> bool:
        return all(
            self._rows[i][j] == 0
            for i in range(self.nrows)
            for j in range(i + 1, self.ncols)
        )

    def is_upper_triangular(self) -> bool:
        return all(
            self._rows[i][j] == 0 for i in range(self.nrows) for j in range(min(i, self.ncols))
        )

    def max_abs(self) -> int:
        """The largest absolute value of any entry."""
        return max(abs(x) for r in self._rows for x in r)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "IntMat") -> "IntMat":
        self._check_same_shape(other)
        return IntMat(
            [
                [a + b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def __sub__(self, other: "IntMat") -> "IntMat":
        self._check_same_shape(other)
        return IntMat(
            [
                [a - b for a, b in zip(ra, rb)]
                for ra, rb in zip(self._rows, other._rows)
            ]
        )

    def __neg__(self) -> "IntMat":
        return IntMat([[-x for x in r] for r in self._rows])

    def __mul__(self, other):
        if isinstance(other, IntMat):
            return self.matmul(other)
        if isinstance(other, int):
            return IntMat([[x * other for x in r] for r in self._rows])
        return NotImplemented

    def __rmul__(self, other):
        if isinstance(other, int):
            return IntMat([[other * x for x in r] for r in self._rows])
        return NotImplemented

    def __matmul__(self, other: "IntMat") -> "IntMat":
        return self.matmul(other)

    def matmul(self, other: "IntMat") -> "IntMat":
        """Exact matrix product ``self @ other``.

        Large products drop to NumPy ``int64`` when the
        :meth:`max_abs` bound ``k * max|A| * max|B| < 2**62`` proves no
        dot product can overflow; otherwise (huge entries, or matrices
        too small to amortize the conversion) the exact pure-Python
        path runs.  Both paths return identical matrices.
        """
        if self.ncols != other.nrows:
            raise ValueError(
                f"shape mismatch for matmul: {self.shape} @ {other.shape}"
            )
        k = self.ncols
        if self.nrows * k * other.ncols >= _NUMPY_MATMUL_MIN_OPS:
            ma, mb = self.max_abs(), other.max_abs()
            # both operands must fit int64 themselves (a zero operand
            # zeroes the product bound but not the other side's entries)
            if ma < _INT64_SAFE and mb < _INT64_SAFE and k * ma * mb < _INT64_SAFE:
                import numpy as np

                prod = self.to_numpy() @ other.to_numpy()
                return IntMat(prod.tolist())
        return self._matmul_python(other)

    def _matmul_python(self, other: "IntMat") -> "IntMat":
        """Arbitrary-precision product (always exact, any magnitude)."""
        ot = list(zip(*other._rows))  # columns of other
        return IntMat(
            [[sum(a * b for a, b in zip(row, col)) for col in ot] for row in self._rows]
        )

    def transpose(self) -> "IntMat":
        return IntMat(list(zip(*self._rows)))

    @property
    def T(self) -> "IntMat":
        return self.transpose()

    def hstack(self, other: "IntMat") -> "IntMat":
        """Concatenate columns: ``[self | other]``."""
        if self.nrows != other.nrows:
            raise ValueError("hstack requires matching row counts")
        return IntMat([ra + rb for ra, rb in zip(self._rows, other._rows)])

    def vstack(self, other: "IntMat") -> "IntMat":
        """Concatenate rows: ``[self ; other]``."""
        if self.ncols != other.ncols:
            raise ValueError("vstack requires matching column counts")
        return IntMat(self._rows + other._rows)

    def submatrix(self, rows: Sequence[int], cols: Sequence[int]) -> "IntMat":
        """Select the given rows and columns, in order."""
        return IntMat([[self._rows[i][j] for j in cols] for i in rows])

    def det(self) -> int:
        """Exact determinant via the Bareiss fraction-free algorithm.

        Fast paths: direct cofactor expansion for ``n <= 3``, and a
        vectorized NumPy ``int64`` Bareiss elimination when the squared
        Hadamard bound ``n**n * max_abs**(2n) < 2**62`` proves every
        intermediate minor (Bareiss entries are exactly determinants of
        minors) and every pairwise product of them fits in ``int64``.
        The arbitrary-precision Python elimination remains the general
        fallback; all paths agree exactly.
        """
        if not self.is_square:
            raise ValueError("determinant of a non-square matrix")
        n = self.nrows
        r = self._rows
        if n == 1:
            return r[0][0]
        if n == 2:
            return r[0][0] * r[1][1] - r[0][1] * r[1][0]
        if n == 3:
            return (
                r[0][0] * (r[1][1] * r[2][2] - r[1][2] * r[2][1])
                - r[0][1] * (r[1][0] * r[2][2] - r[1][2] * r[2][0])
                + r[0][2] * (r[1][0] * r[2][1] - r[1][1] * r[2][0])
            )
        big = self.max_abs()
        if big == 0:
            return 0
        # bit_length short-circuit: evaluating big**(2n) on huge entries
        # would cost more than the elimination it gates
        if (
            2 * n * (big.bit_length() - 1) < 62
            and n ** n * big ** (2 * n) < _INT64_SAFE
        ):
            return self._det_bareiss_numpy()
        return self._det_bareiss_python()

    def _det_bareiss_numpy(self) -> int:
        """Bareiss elimination on an ``int64`` array; caller must have
        established the Hadamard overflow bound."""
        import numpy as np

        n = self.nrows
        a = self.to_numpy()
        sign = 1
        prev = 1
        for k in range(n - 1):
            if a[k, k] == 0:
                below = np.nonzero(a[k + 1 :, k])[0]
                if below.size == 0:
                    return 0
                i = k + 1 + int(below[0])
                a[[k, i]] = a[[i, k]]
                sign = -sign
            pivot = a[k, k]
            # integer floor division matches Python's // and the Bareiss
            # divisions are exact, so the quotient is exact too
            a[k + 1 :, k + 1 :] = (
                a[k + 1 :, k + 1 :] * pivot
                - np.outer(a[k + 1 :, k], a[k, k + 1 :])
            ) // prev
            a[k + 1 :, k] = 0
            prev = pivot
        return sign * int(a[n - 1, n - 1])

    def _det_bareiss_python(self) -> int:
        """Arbitrary-precision Bareiss elimination (any magnitude)."""
        n = self.nrows
        a = [list(r) for r in self._rows]
        sign = 1
        prev = 1
        for k in range(n - 1):
            if a[k][k] == 0:
                pivot_row = next((i for i in range(k + 1, n) if a[i][k] != 0), None)
                if pivot_row is None:
                    return 0
                a[k], a[pivot_row] = a[pivot_row], a[k]
                sign = -sign
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) // prev
                a[i][k] = 0
            prev = a[k][k]
        return sign * a[n - 1][n - 1]

    def trace(self) -> int:
        if not self.is_square:
            raise ValueError("trace of a non-square matrix")
        return sum(self._rows[i][i] for i in range(self.nrows))

    def gcd_content(self) -> int:
        """GCD of all entries (0 for the zero matrix)."""
        from math import gcd

        g = 0
        for r in self._rows:
            for x in r:
                g = gcd(g, abs(x))
        return g

    # ------------------------------------------------------------------
    # comparisons / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, IntMat):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = ", ".join(repr(list(r)) for r in self._rows)
        return f"IntMat([{body}])"

    def pretty(self, indent: str = "") -> str:
        """Aligned multi-line rendering, for reports and error messages."""
        cells = [[str(x) for x in r] for r in self._rows]
        widths = [max(len(cells[i][j]) for i in range(self.nrows)) for j in range(self.ncols)]
        lines = []
        for r in cells:
            padded = "  ".join(s.rjust(w) for s, w in zip(r, widths))
            lines.append(f"{indent}[ {padded} ]")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _check_same_shape(self, other: "IntMat") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")


def matrix_product(factors: Sequence[IntMat]) -> IntMat:
    """Product ``factors[0] @ factors[1] @ ...`` (identity for empty input
    is ill-defined without a size, so at least one factor is required)."""
    if not factors:
        raise ValueError("matrix_product needs at least one factor")
    acc = factors[0]
    for f in factors[1:]:
        acc = acc @ f
    return acc
