"""Unimodular matrices: generation, completion, enumeration.

Allocation matrices within one connected component of the branching are
determined *up to left multiplication by a unimodular matrix* (remark in
Section 3); the residual-communication optimizations exploit exactly
this freedom — rotating a broadcast parallel to an axis, or conjugating
a data-flow matrix into a decomposable one.  This module provides the
unimodular toolbox those steps need.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Iterator, List, Optional

from .fracmat import FracMat
from .hermite import is_unimodular, unimodular_inverse
from .intmat import IntMat
from .smith import smith_normal_form

__all__ = [
    "is_unimodular",
    "unimodular_inverse",
    "random_unimodular",
    "unimodular_completion",
    "enumerate_unimodular_2x2",
    "elementary_row_matrix",
    "swap_matrix",
]


def elementary_row_matrix(n: int, dst: int, src: int, k: int) -> IntMat:
    """The unimodular matrix adding ``k`` times row ``src`` to row
    ``dst`` when applied on the left."""
    if dst == src:
        raise ValueError("dst and src must differ")
    rows = IntMat.identity(n).tolist()
    rows[dst][src] = k
    return IntMat(rows)


def swap_matrix(n: int, i: int, j: int) -> IntMat:
    """The permutation matrix exchanging rows ``i`` and ``j``."""
    rows = IntMat.identity(n).tolist()
    rows[i][i] = rows[j][j] = 0
    rows[i][j] = rows[j][i] = 1
    return IntMat(rows)


def random_unimodular(
    n: int, rng: Optional[random.Random] = None, steps: int = 8, coeff: int = 2
) -> IntMat:
    """A random unimodular matrix, as a product of random elementary row
    operations and swaps.  ``coeff`` bounds the added multiples so the
    entries stay small."""
    rng = rng or random.Random()
    m = IntMat.identity(n)
    for _ in range(steps):
        if n >= 2 and rng.random() < 0.3:
            i, j = rng.sample(range(n), 2)
            m = swap_matrix(n, i, j) @ m
        else:
            i, j = rng.sample(range(n), 2) if n >= 2 else (0, 0)
            if i == j:
                continue
            k = rng.randint(-coeff, coeff)
            if k:
                m = elementary_row_matrix(n, i, j, k) @ m
    return m


def unimodular_completion(rows_mat: IntMat) -> Optional[IntMat]:
    """Complete ``m`` integer rows into an ``n x n`` unimodular matrix.

    Given a full-row-rank ``m x n`` matrix ``R`` (``m <= n``), returns an
    ``n x n`` unimodular matrix whose *first m rows are R*, or ``None``
    when impossible — the completion exists iff the lattice spanned by
    the rows is a direct summand of Z^n, i.e. all invariant factors of
    ``R`` are 1.
    """
    m, n = rows_mat.shape
    if m > n:
        raise ValueError("more rows than columns")
    u, d, v = smith_normal_form(rows_mat)
    for i in range(m):
        if d[i, i] != 1:
            return None
    # R = U^{-1} [Id_m 0] V^{-1}.  Take W = [[U^{-1}, 0], [0, Id_{n-m}]]
    # acting on V^{-1}: its first m rows are exactly R, and it is a
    # product of unimodular matrices.
    u_inv = unimodular_inverse(u)
    v_inv = unimodular_inverse(v)
    top = [
        [u_inv[i][j] if j < m else 0 for j in range(n)] for i in range(m)
    ]
    bottom = [
        [1 if j == i else 0 for j in range(n)] for i in range(m, n)
    ]
    w = IntMat(top + bottom)
    out = w @ v_inv
    if not is_unimodular(out):  # pragma: no cover - defensive
        raise AssertionError("completion produced a non-unimodular matrix")
    return out


def enumerate_unimodular_2x2(bound: int) -> Iterator[IntMat]:
    """All 2x2 integer matrices with entries in ``[-bound, bound]`` and
    determinant +-1.  Used by the bounded similarity search of
    Section 5.2.2."""
    rng = range(-bound, bound + 1)
    for a, b, c, d in product(rng, rng, rng, rng):
        if a * d - b * c in (1, -1):
            yield IntMat([[a, b], [c, d]])


def full_rank(m: IntMat) -> bool:
    """True iff ``m`` has full rank ``min(shape)``."""
    return FracMat.from_int(m).rank() == min(m.shape)
