"""Exact rational matrices built on :class:`fractions.Fraction`.

Pseudo-inverses (paper appendix A.2) and rank/nullspace computations are
rational in general; this module provides the small exact-arithmetic
matrix type used for them.  :class:`FracMat` mirrors the relevant part of
the :class:`~repro.linalg.intmat.IntMat` API and converts to/from it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from .intmat import IntMat


def _as_frac(x: object) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        # floats are rejected: exactness is the whole point
        raise TypeError("floats are not allowed in FracMat; use Fraction")
    return Fraction(x)  # type: ignore[arg-type]


class FracMat:
    """An immutable matrix of :class:`~fractions.Fraction` entries."""

    __slots__ = ("_rows", "_shape")

    def __init__(self, rows: Iterable[Iterable[object]]):
        data = tuple(tuple(_as_frac(x) for x in row) for row in rows)
        if not data or not data[0]:
            raise ValueError("FracMat must be non-empty")
        ncols = len(data[0])
        if any(len(r) != ncols for r in data):
            raise ValueError("ragged rows in FracMat")
        self._rows: Tuple[Tuple[Fraction, ...], ...] = data
        self._shape = (len(data), ncols)

    # ------------------------------------------------------------------
    @staticmethod
    def from_int(m: IntMat) -> "FracMat":
        return FracMat(m.tolist())

    @staticmethod
    def identity(n: int) -> "FracMat":
        return FracMat([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def zeros(m: int, n: int) -> "FracMat":
        return FracMat([[0] * n for _ in range(m)])

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def rows(self) -> Tuple[Tuple[Fraction, ...], ...]:
        return self._rows

    def tolist(self) -> List[List[Fraction]]:
        return [list(r) for r in self._rows]

    def __getitem__(self, idx):
        if isinstance(idx, tuple):
            i, j = idx
            return self._rows[i][j]
        return self._rows[idx]

    def is_integral(self) -> bool:
        """True iff every entry has denominator 1."""
        return all(x.denominator == 1 for r in self._rows for x in r)

    def to_int(self) -> IntMat:
        """Convert to :class:`IntMat`; raises if any entry is fractional."""
        if not self.is_integral():
            raise ValueError("matrix has non-integral entries")
        return IntMat([[x.numerator for x in r] for r in self._rows])

    def denominator_lcm(self) -> int:
        """LCM of all entry denominators (1 for an integral matrix)."""
        from math import lcm

        out = 1
        for r in self._rows:
            for x in r:
                out = lcm(out, x.denominator)
        return out

    def scale_to_int(self) -> Tuple[IntMat, int]:
        """Return ``(A, s)`` with integral ``A`` and ``self == A / s``."""
        s = self.denominator_lcm()
        return (
            IntMat([[int(x * s) for x in r] for r in self._rows]),
            s,
        )

    # ------------------------------------------------------------------
    def __add__(self, other: "FracMat") -> "FracMat":
        if self.shape != other.shape:
            raise ValueError("shape mismatch")
        return FracMat(
            [[a + b for a, b in zip(ra, rb)] for ra, rb in zip(self._rows, other._rows)]
        )

    def __sub__(self, other: "FracMat") -> "FracMat":
        if self.shape != other.shape:
            raise ValueError("shape mismatch")
        return FracMat(
            [[a - b for a, b in zip(ra, rb)] for ra, rb in zip(self._rows, other._rows)]
        )

    def __neg__(self) -> "FracMat":
        return FracMat([[-x for x in r] for r in self._rows])

    def __matmul__(self, other: "FracMat") -> "FracMat":
        if self.ncols != other.nrows:
            raise ValueError(f"shape mismatch: {self.shape} @ {other.shape}")
        ot = list(zip(*other._rows))
        return FracMat(
            [[sum(a * b for a, b in zip(row, col)) for col in ot] for row in self._rows]
        )

    def __mul__(self, other):
        if isinstance(other, FracMat):
            return self @ other
        if isinstance(other, (int, Fraction)):
            return FracMat([[x * other for x in r] for r in self._rows])
        return NotImplemented

    def __rmul__(self, other):
        if isinstance(other, (int, Fraction)):
            return FracMat([[other * x for x in r] for r in self._rows])
        return NotImplemented

    def transpose(self) -> "FracMat":
        return FracMat(list(zip(*self._rows)))

    @property
    def T(self) -> "FracMat":
        return self.transpose()

    def __eq__(self, other) -> bool:
        if isinstance(other, IntMat):
            other = FracMat.from_int(other)
        if not isinstance(other, FracMat):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = ", ".join(
            "[" + ", ".join(str(x) for x in r) + "]" for r in self._rows
        )
        return f"FracMat([{body}])"

    # ------------------------------------------------------------------
    # elimination-based queries
    # ------------------------------------------------------------------
    def rref(self) -> Tuple["FracMat", List[int]]:
        """Reduced row-echelon form and the list of pivot columns."""
        a = [list(r) for r in self._rows]
        m, n = self.shape
        pivots: List[int] = []
        r = 0
        for c in range(n):
            pivot = next((i for i in range(r, m) if a[i][c] != 0), None)
            if pivot is None:
                continue
            a[r], a[pivot] = a[pivot], a[r]
            pv = a[r][c]
            a[r] = [x / pv for x in a[r]]
            for i in range(m):
                if i != r and a[i][c] != 0:
                    f = a[i][c]
                    a[i] = [x - f * y for x, y in zip(a[i], a[r])]
            pivots.append(c)
            r += 1
            if r == m:
                break
        return FracMat(a), pivots

    def rank(self) -> int:
        return len(self.rref()[1])

    def nullspace(self) -> List["FracMat"]:
        """Basis of the right nullspace, as n x 1 column matrices."""
        rref, pivots = self.rref()
        m, n = self.shape
        free = [j for j in range(n) if j not in pivots]
        basis: List[FracMat] = []
        for fc in free:
            vec = [Fraction(0)] * n
            vec[fc] = Fraction(1)
            for r_idx, pc in enumerate(pivots):
                vec[pc] = -rref[r_idx, fc]
            basis.append(FracMat([[v] for v in vec]))
        return basis

    def inverse(self) -> "FracMat":
        """Exact inverse of a square non-singular matrix."""
        if not self.is_square:
            raise ValueError("inverse of a non-square matrix")
        n = self.nrows
        aug = FracMat(
            [list(self._rows[i]) + [1 if i == j else 0 for j in range(n)] for i in range(n)]
        )
        rref, pivots = aug.rref()
        if pivots[:n] != list(range(n)):
            raise ValueError("matrix is singular")
        return FracMat([list(rref[i])[n:] for i in range(n)])

    def solve(self, b: "FracMat") -> Optional["FracMat"]:
        """One solution ``x`` of ``self @ x = b`` or ``None`` if infeasible.

        ``b`` may have several columns; a solution is returned iff the
        system is consistent for *all* columns.
        """
        m, n = self.shape
        if b.nrows != m:
            raise ValueError("right-hand side has wrong number of rows")
        aug = self.hstack(b)
        rref, pivots = aug.rref()
        # any pivot in the RHS block means inconsistency
        if any(p >= n for p in pivots):
            return None
        x = [[Fraction(0)] * b.ncols for _ in range(n)]
        for r_idx, pc in enumerate(pivots):
            for j in range(b.ncols):
                x[pc][j] = rref[r_idx, n + j]
        return FracMat(x) if n > 0 else None

    def hstack(self, other: "FracMat") -> "FracMat":
        if self.nrows != other.nrows:
            raise ValueError("hstack requires matching row counts")
        return FracMat(
            [list(ra) + list(rb) for ra, rb in zip(self._rows, other._rows)]
        )

    def vstack(self, other: "FracMat") -> "FracMat":
        if self.ncols != other.ncols:
            raise ValueError("vstack requires matching column counts")
        return FracMat(self._rows + other._rows)
