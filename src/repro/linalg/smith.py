"""Smith normal form over the integers.

For any integer matrix ``A`` (``m x n``) there exist unimodular ``U``
(``m x m``) and ``V`` (``n x n``) such that ``U A V = D`` is diagonal
with non-negative invariant factors ``d_1 | d_2 | ... | d_r`` followed
by zeros.  The Smith form drives the exact solvers for one-sided
integer inverses (``G F = Id``) and linear Diophantine systems used by
the access-graph machinery.
"""

from __future__ import annotations

from typing import Tuple

from .cache import memoize_normal_form
from .intmat import IntMat


def _xgcd(a: int, b: int) -> Tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


@memoize_normal_form("smith_normal_form")
def smith_normal_form(a_mat: IntMat) -> Tuple[IntMat, IntMat, IntMat]:
    """Compute ``(U, D, V)`` with ``U @ A @ V == D`` in Smith form.

    ``U`` and ``V`` are unimodular; ``D`` is diagonal (same shape as
    ``A``) with ``d_1 | d_2 | ...`` and all diagonal entries >= 0.
    """
    m, n = a_mat.shape
    a = a_mat.tolist()
    u = IntMat.identity(m).tolist()
    v = IntMat.identity(n).tolist()

    def row_combine(i: int, j: int, col: int) -> None:
        """Put gcd at (j, col), zero at (i, col) via unimodular row ops."""
        ai, aj = a[i][col], a[j][col]
        if ai == 0:
            return
        if aj == 0:
            a[i], a[j] = a[j], a[i]
            u[i], u[j] = u[j], u[i]
            return
        if ai % aj == 0:
            # plain shear: leaves the pivot row untouched, which is what
            # guarantees the row/column cleanup loop terminates
            q = ai // aj
            a[i] = [x - q * y for x, y in zip(a[i], a[j])]
            u[i] = [x - q * y for x, y in zip(u[i], u[j])]
            return
        g, s, t = _xgcd(aj, ai)
        p, q = ai // g, aj // g
        a[j], a[i] = (
            [s * y + t * x for x, y in zip(a[i], a[j])],
            [q * x - p * y for x, y in zip(a[i], a[j])],
        )
        u[j], u[i] = (
            [s * y + t * x for x, y in zip(u[i], u[j])],
            [q * x - p * y for x, y in zip(u[i], u[j])],
        )

    def col_combine(i: int, j: int, row: int) -> None:
        """Put gcd at (row, j), zero at (row, i) via unimodular col ops."""
        ai, aj = a[row][i], a[row][j]
        if ai == 0:
            return
        if aj == 0:
            for r in a:
                r[i], r[j] = r[j], r[i]
            for r in v:
                r[i], r[j] = r[j], r[i]
            return
        if ai % aj == 0:
            q = ai // aj
            for r in a:
                r[i] = r[i] - q * r[j]
            for r in v:
                r[i] = r[i] - q * r[j]
            return
        g, s, t = _xgcd(aj, ai)
        p, q = ai // g, aj // g
        for r in a:
            new_j = s * r[j] + t * r[i]
            new_i = q * r[i] - p * r[j]
            r[j], r[i] = new_j, new_i
        for r in v:
            new_j = s * r[j] + t * r[i]
            new_i = q * r[i] - p * r[j]
            r[j], r[i] = new_j, new_i

    k = 0
    limit = min(m, n)
    while k < limit:
        # find a non-zero pivot in the trailing block
        pivot = None
        for i in range(k, m):
            for j in range(k, n):
                if a[i][j] != 0:
                    pivot = (i, j)
                    break
            if pivot:
                break
        if pivot is None:
            break
        pi, pj = pivot
        if pi != k:
            a[k], a[pi] = a[pi], a[k]
            u[k], u[pi] = u[pi], u[k]
        if pj != k:
            for r in a:
                r[k], r[pj] = r[pj], r[k]
            for r in v:
                r[k], r[pj] = r[pj], r[k]
        # iterate until row k and column k are clean
        while True:
            for i in range(k + 1, m):
                if a[i][k] != 0:
                    row_combine(i, k, k)
            for j in range(k + 1, n):
                if a[k][j] != 0:
                    col_combine(j, k, k)
            if all(a[i][k] == 0 for i in range(k + 1, m)) and all(
                a[k][j] == 0 for j in range(k + 1, n)
            ):
                break
        # enforce divisibility d_k | a[i][j] for the trailing block
        piv = a[k][k]
        bad = None
        for i in range(k + 1, m):
            for j in range(k + 1, n):
                if a[i][j] % piv != 0:
                    bad = (i, j)
                    break
            if bad:
                break
        if bad is not None:
            bi, _ = bad
            # add the offending row to row k and restart this pivot
            a[k] = [x + y for x, y in zip(a[k], a[bi])]
            u[k] = [x + y for x, y in zip(u[k], u[bi])]
            continue
        if piv < 0:
            a[k] = [-x for x in a[k]]
            u[k] = [-x for x in u[k]]
        k += 1

    return IntMat(u), IntMat(a), IntMat(v)


@memoize_normal_form("invariant_factors")
def invariant_factors(a_mat: IntMat) -> Tuple[int, ...]:
    """The non-zero invariant factors ``d_1 | d_2 | ...`` of ``A``."""
    _, d, _ = smith_normal_form(a_mat)
    out = []
    for k in range(min(d.nrows, d.ncols)):
        if d[k, k] != 0:
            out.append(d[k, k])
    return tuple(out)
