"""Hermite normal forms over the integers.

The paper (appendix A.1) uses the *right Hermite form*: for a
non-singular ``A`` in :math:`M_n(\\mathbb{Z})` there is a unimodular
``Q`` and a lower-triangular ``H`` with positive diagonal and reduced
off-diagonal entries such that ``A = Q H``.  For a narrow rectangular
``A`` (more rows than columns, full column rank) the decomposition is
``A = Q [H ; 0]``; Section 4.1 applies it to the broadcast-direction
matrix ``D`` to rotate partial broadcasts parallel to the grid axes.

We also provide the classical row-style HNF (upper triangular, used as a
canonical form in tests) and the flat decomposition ``F = [H | 0] Q``
used in the proof of Lemma 1.
"""

from __future__ import annotations

from math import gcd
from typing import List, Tuple

from .cache import memoize_normal_form
from .fracmat import FracMat
from .intmat import IntMat


def _xgcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended gcd: returns ``(g, s, t)`` with ``s*a + t*b == g >= 0``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


@memoize_normal_form("unimodular_inverse")
def unimodular_inverse(u: IntMat) -> IntMat:
    """Exact integer inverse of a unimodular matrix."""
    d = u.det()
    if d not in (1, -1):
        raise ValueError(f"matrix is not unimodular (det={d})")
    return FracMat.from_int(u).inverse().to_int()


def is_unimodular(u: IntMat) -> bool:
    """True iff ``u`` is square with determinant +-1."""
    return u.is_square and u.det() in (1, -1)


# ---------------------------------------------------------------------------
# row-operation primitives on mutable list-of-list matrices
# ---------------------------------------------------------------------------

def _rows_combine(a: List[List[int]], u: List[List[int]], i: int, j: int, col: int) -> None:
    """Unimodularly combine rows ``i`` and ``j`` of ``a`` so that
    ``a[j][col]`` becomes ``gcd`` and ``a[i][col]`` becomes 0; mirror the
    operation on the transform accumulator ``u``."""
    ai, aj = a[i][col], a[j][col]
    if ai == 0:
        return
    if aj == 0:
        a[i], a[j] = a[j], a[i]
        u[i], u[j] = u[j], u[i]
        return
    g, s, t = _xgcd(aj, ai)
    # new row j = s*row_j + t*row_i  (pivot g)
    # new row i = -(ai//g)*row_j + (aj//g)*row_i  (zero in col)
    p, q = ai // g, aj // g
    row_j = [s * y + t * x for x, y in zip(a[i], a[j])]
    row_i = [q * x - p * y for x, y in zip(a[i], a[j])]
    a[j], a[i] = row_j, row_i
    urow_j = [s * y + t * x for x, y in zip(u[i], u[j])]
    urow_i = [q * x - p * y for x, y in zip(u[i], u[j])]
    u[j], u[i] = urow_j, urow_i


def _row_addmul(a: List[List[int]], u: List[List[int]], dst: int, src: int, k: int) -> None:
    if k == 0:
        return
    a[dst] = [x + k * y for x, y in zip(a[dst], a[src])]
    u[dst] = [x + k * y for x, y in zip(u[dst], u[src])]


def _row_negate(a: List[List[int]], u: List[List[int]], i: int) -> None:
    a[i] = [-x for x in a[i]]
    u[i] = [-x for x in u[i]]


# ---------------------------------------------------------------------------
# classical (upper-triangular) row HNF — canonical form
# ---------------------------------------------------------------------------

@memoize_normal_form("row_hnf")
def row_hnf(a_mat: IntMat) -> Tuple[IntMat, IntMat]:
    """Row-style Hermite normal form.

    Returns ``(U, H)`` with ``U`` unimodular, ``H = U @ A`` in row
    echelon form with positive pivots and entries above each pivot
    reduced into ``[0, pivot)``.  ``H`` is the canonical representative
    of the left-equivalence class of ``A``.
    """
    m, n = a_mat.shape
    a = a_mat.tolist()
    u = IntMat.identity(m).tolist()
    r = 0
    for c in range(n):
        # eliminate below position (r, c)
        for i in range(r + 1, m):
            if a[i][c] != 0:
                _rows_combine(a, u, i, r, c)
        if a[r][c] == 0:
            # column has no pivot at/below r
            nz = next((i for i in range(r, m) if a[i][c] != 0), None)
            if nz is None:
                continue
            a[r], a[nz] = a[nz], a[r]
            u[r], u[nz] = u[nz], u[r]
            for i in range(r + 1, m):
                if a[i][c] != 0:
                    _rows_combine(a, u, i, r, c)
        if a[r][c] < 0:
            _row_negate(a, u, r)
        piv = a[r][c]
        for i in range(r):
            q = a[i][c] // piv
            _row_addmul(a, u, i, r, -q)
        r += 1
        if r == m:
            break
    return IntMat(u), IntMat(a)


@memoize_normal_form("rank")
def rank(a_mat: IntMat) -> int:
    """Rank of an integer matrix (computed exactly)."""
    return FracMat.from_int(a_mat).rank()


# ---------------------------------------------------------------------------
# the paper's right Hermite form: A = Q H, H lower triangular
# ---------------------------------------------------------------------------

@memoize_normal_form("right_hermite")
def right_hermite(a_mat: IntMat) -> Tuple[IntMat, IntMat]:
    """Right Hermite form of the paper's Definition 1.

    For ``A`` (``m x n``, ``m >= n``, full column rank ``n``), returns
    ``(Q, H)`` with ``Q`` unimodular ``m x m`` and ``H`` an ``m x n``
    matrix whose top ``n x n`` block is lower triangular with positive
    diagonal (rows below are zero), such that ``A = Q @ H``.

    For square non-singular ``A`` this is exactly ``A = Q H`` with ``H``
    lower triangular, non-negative reduced sub-diagonal entries.
    """
    m, n = a_mat.shape
    if rank(a_mat) != n:
        raise ValueError("right_hermite requires full column rank")
    a = a_mat.tolist()
    u = IntMat.identity(m).tolist()  # accumulates Q^{-1}
    # Work columns right-to-left so the result is lower triangular: the
    # pivot of column j sits at row j; rows above it (0..j-1) and rows
    # below the triangular block (n..m-1) are cleared, while rows
    # j+1..n-1 keep their (allowed) sub-diagonal entries, merely reduced
    # modulo the pivot.  Rows 0..j-1 have support in columns 0..j at
    # this point, so combinations cannot reintroduce cleared entries.
    for j in range(n - 1, -1, -1):
        pivot_row = j
        for i in list(range(j)) + list(range(n, m)):
            if a[i][j] != 0:
                _rows_combine(a, u, i, pivot_row, j)
        if a[pivot_row][j] == 0:
            # Unreachable for full-column-rank input: if the pivot set
            # were all zero here, rows {0..j} u {n..m-1} would span at
            # most j columns and the total rank would drop below n.
            raise ValueError("unexpected rank deficiency in right_hermite")
        if a[pivot_row][j] < 0:
            _row_negate(a, u, pivot_row)
        # reduce sub-diagonal entries of column j (rows j+1..n-1) mod pivot
        piv = a[pivot_row][j]
        for i in range(j + 1, n):
            q = a[i][j] // piv
            _row_addmul(a, u, i, pivot_row, -q)
    h = IntMat(a)
    q_inv = IntMat(u)
    q = unimodular_inverse(q_inv)
    return q, h


def right_hermite_narrow(a_mat: IntMat) -> Tuple[IntMat, IntMat]:
    """Decompose a narrow full-column-rank ``A`` (``m x p``, ``m >= p``)
    as ``A = Q [H ; 0]``.

    Returns ``(Q, H)`` where ``Q`` is ``m x m`` unimodular and ``H`` is
    the ``p x p`` lower-triangular top block; the remaining ``m - p``
    rows of ``Q^{-1} A`` are zero.  This is the operation of Section 4.1
    used to make a partial broadcast parallel to the processor axes.
    """
    q, h_full = right_hermite(a_mat)
    p = a_mat.ncols
    h = IntMat([list(h_full[i]) for i in range(p)])
    return q, h


def flat_hermite(f_mat: IntMat) -> Tuple[IntMat, IntMat]:
    """Decompose a flat full-row-rank ``F`` (``a x d``, ``a <= d``) as
    ``F = [H | 0] Q`` with ``Q`` unimodular ``d x d`` and ``H`` an
    ``a x a`` upper-triangular non-singular matrix.

    This is the column-operation dual used in the proof of Lemma 1.
    Returns ``(H, Q)``.
    """
    a, d = f_mat.shape
    if a > d:
        raise ValueError("flat_hermite requires a flat matrix")
    # column ops on F == row ops on F^T
    qt, ht = right_hermite(f_mat.T)  # F^T = Qt @ Ht, Ht = [H^T ; 0]
    h = IntMat([row[:a] for row in zip(*ht.tolist())])  # top block transposed
    q = qt.T
    # F = (Qt @ Ht)^T = Ht^T @ Qt^T = [H | 0] @ Q
    return h, q
