"""Kernel (nullspace) computations used by the macro-communication
detectors of Section 4.

The broadcast/scatter/gather/reduction conditions are all statements
about kernels of integer matrices and their intersections, e.g. a
broadcast exists iff ``ker(theta_S) ∩ ker(F_a) \\ ker(M_S)`` is
non-empty.  We work with the *rational* kernels (the relevant dimension
counts are over Q) but return primitive integer direction vectors, which
are what the allocation matrices are applied to.
"""

from __future__ import annotations

from math import gcd
from typing import List, Optional, Sequence

from .fracmat import FracMat
from .intmat import IntMat


def _primitive(col: Sequence[int]) -> List[int]:
    """Divide an integer vector by the gcd of its entries and normalize
    the sign of the first non-zero entry to be positive."""
    g = 0
    for x in col:
        g = gcd(g, abs(x))
    if g == 0:
        return list(col)
    vec = [x // g for x in col]
    lead = next((x for x in vec if x != 0), 0)
    if lead < 0:
        vec = [-x for x in vec]
    return vec


def integer_kernel_basis(a_mat: IntMat) -> List[IntMat]:
    """A basis of the rational right kernel of ``A`` given as primitive
    integer column vectors (each an ``n x 1`` :class:`IntMat`)."""
    basis = FracMat.from_int(a_mat).nullspace()
    out: List[IntMat] = []
    for b in basis:
        ints, _ = b.scale_to_int()
        out.append(IntMat.col(_primitive(ints.column_tuple(0))))
    return out


def left_kernel_basis(a_mat: IntMat) -> List[IntMat]:
    """A basis of the rational left kernel of ``A`` (vectors ``w`` with
    ``w A = 0``) as primitive integer ``1 x m`` row vectors."""
    return [v.T for v in integer_kernel_basis(a_mat.T)]


def kernel_dim(a_mat: IntMat) -> int:
    """Dimension of the right kernel of ``A``."""
    return a_mat.ncols - FracMat.from_int(a_mat).rank()


def stacked(mats: Sequence[IntMat]) -> IntMat:
    """Stack matrices with equal column counts vertically."""
    if not mats:
        raise ValueError("nothing to stack")
    acc = mats[0]
    for m in mats[1:]:
        acc = acc.vstack(m)
    return acc


def kernel_intersection_basis(mats: Sequence[IntMat]) -> List[IntMat]:
    """Basis of ``ker(A_1) ∩ ker(A_2) ∩ ...`` as primitive integer
    columns.  All matrices must have the same number of columns."""
    return integer_kernel_basis(stacked(mats))


def kernel_difference_directions(
    inside: Sequence[IntMat], outside: IntMat
) -> List[IntMat]:
    """Directions in ``∩ ker(inside)`` that are *not* in ``ker(outside)``.

    Returns a (possibly empty) list of primitive integer columns
    ``v_1..v_p`` such that ``span(v_i) + (∩ker(inside) ∩ ker(outside))``
    equals ``∩ ker(inside)``; i.e. the ``v_i`` complete a basis of the
    intersection-with-outside kernel into a basis of the inside kernel.
    The paper uses these as the broadcast (scatter, ...) directions.
    """
    inter = kernel_intersection_basis(inside)
    if not inter:
        return []
    # basis of the subspace of `inter` that also lies in ker(outside):
    # solve outside @ (B y) = 0 where B has the inter vectors as columns.
    b_cols = [v.column_tuple(0) for v in inter]
    b_mat = IntMat(list(zip(*b_cols)))  # n x p, columns are basis vectors
    ob = outside @ b_mat
    small_kernel = integer_kernel_basis(ob)  # coefficients y
    # choose directions completing small-image into the full basis:
    # take inter vectors whose coefficient-space complement they span.
    # Build the coefficient matrix of the sub-kernel and find a set of
    # coordinate vectors independent from it.
    p = len(inter)
    q = len(small_kernel)
    if q == p:
        return []  # everything is hidden by `outside`
    # Find p - q coordinate directions e_i such that {small_kernel, e_i}
    # is full rank, greedily.
    chosen: List[int] = []
    current = [v.column_tuple(0) for v in small_kernel]
    for i in range(p):
        cand = tuple(1 if k == i else 0 for k in range(p))
        test = FracMat([list(r) for r in current + [cand]] )
        if test.rank() == len(current) + 1:
            current.append(list(cand))
            chosen.append(i)
            if len(chosen) == p - q:
                break
    return [inter[i] for i in chosen]


def in_kernel(a_mat: IntMat, v: IntMat) -> bool:
    """True iff the column vector ``v`` satisfies ``A v = 0``."""
    return (a_mat @ v).is_zero()


def restrict_to_left_kernel(diff: IntMat, m: int) -> Optional[IntMat]:
    """Find a full-rank ``m x n`` integer matrix ``M`` with ``M @ diff == 0``.

    Used in step 1(c)ii of the heuristic: when two parallel paths have
    weight difference ``diff = F_{p1} - F_{p2}`` of deficient rank, any
    allocation matrix whose rows lie in the left kernel of ``diff``
    makes both paths' communications local simultaneously.  Returns
    ``None`` when the left kernel has dimension < ``m``.
    """
    basis = left_kernel_basis(diff)
    if len(basis) < m:
        return None
    rows = [b[0] for b in basis[:m]]
    return IntMat(rows)
