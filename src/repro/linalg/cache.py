"""Memoization layer for the exact normal-form machinery.

Every :class:`~repro.linalg.intmat.IntMat` is immutable and hashable,
and the normal-form computations (Hermite, Smith, pseudo-inverses) are
pure functions of their matrix arguments — yet the benchmark drivers
used to re-reduce the same handful of access / allocation matrices from
scratch on every call.  This module provides an LRU-bounded memo cache
keyed on the (hashable) arguments, with hit/miss counters exposed for
tests and for the perf-tracking harness.

Usage::

    @memoize_normal_form("smith_normal_form")
    def smith_normal_form(a_mat): ...

The wrapped function gains a ``.cache`` attribute (a
:class:`NormalFormCache`) and a ``.cache_clear()`` method; the
uncached original stays reachable as ``.__wrapped__`` (used by the
bit-identity tests).  All caches register globally so
:func:`cache_stats` / :func:`clear_caches` can report and reset them
at once.

Returned values are shared between hits: they are tuples of immutable
matrices (or ``None``), so sharing is safe.

Knobs: ``REPRO_LINALG_CACHE_SIZE`` (env) or the decorator's
``maxsize`` argument; default 1024 entries per function.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import wraps
from typing import Callable, Dict, Optional

from .._config import env_int
from ..obs.metrics import counter as _obs_counter
from ..obs.metrics import register_provider as _register_provider

DEFAULT_LINALG_CACHE_SIZE = env_int("REPRO_LINALG_CACHE_SIZE", 1024)

_MISSING = object()


class NormalFormCache:
    """A small LRU cache with hit/miss accounting.

    Hit/miss counts live in the observability metrics registry
    (:mod:`repro.obs.metrics`) under ``<namespace>.<name>.{hits,misses}``
    — ``linalg.cache`` by default, overridable so other subsystems (the
    dependence-analysis memos count under ``ir.dependence.cache``) reuse
    the same LRU/accounting machinery; ``.hits`` / ``.misses`` remain
    plain-int properties for existing callers and tests.
    """

    __slots__ = ("name", "maxsize", "_hits", "_misses", "_data")

    def __init__(
        self,
        name: str,
        maxsize: Optional[int] = None,
        namespace: str = "linalg.cache",
    ):
        self.name = name
        self.maxsize = (
            DEFAULT_LINALG_CACHE_SIZE if maxsize is None else int(maxsize)
        )
        if self.maxsize <= 0:
            raise ValueError("cache size must be positive")
        self._hits = _obs_counter(f"{namespace}.{self.name}.hits")
        self._misses = _obs_counter(f"{namespace}.{self.name}.misses")
        # a (re)created cache starts empty, so its counters restart too
        self._hits.reset()
        self._misses.reset()
        self._data: OrderedDict = OrderedDict()

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def get(self, key):
        """Cached value for ``key`` or the ``_MISSING`` sentinel."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self._misses.inc()
        else:
            self._hits.inc()
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self._hits.reset()
        self._misses.reset()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


_REGISTRY: Dict[str, NormalFormCache] = {}


def memoize_normal_form(
    name: Optional[str] = None, maxsize: Optional[int] = None
) -> Callable:
    """Decorator: memoize a pure function of hashable arguments.

    The cache key is the positional argument tuple (plus sorted kwargs
    when present); :class:`~repro.linalg.intmat.IntMat` hashes by
    value, so equal matrices share entries.
    """

    def decorate(fn: Callable) -> Callable:
        # re-registering a name (module reload, dual-path import)
        # replaces the old cache rather than erroring at import time
        cache = NormalFormCache(name or fn.__name__, maxsize)
        _REGISTRY[cache.name] = cache

        @wraps(fn)
        def wrapper(*args, **kwargs):
            key = args if not kwargs else args + tuple(sorted(kwargs.items()))
            value = cache.get(key)
            if value is _MISSING:
                value = fn(*args, **kwargs)
                cache.put(key, value)
            return value

        wrapper.cache = cache
        wrapper.cache_clear = cache.clear
        return wrapper

    return decorate


def get_cache(name: str) -> NormalFormCache:
    """The registered cache called ``name`` (KeyError if absent)."""
    return _REGISTRY[name]


def cache_stats() -> Dict[str, Dict[str, int]]:
    """``{function name: {hits, misses, size, maxsize}}`` for every
    registered normal-form cache."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


def clear_caches() -> None:
    """Empty every registered cache and reset its counters."""
    for cache in _REGISTRY.values():
        cache.clear()


# full stats (size/maxsize included) ride along in obs snapshots
_register_provider("linalg.cache", cache_stats)
