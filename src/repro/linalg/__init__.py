"""Exact integer / rational linear algebra substrate.

Everything the alignment algorithms of the paper need, implemented from
scratch over Python's arbitrary-precision integers and
:class:`fractions.Fraction`:

* :class:`IntMat` / :class:`FracMat` — exact matrix types;
* Hermite forms (:func:`row_hnf`, the paper's :func:`right_hermite`,
  :func:`right_hermite_narrow`, :func:`flat_hermite`);
* :func:`smith_normal_form` and invariant factors;
* one-sided pseudo-inverses, rational and integer;
* kernel bases and the kernel set operations of Section 4;
* linear Diophantine solvers and the ``X F = S`` equation of Lemma 2;
* unimodular generation / completion / enumeration.

The normal-form entry points are memoized on their hashable ``IntMat``
arguments (:mod:`repro.linalg.cache`; inspect with :func:`cache_stats`,
reset with :func:`clear_caches` — see PERFORMANCE.md).
"""

from .cache import (
    NormalFormCache,
    cache_stats,
    clear_caches,
    get_cache,
    memoize_normal_form,
)
from .diophantine import (
    DiophantineSolution,
    compatibility_condition,
    has_integer_solution,
    solve_axb,
    solve_integer_xf_eq_s,
    solve_xf_eq_s,
    solve_xf_eq_s_family,
)
from .fracmat import FracMat
from .hermite import (
    flat_hermite,
    is_unimodular,
    rank,
    right_hermite,
    right_hermite_narrow,
    row_hnf,
    unimodular_inverse,
)
from .intmat import IntMat, matrix_product
from .kernels import (
    in_kernel,
    integer_kernel_basis,
    kernel_difference_directions,
    kernel_dim,
    kernel_intersection_basis,
    left_kernel_basis,
    restrict_to_left_kernel,
)
from .pseudoinverse import (
    best_left_inverse,
    integer_left_inverse,
    integer_right_inverse,
    left_inverse_family,
    left_pseudoinverse,
    pseudoinverse,
    right_pseudoinverse,
)
from .smith import invariant_factors, smith_normal_form
from .unimodular import (
    elementary_row_matrix,
    enumerate_unimodular_2x2,
    full_rank,
    random_unimodular,
    swap_matrix,
    unimodular_completion,
)

__all__ = [
    "IntMat",
    "FracMat",
    "matrix_product",
    # memoization
    "NormalFormCache",
    "memoize_normal_form",
    "cache_stats",
    "clear_caches",
    "get_cache",
    # hermite
    "row_hnf",
    "right_hermite",
    "right_hermite_narrow",
    "flat_hermite",
    "rank",
    "is_unimodular",
    "unimodular_inverse",
    # smith
    "smith_normal_form",
    "invariant_factors",
    # pseudoinverse
    "pseudoinverse",
    "right_pseudoinverse",
    "left_pseudoinverse",
    "integer_left_inverse",
    "integer_right_inverse",
    "left_inverse_family",
    "best_left_inverse",
    # kernels
    "integer_kernel_basis",
    "left_kernel_basis",
    "kernel_dim",
    "kernel_intersection_basis",
    "kernel_difference_directions",
    "in_kernel",
    "restrict_to_left_kernel",
    # diophantine
    "DiophantineSolution",
    "solve_axb",
    "has_integer_solution",
    "compatibility_condition",
    "solve_xf_eq_s",
    "solve_xf_eq_s_family",
    "solve_integer_xf_eq_s",
    # unimodular
    "random_unimodular",
    "unimodular_completion",
    "enumerate_unimodular_2x2",
    "elementary_row_matrix",
    "swap_matrix",
    "full_rank",
]
