"""One-sided (pseudo-)inverses of full-rank rectangular matrices.

Appendix A.2 of the paper defines, for a full-rank ``u x v`` integer
matrix ``X``:

* *flat* (``u < v``): the right inverse ``X^+ = X^T (X X^T)^{-1}`` with
  ``X X^+ = Id_u``;
* *narrow* (``u > v``): the left inverse ``X^+ = (X^T X)^{-1} X^T`` with
  ``X^+ X = Id_v``.

These Moore–Penrose one-sided inverses are rational in general.  The
remark of Section 2.2.2 notes that *any* matrix ``G`` with
``G F = Id`` may be used as an access-graph weight, and integer ones
give integer allocation matrices; so we also search for integer
one-sided inverses via the Smith form, plus the full solution family
``G = G_0 + M K`` with ``K`` a basis of the left kernel.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .cache import memoize_normal_form
from .fracmat import FracMat
from .intmat import IntMat
from .kernels import left_kernel_basis
from .smith import smith_normal_form


@memoize_normal_form("right_pseudoinverse")
def right_pseudoinverse(x_mat: IntMat) -> FracMat:
    """Moore–Penrose right inverse of a flat full-row-rank matrix."""
    u, v = x_mat.shape
    if u > v:
        raise ValueError("right_pseudoinverse requires a flat matrix (u <= v)")
    xf = FracMat.from_int(x_mat)
    gram = xf @ xf.T
    return xf.T @ gram.inverse()


@memoize_normal_form("left_pseudoinverse")
def left_pseudoinverse(x_mat: IntMat) -> FracMat:
    """Moore–Penrose left inverse of a narrow full-column-rank matrix."""
    u, v = x_mat.shape
    if u < v:
        raise ValueError("left_pseudoinverse requires a narrow matrix (u >= v)")
    xf = FracMat.from_int(x_mat)
    gram = xf.T @ xf
    return gram.inverse() @ xf.T


@memoize_normal_form("pseudoinverse")
def pseudoinverse(x_mat: IntMat) -> FracMat:
    """The appropriate (pseudo-)inverse of a full-rank matrix:
    ordinary inverse if square, right inverse if flat, left if narrow."""
    u, v = x_mat.shape
    if u == v:
        return FracMat.from_int(x_mat).inverse()
    if u < v:
        return right_pseudoinverse(x_mat)
    return left_pseudoinverse(x_mat)


def _solve_integer_ax_eq_b(a_mat: IntMat, b_mat: IntMat) -> Optional[IntMat]:
    """One integer solution ``X`` of ``A X = B`` (or ``None``).

    Via Smith form ``U A V = D``: the system becomes ``D (V^{-1} X) =
    U B``; each row is solvable over Z iff ``d_i`` divides the whole
    row, and zero rows of ``D`` require zero rows of ``U B``.
    """
    u, d, v = smith_normal_form(a_mat)
    rhs = u @ b_mat
    m, n = a_mat.shape
    k = b_mat.ncols
    y = [[0] * k for _ in range(n)]
    r = min(m, n)
    for i in range(m):
        di = d[i, i] if i < r else 0
        for j in range(k):
            if di == 0:
                if rhs[i, j] != 0:
                    return None
            else:
                if rhs[i, j] % di != 0:
                    return None
                if i < n:
                    y[i][j] = rhs[i, j] // di
    return v @ IntMat(y) if n > 0 else None


@memoize_normal_form("integer_right_inverse")
def integer_right_inverse(f_mat: IntMat) -> Optional[IntMat]:
    """An integer ``R`` with ``F R = Id`` for flat full-row-rank ``F``,
    or ``None`` when only rational right inverses exist (some invariant
    factor exceeds 1)."""
    u, v = f_mat.shape
    if u > v:
        raise ValueError("integer_right_inverse requires a flat matrix")
    return _solve_integer_ax_eq_b(f_mat, IntMat.identity(u))


@memoize_normal_form("integer_left_inverse")
def integer_left_inverse(f_mat: IntMat) -> Optional[IntMat]:
    """An integer ``G`` with ``G F = Id`` for narrow full-column-rank
    ``F``, or ``None`` when no integer left inverse exists."""
    u, v = f_mat.shape
    if u < v:
        raise ValueError("integer_left_inverse requires a narrow matrix")
    rt = _solve_integer_ax_eq_b(f_mat.T, IntMat.identity(v))
    return rt.T if rt is not None else None


def left_inverse_family(f_mat: IntMat) -> Optional[Tuple[IntMat, List[IntMat]]]:
    """The family of integer left inverses of a narrow matrix ``F``.

    Returns ``(G0, K)`` where ``G0 F = Id`` and every integer ``G`` with
    ``G F = Id`` is ``G0 + M K_stack`` for integer ``M`` (``K`` lists the
    rows of ``K_stack``, a basis of the left kernel of ``F``).  This is
    the remark of Section 2.2.2: ``H = F^+ + M (Id - F F^+)`` ranges over
    all valid weight matrices.  Returns ``None`` when no integer left
    inverse exists.
    """
    g0 = integer_left_inverse(f_mat)
    if g0 is None:
        return None
    return g0, left_kernel_basis(f_mat)


@memoize_normal_form("best_left_inverse")
def best_left_inverse(f_mat: IntMat) -> Optional[IntMat]:
    """An integer left inverse with small entries.

    The compiler prefers small allocation coefficients (they become
    processor-index arithmetic).  We take ``G0`` and greedily reduce
    each row by integer multiples of the left-kernel basis rows,
    minimizing the sum of absolute values.
    """
    fam = left_inverse_family(f_mat)
    if fam is None:
        return None
    g0, kernel = fam
    rows = [list(r) for r in g0.rows()]
    for kb in kernel:
        kv = list(kb[0])
        weight = sum(x * x for x in kv)
        if weight == 0:
            continue
        for ri, row in enumerate(rows):
            # best integer multiple to subtract (least-squares rounding)
            dot = sum(a * b for a, b in zip(row, kv))
            t = round(dot / weight)
            if t:
                rows[ri] = [a - t * b for a, b in zip(row, kv)]
    return IntMat(rows)
