"""Linear Diophantine systems and the matrix equations of the paper.

Two solvers matter for alignment:

* ``A x = b`` over the integers (dependence analysis, distribution
  arithmetic) — solved through the Smith normal form, returning one
  particular solution plus a lattice basis of the homogeneous solutions.
* ``X F = S`` for a given flat/narrow ``F`` (Lemma 2): solvable iff the
  compatibility condition ``S F^+ F = S`` holds, with solution family
  ``X = S F^+ + Y (Id - F F^+)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .fracmat import FracMat
from .intmat import IntMat
from .pseudoinverse import pseudoinverse
from .smith import smith_normal_form


@dataclass(frozen=True)
class DiophantineSolution:
    """Solutions of ``A x = b`` over Z: ``x = particular + Z-combinations
    of homogeneous basis columns``."""

    particular: IntMat  # n x 1
    homogeneous: List[IntMat]  # list of n x 1 lattice basis columns

    def sample(self, coeffs: List[int]) -> IntMat:
        """The solution ``particular + sum coeffs[i] * homogeneous[i]``."""
        x = self.particular
        for c, h in zip(coeffs, self.homogeneous):
            x = x + c * h
        return x


def solve_axb(a_mat: IntMat, b_col: IntMat) -> Optional[DiophantineSolution]:
    """Solve ``A x = b`` over the integers.

    Returns ``None`` when no integer solution exists; otherwise a
    particular solution together with a basis of the integer kernel
    lattice of ``A`` (so *all* integer solutions are representable).
    """
    m, n = a_mat.shape
    if b_col.shape != (m, 1):
        raise ValueError("right-hand side must be an m x 1 column")
    u, d, v = smith_normal_form(a_mat)
    c = u @ b_col
    y = [0] * n
    r = min(m, n)
    for i in range(m):
        di = d[i, i] if i < r else 0
        if di == 0:
            if c[i, 0] != 0:
                return None
        else:
            if c[i, 0] % di != 0:
                return None
            y[i] = c[i, 0] // di
    particular = v @ IntMat.col(y)
    # homogeneous: columns of V corresponding to zero diagonal entries
    hom: List[IntMat] = []
    for j in range(n):
        dj = d[j, j] if j < r else 0
        if dj == 0:
            hom.append(v.col_vector(j))
    return DiophantineSolution(particular=particular, homogeneous=hom)


def has_integer_solution(a_mat: IntMat, b_col: IntMat) -> bool:
    """True iff ``A x = b`` admits an integer solution."""
    return solve_axb(a_mat, b_col) is not None


def compatibility_condition(s_mat: IntMat, f_mat: IntMat) -> bool:
    """Lemma 2's condition for ``X F = S`` to be solvable: ``S F^+ F = S``.

    ``F`` is ``a x d`` of full rank ``d`` (narrow or square); ``S`` is
    ``m x d``.  When ``F`` is flat of full row rank the equation is
    always solvable (Lemma 1 direction) and this returns True.
    """
    a, d = f_mat.shape
    if a < d:
        return True
    fp = pseudoinverse(f_mat)
    sf = FracMat.from_int(s_mat)
    ff = FracMat.from_int(f_mat)
    return (sf @ fp @ ff) == sf


def solve_xf_eq_s(s_mat: IntMat, f_mat: IntMat) -> Optional[FracMat]:
    """One rational solution ``X`` of ``X F = S`` or ``None``.

    Lemma 2: when compatible, ``X = S F^+`` is a solution; Lemma 3 shows
    it has full rank ``m`` when ``m <= d <= a`` and ``F`` has rank ``d``.
    """
    if not compatibility_condition(s_mat, f_mat):
        return None
    return FracMat.from_int(s_mat) @ pseudoinverse(f_mat)


def solve_xf_eq_s_family(
    s_mat: IntMat, f_mat: IntMat
) -> Optional[Tuple[FracMat, FracMat]]:
    """Solution family of ``X F = S``: returns ``(X0, P)`` with the
    general solution ``X = X0 + Y P`` for arbitrary ``Y`` (``P = Id -
    F F^+`` projects onto the left kernel of ``F``)."""
    x0 = solve_xf_eq_s(s_mat, f_mat)
    if x0 is None:
        return None
    a = f_mat.nrows
    fp = pseudoinverse(f_mat)
    proj = FracMat.identity(a) - (FracMat.from_int(f_mat) @ fp)
    return x0, proj


def solve_integer_xf_eq_s(s_mat: IntMat, f_mat: IntMat) -> Optional[IntMat]:
    """One *integer* solution of ``X F = S`` (via Smith), or ``None``."""
    # X F = S  <=>  F^T X^T = S^T
    u, d, v = smith_normal_form(f_mat.T)
    rhs = u @ s_mat.T
    a, m_rows = rhs.shape
    n = f_mat.nrows  # unknowns per column of X^T
    r = min(d.nrows, d.ncols)
    y = [[0] * m_rows for _ in range(d.ncols)]
    for i in range(d.nrows):
        di = d[i, i] if i < r else 0
        for j in range(m_rows):
            if di == 0:
                if rhs[i, j] != 0:
                    return None
            else:
                if rhs[i, j] % di != 0:
                    return None
                if i < d.ncols:
                    y[i][j] = rhs[i, j] // di
    xt = v @ IntMat(y)
    return xt.T
