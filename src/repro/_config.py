"""Shared configuration helpers for the cache subsystems."""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """Integer environment knob; non-numeric values fall back to the
    default (invalid *values* like zero are rejected by the consumer,
    which can point at the knob in its error message)."""
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def env_float(name: str, default: float) -> float:
    """Float environment knob; non-numeric values fall back."""
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean environment knob: ``1``/``true``/``yes``/``on`` enable,
    ``0``/``false``/``no``/``off`` disable, anything else (or unset)
    falls back to the default."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    val = raw.strip().lower()
    if val in ("1", "true", "yes", "on"):
        return True
    if val in ("0", "false", "no", "off"):
        return False
    return default
