"""Shared configuration helpers for the cache subsystems."""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """Integer environment knob; non-numeric values fall back to the
    default (invalid *values* like zero are rejected by the consumer,
    which can point at the knob in its error message)."""
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default
