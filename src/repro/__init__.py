"""repro — a reproduction of Dion, Randriamaro & Robert,
*How to optimize residual communications?* (IPPS 1996; LIP RR-1995-27).

Public API tour
---------------

* Build a loop nest: :class:`repro.ir.NestBuilder` (or use the paper's
  :func:`repro.ir.motivating_example` / :func:`repro.ir.platonoff_example`).
* Map it: :func:`repro.alignment.two_step_heuristic` returns allocation
  matrices, the local/residual split and the optimized classification
  of every residual (translation / macro / decomposed / general).
* Execute it: fold onto a mesh with :class:`repro.runtime.Folding`,
  run :func:`repro.runtime.execute` against a
  :class:`repro.machine.ParagonModel` (optionally with
  :class:`repro.machine.CM5Model` hardware collectives).
* Compare: :mod:`repro.baselines` implements Feautrier-style greedy
  placement and Platonoff's broadcast-first strategy.

Sub-packages: :mod:`repro.linalg` (exact integer/rational linear
algebra), :mod:`repro.ir` (loop nests, dependences, schedules),
:mod:`repro.alignment` (access graph, Edmonds branching, the two-step
heuristic), :mod:`repro.macrocomm` (Section 4 detectors),
:mod:`repro.decomp` (Section 5 decompositions), :mod:`repro.distribution`
(BLOCK/CYCLIC/grouped partition), :mod:`repro.machine` (mesh + fat-tree
models), :mod:`repro.runtime` (executor), :mod:`repro.baselines`,
:mod:`repro.campaign` (generated workloads + parallel sweep runner
with checkpoint/resume).
"""

__version__ = "1.0.0"

from .driver import CompiledNest, compile_nest

from . import (
    alignment,
    baselines,
    campaign,
    decomp,
    distribution,
    ir,
    linalg,
    machine,
    macrocomm,
    runtime,
)

__all__ = [
    "linalg",
    "ir",
    "alignment",
    "macrocomm",
    "decomp",
    "distribution",
    "machine",
    "runtime",
    "baselines",
    "campaign",
    "compile_nest",
    "CompiledNest",
    "__version__",
]
