"""End-to-end compiler façade.

``compile_nest`` chains the whole pipeline the way a downstream user
wants it: parse (or accept an IR nest) → infer/validate schedules →
run the two-step heuristic → generate the SPMD program → build an
executable mapped program for a mesh.  Each stage's artefact is kept on
the result object so nothing has to be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from .alignment import MappingResult, two_step_heuristic
from .ir import (
    LoopNest,
    ScheduledNest,
    infer_schedules,
    parse_nest,
    schedule_is_legal,
)
from .machine import MachineModel
from .obs import span
from .runtime import CommReport, Folding, MappedProgram, execute, execute_python


@dataclass
class CompiledNest:
    """Everything the pipeline produced for one nest."""

    nest: LoopNest
    schedules: ScheduledNest
    mapping: MappingResult
    spmd: str

    def program(
        self,
        machine: MachineModel,
        params: Dict[str, int],
        extent: Optional[int] = None,
        **folding_kw,
    ) -> MappedProgram:
        """Fold onto ``machine``'s mesh and build an executable program.

        ``machine`` may be any registered machine model; the mesh rank
        must equal the ``m`` this nest was compiled with (a mismatch
        raises a friendly ``ValueError``).
        """
        folding = Folding(
            mesh=machine.mesh,
            extent=extent or 4 * max(machine.mesh.dims),
            **folding_kw,
        )
        return MappedProgram(mapping=self.mapping, folding=folding, params=params)

    def run(
        self,
        machine: MachineModel,
        params: Dict[str, int],
        collectives=None,
        python: bool = False,
        **kw,
    ) -> CommReport:
        """Compile-and-run shortcut: price the communications.

        ``python=True`` routes through the per-element reference
        executor (:func:`repro.runtime.execute_python`) instead of the
        vectorized one — the two are bit-identical; the flag exists for
        baseline measurements and cross-checks.
        """
        runner = execute_python if python else execute
        return runner(self.program(machine, params, **kw), machine, collectives=collectives)

    def summary(self) -> str:
        from .report import format_mapping_summary

        return format_mapping_summary(self.mapping)


def compile_nest(
    source: Union[str, LoopNest],
    m: int = 2,
    schedules: Optional[ScheduledNest] = None,
    params: Optional[Dict[str, int]] = None,
    check_legality: bool = True,
    name: str = "nest",
    **heuristic_kw,
) -> CompiledNest:
    """Compile a loop nest (source text or IR) into a mapped program.

    Parameters
    ----------
    source:
        Nest source text (see :mod:`repro.ir.parser`) or an existing
        :class:`~repro.ir.LoopNest`.
    m:
        Target virtual grid dimension; to execute the result, pick the
        rank of the machine's mesh (2 for Paragon/CM-5, 3 for T3D).
    schedules:
        Optional explicit schedules; inferred from the dependences when
        omitted (``params`` bounds the inference domains, default small).
    check_legality:
        Validate the (given or inferred) schedule against the bounded
        dependence enumeration and raise ``ValueError`` on conflicts.
    """
    with span("parse"):
        nest = (
            parse_nest(source, name=name) if isinstance(source, str) else source
        )
    bounds = params or {p: 3 for p in _collect_params(nest)}
    if schedules is None:
        with span("schedule.infer"):
            schedules = infer_schedules(nest, bounds)
    if check_legality:
        with span("schedule.legality"):
            legal = schedule_is_legal(schedules, bounds)
        if not legal:
            raise ValueError(
                "schedule is illegal: dependent instances share a time step "
                "(see repro.ir.schedule_violations for witnesses)"
            )
    with span("align"):
        mapping = two_step_heuristic(
            nest, m=m, schedules=schedules, **heuristic_kw
        )
    from .codegen import generate_spmd

    with span("codegen"):
        spmd = generate_spmd(mapping)
    return CompiledNest(
        nest=nest,
        schedules=schedules,
        mapping=mapping,
        spmd=spmd,
    )


def _collect_params(nest: LoopNest):
    names = set()
    for s in nest.statements:
        for l in s.loops:
            for bound in (l.lower, l.upper):
                for name, _k in bound.coeffs:
                    names.add(name)
    return names
