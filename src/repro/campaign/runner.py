"""Parallel campaign execution with JSONL checkpoint/resume.

:func:`execute_task` compiles and prices one :class:`SweepTask` — the
two-step heuristic *and* the greedy Feautrier baseline on the same
machine model, so every record carries its heuristic-vs-baseline ratio.
:func:`run_campaign` drives a task list through a pluggable execution
backend (see :mod:`repro.campaign.executors`: ``inline``, ``pool``,
``resilient``), appending each result to the
:class:`~repro.campaign.store.RunStore` as it lands; killing the
process at any point loses at most the in-flight tasks, and re-running
with ``resume=True`` executes exactly the tasks whose results are not
on disk yet.

Failures are **typed**: every non-ok record carries an ``error_kind``
from the taxonomy in :data:`repro.campaign.store.ERROR_KINDS` —
``compile``/``price`` for deterministic stage failures, ``timeout``
for wall-clock caps and supervisor-detected hangs, ``crash`` for
worker death (the ``pool``/``resilient`` backends convert a SIGKILLed
worker into ``status="crashed"`` records instead of hanging the
campaign), ``oom`` for in-process memory exhaustion and ``fault`` for
injected transient failures.  Transient kinds are retried with capped
exponential backoff when ``CampaignConfig.retries`` is set; the
attempt count lands in ``TaskResult.attempts``.

**Compile once, price many**: the heuristic and the Feautrier baseline
depend only on ``(workload, m, heuristic knobs)`` — not on the machine
or the mesh — so the task execution is split into a *compile* stage
(cached per worker process in an LRU keyed by
:attr:`~repro.campaign.sweep.SweepTask.compile_key`) and a *price*
stage (per grid cell).  The runner additionally dispatches whole
compile-key groups to one worker (see
:func:`~repro.campaign.sweep.group_by_compile_key`), so a grid with K
machine x mesh cells per nest compiles each nest once instead of K
times regardless of pool scheduling.  Stored records are byte-identical
to a recompile-every-cell run (asserted in
``tests/campaign/test_compile_cache.py``); cache hits are reported in
memory only (``TaskResult.compile_cache_hit``,
``CampaignOutcome.compile_cache_hits``).  Knob:
``REPRO_CAMPAIGN_COMPILE_CACHE`` (entries per worker, default 32,
``0`` disables).  An optional **persistent disk tier** underneath the
LRU (``REPRO_CAMPAIGN_COMPILE_DIR`` / :func:`set_compile_cache_dir`)
shares compiled workloads across workers *and* runs — atomic pickles
keyed by ``compile_key`` plus a code-version fingerprint, where stale,
corrupt or truncated entries are misses, never errors.

Per-task failures never abort the campaign: exceptions become
``status="error"`` records, and a per-task wall-clock ``timeout``
(SIGALRM-based, skipped on platforms without it) becomes
``status="timeout"``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import tempfile
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .._config import env_flag, env_int
from ..obs import (
    TraceWriter,
    capture,
    freeze_capture,
    merge_spans,
    span,
    span_snapshot,
)
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from . import faults
from .store import RunStore, TaskResult
from .sweep import (
    SweepTask,
    canonical_json,
    group_by_compile_key,
    order_groups_for_dispatch,
)


class CampaignSpecMismatch(RuntimeError):
    """Resuming with a grid that does not match the checkpoint's."""


class _TaskTimeout(Exception):
    pass


class _StageFailure(Exception):
    """Wraps a task exception with the pipeline stage it escaped from
    (the ``compile``/``price`` halves of the error taxonomy)."""

    def __init__(self, kind: str, exc: BaseException):
        super().__init__(str(exc))
        self.kind = kind
        self.exc = exc


def _alarm_handler(signum, frame):
    raise _TaskTimeout()


# ---------------------------------------------------------------------------
# compile stage — per-worker LRU over (workload, m, knobs)
# ---------------------------------------------------------------------------


@dataclass
class _CompiledWorkload:
    """Everything the price stage needs, machine/mesh independent."""

    compiled: object  # driver.CompiledNest
    baseline: object  # alignment.MappingResult (Feautrier, frozen)
    params: Dict[str, int]


#: per-process cache; fork workers start with the parent's (usually
#: empty) copy and populate their own
_compile_cache: "OrderedDict[str, _CompiledWorkload]" = OrderedDict()
_compile_cache_size: int = env_int("REPRO_CAMPAIGN_COMPILE_CACHE", 32)
#: hit/miss counts live in the obs metrics registry so one
#: ``obs.snapshot()`` covers this cache next to the linalg/route caches
_compile_hits = obs_metrics.counter("campaign.compile_cache.hits")
_compile_misses = obs_metrics.counter("campaign.compile_cache.misses")


def set_compile_cache_size(size: int) -> int:
    """Resize (``0`` disables) the per-worker compile cache; returns the
    previous size.  Affects the current process only — pool workers
    inherit whatever was set before the fork."""
    global _compile_cache_size
    prev = _compile_cache_size
    _compile_cache_size = size
    if size <= 0:
        _compile_cache.clear()
    while len(_compile_cache) > max(size, 0):
        _compile_cache.popitem(last=False)
    return prev


def compile_cache_stats() -> Dict[str, object]:
    """Hit/miss counters of *this* process's compile cache (both the
    in-memory LRU and the persistent disk tier)."""
    return {
        "hits": _compile_hits.value,
        "misses": _compile_misses.value,
        "size": len(_compile_cache),
        "maxsize": _compile_cache_size,
        "disk_hits": _disk_hits.value,
        "disk_misses": _disk_misses.value,
        "disk_writes": _disk_writes.value,
        "dir": _compile_cache_dir,
    }


def clear_compile_cache() -> None:
    _compile_cache.clear()
    _compile_hits.reset()
    _compile_misses.reset()
    _disk_hits.reset()
    _disk_misses.reset()
    _disk_writes.reset()


obs_metrics.register_provider("campaign.compile_cache", compile_cache_stats)


# ---------------------------------------------------------------------------
# compile stage, disk tier — persistent pickles shared across runs
# ---------------------------------------------------------------------------
#
# The in-memory LRU dies with the process, so every cold campaign, CI
# run and future ``repro serve`` start re-pays the full compile of every
# nest.  ``REPRO_CAMPAIGN_COMPILE_DIR`` (or set_compile_cache_dir) names
# a directory of pickled ``_CompiledWorkload`` entries keyed by
# ``compile_key`` *and* a fingerprint of the compile pipeline's source,
# so entries written by older code simply miss by filename.  Writes are
# atomic (temp file in the target directory + os.replace), which makes
# the directory safe to share between concurrent workers and runs: a
# reader sees either a complete entry or none.  Stale, corrupt or
# truncated entries are misses, never errors — the cache can only make
# a run faster, not break it.  Stored task records are byte-identical
# with the tier on or off (asserted in
# ``tests/campaign/test_compile_disk_cache.py``): the pickle carries the
# same frozen compile outputs a fresh compile produces.

_compile_cache_dir: Optional[str] = (
    os.environ.get("REPRO_CAMPAIGN_COMPILE_DIR") or None
)
_disk_hits = obs_metrics.counter("campaign.compile_cache.disk_hits")
_disk_misses = obs_metrics.counter("campaign.compile_cache.disk_misses")
_disk_writes = obs_metrics.counter("campaign.compile_cache.disk_writes")

_code_fingerprint_cache: Optional[str] = None

#: packages whose source feeds the disk-cache fingerprint — everything
#: the compile stage's outputs depend on
_FINGERPRINT_PACKAGES = (
    "ir",
    "linalg",
    "alignment",
    "baselines",
    "codegen",
    "macrocomm",
)


def code_fingerprint() -> str:
    """Version tag of the compile pipeline: a digest over the source
    bytes of :mod:`repro.driver` and every compile-relevant package.
    Baked into disk-cache filenames so any code change invalidates old
    entries by construction (they miss by name, no load needed)."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        root = os.path.dirname(os.path.abspath(__file__))
        root = os.path.dirname(root)  # .../repro
        digest = hashlib.sha1()
        rels = ["driver.py"]
        for pkg in _FINGERPRINT_PACKAGES:
            pkg_dir = os.path.join(root, pkg)
            try:
                names = sorted(os.listdir(pkg_dir))
            except OSError:
                continue
            rels.extend(
                os.path.join(pkg, n) for n in names if n.endswith(".py")
            )
        for rel in rels:
            digest.update(rel.encode("utf-8"))
            try:
                with open(os.path.join(root, rel), "rb") as fh:
                    digest.update(fh.read())
            except OSError:
                continue
        _code_fingerprint_cache = digest.hexdigest()[:12]
    return _code_fingerprint_cache


def set_compile_cache_dir(path: Optional[str]) -> Optional[str]:
    """Point the persistent compile-cache tier at ``path`` (``None``
    disables); returns the previous directory.  Affects the current
    process only — the campaign runner threads the setting through
    executor worker init like the cache sizes, so spawn workers share
    the parent's directory."""
    global _compile_cache_dir
    prev = _compile_cache_dir
    _compile_cache_dir = path or None
    return prev


def compile_cache_dir() -> Optional[str]:
    """The active persistent-tier directory (``None`` = disk tier off)."""
    return _compile_cache_dir


def _disk_path(key: str) -> str:
    return os.path.join(
        _compile_cache_dir, f"{key}-{code_fingerprint()}.pkl"
    )


def _disk_load(key: str) -> Optional[_CompiledWorkload]:
    """Read one persistent entry; any failure whatsoever (missing,
    truncated, corrupt, wrong payload shape, foreign pickle) is a miss."""
    try:
        with open(_disk_path(key), "rb") as fh:
            payload = pickle.load(fh)
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or payload.get("version") != code_fingerprint()
        ):
            return None
        cw = payload.get("compiled")
        return cw if isinstance(cw, _CompiledWorkload) else None
    except Exception:
        return None


def _disk_store(key: str, cw: _CompiledWorkload) -> None:
    """Atomically persist one compiled workload (temp file + rename in
    the cache directory, so concurrent writers race benignly: last
    complete write wins and readers never see a partial file).  Failure
    to cache is never an error."""
    try:
        os.makedirs(_compile_cache_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=_compile_cache_dir, prefix=f".{key}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    {
                        "key": key,
                        "version": code_fingerprint(),
                        "compiled": cw,
                    },
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, _disk_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except Exception:
        return
    _disk_writes.inc()


def _compile_for_task(task: SweepTask) -> Tuple[_CompiledWorkload, bool]:
    """The compile stage: two-step heuristic + Feautrier baseline for
    the task's ``(workload, m, rank_weights)``, LRU-cached per worker
    with an optional persistent disk tier underneath.
    Returns ``(compiled, cache_hit)``."""
    key = task.compile_key
    if _compile_cache_size > 0:
        cached = _compile_cache.get(key)
        if cached is not None:
            _compile_cache.move_to_end(key)
            _compile_hits.inc()
            return cached, True
    _compile_misses.inc()
    if _compile_cache_dir is not None:
        cw = _disk_load(key)
        if cw is not None:
            _disk_hits.inc()
            if _compile_cache_size > 0:
                _compile_cache[key] = cw
                while len(_compile_cache) > _compile_cache_size:
                    _compile_cache.popitem(last=False)
            return cw, True
        _disk_misses.inc()

    from ..alignment import optimize_residuals
    from ..baselines import feautrier_align
    from ..driver import compile_nest

    with span("compile"):
        wl = task.workload
        nest = wl.resolve()
        schedules = wl.resolve_schedules(nest)
        params = dict(wl.params)
        compiled = compile_nest(
            nest,
            m=task.m,
            schedules=schedules,
            params=params,
            check_legality=wl.check_legality,
            name=wl.name,
            use_rank_weights=task.rank_weights,
        )
        with span("baseline"):
            baseline = optimize_residuals(
                feautrier_align(nest, task.m),
                compiled.schedules,
                allow_rotations=False,
            )
    cw = _CompiledWorkload(compiled=compiled, baseline=baseline, params=params)
    if _compile_cache_size > 0:
        _compile_cache[key] = cw
        while len(_compile_cache) > _compile_cache_size:
            _compile_cache.popitem(last=False)
    if _compile_cache_dir is not None:
        _disk_store(key, cw)
    return cw, False


# ---------------------------------------------------------------------------
# baseline price memo — per-worker LRU over (workload, m, machine, mesh)
# ---------------------------------------------------------------------------
#
# The Feautrier baseline mapping depends only on (workload, m) and the
# folding only on the mesh — the heuristic's rank-weights knob never
# enters — so its price is one float per (workload, m, machine, mesh)
# cell.  A grid that sweeps rank_weights (or any future heuristic knob)
# re-prices the identical baseline once per knob value; this LRU
# collapses those to one execute() per cell and per worker process.

_baseline_cache: "OrderedDict[str, float]" = OrderedDict()
_baseline_cache_size: int = env_int("REPRO_CAMPAIGN_BASELINE_CACHE", 512)
_baseline_hits = obs_metrics.counter("campaign.baseline_cache.hits")
_baseline_misses = obs_metrics.counter("campaign.baseline_cache.misses")


def set_baseline_cache_size(size: int) -> int:
    """Resize (``0`` disables) the per-worker baseline price cache;
    returns the previous size.  Affects the current process only — the
    campaign runner threads the parent's setting through executor
    worker init (see :class:`~repro.campaign.executors.ExecutorConfig`)."""
    global _baseline_cache_size
    prev = _baseline_cache_size
    _baseline_cache_size = size
    if size <= 0:
        _baseline_cache.clear()
    while len(_baseline_cache) > max(size, 0):
        _baseline_cache.popitem(last=False)
    return prev


def baseline_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of *this* process's baseline price cache."""
    return {
        "hits": _baseline_hits.value,
        "misses": _baseline_misses.value,
        "size": len(_baseline_cache),
        "maxsize": _baseline_cache_size,
    }


def clear_baseline_cache() -> None:
    _baseline_cache.clear()
    _baseline_hits.reset()
    _baseline_misses.reset()


obs_metrics.register_provider("campaign.baseline_cache", baseline_cache_stats)


def _baseline_price_key(task: SweepTask) -> str:
    """Digest of everything the baseline *price* depends on: the cell
    minus the heuristic knobs (``rank_weights`` deliberately absent —
    the baseline mapping and the folding never see it)."""
    spec = {
        "workload": task.workload.to_dict(),
        "m": task.m,
        "machine": task.machine,
        "mesh": list(task.mesh),
    }
    return hashlib.sha1(canonical_json(spec).encode()).hexdigest()[:16]


def _baseline_lookup(key: str) -> Tuple[Optional[float], bool]:
    """``(price, hit)`` — a disabled cache always misses (mirroring the
    compile LRU's counter semantics)."""
    if _baseline_cache_size > 0:
        cached = _baseline_cache.get(key)
        if cached is not None:
            _baseline_cache.move_to_end(key)
            _baseline_hits.inc()
            return cached, True
    _baseline_misses.inc()
    return None, False


def _baseline_store(key: str, price: float) -> None:
    if _baseline_cache_size > 0:
        _baseline_cache[key] = price
        while len(_baseline_cache) > _baseline_cache_size:
            _baseline_cache.popitem(last=False)


def _price_backend_name() -> str:
    """The parent's resolved array backend, threaded through executor
    worker init so spawn-context workers honour ``set_price_backend``
    calls made after import (the env knob alone would be lost)."""
    from ..machine.backend import price_backend

    return price_backend()


def _price_task(task: SweepTask, cw: _CompiledWorkload) -> TaskResult:
    """The price stage: fold the compiled nest onto the task's machine x
    mesh cell and cost both mappings.

    The two halves get their own sub-spans (``price.heuristic`` /
    ``price.baseline``) so trace reports attribute them directly; the
    baseline half is served from the per-worker price memo when the
    same (workload, m, machine, mesh) cell was costed before."""
    from ..machine import machine_spec
    from ..runtime import MappedProgram, execute

    with span("price"):
        spec = machine_spec(task.machine)
        machine = spec.make(task.mesh)
        collectives = spec.make_collectives(task.mesh)
        with span("price.heuristic"):
            program = cw.compiled.program(machine, cw.params)
            report = execute(program, machine, collectives=collectives)

        bkey = _baseline_price_key(task)
        baseline_time, bhit = _baseline_lookup(bkey)
        if not bhit:
            # same folding as the heuristic's program, so the two prices
            # share the driver's folding policy by construction
            base_program = MappedProgram(
                mapping=cw.baseline, folding=program.folding, params=cw.params
            )
            with span("price.baseline"):
                base_report = execute(
                    base_program, machine, collectives=collectives
                )
            baseline_time = base_report.total_time
            _baseline_store(bkey, baseline_time)

    result = TaskResult(
        task_id=task.task_id,
        workload=task.workload.name,
        machine=task.machine,
        mesh=task.mesh,
        m=task.m,
        rank_weights=task.rank_weights,
        status="ok",
        counts=cw.compiled.mapping.counts(),
        residuals=len(cw.compiled.mapping.optimized),
        total_time=report.total_time,
        total_messages=report.total_messages,
        total_volume=report.total_volume,
        baseline_residuals=len(cw.baseline.optimized),
        baseline_time=baseline_time,
    )
    result.baseline_cache_hit = bhit
    return result


def _execute_task_inner(task: SweepTask, attempt: int) -> TaskResult:
    faults.maybe_inject(task.task_id, attempt)
    try:
        cw, hit = _compile_for_task(task)
    except (MemoryError, _TaskTimeout, faults.InjectedFault):
        raise
    except Exception as exc:
        raise _StageFailure("compile", exc) from exc
    try:
        result = _price_task(task, cw)
    except (MemoryError, _TaskTimeout, faults.InjectedFault):
        raise
    except Exception as exc:
        raise _StageFailure("price", exc) from exc
    result.compile_cache_hit = hit
    return result


def execute_task(
    task: SweepTask, timeout: Optional[float] = None, attempt: int = 1
) -> TaskResult:
    """Run one task with error capture and an optional wall-clock cap.

    Never raises for task-level failures — compile errors, illegal
    schedules, pricing blowups all come back as typed ``status="error"``
    records (``error_kind`` from the taxonomy) so one bad grid cell
    cannot sink a campaign.  A non-positive ``timeout`` is a *caller*
    bug and raises ``ValueError`` (``setitimer`` would otherwise either
    raise cryptically or silently disarm the alarm); ``attempt`` is the
    1-based retry counter threaded through to fault injection and the
    recorded ``TaskResult.attempts``.

    While tracing is enabled the spans recorded during this task are
    captured into ``TaskResult.trace`` (the worker's span tree travels
    back through the result pipe; see :mod:`repro.obs.tracing`).
    """
    if timeout is not None and timeout <= 0:
        raise ValueError(
            f"timeout must be positive, got {timeout!r} (omit it for "
            "no per-task cap)"
        )
    if obs_tracing.is_enabled():
        with capture() as buf:
            result = _execute_task_timed(task, timeout, attempt)
        result.trace = freeze_capture(buf)
        return result
    return _execute_task_timed(task, timeout, attempt)


def _execute_task_timed(
    task: SweepTask, timeout: Optional[float], attempt: int
) -> TaskResult:
    t0 = time.perf_counter()
    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    old_handler = None
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        # disarm in an inner finally so an alarm that fires *between*
        # the task finishing and the disarm still lands inside this
        # try and is absorbed as a timeout, never escaping the runner
        try:
            result = _execute_task_inner(task, attempt)
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0)
    except _TaskTimeout:
        result = _failure_result(
            task, "timeout", f"task exceeded {timeout}s", kind="timeout"
        )
    except faults.InjectedFault as exc:
        result = _failure_result(task, "error", str(exc), kind="fault")
    except MemoryError as exc:
        result = _failure_result(
            task, "error", f"MemoryError: {exc}", kind="oom"
        )
    except _StageFailure as sf:
        exc = sf.exc
        tail = traceback.format_exc().strip().splitlines()[-3:]
        result = _failure_result(
            task,
            "error",
            f"{type(exc).__name__}: {exc} | " + " / ".join(tail),
            kind=sf.kind,
        )
    finally:
        if use_alarm:
            signal.signal(signal.SIGALRM, old_handler)
    result.seconds = time.perf_counter() - t0
    result.attempts = attempt
    return result


def _failure_result(
    task: SweepTask,
    status: str,
    message: str,
    kind: Optional[str] = None,
    attempts: int = 1,
) -> TaskResult:
    return TaskResult(
        task_id=task.task_id,
        workload=task.workload.name,
        machine=task.machine,
        mesh=task.mesh,
        m=task.m,
        rank_weights=task.rank_weights,
        status=status,
        error=message,
        error_kind=kind,
        attempts=attempts,
    )


def crashed_result(
    task: SweepTask, message: str, attempts: int = 1
) -> TaskResult:
    """A ``status="crashed"`` record for a task whose worker died
    (executor-side entry point: the task never got to report itself)."""
    return _failure_result(
        task, "crashed", message, kind="crash", attempts=attempts
    )


# ---------------------------------------------------------------------------
# batched group pricing — one tensor op per compile-key group
# ---------------------------------------------------------------------------

#: process-local switch over the batched path (env default; flipped by
#: :func:`set_group_pricing`)
_group_pricing_enabled: bool = env_flag("REPRO_PRICE_BATCH", default=True)


def set_group_pricing(enabled: bool) -> bool:
    """Enable/disable batched whole-group pricing in this process
    (``REPRO_PRICE_BATCH`` is the environment default); returns the
    previous setting.  The per-task path is always kept — batched and
    per-cell prices are bit-identical (asserted in
    ``tests/runtime/test_group_pricing.py``), so this switch only
    trades speed, never results."""
    global _group_pricing_enabled
    prev = _group_pricing_enabled
    _group_pricing_enabled = enabled
    return prev


def group_pricing_allowed(
    group: Sequence[SweepTask], timeout: Optional[float]
) -> bool:
    """Whether a compile-key group may take the batched pricing path.

    The batched path prices all K cells in one pass, so it cannot
    honour per-task semantics that interleave with pricing: a per-task
    wall-clock cap, fault injection points, or per-task span capture
    (tracing attributes spans to individual tasks).  A disabled compile
    cache would also force K compiles through one path — the per-task
    loop keeps the compile counters exact there."""
    return (
        _group_pricing_enabled
        and len(group) > 1
        and timeout is None
        and _compile_cache_size > 0
        and faults.active_spec() is None
        and not obs_tracing.is_enabled()
    )


def price_group_batched(
    group: Sequence[SweepTask],
) -> Optional[List[TaskResult]]:
    """Price one compile-key group with the batched group executor.

    Compiles each task through the ordinary LRU path (one miss + K-1
    hits, keeping the compile counters exactly as the per-task loop
    would), stacks all K heuristic cells into one
    :func:`repro.runtime.execute_group` call, then batches the
    baseline cells that miss the price memo into a second call.
    Results are bit-identical to K per-cell ``execute()`` runs by
    construction of ``execute_group``.

    Returns ``None`` when the batched attempt cannot proceed — a cell
    raised, or LRU eviction split the group across compiled objects —
    and the caller falls back to the per-task loop (which re-serves
    the compiles from the cache)."""
    from ..machine import machine_spec
    from ..runtime import MappedProgram, execute_group

    t0 = time.perf_counter()
    try:
        compiled: List[Tuple[SweepTask, _CompiledWorkload, bool]] = []
        for task in group:
            cw, hit = _compile_for_task(task)
            compiled.append((task, cw, hit))
        cw0 = compiled[0][1]
        if any(cw is not cw0 for _, cw, _ in compiled):
            return None

        cells = []
        for task, cw, _ in compiled:
            spec = machine_spec(task.machine)
            machine = spec.make(task.mesh)
            cells.append(
                (
                    cw.compiled.program(machine, cw.params),
                    machine,
                    spec.make_collectives(task.mesh),
                )
            )
        reports = execute_group(cells)

        bkeys = [_baseline_price_key(t) for t, _, _ in compiled]
        lookups = [_baseline_lookup(k) for k in bkeys]
        btimes = [price for price, _ in lookups]
        bhits = [hit for _, hit in lookups]
        miss_idx = [i for i, hit in enumerate(bhits) if not hit]
        if miss_idx:
            base_cells = [
                (
                    MappedProgram(
                        mapping=cw0.baseline,
                        folding=cells[i][0].folding,
                        params=cw0.params,
                    ),
                    cells[i][1],
                    cells[i][2],
                )
                for i in miss_idx
            ]
            base_reports = execute_group(base_cells)
            for i, rep in zip(miss_idx, base_reports):
                btimes[i] = rep.total_time
                _baseline_store(bkeys[i], rep.total_time)
    except Exception:
        return None

    seconds = (time.perf_counter() - t0) / len(group)
    results: List[TaskResult] = []
    for (task, cw, hit), report, btime, bhit in zip(
        compiled, reports, btimes, bhits
    ):
        result = TaskResult(
            task_id=task.task_id,
            workload=task.workload.name,
            machine=task.machine,
            mesh=task.mesh,
            m=task.m,
            rank_weights=task.rank_weights,
            status="ok",
            counts=cw.compiled.mapping.counts(),
            residuals=len(cw.compiled.mapping.optimized),
            total_time=report.total_time,
            total_messages=report.total_messages,
            total_volume=report.total_volume,
            baseline_residuals=len(cw.baseline.optimized),
            baseline_time=btime,
        )
        result.compile_cache_hit = hit
        result.baseline_cache_hit = bhit
        result.seconds = seconds
        result.attempts = 1
        results.append(result)
    return results


def _execute_task_group(
    group: Sequence[SweepTask],
    timeout: Optional[float] = None,
    compile_cache_size: Optional[int] = None,
) -> List[TaskResult]:
    """Run one compile-key group in order (worker-side entry point).

    All tasks of the group share a compile key, so the first task pays
    the compile and the rest hit the worker's cache — error capture and
    the wall-clock cap stay per task.  When :func:`group_pricing_allowed`
    holds, the whole group is priced in one batched pass instead
    (bit-identical results; per-task loop as fallback).
    ``compile_cache_size`` is the parent's cache setting passed
    *explicitly* so spawn-context workers (no fork inheritance) honour
    ``set_compile_cache_size`` / ``REPRO_CAMPAIGN_COMPILE_CACHE``
    values set after import."""
    if compile_cache_size is not None and compile_cache_size != _compile_cache_size:
        set_compile_cache_size(compile_cache_size)
    if group_pricing_allowed(group, timeout):
        results = price_group_batched(group)
        if results is not None:
            return results
    return [execute_task(task, timeout=timeout) for task in group]


@dataclass
class CampaignConfig:
    """Execution knobs of one ``run_campaign`` invocation."""

    jobs: int = 1
    timeout: Optional[float] = None
    #: stop after this many *new* results (test/CI hook simulating an
    #: interrupted campaign; the checkpoint stays resumable)
    max_tasks: Optional[int] = None
    #: on resume, re-run tasks whose stored record is error/timeout/
    #: crashed (by default failures count as done and are never
    #: retried); the superseded failure lines are compacted away
    retry_failures: bool = False
    #: execution backend (see :mod:`repro.campaign.executors`); None
    #: picks ``pool`` for ``jobs > 1`` and ``inline`` otherwise
    executor: Optional[str] = None
    #: extra attempts per task for transient failures (fault/crash/
    #: oom/timeout kinds); 0 disables in-run retries
    retries: int = 0
    #: base delay of the capped exponential retry backoff, in seconds
    #: (delay = backoff * 2**(retry - 1), capped at BACKOFF_CAP)
    backoff: float = 0.5
    #: resilient executor: max silence (no heartbeat/result) from a
    #: supervised worker before it is declared wedged and killed
    heartbeat_timeout: float = 30.0
    #: multiprocessing start method for the process-based executors
    #: (None = fork when available, else the platform default)
    mp_context: Optional[str] = None
    #: force fsync-per-append on the result store (None = env knob
    #: ``REPRO_STORE_FSYNC``)
    fsync: Optional[bool] = None
    #: write a span/metric JSONL trace of this run to the given path
    #: (enables tracing for the duration of the run — including in the
    #: executor's worker processes — and restores the flag afterwards)
    trace: Optional[str] = None


@dataclass
class CampaignOutcome:
    """What one invocation did (see the store for the full results)."""

    path: str
    total: int
    prior: int
    ran: int
    ok: int
    errors: int
    timeouts: int
    remaining: int
    #: tasks whose worker died under them (status="crashed")
    crashed: int = 0
    #: total extra attempts consumed by in-run retries
    retried: int = 0
    #: compile-stage cache telemetry, aggregated over all workers
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    #: baseline price memo telemetry, aggregated over all workers
    baseline_cache_hits: int = 0
    baseline_cache_misses: int = 0

    def describe(self) -> str:
        counts = (
            f"{self.ok} ok, {self.errors} error, {self.timeouts} timeout"
        )
        if self.crashed:
            counts += f", {self.crashed} crashed"
        bits = [
            f"{self.ran} task(s) run ({counts}), "
            f"{self.prior} restored from checkpoint"
        ]
        if self.retried:
            bits.append(f"{self.retried} retry attempt(s)")
        priced = self.compile_cache_hits + self.compile_cache_misses
        if priced:
            bits.append(
                f"compile cache: {self.compile_cache_hits}/{priced} hit(s) "
                f"({self.compile_cache_misses} nest(s) compiled)"
            )
        baselines = self.baseline_cache_hits + self.baseline_cache_misses
        if baselines:
            bits.append(
                f"baseline cache: {self.baseline_cache_hits}/{baselines} "
                f"hit(s) ({self.baseline_cache_misses} baseline(s) priced)"
            )
        if self.remaining:
            bits.append(f"{self.remaining} still pending (resume to finish)")
        return f"campaign {self.path}: " + "; ".join(bits)


def run_campaign(
    tasks: Sequence[SweepTask],
    out_path: str,
    config: Optional[CampaignConfig] = None,
    resume: bool = False,
    meta: Optional[Dict] = None,
    progress: Optional[Callable[[TaskResult], None]] = None,
) -> CampaignOutcome:
    """Execute ``tasks``, checkpointing each result to ``out_path``.

    ``resume=False`` starts a fresh run (the file is truncated);
    ``resume=True`` loads the checkpoint, verifies the grid digest in
    its meta record against ``meta["spec_digest"]`` (when both are
    present) and runs only the tasks without a stored result.
    """
    config = config or CampaignConfig()
    if config.timeout is not None and config.timeout <= 0:
        raise ValueError(
            f"timeout must be positive, got {config.timeout!r} (omit it "
            "for no per-task cap)"
        )
    store = RunStore(out_path, fsync=config.fsync)
    meta = dict(meta or {})
    done: Dict[str, TaskResult] = {}

    if resume:
        store.repair_trailing_newline()
        prev_meta, done = store.load()
        prev_digest = prev_meta.get("spec_digest")
        want = meta.get("spec_digest")
        if prev_digest and want and prev_digest != want:
            raise CampaignSpecMismatch(
                f"checkpoint {out_path} was written for grid "
                f"{prev_digest}, not {want}: re-run with the original "
                "flags or start a fresh output file"
            )
        # shards of one campaign share the full-grid digest by design,
        # so the shard spec needs its own guard: resuming a shard
        # checkpoint with the wrong (or a forgotten) --shard would
        # silently run another shard's tasks into this file
        prev_shard = prev_meta.get("shard")
        want_shard = meta.get("shard")
        # (a checkpoint that lost its meta line cannot be checked —
        # the digest guard above already degrades the same way)
        if prev_meta and prev_shard != want_shard:
            raise CampaignSpecMismatch(
                f"checkpoint {out_path} was written for shard "
                f"{prev_shard or 'none (full grid)'}, not "
                f"{want_shard or 'none (full grid)'}: resume with the "
                "original --shard or start a fresh output file"
            )
        if not prev_meta and not done:
            store.start(meta)
        elif prev_digest is None and want:
            # checkpoint lost its meta line (truncation leaves only a
            # `_skipped_lines` marker): re-append it so the spec-digest
            # guard holds for every later resume
            store.append_meta(meta)
        if config.retry_failures:
            # dropped records re-run; their fresh result line supersedes
            # the old one (the loader keeps the last record per task id).
            # Compact the superseded failure lines away so the
            # checkpoint does not grow a stale line per retry round.
            survivors = {k: r for k, r in done.items() if r.status == "ok"}
            if len(survivors) != len(done):
                keep_meta = {
                    k: v
                    for k, v in prev_meta.items()
                    if k not in ("record", "_skipped_lines")
                } or meta
                store.compact(keep_meta, survivors.values())
            done = survivors
    else:
        store.start(meta)

    pending = [t for t in tasks if t.task_id not in done]
    capped = (
        pending[: config.max_tasks]
        if config.max_tasks is not None
        else pending
    )

    ran = ok = errors = timeouts = crashed = retried = 0
    cache_hits = cache_misses = 0
    baseline_hits = baseline_misses = 0

    # --trace: enable tracing for the duration of this run (restored in
    # the finally below), open the JSONL writer and remember each task's
    # compile key so trace records carry their group identity
    trace_writer: Optional[TraceWriter] = None
    prev_trace_flag: Optional[bool] = None
    compile_keys: Dict[str, str] = {}
    if config.trace:
        prev_trace_flag = obs_tracing.set_enabled(True)
        obs_tracing.clear_spans()
        compile_keys = {t.task_id: t.compile_key for t in capped}
        trace_writer = TraceWriter(config.trace)

    status_counters = {
        s: obs_metrics.counter(f"campaign.tasks.{s}")
        for s in ("ok", "error", "timeout", "crashed")
    }

    def record(result: TaskResult) -> None:
        nonlocal ran, ok, errors, timeouts, crashed, retried
        nonlocal cache_hits, cache_misses, baseline_hits, baseline_misses
        with span("store.append"):
            store.append(result)
        ran += 1
        if result.status == "ok":
            ok += 1
        elif result.status == "timeout":
            timeouts += 1
        elif result.status == "crashed":
            crashed += 1
        else:
            errors += 1
        status_counters.get(
            result.status, status_counters["error"]
        ).inc()
        retried += max(0, result.attempts - 1)
        if result.compile_cache_hit is True:
            cache_hits += 1
        elif result.compile_cache_hit is False:
            cache_misses += 1
        if result.baseline_cache_hit is True:
            baseline_hits += 1
        elif result.baseline_cache_hit is False:
            baseline_misses += 1
        if trace_writer is not None:
            # fold the worker's span tree into the campaign aggregate
            # and stream the per-task record (flushed immediately: a
            # killed run loses at most the in-flight task's trace)
            merge_spans(result.trace)
            trace_writer.write_task(
                result, compile_keys.get(result.task_id)
            )
        if progress is not None:
            progress(result)

    # cluster cells of one compiled nest so each group lands on one
    # worker: K machine x mesh cells -> one compile + K prices
    groups = group_by_compile_key(capped)

    from .executors import ExecutorConfig, make_executor

    name = config.executor
    if name is None:
        name = "pool" if config.jobs > 1 and len(capped) > 1 else "inline"
    # process backends take groups largest-first so the run does not
    # end on one straggler group; inline keeps grid order
    groups = order_groups_for_dispatch(
        groups, largest_first=(name != "inline" and config.jobs > 1)
    )
    backend = make_executor(
        name,
        ExecutorConfig(
            jobs=config.jobs,
            timeout=config.timeout,
            retries=config.retries,
            backoff=config.backoff,
            heartbeat_timeout=config.heartbeat_timeout,
            mp_context=config.mp_context,
            compile_cache_size=_compile_cache_size,
            baseline_cache_size=_baseline_cache_size,
            compile_cache_dir=_compile_cache_dir,
            price_backend=_price_backend_name(),
            fault_spec=faults.active_spec(),
            trace=obs_tracing.is_enabled(),
        ),
    )
    try:
        if trace_writer is not None:
            trace_writer.write_meta(
                {
                    "spec_digest": meta.get("spec_digest"),
                    "executor": name,
                    "jobs": config.jobs,
                    "tasks": len(capped),
                    "groups": len(groups),
                }
            )
        for batch in backend.run(groups):
            for result in batch:
                record(result)
    finally:
        if trace_writer is not None:
            trace_writer.write_summary(
                span_snapshot(), obs_metrics.snapshot()
            )
            trace_writer.close()
        if prev_trace_flag is not None:
            obs_tracing.set_enabled(prev_trace_flag)

    return CampaignOutcome(
        path=out_path,
        total=len(tasks),
        prior=len(done),
        ran=ran,
        ok=ok,
        errors=errors,
        timeouts=timeouts,
        remaining=len(pending) - len(capped),
        crashed=crashed,
        retried=retried,
        compile_cache_hits=cache_hits,
        compile_cache_misses=cache_misses,
        baseline_cache_hits=baseline_hits,
        baseline_cache_misses=baseline_misses,
    )
